file(REMOVE_RECURSE
  "CMakeFiles/mctdb_mct.dir/mct_schema.cc.o"
  "CMakeFiles/mctdb_mct.dir/mct_schema.cc.o.d"
  "CMakeFiles/mctdb_mct.dir/schema_export.cc.o"
  "CMakeFiles/mctdb_mct.dir/schema_export.cc.o.d"
  "libmctdb_mct.a"
  "libmctdb_mct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_mct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
