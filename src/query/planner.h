// The planner: compiles an AssociationQuery against one MctSchema.
//
// Per pattern edge, the path is segmented greedily, longest-realized-first:
//   1. the longest sub-path realized as an occurrence chain in some color
//      (forward, or reversed — a parent/ancestor axis step) becomes one
//      segment; it costs ONE structural join when the (from, to) tag pair's
//      containment in that color is unambiguous (every descendant pair
//      connects via exactly this path — always true in node-normal colors),
//      and one parent-child join per step otherwise (redundant occurrences,
//      DEEP-style, make a bare a-d step ambiguous);
//   2. consecutive structural segments in different colors cost one color
//      crossing (node identity is shared across colors — the MCT property
//      that makes this cheap);
//   3. an ER edge with no structural realization anywhere must be an
//      id/idref ref edge and costs one value join (SHALLOW/AF).
#pragma once

#include "common/result.h"
#include "query/plan.h"

namespace mctdb::query {

/// Compiles `query` against `schema`. Fails with InvalidArgument when an
/// edge is neither structurally realized nor covered by a ref edge (cannot
/// happen for schemas produced by the Designer).
Result<QueryPlan> PlanQuery(const AssociationQuery& query,
                            const mct::MctSchema& schema);

}  // namespace mctdb::query
