#include "workload/runner.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::workload {
namespace {

TEST(RunnerTest, TpcwRunsHealthy) {
  Workload w = TpcwWorkload(0.03);
  RunnerOptions options;
  options.repetitions = 2;
  auto summary = RunWorkload(w, options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary->problems.empty())
      << summary->problems.front() << " (+" << summary->problems.size() - 1
      << " more)";
  // 7 schemas x 12 figure queries.
  EXPECT_EQ(summary->measurements.size(), 7u * 12u);
  EXPECT_EQ(summary->storage.size(), 7u);
}

TEST(RunnerTest, FindLocatesMeasurement) {
  Workload w = TpcwWorkload(0.06);
  auto summary = RunWorkload(w);
  ASSERT_TRUE(summary.ok());
  const Measurement* m = summary->Find("EN", "Q1");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->unique_results, 0u);
  EXPECT_EQ(summary->Find("EN", "Q99"), nullptr);
  EXPECT_EQ(summary->Find("NOPE", "Q1"), nullptr);
}

TEST(RunnerTest, StrategySubsetRespected) {
  Workload w = TpcwWorkload(0.03);
  RunnerOptions options;
  options.strategies = {design::Strategy::kEn, design::Strategy::kDr};
  auto summary = RunWorkload(w, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->storage.size(), 2u);
  EXPECT_EQ(summary->storage[0].first, "EN");
  EXPECT_EQ(summary->storage[1].first, "DR");
}

TEST(RunnerTest, XmarkWorkloadHealthyOnCollectionSample) {
  for (auto maker : {er::Er2University, er::Er5Airline}) {
    Workload w = XmarkEmulatedWorkload(maker());
    w.gen.base_count = 12;
    auto summary = RunWorkload(w);
    ASSERT_TRUE(summary.ok());
    EXPECT_TRUE(summary->problems.empty())
        << w.diagram.name() << ": " << summary->problems.front();
  }
}

TEST(RunnerTest, MedianSecondsIsATrueMedian) {
  // Odd count: the middle element.
  EXPECT_DOUBLE_EQ(MedianSeconds({5.0, 1.0, 3.0}), 3.0);
  // Even count: the mean of the two middle elements, NOT the lower one
  // (the seed's reps=2 "median" was just min(), biasing results fast).
  EXPECT_DOUBLE_EQ(MedianSeconds({3.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(MedianSeconds({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(MedianSeconds({7.0}), 7.0);
}

TEST(RunnerTest, MeasurementsCarryStageBreakdown) {
  Workload w = TpcwWorkload(0.03);
  auto summary = RunWorkload(w);
  ASSERT_TRUE(summary.ok());
  const Measurement* m = summary->Find("EN", "Q1");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->page_hits + m->page_misses, 0u);
  uint64_t stage_calls = 0;
  for (const obs::StageAgg& row : m->stages) stage_calls += row.calls;
  EXPECT_GT(stage_calls, 0u) << "per-stage rollup must be populated";
  EXPECT_GT(m->stages[size_t(obs::StageKind::kTagScan)].calls, 0u);
}

TEST(RunnerTest, UpdateMeasurementsCountElementWrites) {
  Workload w = TpcwWorkload(0.03);
  auto summary = RunWorkload(w);
  ASSERT_TRUE(summary.ok());
  const Measurement* deep = summary->Find("DEEP", "U1");
  const Measurement* en = summary->Find("EN", "U1");
  ASSERT_NE(deep, nullptr);
  ASSERT_NE(en, nullptr);
  EXPECT_GT(deep->elements_updated, en->elements_updated)
      << "DEEP rewrites copies";
}

}  // namespace
}  // namespace mctdb::workload
