# Empty compiler generated dependencies file for er_graph_test.
# This may be replaced when dependencies are built.
