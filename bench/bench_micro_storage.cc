// Ablation: storage-layer primitives — posting scan throughput through the
// buffer pool at different pool sizes (hit-ratio cliff), and the stack-tree
// structural join itself.
#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "query/structural_join.h"
#include "storage/pager.h"
#include "storage/posting.h"

namespace {

using namespace mctdb;
using namespace mctdb::storage;

struct PostingFixture {
  Pager pager;
  PostingMeta meta;

  explicit PostingFixture(size_t n) {
    PostingWriter writer(&pager);
    for (uint32_t i = 0; i < n; ++i) {
      LabelEntry e;
      e.elem = i;
      e.start = 2 * i + 1;
      e.end = 2 * i + 2;
      writer.Append(e);
    }
    meta = writer.Finish();
  }
};

void BM_PostingScan(benchmark::State& state) {
  static PostingFixture* fixture = new PostingFixture(500000);
  // Pool size in pages: small pools force re-faulting on every pass.
  BufferPool pool(&fixture->pager, size_t(state.range(0)));
  uint64_t sum = 0;
  for (auto _ : state) {
    PostingCursor cursor(&pool, &fixture->meta);
    LabelEntry e;
    while (cursor.Next(&e)) sum += e.start;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(fixture->meta.count));
  state.counters["hit_ratio"] =
      pool.hits() + pool.misses() == 0
          ? 0.0
          : double(pool.hits()) / double(pool.hits() + pool.misses());
}

void BM_StackTreeJoin(benchmark::State& state) {
  // One ancestor per 10 descendants, nested intervals.
  size_t n = size_t(state.range(0));
  std::vector<LabelEntry> anc, desc;
  for (uint32_t i = 0; i < n / 10; ++i) {
    LabelEntry a;
    a.elem = i;
    a.start = i * 30 + 1;
    a.end = i * 30 + 29;
    anc.push_back(a);
    for (uint32_t j = 0; j < 10; ++j) {
      LabelEntry d;
      d.elem = 1000000 + i * 10 + j;
      d.start = i * 30 + 2 + 2 * j;
      d.end = i * 30 + 3 + 2 * j;
      d.level = 1;
      desc.push_back(d);
    }
  }
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto r = query::StackTreeJoin(anc, desc);
    pairs = r.pairs;
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
  state.counters["pairs"] = double(pairs);
}

}  // namespace

// Pool sizes: 16 pages (thrash) to 4096 pages (fully resident: 500k entries
// / 409 per page ~ 1223 pages).
BENCHMARK(BM_PostingScan)->Arg(16)->Arg(256)->Arg(2048)->Arg(4096);
BENCHMARK(BM_StackTreeJoin)->Arg(1000)->Arg(100000)->Arg(1000000);

MCTDB_MICRO_BENCH_MAIN();
