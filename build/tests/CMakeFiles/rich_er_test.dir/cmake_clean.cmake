file(REMOVE_RECURSE
  "CMakeFiles/rich_er_test.dir/rich_er_test.cc.o"
  "CMakeFiles/rich_er_test.dir/rich_er_test.cc.o.d"
  "rich_er_test"
  "rich_er_test.pdb"
  "rich_er_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rich_er_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
