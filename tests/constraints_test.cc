#include "design/constraints.h"

#include <gtest/gtest.h>

#include "design/algorithm_mc.h"
#include "design/recoverability.h"

namespace mctdb::design {
namespace {

/// The paper's §3.2 example: `name` shared by `author` and `publisher`,
/// with the integrity constraint that author names and publisher names are
/// disjoint.
struct AuthorPublisherFixture {
  er::ErDiagram diagram;
  er::ErGraph graph;
  er::NodeId author, publisher, name, an, pn;
  ConstraintSet constraints;

  AuthorPublisherFixture() : diagram(Make()), graph(diagram) {
    author = *diagram.FindNode("author");
    publisher = *diagram.FindNode("publisher");
    name = *diagram.FindNode("name");
    an = *diagram.FindNode("author_name");
    pn = *diagram.FindNode("publisher_name");
    // The two edges name--author_name and name--publisher_name are
    // instance-disjoint.
    DisjointParentsConstraint c;
    c.shared = name;
    for (er::EdgeId eid : graph.incident(name)) c.edges.push_back(eid);
    constraints.push_back(c);
  }

  static er::ErDiagram Make() {
    er::ErDiagram d("authorship");
    auto author = d.AddEntity("author", {{"id", er::AttrType::kString, true}});
    auto publisher =
        d.AddEntity("publisher", {{"id", er::AttrType::kString, true}});
    auto name = d.AddEntity("name", {{"id", er::AttrType::kString, true}});
    EXPECT_TRUE(d.AddOneToMany("author_name", author, name).ok());
    EXPECT_TRUE(d.AddOneToMany("publisher_name", publisher, name).ok());
    return d;
  }
};

TEST(ConstraintsTest, UnconstrainedMcNeedsTwoColors) {
  // name is on the many side of two 1:N relationships: Theorem 4.1 fails
  // and plain MC must split colors.
  AuthorPublisherFixture f;
  mct::MctSchema s = AlgorithmMc(f.graph);
  EXPECT_EQ(s.num_colors(), 2u);
}

TEST(ConstraintsTest, ConstraintAwareMcUsesOneColor) {
  // With the disjointness declared, both parents may hold `name` in ONE
  // color — "knowledge of these constraints can be used to obtain better
  // MCT schema designs".
  AuthorPublisherFixture f;
  McOptions options;
  options.constraints = &f.constraints;
  mct::MctSchema s = AlgorithmMc(f.graph, "EN+C", options);
  EXPECT_EQ(s.num_colors(), 1u) << s.DebugString();
  EXPECT_TRUE(s.IsEdgeNormal());
  EXPECT_TRUE(IsAssociationRecoverable(s));
  // Plain NN fails (name occurs twice in the color) ...
  EXPECT_FALSE(s.IsNodeNormal());
  // ... but NN *under the constraint* holds.
  std::string why;
  EXPECT_TRUE(IsNodeNormalUnder(s, f.constraints, &why)) << why;
}

TEST(ConstraintsTest, CoverageRequiresAllEdges) {
  AuthorPublisherFixture f;
  // A constraint covering only one of the two edges excuses nothing.
  ConstraintSet partial;
  DisjointParentsConstraint c;
  c.shared = f.name;
  c.edges.push_back(f.graph.incident(f.name)[0]);
  partial.push_back(c);

  McOptions options;
  options.constraints = &f.constraints;
  mct::MctSchema s = AlgorithmMc(f.graph, "EN+C", options);
  std::string why;
  EXPECT_FALSE(IsNodeNormalUnder(s, partial, &why));
  EXPECT_NE(why.find("name"), std::string::npos);
}

TEST(ConstraintsTest, ConstraintOnOtherNodeDoesNotLeak) {
  AuthorPublisherFixture f;
  ConstraintSet wrong;
  DisjointParentsConstraint c;
  c.shared = f.author;  // constraint about a different node
  for (er::EdgeId eid : f.graph.incident(f.name)) c.edges.push_back(eid);
  wrong.push_back(c);
  EXPECT_FALSE(ConstraintCovers(
      wrong, f.name,
      {f.graph.incident(f.name)[0], f.graph.incident(f.name)[1]}));
}

TEST(ConstraintsTest, ConstrainedRunStaysValidAndDirect) {
  AuthorPublisherFixture f;
  McOptions options;
  options.constraints = &f.constraints;
  mct::MctSchema s = AlgorithmMc(f.graph, "EN+C", options);
  ASSERT_TRUE(s.Validate().ok());
  // Every eligible association is directly recoverable in the one color —
  // after dropping the path an => name => pn, which disjointness makes
  // empty (no name is both an author name and a publisher name).
  auto paths =
      FilterPathsUnder(f.constraints, EnumerateEligiblePaths(f.graph));
  EXPECT_LT(paths.size(), EnumerateEligiblePaths(f.graph).size())
      << "the through-name path must have been filtered";
  auto report = AnalyzeRecoverability(s, paths);
  EXPECT_TRUE(report.fully_direct()) << s.DebugString();
}

TEST(ConstraintsTest, RootDuplicatesNeverExcused) {
  // Two root occurrences of the same node in one color repeat every
  // instance; disjointness cannot excuse that.
  AuthorPublisherFixture f;
  mct::MctSchema s("manual", &f.graph);
  mct::ColorId c = s.AddColor();
  s.AddRoot(c, f.name);
  s.AddRoot(c, f.name);
  EXPECT_FALSE(IsNodeNormalUnder(s, f.constraints));
}

}  // namespace
}  // namespace mctdb::design
