// Schema-aware static analysis of queries and updates (the MC-XPath /
// association-query front half of mctlint).
//
// The designer schemas carry rich structural claims — which ER types occur
// in which color, how occurrences nest, which associations are realized
// structurally vs by id/idref, NN/EN normal forms — and this pass checks a
// query against those claims BEFORE planning or execution: a step that can
// never match, a branch the schema forest contradicts, a color crossing
// into a color that does not hold the crossed tag, a predicate on an
// attribute the type does not declare. Findings ride the shared
// DiagnosticReport engine; the planner turns the emptiness findings into
// statically-pruned plans (query::QueryPlan::statically_empty) that the
// executor short-circuits to a zero-I/O empty result.
//
// Codes (stable; messages free to improve):
//   * QRY001 unknown element type (tag not in the ER diagram / pattern
//            node out of range) — fatal
//   * QRY002 malformed reference: unknown color name, association path
//            endpoints disagreeing with the pattern, non-adjacent path
//            nodes, broken parent index — fatal
//   * QRY003 unsatisfiable step: the tag has no occurrence in the step's
//            color — statically empty
//   * QRY004 axis step contradicts the schema forest: both tags occur in
//            the color but no parent-child (resp. ancestor-descendant)
//            occurrence pair realizes the step — statically empty
//   * QRY005 always-empty color crossing: the crossed tag has no
//            occurrence in the target color (disjoint color domains) —
//            statically empty
//   * QRY006 unrecoverable association edge: a path step neither realized
//            structurally in any color nor covered by a ref edge (no plan
//            can exist; the planner refuses the query) — fatal
//   * QRY007 always-false predicate: equality test on an attribute the
//            type declares neither as an ER attribute nor as an idref —
//            statically empty
//   * QRY008 redundant predicate: the identical attribute equality is
//            repeated on the same element type within one query —
//            simplification hint
//   * QRY009 redundant distinct: set semantics requested where the schema
//            admits no duplicate placement of the output type —
//            simplification hint
//   * QRY010 statically-empty query: summary finding emitted whenever any
//            QRY003/004/005/007 finding proves the result set empty on
//            this schema; the plan-prune driver
//   * QRY011 cross-schema divergence: the query is statically empty on
//            one designer variant but not on an equivalent one — a
//            designer-bug detector
//   * QRY012 update op rejected by the static precheck
//            (VerifyUpdateOpStatic): unknown target, key rename, missing
//            key attribute, unsupported placement class — fatal; refused
//            before any WAL append
//
// Soundness contract (DESIGN.md §14): an emptiness finding is only emitted
// from claims that are *checkable against the schema representation
// itself* (occurrence forests, ref edges, declared attributes) — the same
// claims mctlint's schema pass (SCH001–023) cross-checks against the
// designers' NN/EN/AR/DR flags. A query pruned by QRY010 provably returns
// the empty set on every valid instance of the schema.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "mct/mct_schema.h"
#include "query/mcxpath.h"
#include "query/query_spec.h"
#include "storage/update_ops.h"

namespace mctdb::analysis {

struct QueryAnalyzeOptions {
  size_t max_diagnostics = 256;
};

/// The result of analyzing one query against one schema.
struct QueryAnalysis {
  DiagnosticReport report;
  /// Some QRY003/004/005/007 finding proved the result set empty on this
  /// schema (QRY010 was emitted). The planner marks such plans
  /// statically_empty and the executor short-circuits them.
  bool statically_empty = false;
  /// Some simplification hint (QRY008/009) applies; counted by the
  /// service as mctsvc_plans_simplified_total.
  bool simplifiable = false;
  /// The first emptiness finding, "QRYnnn: message" — surfaced as the
  /// plan's prune_reason and in `mctc trace` span labels.
  std::string empty_reason;

  /// Fatal findings (QRY001/002/006/012): the query is malformed for this
  /// schema and must be rejected with InvalidArgument, never pruned.
  bool fatal() const { return report.has_errors(); }
};

/// True for the codes the QueryService admission gate rejects with
/// InvalidArgument (QRY001/002/006/012); the emptiness codes are NOT fatal
/// — a statically-empty query is a valid query with a known-empty answer
/// and executes as a zero-I/O empty result.
bool IsFatalQueryCode(std::string_view code);

/// Analyzes an ER-level association query against `schema`: pattern shape
/// (QRY001/002), per-step recoverability (QRY006), predicate claims
/// (QRY007/008), set-semantics redundancy (QRY009), and overall static
/// emptiness (QRY010).
QueryAnalysis AnalyzeQuery(const query::AssociationQuery& q,
                           const mct::MctSchema& schema,
                           const QueryAnalyzeOptions& options = {});

/// Analyzes a parsed MC-XPath expression against `schema`: color and tag
/// resolution (QRY001/002), per-step satisfiability under the color's
/// occurrence forest (QRY003/004), color crossings (QRY005), predicates
/// (QRY007/008), and overall static emptiness (QRY010).
QueryAnalysis AnalyzeMcXPath(const query::McXPath& path,
                             const mct::MctSchema& schema,
                             const QueryAnalyzeOptions& options = {});

/// Cross-schema divergence (QRY011): analyzes the same query against every
/// schema in `schemas` (typically the seven designer outputs for one ER
/// source), merges the per-schema reports with the schema name as location
/// prefix, and flags any schema on which the query is statically empty
/// while a sibling is not. Fatal-on-one-schema-only divergence is flagged
/// the same way (an association recoverable on one variant but not
/// another is the designer bug the paper's AR property rules out).
DiagnosticReport AnalyzeQueryAcrossSchemas(
    const query::AssociationQuery& q,
    const std::vector<const mct::MctSchema*>& schemas,
    const QueryAnalyzeOptions& options = {});
DiagnosticReport AnalyzeMcXPathAcrossSchemas(
    const query::McXPath& path,
    const std::vector<const mct::MctSchema*>& schemas,
    const QueryAnalyzeOptions& options = {});

/// Static admissibility of one U1–U3 update op under `schema`, reported as
/// QRY012 diagnostics. Self-contained re-derivation of the same claims
/// storage::VerifyUpdateOp enforces (unknown types, duplicate new logical
/// ids, missing nesting edges, missing key attributes, unsupported
/// placement classes, key renames) — but reporting EVERY violation instead
/// of the first, and callable from layers below storage. wal::DurableStore
/// runs this before the WAL append, so a schema-invalid op is refused
/// without dirtying the log (wal_appends stays unchanged).
DiagnosticReport VerifyUpdateOpStatic(const mct::MctSchema& schema,
                                      const storage::UpdateOp& op,
                                      const QueryAnalyzeOptions& options = {});

}  // namespace mctdb::analysis
