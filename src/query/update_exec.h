// UpdateExecutor: runs storage::UpdateOps through a wal::DurableStore
// with the same observability contract as the read-path Executor.
//
// Each Execute call verifies the op against the schema (the PLN011/012
// write-path rules), then drives the durable apply protocol — WAL append,
// delta mutation, group commit — under an obs::ExecStats span tree whose
// kWal spans make the log time visible in `mctc trace`. The receipt
// carries the commit LSN: pass it (or store->visible_lsn()) to
// Executor::set_snapshot to read your own write; omit it and concurrent
// queries keep their consistent pre-commit view.
#pragma once

#include <string>

#include "common/result.h"
#include "obs/exec_stats.h"
#include "storage/update_ops.h"
#include "wal/durable_store.h"

namespace mctdb::query {

struct UpdateExecResult {
  /// LSN the op committed at (durable: its fsync — possibly shared with a
  /// batch — has returned).
  Lsn lsn = kNoLsn;
  /// What the apply touched (elements / labels / colors).
  storage::ApplyStats stats;
  /// WAL work this op caused: appends is always 1 on success; fsyncs is 0
  /// when a concurrent leader's group commit covered this op's LSN.
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  double elapsed_seconds = 0.0;
  /// Span tree: root kQuery span labeled with the op, kWal children for
  /// append and group_commit, a kUpdate child for the delta mutation.
  obs::Span trace;
};

class UpdateExecutor {
 public:
  explicit UpdateExecutor(wal::DurableStore* store) : store_(store) {}

  /// Verifies, logs, applies, and commits one op. InvalidArgument carries
  /// the verifier's diagnostic text when the op fails static checks;
  /// Unavailable means the WAL is degraded (reopen the store to recover).
  Result<UpdateExecResult> Execute(const storage::UpdateOp& op);

 private:
  wal::DurableStore* store_;
};

}  // namespace mctdb::query
