#include "design/algorithm_mc.h"

#include <gtest/gtest.h>

#include "design/recoverability.h"
#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;

void ExpectNnEnAr(const ErDiagram& d) {
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  std::string why;
  EXPECT_TRUE(s.IsNodeNormal(&why)) << d.name() << ": " << why;
  EXPECT_TRUE(s.IsEdgeNormal(&why)) << d.name() << ": " << why;
  EXPECT_TRUE(IsAssociationRecoverable(s)) << d.name();
  EXPECT_TRUE(s.CoversAllNodes(&why)) << d.name() << ": missing " << why;
  EXPECT_TRUE(s.ComputeIcics().empty()) << "EN => empty ICIC set";
  EXPECT_TRUE(s.Validate().ok());
}

TEST(AlgorithmMcTest, Theorem51HoldsOnCatalog) {
  for (const ErDiagram& d : er::EvaluationCollection()) ExpectNnEnAr(d);
  ExpectNnEnAr(er::ToyMcNotDr());
  ExpectNnEnAr(er::ToyMcmrInsufficient());
}

TEST(AlgorithmMcTest, EveryEdgeColoredExactlyOnce) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  std::vector<int> times(g.num_edges(), 0);
  for (const auto& o : s.occurrences()) {
    if (!o.is_root()) ++times[o.via_edge];
  }
  for (er::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(times[e], 1) << "edge " << e;
  }
}

TEST(AlgorithmMcTest, TpcwUsesTwoColors) {
  // The paper's EN schema for TPC-W has 2 colors (Table 1).
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  EXPECT_EQ(s.num_colors(), 2u) << s.DebugString();
}

TEST(AlgorithmMcTest, SingleColorSufficesForChain) {
  ErDiagram d = er::Er7Chain();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  EXPECT_EQ(s.num_colors(), 1u);
}

TEST(AlgorithmMcTest, SingleColorSufficesForStar) {
  ErDiagram d = er::Er6Star();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  EXPECT_EQ(s.num_colors(), 1u);
}

TEST(AlgorithmMcTest, ToyMcNotDrNeedsTwoColors) {
  // B on the many side of r1 and r3: two parents, two colors.
  ErDiagram d = er::ToyMcNotDr();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  EXPECT_EQ(s.num_colors(), 2u);
  // And, as §5.2 argues, EN forces some eligible association to miss DR.
  auto paths = EnumerateEligiblePaths(g);
  auto report = AnalyzeRecoverability(s, paths);
  EXPECT_FALSE(report.fully_direct());
}

TEST(AlgorithmMcTest, ManyManyNeedsTwoColors) {
  ErDiagram d("t");
  auto a = d.AddEntity("a");
  auto b = d.AddEntity("b");
  ASSERT_TRUE(d.AddManyToMany("r", a, b).ok());
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  // r is on the many side of both edges: one parent per color.
  EXPECT_EQ(s.num_colors(), 2u);
  EXPECT_TRUE(s.IsNodeNormal());
  EXPECT_TRUE(s.IsEdgeNormal());
}

TEST(AlgorithmMcTest, OneOneRingTerminatesAndCovers) {
  ErDiagram d = er::Er9OneOneRing();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  EXPECT_TRUE(IsAssociationRecoverable(s));
  EXPECT_TRUE(s.IsNodeNormal());
  EXPECT_TRUE(s.IsEdgeNormal());
}

TEST(AlgorithmMcTest, SingleColorModeStopsAfterOneColor) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  McOptions opts;
  opts.single_color = true;
  mct::MctSchema s = AlgorithmMc(g, "AF-base", opts);
  EXPECT_EQ(s.num_colors(), 1u);
  // TPC-W cannot be fully covered in one color.
  EXPECT_FALSE(IsAssociationRecoverable(s));
  EXPECT_TRUE(s.IsNodeNormal());
}

TEST(AlgorithmMcTest, ForcedStartNodeRespected) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  McOptions opts;
  opts.first_start = *d.FindNode("author");
  mct::MctSchema s = AlgorithmMc(g, "EN", opts);
  // The first color's first root is the forced start.
  ASSERT_FALSE(s.roots(0).empty());
  EXPECT_EQ(s.occ(s.roots(0)[0]).er_node, *d.FindNode("author"));
}

TEST(AlgorithmMcTest, BlueTreeNestsTheNaturalChain) {
  // country > in > address > has > customer > make > order ... (Fig 5 blue
  // resp. Fig 3 shape).
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  mct::OccId country = s.FindOcc(0, *d.FindNode("country"));
  mct::OccId order = s.FindOcc(0, *d.FindNode("order"));
  ASSERT_NE(country, mct::kInvalidOcc);
  ASSERT_NE(order, mct::kInvalidOcc);
  EXPECT_TRUE(s.IsAncestor(country, order));
}

}  // namespace
}  // namespace mctdb::design
