#include "storage/posting.h"

#include <cstring>

#include "common/logging.h"

namespace mctdb::storage {

void PostingWriter::Append(const LabelEntry& entry) {
  if (in_buffer_ == kEntriesPerPage) {
    PageId page = pager_->Allocate();
    pager_->Write(page, buffer_);
    meta_.pages.push_back(page);
    meta_.summaries.push_back(page_summary_);
    in_buffer_ = 0;
  }
  if (in_buffer_ == 0) {
    page_summary_ = {entry.start, entry.end};
  } else if (entry.end > page_summary_.max_end) {
    page_summary_.max_end = entry.end;
  }
  std::memcpy(buffer_ + in_buffer_ * sizeof(LabelEntry), &entry,
              sizeof(LabelEntry));
  ++in_buffer_;
  ++meta_.count;
}

PostingMeta PostingWriter::Finish() {
  if (in_buffer_ > 0) {
    std::memset(buffer_ + in_buffer_ * sizeof(LabelEntry), 0,
                kPageSize - in_buffer_ * sizeof(LabelEntry));
    PageId page = pager_->Allocate();
    pager_->Write(page, buffer_);
    meta_.pages.push_back(page);
    meta_.summaries.push_back(page_summary_);
    in_buffer_ = 0;
  }
  return std::move(meta_);
}

bool PostingCursor::Next(LabelEntry* out) {
  if (!status_.ok() || index_ >= meta_->count) return false;
  size_t page_index = index_ / kEntriesPerPage;
  if (page_index != current_page_index_) {
    Release();
    bool miss = false;
    Status s = pool_->Fetch(meta_->pages[page_index], &current_page_, &miss);
    // The fetch outcome is charged even on failure: the pool did the work.
    if (stats_ != nullptr) stats_->OnPageFetch(miss);
    if (!s.ok()) {
      status_ = std::move(s);
      current_page_ = nullptr;
      return false;
    }
    current_page_index_ = page_index;
  }
  size_t slot = index_ % kEntriesPerPage;
  std::memcpy(out, current_page_ + slot * sizeof(LabelEntry),
              sizeof(LabelEntry));
  ++index_;
  return true;
}

bool PostingCursor::SkipRuledOutPages() {
  if (!meta_->has_index()) return true;
  size_t page = index_ / kEntriesPerPage;
  if (index_ != page * kEntriesPerPage) return true;  // mid-page: no skip
  const std::vector<PostingPageSummary>& sum = meta_->summaries;
  size_t skipped = 0;
  while (page < sum.size()) {
    if (sum[page].first_start >= bounds_.start_lt) {
      // Starts only grow page over page: nothing here or later qualifies.
      if (stats_ != nullptr) stats_->OnIndexSeek();
      index_ = meta_->count;
      return false;
    }
    bool ruled_out = sum[page].max_end <= bounds_.end_gt;
    if (!ruled_out && page + 1 < sum.size() &&
        sum[page + 1].first_start <= bounds_.start_gt) {
      // Starts are strictly increasing, so every entry on this page has
      // start < the next page's first_start <= start_gt: none qualifies.
      ruled_out = true;
    }
    if (!ruled_out) break;
    ++page;
    ++skipped;
  }
  index_ = page * kEntriesPerPage;
  if (skipped > 0 && stats_ != nullptr) stats_->OnIndexSeek();
  return index_ < meta_->count;
}

bool PostingCursor::NextSpan(const LabelEntry** data, size_t* count) {
  if (!status_.ok() || index_ >= meta_->count) return false;
  if (!SkipRuledOutPages() || index_ >= meta_->count) return false;
  size_t page_index = index_ / kEntriesPerPage;
  if (page_index != current_page_index_) {
    Release();
    bool miss = false;
    Status s = pool_->Fetch(meta_->pages[page_index], &current_page_, &miss);
    if (stats_ != nullptr) stats_->OnPageFetch(miss);
    if (!s.ok()) {
      status_ = std::move(s);
      current_page_ = nullptr;
      return false;
    }
    current_page_index_ = page_index;
  }
  size_t slot = index_ % kEntriesPerPage;
  size_t n = kEntriesPerPage - slot;
  if (n > meta_->count - index_) n = meta_->count - index_;
  // Zero-copy: LabelEntry is a trivially-copyable POD whose objects were
  // memcpy'd into the page at build time, and pool frames are heap
  // allocations (suitably aligned), so reading them back through a typed
  // span is well-defined.
  *data = reinterpret_cast<const LabelEntry*>(current_page_ +
                                              slot * sizeof(LabelEntry));
  *count = n;
  index_ += n;
  return true;
}

void PostingCursor::Release() {
  if (current_page_ != nullptr) {
    pool_->Unpin(meta_->pages[current_page_index_]);
    current_page_ = nullptr;
    current_page_index_ = SIZE_MAX;
  }
}

std::vector<LabelEntry> ReadAll(PageCache* pool, const PostingMeta& meta,
                                obs::ExecStats* stats, Status* out_status) {
  std::vector<LabelEntry> out;
  out.reserve(meta.count);
  PostingCursor cursor(pool, &meta, stats);
  LabelEntry e;
  while (cursor.Next(&e)) out.push_back(e);
  if (out_status != nullptr) {
    *out_status = cursor.status();
  } else {
    MCTDB_CHECK_MSG(cursor.status().ok(), cursor.status().ToString().c_str());
  }
  return out;
}

}  // namespace mctdb::storage
