// Deterministic PRNG utilities for data generation and property tests.
//
// Every experiment in bench/ is seeded, so Table 1 / Figures 8-14 are
// reproducible run to run. We implement xoshiro256** seeded via splitmix64
// rather than using <random> engines so the bit streams are stable across
// standard-library implementations.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mctdb {

/// xoshiro256** with a splitmix64 seeding routine. Deterministic across
/// platforms, cheap, and of more than sufficient quality for workload
/// generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC0FFEE) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for the magnitudes used here.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * n) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Zipf-distributed rank in [0, n) with exponent `theta` (0 = uniform).
  /// Used for skewed relationship fan-out, matching e-commerce data where a
  /// few items dominate order lines.
  uint64_t Zipf(uint64_t n, double theta);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mctdb
