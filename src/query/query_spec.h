// Association queries: the workload representation.
//
// The paper compares the SAME logical query compiled against seven
// different schemas, so queries are specified at the ER level, not the
// schema level: a tree pattern of ER node types whose edges carry explicit
// ER-graph paths (the association semantics), plus predicates, set
// semantics, group-by and an optional update action. The planner
// (src/query/planner.h) decides per schema whether each pattern edge is
// recovered structurally (and in which color), via a color crossing, or via
// an id/idref value join.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "er/er_graph.h"

namespace mctdb::query {

/// Equality predicate on one attribute of a pattern node.
struct AttrPredicate {
  std::string attr;
  std::string value;
};

struct PatternNode {
  er::NodeId er_node = er::kInvalidNode;
  /// Index of the parent pattern node; -1 for the root (anchor).
  int parent = -1;
  /// The ER-graph node path from the parent's type to this type, inclusive
  /// of both endpoints (so path.size() >= 2 for non-roots). This pins the
  /// association's semantics (billing vs shipping, Fig 6 labels).
  std::vector<er::NodeId> path_from_parent;
  std::optional<AttrPredicate> predicate;
};

struct GroupBySpec {
  int node = 0;        ///< pattern node index grouped on
  std::string attr;    ///< grouping attribute
};

struct UpdateSpec {
  std::string attr;        ///< attribute of the output node to overwrite
  std::string new_value;
};

struct AssociationQuery {
  std::string name;
  std::vector<PatternNode> nodes;
  /// Pattern node whose logical instances the query returns (or updates).
  int output = 0;
  /// Set semantics requested: logically distinct results.
  bool distinct = false;
  std::optional<GroupBySpec> group_by;
  std::optional<UpdateSpec> update;

  bool is_update() const { return update.has_value(); }
};

/// Deterministic one-line serialization of EVERY field of a query —
/// structure, paths, predicates, output, set semantics, group-by, update.
/// Two queries canonicalize equal iff they plan and execute identically
/// against any one schema, which makes the text a safe plan-cache key
/// component (service/plan_cache.h).
std::string CanonicalQueryText(const AssociationQuery& query);

/// Fluent builder so workload definitions stay readable.
class QueryBuilder {
 public:
  QueryBuilder(std::string name, const er::ErDiagram& diagram)
      : diagram_(&diagram) {
    query_.name = std::move(name);
  }

  /// Adds the anchor node; returns its index.
  int Root(std::string_view type_name);
  /// Adds a child related to `parent` via the named ER path (sequence of
  /// node names from parent's type to the new node's type, exclusive of the
  /// parent, inclusive of the child); returns its index.
  int Via(int parent, const std::vector<std::string>& path_names);
  QueryBuilder& Where(int node, std::string_view attr, std::string_view value);
  QueryBuilder& Output(int node);
  QueryBuilder& Distinct();
  QueryBuilder& GroupBy(int node, std::string_view attr);
  QueryBuilder& Update(std::string_view attr, std::string_view value);

  AssociationQuery Build() const { return query_; }

 private:
  const er::ErDiagram* diagram_;
  AssociationQuery query_;
};

}  // namespace mctdb::query
