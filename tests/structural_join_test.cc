#include "query/structural_join.h"

#include <gtest/gtest.h>

namespace mctdb::query {
namespace {

using storage::LabelEntry;

LabelEntry L(uint32_t elem, uint32_t start, uint32_t end, uint16_t level) {
  LabelEntry e;
  e.elem = elem;
  e.start = start;
  e.end = end;
  e.level = level;
  return e;
}

TEST(StructuralJoinTest, BasicContainment) {
  // Tree: a1(1,10){ b1(2,3) b2(4,5) }  a2(11,20){ }  b3(21,22) top-level.
  std::vector<LabelEntry> anc{L(1, 1, 10, 0), L(2, 11, 20, 0)};
  std::vector<LabelEntry> desc{L(10, 2, 3, 1), L(11, 4, 5, 1),
                               L(12, 21, 22, 0)};
  auto r = StackTreeJoin(anc, desc);
  ASSERT_EQ(r.descendants.size(), 2u);
  EXPECT_EQ(r.descendants[0].elem, 10u);
  EXPECT_EQ(r.descendants[1].elem, 11u);
  ASSERT_EQ(r.ancestors.size(), 1u);
  EXPECT_EQ(r.ancestors[0].elem, 1u);
  EXPECT_EQ(r.pairs, 2u);
}

TEST(StructuralJoinTest, NestedAncestorsAllPair) {
  // a1(1,100) contains a2(2,50) contains d(3,4): two pairs.
  std::vector<LabelEntry> anc{L(1, 1, 100, 0), L(2, 2, 50, 1)};
  std::vector<LabelEntry> desc{L(10, 3, 4, 2)};
  auto r = StackTreeJoin(anc, desc);
  EXPECT_EQ(r.pairs, 2u);
  EXPECT_EQ(r.descendants.size(), 1u);
  EXPECT_EQ(r.ancestors.size(), 2u);
}

TEST(StructuralJoinTest, ParentChildLevelFilter) {
  std::vector<LabelEntry> anc{L(1, 1, 100, 0)};
  std::vector<LabelEntry> desc{L(10, 2, 3, 1), L(11, 4, 5, 2)};
  StructuralJoinOptions opts;
  opts.parent_child_only = true;
  auto r = StackTreeJoin(anc, desc, opts);
  ASSERT_EQ(r.descendants.size(), 1u);
  EXPECT_EQ(r.descendants[0].elem, 10u) << "level-2 node is a grandchild";
}

TEST(StructuralJoinTest, EmptyInputs) {
  std::vector<LabelEntry> some{L(1, 1, 2, 0)};
  EXPECT_TRUE(StackTreeJoin({}, some).descendants.empty());
  EXPECT_TRUE(StackTreeJoin(some, {}).descendants.empty());
  EXPECT_TRUE(StackTreeJoin({}, {}).descendants.empty());
}

TEST(StructuralJoinTest, SiblingsDoNotMatch) {
  std::vector<LabelEntry> anc{L(1, 1, 10, 1)};
  std::vector<LabelEntry> desc{L(10, 11, 12, 1), L(11, 13, 14, 1)};
  auto r = StackTreeJoin(anc, desc);
  EXPECT_TRUE(r.descendants.empty());
  EXPECT_TRUE(r.ancestors.empty());
}

TEST(StructuralJoinTest, LargeInterleavedForest) {
  // 100 trees: root_i contains child_i; roots are ancestors of their own
  // children only.
  std::vector<LabelEntry> anc, desc;
  for (uint32_t i = 0; i < 100; ++i) {
    anc.push_back(L(i, i * 10 + 1, i * 10 + 9, 0));
    desc.push_back(L(1000 + i, i * 10 + 2, i * 10 + 3, 1));
  }
  auto r = StackTreeJoin(anc, desc);
  EXPECT_EQ(r.pairs, 100u);
  EXPECT_EQ(r.descendants.size(), 100u);
  EXPECT_EQ(r.ancestors.size(), 100u);
}

TEST(StructuralJoinTest, SemiJoinAncestorsDeduplicated) {
  // One ancestor with 3 descendants appears once on the ancestors side.
  std::vector<LabelEntry> anc{L(1, 1, 100, 0)};
  std::vector<LabelEntry> desc{L(10, 2, 3, 1), L(11, 4, 5, 1), L(12, 6, 7, 1)};
  auto r = StackTreeJoin(anc, desc);
  EXPECT_EQ(r.pairs, 3u);
  EXPECT_EQ(r.ancestors.size(), 1u);
}

}  // namespace
}  // namespace mctdb::query
