// bench_parallel — workload-grid throughput scaling through mctsvc.
//
// Runs the TPC-W (schema x query) measurement grid serially and with
// N-thread parallel execution (RunnerOptions::num_threads), and reports
// grid throughput (cells/second, setup excluded), the speedup over the
// serial run, and whether the equivalence check stayed healthy.
//
//   bench_parallel [scale] [threads ...] [--json FILE]
//   default: scale 0.3, threads 1 2 4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "workload/runner.h"

using namespace mctdb;
using namespace mctdb::bench;

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [scale] [threads ...] [--json FILE]\n"
               "  scale: positive number (default 0.3)\n"
               "  threads: positive thread counts (default 1 2 4)\n",
               prog);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.3;
  std::string json_path;
  std::vector<size_t> thread_counts;
  bool scale_seen = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      if (i + 1 >= argc) return Usage(argv[0]);
      json_path = argv[++i];
    } else if (!std::strncmp(argv[i], "--json=", 7)) {
      json_path = argv[i] + 7;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return Usage(argv[0]);
    } else if (!scale_seen) {
      scale_seen = true;
      if (!ParseScale(argv[i], &scale)) {
        std::fprintf(stderr, "error: bad scale '%s'\n", argv[i]);
        return Usage(argv[0]);
      }
    } else {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[i], &end, 10);
      if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
        std::fprintf(stderr, "error: bad thread count '%s'\n", argv[i]);
        return Usage(argv[0]);
      }
      thread_counts.push_back(n);
    }
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4};

  workload::Workload w = workload::TpcwWorkload(scale);
  std::printf("TPC-W scale %.2f: %zu figure queries x 7 schemas, "
              "3 repetitions\n\n", scale, w.figure_queries.size());
  std::printf("%8s %12s %12s %10s %10s %9s\n", "threads", "setup(s)",
              "grid(s)", "cells", "cells/s", "speedup");
  bench::PrintRule(66);

  JsonReporter reporter("parallel", scale, /*reps=*/3);
  double serial_grid = 0.0;
  bool healthy = true;
  for (size_t threads : thread_counts) {
    workload::RunnerOptions options;
    options.repetitions = 3;
    options.num_threads = threads;
    auto summary = workload::RunWorkload(w, options);
    if (!summary.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    if (!summary->problems.empty()) {
      healthy = false;
      std::fprintf(stderr, "problems at %zu threads: %s (+%zu more)\n",
                   threads, summary->problems.front().c_str(),
                   summary->problems.size() - 1);
    }
    size_t cells = summary->measurements.size() * options.repetitions;
    if (threads == thread_counts.front()) serial_grid = summary->grid_seconds;
    double speedup =
        summary->grid_seconds > 0 ? serial_grid / summary->grid_seconds : 0;
    std::printf("%8zu %12.3f %12.3f %10zu %10.1f %8.2fx\n", threads,
                summary->setup_seconds, summary->grid_seconds, cells,
                cells / summary->grid_seconds, speedup);
    char label[32];
    std::snprintf(label, sizeof(label), "threads=%zu", threads);
    QueryRecord& r = reporter.Add("TPC-W", label);
    r.median_seconds = summary->grid_seconds;
    r.reps = options.repetitions;
    r.Extra("setup_seconds", summary->setup_seconds)
        .Extra("cells", double(cells))
        .Extra("cells_per_second",
               summary->grid_seconds > 0 ? cells / summary->grid_seconds : 0)
        .Extra("speedup", speedup)
        .Extra("problems", double(summary->problems.size()));
  }
  std::printf("\nequivalence check: %s\n", healthy ? "passed" : "FAILED");
  if (!json_path.empty()) {
    Status status = reporter.WriteTo(json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return healthy ? 0 : 1;
}
