#include "er/er_graph.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::er {
namespace {

/// a -r-> b (1:N, one a : many b).
ErDiagram OneToManyDiagram() {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  EXPECT_TRUE(d.AddOneToMany("r", a, b).ok());
  return d;
}

TEST(ErGraphTest, TwoEdgesPerBinaryRelationship) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
}

TEST(ErGraphTest, OrientationFollowsParticipation) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  NodeId a = *d.FindNode("a");
  NodeId b = *d.FindNode("b");
  NodeId r = *d.FindNode("r");
  for (const ErEdge& e : g.edges()) {
    if (e.node == a) {
      // a participates in many r's: directed a -> r (Fig 7 step 1).
      EXPECT_TRUE(e.directed());
    } else {
      EXPECT_EQ(e.node, b);
      EXPECT_FALSE(e.directed());
    }
    EXPECT_EQ(e.rel, r);
  }
}

TEST(ErGraphTest, TraversabilityRules) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  NodeId a = *d.FindNode("a");
  NodeId b = *d.FindNode("b");
  for (const ErEdge& e : g.edges()) {
    // endpoint -> rel is always traversable.
    EXPECT_TRUE(g.Traversable(e, e.node));
    if (e.node == a) {
      // rel -> a would put one a under each of its many r's: forbidden.
      EXPECT_FALSE(g.Traversable(e, e.rel));
    } else {
      EXPECT_EQ(e.node, b);
      EXPECT_TRUE(g.Traversable(e, e.rel));
    }
  }
}

TEST(ErGraphTest, IncidentListsBothSides) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  EXPECT_EQ(g.incident(*d.FindNode("a")).size(), 1u);
  EXPECT_EQ(g.incident(*d.FindNode("b")).size(), 1u);
  EXPECT_EQ(g.incident(*d.FindNode("r")).size(), 2u);
}

TEST(ErGraphTest, ForestDetection) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g1(d);
  EXPECT_TRUE(g1.IsForest());

  // Add a second relationship between the same pair: cycle a-r-b-r2-a.
  ASSERT_TRUE(d.AddOneToMany("r2", *d.FindNode("a"), *d.FindNode("b")).ok());
  ErGraph g2(d);
  EXPECT_FALSE(g2.IsForest());
}

TEST(ErGraphTest, SccMergesUndirectedEdges) {
  // a ->(many) r -- b: a alone, {r, b} merged via the undirected edge.
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  int num = 0;
  auto scc = g.ComputeSccIds(&num);
  EXPECT_EQ(num, 2);
  EXPECT_EQ(scc[*d.FindNode("r")], scc[*d.FindNode("b")]);
  EXPECT_NE(scc[*d.FindNode("a")], scc[*d.FindNode("r")]);
}

TEST(ErGraphTest, SourceSccNodesExcludeDownstream) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  auto sources = g.SourceSccNodes();
  // Only 'a' has no incoming directed edge from another SCC.
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], *d.FindNode("a"));
}

TEST(ErGraphTest, TraversableClosureChains) {
  // a => b => c through two 1:N relationships.
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  NodeId c = d.AddEntity("c");
  ASSERT_TRUE(d.AddOneToMany("r1", a, b).ok());
  ASSERT_TRUE(d.AddOneToMany("r2", b, c).ok());
  ErGraph g(d);
  auto reach = g.TraversableClosure();
  EXPECT_TRUE(reach[a][c]);
  EXPECT_TRUE(reach[a][b]);
  EXPECT_TRUE(reach[b][c]);
  // Composition b->a is many-to-one: not traversable downward.
  EXPECT_FALSE(reach[b][a]);
  EXPECT_FALSE(reach[c][a]);
  EXPECT_FALSE(reach[a][a]) << "self-association excluded";
}

TEST(ErGraphTest, StatsCountCardinalityClasses) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  NodeId c = d.AddEntity("c");
  ASSERT_TRUE(d.AddOneToMany("om", a, b).ok());
  ASSERT_TRUE(d.AddManyToMany("mm", a, c).ok());
  ASSERT_TRUE(d.AddOneToOne("oo", b, c).ok());
  ErGraph g(d);
  ErGraphStats st = g.Stats();
  EXPECT_EQ(st.num_one_many, 1u);
  EXPECT_EQ(st.num_many_many, 1u);
  EXPECT_EQ(st.num_one_one, 1u);
  EXPECT_EQ(st.num_multi_many_side_nodes, 0u);
}

TEST(ErGraphTest, MultiManySideDetected) {
  // order-style node on the many side of two 1:N relationships.
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  NodeId x = d.AddEntity("x");
  ASSERT_TRUE(d.AddOneToMany("r1", a, x).ok());
  ASSERT_TRUE(d.AddOneToMany("r2", b, x).ok());
  ErGraph g(d);
  EXPECT_EQ(g.Stats().num_multi_many_side_nodes, 1u);
}

TEST(ErGraphTest, TpcwShape) {
  ErDiagram d = Tpcw();
  ErGraph g(d);
  EXPECT_EQ(g.num_nodes(), 17u);  // 8 entities + 9 relationships
  EXPECT_EQ(g.num_edges(), 18u);
  EXPECT_FALSE(g.IsForest());
  auto sources = g.SourceSccNodes();
  // country and author are the natural roots of TPC-W.
  auto has = [&](const char* name) {
    return std::count(sources.begin(), sources.end(), *d.FindNode(name)) > 0;
  };
  EXPECT_TRUE(has("country"));
  EXPECT_TRUE(has("author"));
  EXPECT_FALSE(has("order"));
}

TEST(ErGraphTest, DebugStringMentionsEveryEdge) {
  ErDiagram d = OneToManyDiagram();
  ErGraph g(d);
  std::string s = g.DebugString();
  EXPECT_NE(s.find("a -> r"), std::string::npos);
  EXPECT_NE(s.find("b -- r"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::er
