// Association recoverability (AR) and direct recoverability (DR) checkers
// (paper §3.1) over an MctSchema.
//
//   * AR: every ER edge is structurally realized in at least one color and
//     every ER node has an occurrence — so any association (connected
//     subgraph of the closure) can be recovered by colored structural
//     navigation alone, with no value joins.
//   * DR: every *eligible* association path is realized as a descending
//     parent-child chain inside one single color, so a single
//     (parent-child or ancestor-descendant) colored axis step recovers it.
#pragma once

#include <vector>

#include "design/associations.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

struct RecoverabilityReport {
  bool association_recoverable = false;
  /// ER edges with no structural realization (forced into value joins).
  std::vector<er::EdgeId> unrecoverable_edges;

  size_t eligible_paths = 0;
  size_t directly_recoverable = 0;
  /// Eligible paths that no single color realizes as a chain (capped).
  std::vector<AssociationPath> missing_paths;

  bool fully_direct() const { return directly_recoverable == eligible_paths; }
  double direct_fraction() const {
    return eligible_paths == 0
               ? 1.0
               : double(directly_recoverable) / double(eligible_paths);
  }
};

/// True iff `path` appears as a descending chain (consecutive parent-child
/// occurrence links realizing exactly the path's edges) in some one color.
bool IsPathDirectlyRecoverable(const mct::MctSchema& schema,
                               const AssociationPath& path);

/// True iff every ER edge has a structural realization and all nodes are
/// covered.
bool IsAssociationRecoverable(const mct::MctSchema& schema,
                              std::vector<er::EdgeId>* missing = nullptr);

/// Full report against a precomputed eligible-path set.
RecoverabilityReport AnalyzeRecoverability(
    const mct::MctSchema& schema, const std::vector<AssociationPath>& paths,
    size_t max_missing_reported = 32);

}  // namespace mctdb::design
