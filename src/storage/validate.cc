#include "storage/validate.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace mctdb::storage {

std::string ValidationReport::ToString() const {
  if (ok()) return "OK";
  std::string out = StringPrintf("%zu problem(s):\n", problems.size());
  for (const std::string& p : problems) out += "  " + p + "\n";
  return out;
}

namespace {

class Validator {
 public:
  Validator(const MctStore& store, const ValidateOptions& options,
            ValidationReport* report)
      : store_(store), options_(options), report_(report) {}

  void Run() {
    for (mct::ColorId c = 0; c < store_.schema().num_colors(); ++c) {
      CheckColorForest(c);
      CheckPostings(c);
    }
    CheckKeyIndex();
    CheckIcics();
    if (options_.check_idrefs) CheckIdrefs();
  }

 private:
  void Problem(std::string msg) {
    if (report_->problems.size() < options_.max_problems) {
      report_->problems.push_back(std::move(msg));
    }
  }

  void CheckColorForest(mct::ColorId c) {
    auto entries = store_.ColorEntries(c);
    struct Open {
      LabelEntry entry;
    };
    std::vector<LabelEntry> stack;
    for (const LabelEntry& e : entries) {
      if (e.start >= e.end) {
        Problem(StringPrintf("color %u elem %u: degenerate interval", c,
                             e.elem));
        continue;
      }
      while (!stack.empty() && stack.back().end < e.start) stack.pop_back();
      // No partial overlap: the open top must fully contain e or be closed.
      if (!stack.empty() && stack.back().end < e.end) {
        Problem(StringPrintf("color %u elem %u: interval overlaps elem %u",
                             c, e.elem, stack.back().elem));
      }
      uint16_t expect_level = static_cast<uint16_t>(stack.size());
      if (e.level != expect_level) {
        Problem(StringPrintf("color %u elem %u: level %u, expected %u", c,
                             e.elem, e.level, expect_level));
      }
      ElemId expect_parent =
          stack.empty() ? kInvalidElem : stack.back().elem;
      if (store_.Parent(c, e.elem) != expect_parent) {
        Problem(StringPrintf("color %u elem %u: parent pointer mismatch", c,
                             e.elem));
      }
      stack.push_back(e);
    }
  }

  void CheckPostings(mct::ColorId c) {
    const er::ErDiagram& diagram = store_.schema().diagram();
    for (er::NodeId tag = 0; tag < diagram.num_nodes(); ++tag) {
      const PostingMeta* meta = store_.Posting(c, tag);
      if (meta == nullptr) continue;
      auto entries = ReadAll(store_.buffer_pool(), *meta);
      uint32_t prev_start = 0;
      for (const LabelEntry& e : entries) {
        if (e.start <= prev_start) {
          Problem(StringPrintf("color %u tag %s: posting out of order", c,
                               diagram.node(tag).name.c_str()));
          break;
        }
        prev_start = e.start;
        if (e.elem >= store_.num_elements() ||
            store_.element(e.elem).er_node != tag) {
          Problem(StringPrintf("color %u tag %s: entry for wrong element",
                               c, diagram.node(tag).name.c_str()));
          break;
        }
        LabelEntry label;
        if (!store_.Label(c, e.elem, &label) || label.start != e.start ||
            label.end != e.end) {
          Problem(StringPrintf("color %u tag %s elem %u: posting/label "
                               "disagreement",
                               c, diagram.node(tag).name.c_str(), e.elem));
          break;
        }
      }
    }
  }

  void CheckKeyIndex() {
    for (ElemId e = 0; e < store_.num_elements(); ++e) {
      const ElementMeta& meta = store_.element(e);
      auto elems = store_.ElementsFor(meta.er_node, meta.logical);
      if (std::find(elems.begin(), elems.end(), e) == elems.end()) {
        Problem(StringPrintf("elem %u missing from key index", e));
      }
    }
  }

  /// Logical parent-child pairs realized via each ER edge, per color.
  using PairSet = std::set<std::pair<uint32_t, uint32_t>>;

  void CheckIcics() {
    const mct::MctSchema& schema = store_.schema();
    auto icics = schema.ComputeIcics();
    if (icics.empty()) return;
    // Collect realized pairs per (edge, color). The ER edge between two
    // adjacent er nodes is unique, so (parent tag, child tag) determines
    // it.
    std::map<er::EdgeId, std::map<mct::ColorId, PairSet>> realized;
    std::set<er::EdgeId> constrained;
    for (const mct::Icic& icic : icics) constrained.insert(icic.er_edge);

    const er::ErGraph& graph = schema.graph();
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      for (const LabelEntry& e : store_.ColorEntries(c)) {
        ElemId parent = store_.Parent(c, e.elem);
        if (parent == kInvalidElem) continue;
        const ElementMeta& cm = store_.element(e.elem);
        const ElementMeta& pm = store_.element(parent);
        // Find the ER edge between the two node types. Canonicalize the
        // pair as (endpoint logical, relationship logical): a 1:1 edge may
        // be realized with either side as the structural parent in
        // different colors, and that is the same association.
        for (er::EdgeId eid : graph.incident(cm.er_node)) {
          const er::ErEdge& edge_meta = graph.edge(eid);
          if (edge_meta.other(cm.er_node) != pm.er_node) continue;
          if (!constrained.count(eid)) break;
          uint32_t rel_logical =
              pm.er_node == edge_meta.rel ? pm.logical : cm.logical;
          uint32_t node_logical =
              pm.er_node == edge_meta.rel ? cm.logical : pm.logical;
          realized[eid][c].insert({node_logical, rel_logical});
          break;
        }
      }
    }
    const er::ErDiagram& diagram = schema.diagram();
    for (const auto& [edge, by_color] : realized) {
      // Complete realizations = the maximal sets; all must be identical,
      // and partial (graft) realizations must be subsets.
      size_t max_size = 0;
      for (const auto& [c, pairs] : by_color) {
        max_size = std::max(max_size, pairs.size());
      }
      const PairSet* full = nullptr;
      for (const auto& [c, pairs] : by_color) {
        if (pairs.size() != max_size) continue;
        if (full == nullptr) {
          full = &pairs;
        } else if (pairs != *full) {
          Problem(StringPrintf(
              "ICIC violation on edge %s--%s: complete realizations "
              "disagree",
              diagram.node(graph.edge(edge).rel).name.c_str(),
              diagram.node(graph.edge(edge).node).name.c_str()));
        }
      }
      for (const auto& [c, pairs] : by_color) {
        if (pairs.size() == max_size || full == nullptr) continue;
        for (const auto& pair : pairs) {
          if (!full->count(pair)) {
            Problem(StringPrintf(
                "ICIC violation on edge %s--%s: color %u asserts a pair "
                "absent from the complete realization",
                diagram.node(graph.edge(edge).rel).name.c_str(),
                diagram.node(graph.edge(edge).node).name.c_str(), c));
            break;
          }
        }
      }
    }
  }

  void CheckIdrefs() {
    const er::ErDiagram& diagram = store_.schema().diagram();
    // Key values per node type.
    std::map<er::NodeId, std::set<std::string>> keys;
    for (ElemId e = 0; e < store_.num_elements(); ++e) {
      const ElementMeta& meta = store_.element(e);
      const er::ErNode& node = diagram.node(meta.er_node);
      for (size_t a = 0; a < node.attributes.size(); ++a) {
        if (!node.attributes[a].is_key) continue;
        const std::string* v =
            store_.AttrValue(e, node.attributes[a].name);
        if (v != nullptr) keys[meta.er_node].insert(*v);
      }
    }
    for (const mct::RefEdge& ref : store_.schema().ref_edges()) {
      er::NodeId holder = store_.schema().occ(ref.from).er_node;
      for (ElemId e = 0; e < store_.num_elements(); ++e) {
        if (store_.element(e).er_node != holder) continue;
        const std::string* v = store_.AttrValue(e, ref.attr_name);
        if (v == nullptr) {
          Problem(StringPrintf("elem %u: missing idref %s", e,
                               ref.attr_name.c_str()));
          continue;
        }
        if (!keys[ref.target].count(*v)) {
          Problem(StringPrintf("elem %u: dangling idref %s='%s'", e,
                               ref.attr_name.c_str(), v->c_str()));
        }
      }
    }
  }

  const MctStore& store_;
  const ValidateOptions& options_;
  ValidationReport* report_;
};

}  // namespace

ValidationReport ValidateStore(const MctStore& store,
                               const ValidateOptions& options) {
  ValidationReport report;
  Validator validator(store, options, &report);
  validator.Run();
  return report;
}

}  // namespace mctdb::storage
