file(REMOVE_RECURSE
  "CMakeFiles/mcxpath_test.dir/mcxpath_test.cc.o"
  "CMakeFiles/mcxpath_test.dir/mcxpath_test.cc.o.d"
  "mcxpath_test"
  "mcxpath_test.pdb"
  "mcxpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcxpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
