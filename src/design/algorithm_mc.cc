#include "design/algorithm_mc.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "common/logging.h"

namespace mctdb::design {

namespace {

/// Per-run state of Algorithm MC over one ER graph.
class McRunner {
 public:
  McRunner(const er::ErGraph& graph, std::string name,
           const ConstraintSet* constraints)
      : graph_(graph),
        schema_(std::move(name), &graph),
        constraints_(constraints),
        edge_colored_(graph.num_edges(), false) {}

  mct::MctSchema Run(const McOptions& options) {
    defer_shared_edges_ = constraints_ != nullptr;
    bool first_color = true;
    while (true) {
      std::vector<er::NodeId> candidates = ResidualSourceCandidates();
      if (candidates.empty()) break;
      er::NodeId start;
      if (first_color && options.first_start != er::kInvalidNode &&
          std::count(candidates.begin(), candidates.end(),
                     options.first_start)) {
        start = options.first_start;
      } else {
        start = BestCandidate(candidates);
      }
      OpenColor(start);
      // Step 4: keep adding roots to this color while possible.
      while (true) {
        std::vector<er::NodeId> more;
        for (er::NodeId v : ResidualSourceCandidates()) {
          if (!in_color_.count(v) && HasColorableEdgeFromFreshRoot(v)) {
            more.push_back(v);
          }
        }
        if (more.empty()) break;
        er::NodeId v = BestCandidate(more);
        mct::OccId root = schema_.AddRoot(color_, v);
        in_color_[v].push_back(root);
        current_roots_.insert(root);
        Sweep(root);
      }
      first_color = false;
      if (options.single_color) break;
      // The defer rule (below) may leave constrained edges uncolored when
      // no run reached them from the relationship side; fall back to plain
      // coloring so association recoverability is never lost.
      if (defer_shared_edges_ && ResidualSourceCandidates().empty() &&
          HasUncoloredEdge()) {
        defer_shared_edges_ = false;
      }
    }
    MCTDB_CHECK(schema_.Validate().ok());
    return std::move(schema_);
  }

 private:
  bool HasUncoloredEdge() const {
    return std::find(edge_colored_.begin(), edge_colored_.end(), false) !=
           edge_colored_.end();
  }

  /// Defer rule: with constraints active, the shared node must not grab a
  /// constrained edge as its own child — the edge is reserved for the
  /// duplicate-occurrence realization (shared node UNDER each disjoint
  /// parent, the §3.2 shape).
  bool DeferEdge(er::EdgeId eid, er::NodeId from) const {
    if (!defer_shared_edges_ || constraints_ == nullptr) return false;
    for (const DisjointParentsConstraint& c : *constraints_) {
      if (c.shared != from) continue;
      if (std::find(c.edges.begin(), c.edges.end(), eid) != c.edges.end()) {
        return true;
      }
    }
    return false;
  }

  bool HasUncoloredOut(er::NodeId v) const {
    for (er::EdgeId eid : graph_.incident(v)) {
      if (!edge_colored_[eid] && graph_.Traversable(eid, v)) return true;
    }
    return false;
  }

  /// SCC ids over the residual (uncolored-edge) mixed graph.
  std::vector<int> ResidualScc(int* num_sccs) const {
    const size_t n = graph_.num_nodes();
    // Kosaraju-style double DFS is overkill for graphs this small; reuse a
    // simple iterative Tarjan specialized to the residual edge filter.
    std::vector<int> index(n, -1), low(n, 0), scc(n, -1);
    std::vector<bool> on_stack(n, false);
    std::vector<er::NodeId> stack;
    int next_index = 0, next_scc = 0;

    auto successors = [&](er::NodeId u, std::vector<er::NodeId>* out) {
      out->clear();
      for (er::EdgeId eid : graph_.incident(u)) {
        if (edge_colored_[eid]) continue;
        const er::ErEdge& e = graph_.edge(eid);
        if (e.directed()) {
          if (u == e.node) out->push_back(e.rel);
        } else {
          out->push_back(e.other(u));
        }
      }
    };

    struct Frame {
      er::NodeId u;
      size_t child = 0;
      std::vector<er::NodeId> succs;
    };
    for (er::NodeId s = 0; s < n; ++s) {
      if (index[s] != -1) continue;
      std::vector<Frame> frames;
      frames.push_back({s, 0, {}});
      successors(s, &frames.back().succs);
      index[s] = low[s] = next_index++;
      stack.push_back(s);
      on_stack[s] = true;
      while (!frames.empty()) {
        Frame& fr = frames.back();
        if (fr.child < fr.succs.size()) {
          er::NodeId v = fr.succs[fr.child++];
          if (index[v] == -1) {
            index[v] = low[v] = next_index++;
            stack.push_back(v);
            on_stack[v] = true;
            frames.push_back({v, 0, {}});
            successors(v, &frames.back().succs);
          } else if (on_stack[v]) {
            low[fr.u] = std::min(low[fr.u], index[v]);
          }
        } else {
          er::NodeId u = fr.u;
          if (low[u] == index[u]) {
            while (true) {
              er::NodeId w = stack.back();
              stack.pop_back();
              on_stack[w] = false;
              scc[w] = next_scc;
              if (w == u) break;
            }
            ++next_scc;
          }
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().u] = std::min(low[frames.back().u], low[u]);
          }
        }
      }
    }
    *num_sccs = next_scc;
    return scc;
  }

  /// Fig 7 step 2: unprocessed nodes lying in source SCCs of the residual
  /// graph. "Unprocessed" = still has an uncolored traversable-out edge.
  std::vector<er::NodeId> ResidualSourceCandidates() const {
    int num_sccs = 0;
    std::vector<int> scc = ResidualScc(&num_sccs);
    std::vector<bool> has_incoming(static_cast<size_t>(num_sccs), false);
    for (const er::ErEdge& e : graph_.edges()) {
      if (edge_colored_[e.id] || !e.directed()) continue;
      if (scc[e.node] != scc[e.rel]) has_incoming[scc[e.rel]] = true;
    }
    std::vector<er::NodeId> out;
    for (er::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (!has_incoming[scc[v]] && HasUncoloredOut(v)) out.push_back(v);
    }
    return out;
  }

  /// Number of uncolored edges reachable from `v` along uncolored
  /// traversable edges — the color-frugality heuristic.
  size_t ReachScore(er::NodeId v) const {
    std::set<er::EdgeId> seen_edges;
    std::set<er::NodeId> seen_nodes{v};
    std::deque<er::NodeId> queue{v};
    while (!queue.empty()) {
      er::NodeId u = queue.front();
      queue.pop_front();
      for (er::EdgeId eid : graph_.incident(u)) {
        if (edge_colored_[eid] || !graph_.Traversable(eid, u)) continue;
        seen_edges.insert(eid);
        er::NodeId next = graph_.edge(eid).other(u);
        if (seen_nodes.insert(next).second) queue.push_back(next);
      }
    }
    return seen_edges.size();
  }

  er::NodeId BestCandidate(const std::vector<er::NodeId>& candidates) const {
    er::NodeId best = candidates.front();
    size_t best_score = ReachScore(best);
    for (size_t i = 1; i < candidates.size(); ++i) {
      size_t score = ReachScore(candidates[i]);
      if (score > best_score) {
        best = candidates[i];
        best_score = score;
      }
    }
    return best;
  }

  bool HasColorableEdgeFromFreshRoot(er::NodeId v) const {
    for (er::EdgeId eid : graph_.incident(v)) {
      if (edge_colored_[eid] || !graph_.Traversable(eid, v)) continue;
      er::NodeId other = graph_.edge(eid).other(v);
      auto it = in_color_.find(other);
      if (it == in_color_.end()) return true;
      // Far end already colored: colorable only toward a non-start root.
      for (mct::OccId occ : it->second) {
        if (current_roots_.count(occ) && other != start_node_) return true;
      }
    }
    return false;
  }

  void OpenColor(er::NodeId start) {
    color_ = schema_.AddColor();
    in_color_.clear();
    current_roots_.clear();
    start_node_ = start;
    mct::OccId root = schema_.AddRoot(color_, start);
    in_color_[start].push_back(root);
    current_roots_.insert(root);
    Sweep(root);
  }

  mct::OccId RootOf(mct::OccId occ) const {
    while (!schema_.occ(occ).is_root()) occ = schema_.occ(occ).parent;
    return occ;
  }

  /// Depth-first colorable-edge traversal from `from_occ`, then re-sweep all
  /// in-color occurrences until fixpoint (tree merges can unlock edges whose
  /// scan already passed).
  void Sweep(mct::OccId from_occ) {
    Dfs(from_occ);
    bool changed = true;
    while (changed) {
      changed = false;
      // Snapshot: Dfs appends occurrences.
      std::vector<mct::OccId> occs;
      for (const auto& [node, node_occs] : in_color_) {
        occs.insert(occs.end(), node_occs.begin(), node_occs.end());
      }
      size_t before = NumColored();
      for (mct::OccId occ : occs) Dfs(occ);
      changed = NumColored() != before;
    }
  }

  size_t NumColored() const {
    return static_cast<size_t>(
        std::count(edge_colored_.begin(), edge_colored_.end(), true));
  }

  void Dfs(mct::OccId occ) {
    er::NodeId node = schema_.occ(occ).er_node;
    for (er::EdgeId eid : graph_.incident(node)) {
      if (edge_colored_[eid] || !graph_.Traversable(eid, node)) continue;
      if (DeferEdge(eid, node)) continue;
      er::NodeId other = graph_.edge(eid).other(node);
      auto it = in_color_.find(other);
      if (it == in_color_.end()) {
        edge_colored_[eid] = true;
        mct::OccId child = schema_.AddChild(occ, other, eid);
        in_color_[other].push_back(child);
        Dfs(child);
        continue;
      }
      // Fig 7 step 3(ii) + step 4: merge another current root's tree under
      // this occurrence — unless it is the start node or our own root
      // (which would close a cycle).
      bool merged = false;
      for (mct::OccId other_occ : it->second) {
        if (current_roots_.count(other_occ) && other != start_node_ &&
            RootOf(occ) != other_occ) {
          edge_colored_[eid] = true;
          schema_.AttachRoot(other_occ, occ, eid);
          current_roots_.erase(other_occ);
          Dfs(other_occ);
          merged = true;
          break;
        }
      }
      if (merged) continue;
      // Constraint-aware extension (§3.2): when the far end's existing
      // parent edges plus this one are declared instance-disjoint, a
      // second occurrence in the same color duplicates no instance.
      if (constraints_ != nullptr) {
        std::vector<er::EdgeId> edges{eid};
        bool any_root = false;
        for (mct::OccId o : it->second) {
          if (schema_.occ(o).is_root()) {
            any_root = true;
          } else {
            edges.push_back(schema_.occ(o).via_edge);
          }
        }
        if (!any_root && ConstraintCovers(*constraints_, other, edges)) {
          edge_colored_[eid] = true;
          mct::OccId child = schema_.AddChild(occ, other, eid);
          in_color_[other].push_back(child);
          Dfs(child);
        }
      }
    }
  }

  const er::ErGraph& graph_;
  mct::MctSchema schema_;
  const ConstraintSet* constraints_ = nullptr;
  std::vector<bool> edge_colored_;

  // Per-color state.
  mct::ColorId color_ = 0;
  bool defer_shared_edges_ = false;
  std::map<er::NodeId, std::vector<mct::OccId>> in_color_;
  std::set<mct::OccId> current_roots_;
  er::NodeId start_node_ = er::kInvalidNode;
};

}  // namespace

mct::MctSchema AlgorithmMc(const er::ErGraph& graph, std::string schema_name,
                           const McOptions& options) {
  McRunner runner(graph, std::move(schema_name), options.constraints);
  return runner.Run(options);
}

}  // namespace mctdb::design
