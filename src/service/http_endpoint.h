// HttpEndpoint: a dependency-free blocking HTTP/1.0 server for the
// observability surface (/metrics, /healthz, /slowlog, /tracez) plus
// small POST control routes (`mctc serve` registers POST /update).
//
// Design constraints, in order:
//   * zero dependencies — raw POSIX sockets, no event loop;
//   * clean shutdown under TSAN — the listener thread poll()s the
//     listening socket with a short timeout and re-checks a stop flag,
//     so Stop() never races an accept() and always joins;
//   * bounded resource use — connections are handled serially on the
//     listener thread with send/receive timeouts on the accepted socket,
//     so a stalled scraper can delay other scrapes but can never pile up
//     threads or wedge shutdown; POST bodies are capped at
//     Options::max_body_bytes (413 beyond it). Scrapers are few
//     (Prometheus, curl); this is an observability/control port, not a
//     data plane.
//
// The handler runs on the listener thread; it must be thread-safe with
// respect to the traffic it reports on (QueryService's exporters are).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace mctsvc {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// One parsed request, as much of HTTP as this surface speaks: the
/// method ("GET" or "POST" — anything else is answered 405 before the
/// handler runs), the path with its query string split off, and the body
/// (POST only, bounded by Options::max_body_bytes).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;  ///< text after '?', without the '?'; may be empty
  std::string body;
};

class HttpEndpoint {
 public:
  struct Options {
    /// Port to bind on 127.0.0.1; 0 asks the OS for an ephemeral port
    /// (read it back from port() after Start).
    uint16_t port = 0;
    /// listen() backlog — pending connections beyond it are refused by
    /// the kernel, which is the connection bound.
    int backlog = 8;
    /// Per-connection socket send/receive timeout.
    int io_timeout_ms = 2000;
    /// How often the listener re-checks the stop flag.
    int poll_interval_ms = 50;
    /// Largest accepted POST body; longer requests are answered 413
    /// without reaching the handler.
    size_t max_body_bytes = 1 << 20;
  };

  /// Maps a request to a response; called once per GET or POST. Other
  /// methods are answered 405 before the handler runs.
  using Handler = std::function<HttpResponse(const HttpRequest& request)>;

  HttpEndpoint(Options options, Handler handler);
  /// Stops and joins if still running.
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds, listens, and spawns the listener thread. Fails (IoError) if
  /// the port is taken.
  mctdb::Status Start();
  /// Signals the listener, closes the socket, joins the thread.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually bound port (resolves port 0 after Start).
  uint16_t port() const { return bound_port_; }
  /// Requests served since Start (including 404/405s).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void ListenLoop();
  void HandleConnection(int fd);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace mctsvc
