#include "instance/logical.h"

#include <algorithm>
#include <array>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::instance {

namespace {

/// Vocabulary for string data attributes. Small enough that predicates are
/// selective but not singleton; "Japan" leads so country-style predicates
/// (Q1/Q2) always have matches.
constexpr const char* kVocab[] = {
    "Japan",  "USA",    "Germany", "Brazil", "India",  "France",
    "Canada", "Kenya",  "Norway",  "Chile",  "Egypt",  "Korea",
    "Spain",  "Italy",  "Poland",  "Peru",   "Ghana",  "Laos",
};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

}  // namespace

std::string LogicalInstance::KeyValue(er::NodeId node, uint32_t inst) const {
  return diagram_->node(node).name + "_" + std::to_string(inst);
}

std::string LogicalInstance::AttrValue(er::NodeId node, uint32_t inst,
                                       size_t attr_index) const {
  const er::Attribute& attr = diagram_->node(node).attributes[attr_index];
  if (attr.is_key) return KeyValue(node, inst);
  uint64_t h = HashCombine(Hash64(attr.name), HashCombine(node, inst));
  if (attr.type == er::AttrType::kInt) {
    return std::to_string(h % 1000);
  }
  return kVocab[h % kVocabSize];
}

size_t LogicalInstance::TotalInstances() const {
  size_t total = 0;
  for (size_t c : counts_) total += c;
  return total;
}

LogicalInstance GenerateInstance(const er::ErGraph& graph,
                                 const GenOptions& options) {
  const er::ErDiagram& diagram = graph.diagram();
  LogicalInstance out;
  out.diagram_ = &diagram;
  out.graph_ = &graph;
  out.counts_.assign(diagram.num_nodes(), 0);
  out.rel_pairs_.resize(diagram.num_nodes());
  out.adjacency_.resize(graph.num_edges());

  Rng rng(options.seed);

  // 1. Entity counts: base everywhere, then scale many-sides of 1:N chains
  //    by fanout until fixpoint (declaration order in a diagram need not be
  //    topological for this rule).
  for (const er::ErNode& node : diagram.nodes()) {
    if (!node.is_entity()) continue;
    auto it = options.explicit_counts.find(node.name);
    out.counts_[node.id] =
        it != options.explicit_counts.end() ? it->second : options.base_count;
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (const er::ErNode& node : diagram.nodes()) {
      if (!node.is_relationship()) continue;
      const er::Endpoint& e0 = node.endpoints[0];
      const er::Endpoint& e1 = node.endpoints[1];
      bool zero_n_01 = e0.participation == er::Participation::kMany &&
                       e1.participation == er::Participation::kOne;
      bool zero_n_10 = e1.participation == er::Participation::kMany &&
                       e0.participation == er::Participation::kOne;
      if (!zero_n_01 && !zero_n_10) continue;
      er::NodeId one_side = zero_n_01 ? e0.target : e1.target;
      er::NodeId many_side = zero_n_01 ? e1.target : e0.target;
      if (!diagram.node(many_side).is_entity()) continue;
      if (diagram.node(many_side) .is_entity() &&
          options.explicit_counts.count(diagram.node(many_side).name)) {
        continue;  // explicit counts win
      }
      size_t scaled = std::min(
          options.max_per_node,
          size_t(double(out.counts_[one_side]) * options.fanout));
      out.counts_[many_side] = std::max(out.counts_[many_side], scaled);
    }
  }

  // 2. Relationship instances, in declaration order (endpoints of
  //    higher-order relationships are populated first by stratification).
  for (const er::ErNode& node : diagram.nodes()) {
    if (!node.is_relationship()) continue;
    const er::Endpoint& e0 = node.endpoints[0];
    const er::Endpoint& e1 = node.endpoints[1];
    size_t n0 = out.counts_[e0.target];
    size_t n1 = out.counts_[e1.target];
    auto& pairs = out.rel_pairs_[node.id];
    if (n0 == 0 || n1 == 0) {
      out.counts_[node.id] = 0;
      continue;
    }

    auto participates = [&](const er::Endpoint& ep) {
      return ep.totality == er::Totality::kTotal ||
             rng.NextDouble() < options.partial_participation;
    };
    auto pick = [&](size_t n) {
      return static_cast<uint32_t>(rng.Zipf(n, options.zipf_theta));
    };

    if (e0.participation == er::Participation::kMany &&
        e1.participation == er::Participation::kOne) {
      // one e0 : many e1 — one relationship instance per participating e1.
      for (uint32_t b = 0; b < n1; ++b) {
        if (participates(e1)) pairs.push_back({pick(n0), b});
      }
    } else if (e1.participation == er::Participation::kMany &&
               e0.participation == er::Participation::kOne) {
      for (uint32_t a = 0; a < n0; ++a) {
        if (participates(e0)) pairs.push_back({a, pick(n1)});
      }
    } else if (e0.participation == er::Participation::kOne &&
               e1.participation == er::Participation::kOne) {
      // 1:1 — pair instance i with a shifted partner, up to the smaller
      // side.
      size_t n = std::min(n0, n1);
      uint32_t shift = static_cast<uint32_t>(rng.Uniform(n));
      for (uint32_t i = 0; i < n; ++i) {
        if (participates(e0)) {
          pairs.push_back({i, static_cast<uint32_t>((i + shift) % n)});
        }
      }
    } else {
      // M:N — fanout per instance of the larger side.
      size_t total = std::min(
          options.max_per_node,
          size_t(double(std::max(n0, n1)) * options.fanout));
      // Each endpoint instance participates at least once when total.
      for (uint32_t i = 0; i < total; ++i) {
        uint32_t a = e0.totality == er::Totality::kTotal && i < n0
                         ? i
                         : pick(n0);
        uint32_t b = e1.totality == er::Totality::kTotal && i < n1
                         ? i
                         : pick(n1);
        pairs.push_back({a, b});
      }
    }
    out.counts_[node.id] = pairs.size();
  }

  // 3. Adjacency: for each edge (rel, endpoint), endpoint instance ->
  //    relationship instances.
  for (const er::ErEdge& edge : graph.edges()) {
    auto& adj = out.adjacency_[edge.id];
    adj.assign(out.counts_[edge.node], {});
    const auto& pairs = out.rel_pairs_[edge.rel];
    for (uint32_t r = 0; r < pairs.size(); ++r) {
      uint32_t x = pairs[r][edge.endpoint_index];
      MCTDB_CHECK(x < adj.size());
      adj[x].push_back(r);
    }
  }
  return out;
}

}  // namespace mctdb::instance
