// Whole-store validation: structural invariants of the labeled forests and
// the instance-level inter-color integrity constraints (ICICs, §2.3).
//
// An ICIC on an ER edge realized in several colors demands that "in any
// valid database instance either the edge between the nodes u and v must be
// present in all colors, or it must be absent in all". At instance level we
// check, per constrained ER edge: all *complete* realizations (the
// maximal per-color pair sets) are identical, and every partial realization
// (a denormalized graft copy) asserts only pairs the complete ones hold.
#pragma once

#include <string>
#include <vector>

#include "storage/store.h"

namespace mctdb::storage {

struct ValidationReport {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  std::string ToString() const;
};

struct ValidateOptions {
  /// Cap on reported problems (validation keeps running to count, but
  /// stops recording).
  size_t max_problems = 32;
  /// Also verify every id/idref attribute resolves to an existing key of
  /// its target type.
  bool check_idrefs = true;
};

/// Validates label nesting, parent pointers, posting order, the key index,
/// ICIC consistency and (optionally) idref integrity.
ValidationReport ValidateStore(const MctStore& store,
                               const ValidateOptions& options = {});

}  // namespace mctdb::storage
