#include "storage/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/log.h"

namespace mctdb::storage {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'T', 'D', 'B', '2', '\n', '\0'};
constexpr char kMagicV1[8] = {'M', 'C', 'T', 'D', 'B', '1', '\n', '\0'};
constexpr uint64_t kHashSeed = 0xCBF29CE484222325ull;
/// Layout version of the "postidx" section (per-page posting summaries).
constexpr uint32_t kPostingIndexVersion = 1;

/// Incremental FNV-1a over a byte range, seedable for section chaining.
uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Minimal buffered binary writer over stdio. Every payload byte feeds a
/// running section hash; EndSection emits the hash (itself unhashed) so
/// the reader can verify each section independently. The failure seams
/// model a lying disk: FailWrites makes every write error out (detected,
/// -> IoError), LimitBytes silently drops everything past the limit
/// (UNdetected at save time — the checksums catch it at load).
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) {
    hash_ = HashBytes(hash_, data, n);
    Raw(data, n);
  }
  /// Writes the running section checksum and starts the next section.
  void EndSection() {
    uint64_t h = hash_;
    hash_ = kHashSeed;
    Raw(&h, sizeof(h));
  }
  void FailWrites() { fail_writes_ = true; }
  void LimitBytes(size_t limit) {
    limit_enabled_ = true;
    limit_ = limit;
  }
  bool ok() const { return ok_; }

 private:
  void Raw(const void* data, size_t n) {
    if (fail_writes_) {
      ok_ = false;
      return;
    }
    if (limit_enabled_) {
      size_t room = written_ < limit_ ? limit_ - written_ : 0;
      written_ += n;
      if (n > room) n = room;  // silently short: the disk lied
      if (n == 0) return;
    } else {
      written_ += n;
    }
    if (std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }

  std::FILE* f_;
  uint64_t hash_ = kHashSeed;
  size_t written_ = 0;
  size_t limit_ = 0;
  bool limit_enabled_ = false;
  bool fail_writes_ = false;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (n > (1u << 28)) {  // corrupt length guard
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    Bytes(s.data(), n);
    return s;
  }
  void Bytes(void* out, size_t n) {
    if (!ok_) return;
    if (!Raw(out, n)) return;
    hash_ = HashBytes(hash_, out, n);
  }
  /// Verifies the section checksum the writer emitted at this position.
  /// OK, or DataLoss naming the section on truncation/mismatch.
  Status CheckSection(const char* name) {
    uint64_t computed = hash_;
    hash_ = kHashSeed;
    uint64_t stored = 0;
    if (!ok_ || !Raw(&stored, sizeof(stored))) {
      return Status::DataLoss(std::string("truncated in section '") + name +
                              "'");
    }
    if (stored != computed) {
      return Status::DataLoss(std::string("section '") + name +
                              "' checksum mismatch");
    }
    return Status::OK();
  }
  /// Injected-truncation seam: reads past `limit` bytes behave as EOF.
  void LimitBytes(size_t limit) {
    limit_enabled_ = true;
    limit_ = limit;
  }
  bool ok() const { return ok_; }

 private:
  bool Raw(void* out, size_t n) {
    if (limit_enabled_ && read_ + n > limit_) {
      ok_ = false;
      return false;
    }
    read_ += n;
    if (std::fread(out, 1, n, f_) != n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::FILE* f_;
  uint64_t hash_ = kHashSeed;
  size_t read_ = 0;
  size_t limit_ = 0;
  bool limit_enabled_ = false;
  bool ok_ = true;
};

}  // namespace

uint64_t SchemaFingerprint(const mct::MctSchema& schema) {
  uint64_t h = Hash64(schema.name());
  h = HashCombine(h, schema.num_colors());
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    h = HashCombine(h, Hash64(uint64_t(o.er_node)));
    h = HashCombine(h, Hash64(uint64_t(o.color)));
    h = HashCombine(h, Hash64(uint64_t(o.parent)));
    h = HashCombine(h, Hash64(uint64_t(o.via_edge)));
  }
  for (const mct::RefEdge& r : schema.ref_edges()) {
    h = HashCombine(h, Hash64(r.attr_name));
    h = HashCombine(h, Hash64(uint64_t(r.from)));
  }
  return h;
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? std::string(".")
                                               : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory for sync: " + dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("directory fsync failed: " + dir);
  return Status::OK();
}

Status SaveStore(const MctStore& store, const std::string& path, bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Writer w(f);
  int injected_errno = 0;
  switch (MCTDB_FAILPOINT("persist.save")) {
    case failpoint::Fault::kError:
      // Every write errors out, as on a full or failing disk.
      w.FailWrites();
      break;
    case failpoint::Fault::kEnospc:
      // Same detected-failure shape, but errno-faithful: the caller sees
      // the exact status a real full disk would produce.
      w.FailWrites();
      injected_errno = ENOSPC;
      break;
    case failpoint::Fault::kEio:
      w.FailWrites();
      injected_errno = EIO;
      break;
    case failpoint::Fault::kTruncate:
      // The disk accepts 4 KB then silently drops the rest; Save reports
      // success and only the load-time checksums expose the loss.
      w.LimitBytes(4096);
      break;
    case failpoint::Fault::kNone:
      break;
  }
  w.Bytes(kMagic, sizeof(kMagic));
  w.U64(SchemaFingerprint(*store.schema_));
  w.EndSection();

  // Pages.
  w.U32(static_cast<uint32_t>(store.pager_.num_pages()));
  for (PageId p = 0; p < store.pager_.num_pages(); ++p) {
    w.Bytes(store.pager_.RawPage(p), kPageSize);
  }
  w.EndSection();
  // Elements.
  w.U32(static_cast<uint32_t>(store.elements_.size()));
  for (const ElementMeta& m : store.elements_) {
    w.U32(m.er_node);
    w.U32(m.logical);
    w.U32(m.is_copy ? 1 : 0);
  }
  w.EndSection();
  // Attrs.
  for (const auto& list : store.attrs_) {
    w.U32(static_cast<uint32_t>(list.size()));
    for (const AttrRecord& a : list) {
      w.U32(a.name_id);
      w.U32(a.value_id);
      w.U32(a.has_content ? 1 : 0);
    }
  }
  w.EndSection();
  // Dictionaries.
  w.U32(static_cast<uint32_t>(store.attr_names_.size()));
  for (const std::string& s : store.attr_names_) w.Str(s);
  w.U32(static_cast<uint32_t>(store.values_.size()));
  for (const std::string& s : store.values_) w.Str(s);
  w.EndSection();
  // Labels and parents per color.
  w.U32(static_cast<uint32_t>(store.labels_.size()));
  for (size_t c = 0; c < store.labels_.size(); ++c) {
    w.U32(static_cast<uint32_t>(store.labels_[c].size()));
    for (const auto& [elem, label] : store.labels_[c]) {
      w.Bytes(&label, sizeof(label));
    }
    w.U32(static_cast<uint32_t>(store.parents_[c].size()));
    for (const auto& [elem, parent] : store.parents_[c]) {
      w.U32(elem);
      w.U32(parent);
    }
  }
  w.EndSection();
  // Postings.
  for (size_t c = 0; c < store.postings_.size(); ++c) {
    for (size_t tag = 0; tag < store.postings_[c].size(); ++tag) {
      const auto& meta = store.postings_[c][tag];
      if (meta == nullptr) {
        w.U32(0xFFFFFFFFu);
        continue;
      }
      w.U32(static_cast<uint32_t>(meta->count));
      w.U32(static_cast<uint32_t>(meta->pages.size()));
      for (PageId p : meta->pages) w.U32(p);
    }
  }
  w.EndSection();
  // Posting interval index: per-(color, tag) page summaries (first start,
  // max end) behind the cursors' index-assisted seeks. Versioned and
  // checksummed as its own section so index damage is isolated from the
  // posting data itself.
  w.U32(kPostingIndexVersion);
  for (size_t c = 0; c < store.postings_.size(); ++c) {
    for (size_t tag = 0; tag < store.postings_[c].size(); ++tag) {
      const auto& meta = store.postings_[c][tag];
      if (meta == nullptr) continue;
      w.U32(static_cast<uint32_t>(meta->summaries.size()));
      for (const PostingPageSummary& s : meta->summaries) {
        w.U32(s.first_start);
        w.U32(s.max_end);
      }
    }
  }
  w.EndSection();
  // Counters.
  w.U64(store.num_attribute_nodes_);
  w.U64(store.num_content_nodes_);
  w.EndSection();

  bool ok = w.ok();
  if (ok && sync) {
    if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) ok = false;
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    if (injected_errno != 0) {
      return Status::IoError("write failed: " + path + ": " +
                             std::strerror(injected_errno));
    }
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<MctStore>> LoadStore(const mct::MctSchema& schema,
                                            const std::string& path,
                                            const StoreOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Reader r(f);
  // Malformed input (wrong file / wrong schema): the caller's mistake.
  auto bad = [&](const std::string& msg) -> Status {
    std::fclose(f);
    return Status::InvalidArgument(path + ": " + msg);
  };
  // Bytes missing or flipped: the file was right once and is damaged now.
  auto lost = [&](const std::string& msg) -> Status {
    std::fclose(f);
    return Status::DataLoss(path + ": " + msg);
  };
  auto check_section = [&](const char* name) -> Status {
    Status s = r.CheckSection(name);
    if (!s.ok()) {
      std::fclose(f);
      return Status::DataLoss(path + ": " + s.message());
    }
    return Status::OK();
  };
  switch (MCTDB_FAILPOINT("persist.load")) {
    case failpoint::Fault::kTruncate: {
      // Read the file as if it were cut in half; exercises the same
      // truncation handling a real short file hits.
      std::fseek(f, 0, SEEK_END);
      long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      r.LimitBytes(size > 0 ? static_cast<size_t>(size) / 2 : 0);
      break;
    }
    case failpoint::Fault::kError:
      return lost("injected load fault");
    case failpoint::Fault::kEnospc:
      return lost(std::string("read failed: ") + std::strerror(ENOSPC));
    case failpoint::Fault::kEio:
      return lost(std::string("read failed: ") + std::strerror(EIO));
    case failpoint::Fault::kNone:
      break;
  }

  char magic[8];
  r.Bytes(magic, sizeof(magic));
  if (!r.ok()) return bad("bad magic (file too short)");
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    return bad("format version 1 is no longer supported; re-save the store");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return bad("bad magic");
  }
  if (r.U64() != SchemaFingerprint(schema)) {
    if (!r.ok()) return lost("truncated header");
    return bad("schema fingerprint mismatch");
  }
  MCTDB_RETURN_IF_ERROR(check_section("header"));

  std::unique_ptr<MctStore> store(new MctStore());
  store->schema_ = &schema;

  uint32_t num_pages = r.U32();
  if (!r.ok() || num_pages > (1u << 24)) return lost("bad page count");
  char page[kPageSize];
  for (uint32_t p = 0; p < num_pages; ++p) {
    r.Bytes(page, kPageSize);
    if (!r.ok()) return lost("truncated pages");
    PageId id = store->pager_.Allocate();
    store->pager_.Write(id, page);
  }
  MCTDB_RETURN_IF_ERROR(check_section("pages"));

  uint32_t num_elements = r.U32();
  if (!r.ok() || num_elements > (1u << 28)) {
    return lost("bad element count");
  }
  store->key_index_.resize(schema.diagram().num_nodes());
  for (uint32_t i = 0; i < num_elements; ++i) {
    ElementMeta m;
    m.er_node = r.U32();
    m.logical = r.U32();
    m.is_copy = r.U32() != 0;
    if (!r.ok()) return lost("truncated elements");
    if (m.er_node >= schema.diagram().num_nodes()) {
      return lost("bad element record");
    }
    store->key_index_[m.er_node][m.logical].push_back(i);
    store->elements_.push_back(m);
  }
  MCTDB_RETURN_IF_ERROR(check_section("elements"));

  for (uint32_t i = 0; i < num_elements; ++i) {
    uint32_t n = r.U32();
    if (!r.ok() || n > (1u << 20)) return lost("bad attr list");
    std::vector<AttrRecord> recs(n);
    for (uint32_t a = 0; a < n; ++a) {
      recs[a].name_id = r.U32();
      recs[a].value_id = r.U32();
      recs[a].has_content = r.U32() != 0;
    }
    if (!r.ok()) return lost("truncated attrs");
    store->attrs_.push_back(std::move(recs));
  }
  MCTDB_RETURN_IF_ERROR(check_section("attrs"));

  uint32_t num_names = r.U32();
  if (!r.ok() || num_names > (1u << 26)) return lost("bad name count");
  for (uint32_t i = 0; i < num_names; ++i) {
    store->attr_names_.push_back(r.Str());
    store->attr_name_index_.emplace(store->attr_names_.back(), i);
  }
  uint32_t num_values = r.U32();
  if (!r.ok() || num_values > (1u << 26)) return lost("bad value count");
  for (uint32_t i = 0; i < num_values; ++i) {
    store->values_.push_back(r.Str());
    store->value_index_.emplace(store->values_.back(), i);
  }
  if (!r.ok()) return lost("truncated dictionaries");
  MCTDB_RETURN_IF_ERROR(check_section("dicts"));

  uint32_t num_colors = r.U32();
  if (!r.ok()) return lost("truncated colors");
  if (num_colors != schema.num_colors()) return bad("color count mismatch");
  store->labels_.resize(num_colors);
  store->parents_.resize(num_colors);
  for (uint32_t c = 0; c < num_colors; ++c) {
    uint32_t n = r.U32();
    if (!r.ok() || n > num_elements) return lost("bad label count");
    for (uint32_t i = 0; i < n; ++i) {
      LabelEntry label;
      r.Bytes(&label, sizeof(label));
      if (!r.ok() || label.elem >= num_elements) return lost("bad label");
      store->labels_[c][label.elem] = label;
    }
    uint32_t np = r.U32();
    if (!r.ok() || np > num_elements) return lost("bad parent count");
    for (uint32_t i = 0; i < np; ++i) {
      uint32_t elem = r.U32();
      uint32_t parent = r.U32();
      if (!r.ok() || elem >= num_elements) return lost("bad parent");
      store->parents_[c][elem] = parent;
    }
  }
  MCTDB_RETURN_IF_ERROR(check_section("labels"));

  store->postings_.resize(num_colors);
  for (uint32_t c = 0; c < num_colors; ++c) {
    store->postings_[c].resize(schema.diagram().num_nodes());
    for (size_t tag = 0; tag < store->postings_[c].size(); ++tag) {
      uint32_t count = r.U32();
      if (count == 0xFFFFFFFFu) continue;
      auto meta = std::make_unique<PostingMeta>();
      meta->count = count;
      uint32_t pages = r.U32();
      if (!r.ok() || pages > num_pages) return lost("bad posting meta");
      if (uint64_t{count} > uint64_t{pages} * kEntriesPerPage) {
        return lost("posting count exceeds its pages");
      }
      for (uint32_t p = 0; p < pages; ++p) {
        uint32_t id = r.U32();
        if (!r.ok()) return lost("truncated postings");
        if (id >= num_pages) return lost("posting page out of range");
        meta->pages.push_back(id);
      }
      store->postings_[c][tag] = std::move(meta);
    }
  }
  MCTDB_RETURN_IF_ERROR(check_section("postings"));

  uint32_t index_version = r.U32();
  if (!r.ok()) return lost("truncated posting index");
  if (index_version != kPostingIndexVersion) {
    return bad("unsupported posting index version");
  }
  for (uint32_t c = 0; c < num_colors; ++c) {
    for (size_t tag = 0; tag < store->postings_[c].size(); ++tag) {
      PostingMeta* meta = store->postings_[c][tag].get();
      if (meta == nullptr) continue;
      uint32_t n = r.U32();
      if (!r.ok()) return lost("truncated posting index");
      if (n != meta->pages.size()) {
        return lost("posting index size mismatch");
      }
      meta->summaries.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        meta->summaries[i].first_start = r.U32();
        meta->summaries[i].max_end = r.U32();
        if (!r.ok()) return lost("truncated posting index");
      }
    }
  }
  MCTDB_RETURN_IF_ERROR(check_section("postidx"));

  store->num_attribute_nodes_ = r.U64();
  store->num_content_nodes_ = r.U64();
  if (!r.ok()) return lost("truncated trailer");
  MCTDB_RETURN_IF_ERROR(check_section("counters"));
  std::fclose(f);

  store->pool_ = std::make_unique<BufferPool>(&store->pager_,
                                              options.buffer_pool_pages);
  return store;
}

Result<std::unique_ptr<MctStore>> LoadStoreWithRetry(
    const mct::MctSchema& schema, const std::string& path,
    const StoreOptions& options, const RetryPolicy& policy,
    uint64_t* retries) {
  std::chrono::microseconds backoff = policy.initial_backoff;
  Result<std::unique_ptr<MctStore>> result = LoadStore(schema, path, options);
  for (int attempt = 1;
       attempt < policy.max_attempts && !result.ok() &&
       IsRetryable(result.status());
       ++attempt) {
    MCTDB_LOG(kWarn, "persist", "load failed, retrying",
              {{"path", path},
               {"attempt", int64_t{attempt}},
               {"status", result.status().ToString()}});
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    auto next = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * policy.multiplier));
    backoff = next < policy.max_backoff ? next : policy.max_backoff;
    if (retries != nullptr) ++*retries;
    result = LoadStore(schema, path, options);
  }
  return result;
}

}  // namespace mctdb::storage
