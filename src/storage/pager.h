// Page-level storage: a pager (the "disk") and an LRU buffer pool, modeled
// on the TIMBER setup the paper measured on (8 KB data pages, bounded
// buffer pool). Queries read posting pages strictly through the buffer
// pool, so page-miss counts and cache behavior are real, not simulated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/retry.h"
#include "common/status.h"

namespace mctdb::storage {

inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// The backing store. Allocation and writes happen at load time (single
/// threaded); reads are counted as disk I/O (they are served from a
/// separate heap area and copied, so the buffer pool is the only fast
/// path) and are safe to issue from many threads concurrently.
///
/// Every Write records a 64-bit page checksum (common/hash.h PageChecksum)
/// which Read verifies after the copy; a mismatch — real corruption via
/// CorruptForTest, or an injected "pager.read" fault — is retried per the
/// retry policy and surfaces as Status::DataLoss only once the attempts
/// are exhausted. disk_reads() counts calls, not attempts; retries() and
/// checksum_failures() expose the recovery activity for /metrics.
class Pager {
 public:
  /// Allocates a zeroed page.
  PageId Allocate();
  /// Overwrites a full page.
  void Write(PageId id, const char* data);
  /// Copies a page out and verifies its checksum, retrying transient
  /// failures with backoff. Counted as one disk read regardless of
  /// attempts. Thread-safe.
  [[nodiscard]] Status Read(PageId id, char* out) const;
  /// Test/bench seam: `hook` runs at the top of every read attempt with
  /// the page id, outside any pool lock — a hook that blocks models a slow
  /// disk. Must be installed while no Read is in flight (enforced by a
  /// fatal check against the in-flight reader count); installs are not
  /// otherwise synchronized with readers, so "install, then start reader
  /// threads" is the only supported order. The "pager.read" failpoint runs
  /// through the same seam, so fault injection needs no hook races either.
  void SetReadHook(std::function<void(PageId)> hook);
  /// Raw page bytes for persistence (not counted as query I/O).
  const char* RawPage(PageId id) const { return pages_[id].get(); }

  /// Checksum recorded for `id` at the last Write/Allocate (for persist).
  uint64_t PageChecksumValue(PageId id) const { return checksums_[id]; }

  /// Test seam: flip one stored byte *without* updating the recorded
  /// checksum, so every subsequent read of `id` fails verification until
  /// the page is rewritten.
  void CorruptForTest(PageId id, size_t offset);
  /// Repair seam for quarantine tests: restore the recorded checksum to
  /// match the current page bytes (as if the page had been rewritten).
  void RepairForTest(PageId id);

  /// Replaces the read retry policy (default: RetryPolicy::FromEnv()).
  /// Like SetReadHook, only valid while no Read is in flight.
  void SetRetryPolicy(const RetryPolicy& policy);

  size_t num_pages() const { return pages_.size(); }
  size_t bytes() const { return pages_.size() * kPageSize; }
  uint64_t disk_reads() const {
    return disk_reads_.load(std::memory_order_relaxed);
  }
  uint64_t disk_writes() const {
    return disk_writes_.load(std::memory_order_relaxed);
  }
  /// Reads whose checksum verification failed at least once.
  uint64_t checksum_failures() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }
  /// Extra read attempts made beyond the first, across all Reads.
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  /// One read attempt: hook, failpoint, copy, verify.
  Status ReadAttempt(PageId id, char* out) const;

  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<uint64_t> checksums_;
  std::function<void(PageId)> read_hook_;
  RetryPolicy retry_policy_ = RetryPolicy::FromEnv();
  mutable std::atomic<uint64_t> disk_reads_{0};
  std::atomic<uint64_t> disk_writes_{0};
  mutable std::atomic<uint64_t> checksum_failures_{0};
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<int> reads_in_flight_{0};
};

/// Page-cache interface shared by the single-threaded BufferPool and the
/// concurrent ShardedBufferPool. Fetch pins the frame; pinning caches keep
/// it valid until the matching Unpin, single-threaded caches may no-op
/// Unpin and only guarantee validity until the next Fetch. Every cache
/// maintains hits() + misses() == total fetches.
///
/// Attribution contract: every Fetch reports whether it missed via
/// `out_miss`, so the *fetching* caller can charge the I/O to itself (see
/// obs::ExecStats). The pool-global hits()/misses() counters aggregate
/// all callers and must never be diffed to derive a single query's cost —
/// on a shared pool, concurrent queries would bill each other.
class PageCache {
 public:
  virtual ~PageCache() = default;
  /// Points `*out_frame` at the cached frame for `id`, faulting it in if
  /// needed, and sets `*out_miss` to whether this fetch went to the pager.
  /// On a non-OK Status (DataLoss after the pool's quarantine re-read
  /// failed too) no pin is taken and *out_frame is unchanged.
  /// [[nodiscard]] on success semantics: Fetch takes a pin; dropping the
  /// frame pointer leaks the pin (the frame is never unpinnable again by
  /// this caller).
  [[nodiscard]] virtual Status Fetch(PageId id, const char** out_frame,
                                     bool* out_miss) = 0;
  /// Convenience overloads for callers on storage they trust to be
  /// healthy (loaders, benches, single-threaded tools): abort on a fetch
  /// error rather than plumbing Status. Query-path callers use the
  /// Status-returning form so corruption degrades to a failed query, not
  /// a crashed process.
  [[nodiscard]] const char* Fetch(PageId id, bool* out_miss) {
    const char* frame = nullptr;
    Status s = Fetch(id, &frame, out_miss);
    MCTDB_CHECK_MSG(s.ok(), s.ToString().c_str());
    return frame;
  }
  [[nodiscard]] const char* Fetch(PageId id) {
    bool miss = false;
    return Fetch(id, &miss);
  }
  /// Releases one pin taken by Fetch for `id`.
  virtual void Unpin(PageId id) = 0;
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
};

/// Fixed-capacity LRU page cache over a Pager. Single-threaded: the query
/// path of one session must not share it with another thread (the
/// concurrent path uses ShardedBufferPool, see sharded_pool.h).
class BufferPool : public PageCache {
 public:
  BufferPool(const Pager* pager, size_t capacity_pages)
      : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  using PageCache::Fetch;
  /// Points *out_frame at the cached frame for `id`, faulting it in (and
  /// evicting the least recently used frame) if needed. The pointer is
  /// valid until the next Fetch. A read failure leaves the pool without a
  /// frame for `id` (nothing to quarantine) and returns the pager's
  /// Status.
  [[nodiscard]] Status Fetch(PageId id, const char** out_frame,
                             bool* out_miss) override;
  void Unpin(PageId) override {}

  uint64_t hits() const override { return hits_; }
  uint64_t misses() const override { return misses_; }
  size_t resident() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    std::list<PageId>::iterator lru_pos;
  };

  const Pager* pager_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mctdb::storage
