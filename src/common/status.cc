#include "common/status.h"

#include <atomic>

namespace mctdb {

namespace {

std::atomic<StatusEscalationObserver> g_escalation_observer{nullptr};

}  // namespace

void SetStatusEscalationObserver(StatusEscalationObserver observer) {
  g_escalation_observer.store(observer, std::memory_order_release);
}

namespace internal {

void NotifyStatusEscalation(int code) {
  StatusEscalationObserver obs =
      g_escalation_observer.load(std::memory_order_acquire);
  if (obs != nullptr) obs(code);
}

}  // namespace internal

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kConstraintViolation:
      return "ConstraintViolation";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kDataLoss:
      return "DataLoss";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mctdb
