# Empty compiler generated dependencies file for mctdb_instance.
# This may be replaced when dependencies are built.
