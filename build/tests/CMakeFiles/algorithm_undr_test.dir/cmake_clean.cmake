file(REMOVE_RECURSE
  "CMakeFiles/algorithm_undr_test.dir/algorithm_undr_test.cc.o"
  "CMakeFiles/algorithm_undr_test.dir/algorithm_undr_test.cc.o.d"
  "algorithm_undr_test"
  "algorithm_undr_test.pdb"
  "algorithm_undr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_undr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
