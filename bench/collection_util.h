// Shared driver for the ER-collection gmean benches (Figs 12-14): builds
// the twelve-diagram workload collection, analyzes it under the six
// paper strategies, prints the grid, and optionally emits a JSON report
// (one record per (strategy, diagram) cell with the metric as an extra).
#pragma once

#include <string>

#include "bench/bench_util.h"
#include "bench/report.h"
#include "er/er_catalog.h"
#include "workload/metrics.h"

namespace mctdb::bench {

inline std::vector<workload::Workload> CollectionWorkloads() {
  std::vector<workload::Workload> out;
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    if (d.name() == "Derby") {
      out.push_back(workload::DerbyWorkload());
    } else if (d.name() == "TPC-W") {
      out.push_back(workload::TpcwWorkload(0.01));
    } else {
      out.push_back(workload::XmarkEmulatedWorkload(d));
    }
  }
  return out;
}

inline const std::vector<design::Strategy>& CollectionStrategies() {
  static const std::vector<design::Strategy>* strategies =
      new std::vector<design::Strategy>{
          design::Strategy::kDeep, design::Strategy::kAf,
          design::Strategy::kShallow, design::Strategy::kEn,
          design::Strategy::kMcmr, design::Strategy::kDr};
  return *strategies;
}

template <typename Metric>
int RunCollectionBench(const char* bench_name, const char* title,
                       const char* metric_name, Metric metric,
                       const std::string& json_path) {
  const std::vector<design::Strategy>& strategies = CollectionStrategies();
  std::printf("%s\n\n%-8s", title, "");
  for (design::Strategy s : strategies) {
    std::printf("%9s", design::ToString(s));
  }
  std::printf("\n");
  PrintRule(8 + 9 * strategies.size());
  auto cells = workload::AnalyzeCollection(CollectionWorkloads(), strategies);
  JsonReporter reporter(bench_name, 0.01);
  size_t per_row = strategies.size();
  for (size_t i = 0; i < cells.size(); i += per_row) {
    std::printf("%-8s", cells[i].diagram.c_str());
    for (size_t j = 0; j < per_row; ++j) {
      double value = metric(cells[i + j]);
      std::printf("%9.2f", value);
      reporter.Add(design::ToString(strategies[j]), cells[i].diagram)
          .Extra(metric_name, value);
    }
    std::printf("\n");
  }
  if (!json_path.empty()) {
    Status status = reporter.WriteTo(json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace mctdb::bench
