# Empty dependencies file for xml_design_test.
# This may be replaced when dependencies are built.
