#include "wal/recovery.h"

#include <unistd.h>

#include <cstdio>

#include "common/failpoint.h"
#include "storage/store.h"
#include "storage/update_ops.h"
#include "wal/log_reader.h"
#include "wal/wal_format.h"

namespace mctdb::wal {

namespace {

/// Truncate `path` to `size` bytes (cutting a torn tail, or resetting to a
/// fresh header when the header itself was unreadable).
Status TruncateFile(const std::string& path, uint64_t size,
                    const std::string& fresh_header) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError("wal: tail truncate failed: " + path);
  }
  if (size == 0 && !fresh_header.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(fresh_header.data(), 1, fresh_header.size(), f) !=
            fresh_header.size()) {
      if (f != nullptr) std::fclose(f);
      return Status::IoError("wal: header rewrite failed: " + path);
    }
    std::fclose(f);
  }
  return Status::OK();
}

}  // namespace

Result<RecoveryStats> RecoverLog(const std::string& wal_path,
                                 uint64_t fingerprint,
                                 storage::MctStore* store) {
  RecoveryStats stats;
  Result<LogScan> scan_or = ScanLog(wal_path, fingerprint);
  if (!scan_or.ok()) {
    if (scan_or.status().IsNotFound()) return stats;  // no log: fresh store
    return scan_or.status();
  }
  const LogScan& scan = scan_or.value();
  if (!scan.header_valid) {
    // The log died before its first fsynced header. The checkpoint
    // protocol renames the store image BEFORE resetting the log, so a
    // log in this state cannot hold updates the store image lacks —
    // reset it to a fresh header and carry on.
    std::string header;
    EncodeWalHeader({fingerprint, kNoLsn}, &header);
    MCTDB_RETURN_IF_ERROR(TruncateFile(wal_path, 0, header));
    stats.log_reset = true;
    stats.truncated_bytes = scan.file_bytes;
    return stats;
  }
  for (const WalRecord& rec : scan.records) {
    ++stats.scanned_records;
    if (rec.lsn <= scan.header.checkpoint_lsn) {
      ++stats.skipped_records;
      continue;
    }
    if (rec.type != RecordType::kUpdateOp) {
      return Status::Corruption("wal: unknown record type during replay");
    }
    MCTDB_ASSIGN_OR_RETURN(storage::UpdateOp op,
                           storage::DecodeUpdateOp(rec.payload));
    Result<storage::ApplyStats> applied =
        storage::ApplyUpdateOp(store, op, rec.lsn);
    if (applied.ok()) {
      ++stats.replayed_records;
    } else if (applied.status().IsAlreadyExists() ||
               applied.status().IsNotFound()) {
      // Already reflected in the checkpoint image (the checkpoint crash
      // window) — idempotent skip.
      ++stats.skipped_records;
    } else if (applied.status().IsNotSupported() ||
               applied.status().IsInvalidArgument() ||
               applied.status().IsResourceExhausted()) {
      // The op failed the same deterministic way it failed live (it was
      // logged before application was attempted); a no-op then, a no-op
      // now.
      ++stats.skipped_records;
    } else {
      return applied.status();
    }
  }
  if (scan.torn()) {
    switch (MCTDB_FAILPOINT("wal.recover.truncate")) {
      case failpoint::Fault::kError:
        return Status::IoError("wal: injected recovery truncate fault");
      default:
        break;
    }
    MCTDB_RETURN_IF_ERROR(TruncateFile(wal_path, scan.valid_bytes, ""));
    stats.truncated_bytes = scan.file_bytes - scan.valid_bytes;
  }
  stats.last_lsn = scan.last_lsn;
  store->PublishVisibleLsn(stats.last_lsn);
  return stats;
}

}  // namespace mctdb::wal
