#include "bench/report.h"

#include <gtest/gtest.h>

#include <string>

namespace mctdb::bench {
namespace {

BenchReport SampleReport() {
  BenchReport r;
  r.bench = "table1";
  r.scale = 0.1;
  r.reps = 3;
  QueryRecord q1;
  q1.schema = "EN";
  q1.query = "Q1";
  q1.median_seconds = 0.010;
  q1.page_hits = 100;
  q1.page_misses = 10;
  q1.join_pairs = 500;
  q1.reps = 3;
  q1.Extra("unique_results", 42);
  r.records.push_back(q1);
  QueryRecord q2 = q1;
  q2.schema = "DEEP";
  q2.median_seconds = 0.002;
  r.records.push_back(q2);
  return r;
}

TEST(BenchReportTest, JsonRoundTrips) {
  BenchReport original = SampleReport();
  auto parsed = ParseBenchReport(original.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "table1");
  EXPECT_DOUBLE_EQ(parsed->scale, 0.1);
  EXPECT_EQ(parsed->reps, 3u);
  ASSERT_EQ(parsed->records.size(), 2u);
  const QueryRecord* rec = parsed->Find("EN", "Q1");
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->median_seconds, 0.010);
  EXPECT_EQ(rec->page_hits, 100u);
  EXPECT_EQ(rec->page_misses, 10u);
  EXPECT_EQ(rec->join_pairs, 500u);
  ASSERT_EQ(rec->extra.size(), 1u);
  EXPECT_EQ(rec->extra[0].first, "unique_results");
  EXPECT_DOUBLE_EQ(rec->extra[0].second, 42.0);
}

TEST(BenchReportTest, CombinedDocumentParsesPerBench) {
  BenchReport a = SampleReport();
  BenchReport b = SampleReport();
  b.bench = "figures";
  std::string combined = CombineReports({a, b});
  EXPECT_NE(combined.find("\"benches\""), std::string::npos);
  EXPECT_NE(combined.find("\"figures\""), std::string::npos);
}

TEST(BenchReportTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseBenchReport("not json").ok());
  EXPECT_FALSE(ParseBenchReport("{\"records\":3}").ok());
  EXPECT_FALSE(ParseBenchReport("[]").ok());
}

TEST(BenchGateTest, IdenticalReportPasses) {
  BenchReport r = SampleReport();
  CheckResult verdict = CheckAgainstBaseline(r, r, {});
  EXPECT_TRUE(verdict.ok()) << verdict.regressions.front();
}

TEST(BenchGateTest, TimingRegressionBeyondToleranceAndFloorFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  // 0.010s -> 0.030s: 3x the baseline and +20ms absolute.
  current.records[0].median_seconds = 0.030;
  CheckOptions options;
  options.tolerance = 0.25;
  options.min_abs_seconds = 0.005;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, options);
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.regressions[0].find("Q1"), std::string::npos);
}

TEST(BenchGateTest, TinyAbsoluteGrowthIsIgnored) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  // 0.002s -> 0.004s on DEEP: 2x relative but only +2ms, below the 5ms
  // floor — sub-millisecond medians must not flap the gate.
  current.records[1].median_seconds = 0.004;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_TRUE(verdict.ok())
      << (verdict.regressions.empty() ? "" : verdict.regressions.front());
}

TEST(BenchGateTest, LargeRelativeGrowthWithinTolerancePasses) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records[0].median_seconds = 0.012;  // +20% under 25% tolerance
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_TRUE(verdict.ok());
}

TEST(BenchGateTest, DeterministicCounterIncreaseFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records[0].page_misses = 11;  // any increase is algorithmic
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.regressions[0].find("page_misses"), std::string::npos);
}

TEST(BenchGateTest, ExtraCounterIncreaseFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records[0].extra[0].second = 43;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.regressions[0].find("unique_results"),
            std::string::npos);
}

TEST(BenchGateTest, CounterDecreaseIsANoteNotARegression) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records[0].join_pairs = 400;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.notes.empty());
}

TEST(BenchGateTest, GateCountersOffDowngradesToNote) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records[0].page_misses = 99;
  CheckOptions options;
  options.gate_counters = false;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, options);
  EXPECT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.notes.empty());
}

TEST(BenchGateTest, MissingRecordFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.records.pop_back();
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  ASSERT_FALSE(verdict.ok());
  EXPECT_NE(verdict.regressions[0].find("DEEP"), std::string::npos);
}

TEST(BenchGateTest, NewRecordIsANote) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  QueryRecord extra = current.records[0];
  extra.schema = "UNDR";
  current.records.push_back(extra);
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.notes.empty());
}

TEST(BenchGateTest, ScaleMismatchFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.scale = 1.0;
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_FALSE(verdict.ok());
}

TEST(BenchGateTest, BenchNameMismatchFails) {
  BenchReport baseline = SampleReport();
  BenchReport current = baseline;
  current.bench = "figures";
  CheckResult verdict = CheckAgainstBaseline(current, baseline, {});
  EXPECT_FALSE(verdict.ok());
}

}  // namespace
}  // namespace mctdb::bench
