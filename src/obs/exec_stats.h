// Query observability: per-query execution statistics and a span tree.
//
// ExecStats is the executor-owned attribution context for ONE query. Page
// I/O is charged at the point of the fetch — PostingCursor reports every
// pool fetch (and whether it missed) into the stats of the query driving
// the cursor — so hit/miss counts are exact per query even when many
// sessions share one buffer pool. This replaces the old scheme of diffing
// pool-global counters around Execute, which silently billed concurrent
// queries for each other's I/O.
//
// On top of the counters, ExecStats records a tree of stage spans (tag
// scan, cross-color re-anchor, structural join, value join, backward
// reduction, ...) with elapsed time, input/output cardinalities,
// structural-join pair counts, and the page fetches charged while the
// span was innermost. The tree rides along in query::ExecResult; see
// obs/trace_export.h for text/JSON rendering.
//
// ExecStats is single-threaded by design: one query, one executor, one
// stats context. Cross-query aggregation happens in the service layer.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mctdb::obs {

/// The execution stages a span can describe. kQuery is the root span of
/// every trace; the rest mirror the executor's operators.
enum class StageKind : uint8_t {
  kQuery,              ///< whole-query root span
  kTagScan,            ///< posting-list scan of one (color, tag)
  kCrossColor,         ///< logical-identity re-anchor into another color
  kStructuralJoin,     ///< stack-tree join segment (a-d or step chain)
  kValueJoin,          ///< id/idref hash join segment
  kPredicateFilter,    ///< attribute predicate applied to a binding
  kBackwardReduction,  ///< filter-branch semi-join back up the segments
  kDupElim,            ///< duplicate elimination over the output binding
  kGroupBy,            ///< group-by aggregation
  kUpdate,             ///< update application incl. ICIC color touches
  kWal,                ///< WAL append + group-commit fsync wait
};
inline constexpr size_t kNumStageKinds = 11;

const char* ToString(StageKind kind);

/// One node of the trace tree. Page counts are *self* counts (fetches
/// charged while this span was innermost); elapsed time and cardinalities
/// are inclusive of children, as wall clock naturally is.
struct Span {
  StageKind kind = StageKind::kQuery;
  std::string label;
  /// Correlation key of the request this span belongs to (0 = untraced);
  /// every span in one tree carries the same id (see obs/trace_id.h).
  uint64_t trace_id = 0;
  /// CLOCK_MONOTONIC at BeginSpan, for cross-subsystem ordering against
  /// flight-recorder events and sibling traces.
  uint64_t start_nanos = 0;
  double elapsed_seconds = 0.0;
  uint64_t cardinality_in = 0;
  uint64_t cardinality_out = 0;
  uint64_t join_pairs = 0;
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;
  std::vector<Span> children;

  /// Inclusive page counts: self plus the whole subtree.
  uint64_t total_page_hits() const;
  uint64_t total_page_misses() const;
};

/// Per-stage rollup of a span tree. `seconds` is self time (elapsed minus
/// the children's elapsed), so the rows sum to the root's elapsed instead
/// of double-counting nested stages.
struct StageAgg {
  double seconds = 0.0;
  uint64_t calls = 0;
  uint64_t cardinality_out = 0;
  uint64_t join_pairs = 0;
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;
};
using StageTable = std::array<StageAgg, kNumStageKinds>;

/// Aggregates the tree under `root` (inclusive) into per-kind self-time
/// rows.
StageTable AggregateByStage(const Span& root);

/// The attribution context the executor threads through its operators and
/// posting cursors. Spans obey strict stack discipline: Begin/End pairs
/// nest, and page fetches are charged to the innermost open span (plus the
/// query totals).
class ExecStats {
 public:
  /// Opens the root kQuery span, labeled with the query name.
  explicit ExecStats(std::string query_label);

  ExecStats(const ExecStats&) = delete;
  ExecStats& operator=(const ExecStats&) = delete;

  /// Charges one pool fetch to this query (and the innermost open span).
  /// Called by PostingCursor on every page touch.
  void OnPageFetch(bool miss);

  /// Records one index-assisted seek: a posting cursor consulted the
  /// per-page interval summaries and jumped over at least one page
  /// without fetching it (front seek, mid-scan skip, or tail cut).
  void OnIndexSeek() { ++index_seeks_; }

  uint64_t page_hits() const { return page_hits_; }
  uint64_t page_misses() const { return page_misses_; }
  uint64_t join_pairs() const { return join_pairs_; }
  uint64_t index_seeks() const { return index_seeks_; }

  /// The TraceId captured from the calling thread at construction (0 when
  /// the query ran outside any traced request).
  uint64_t trace_id() const { return trace_id_; }

  /// Opens a child span of the innermost open span. Returns the node; the
  /// pointer stays valid until the span's EndSpan (stack discipline
  /// guarantees no sibling is appended while it is open).
  Span* BeginSpan(StageKind kind, std::string label);
  /// Closes the innermost open span, stamping its elapsed time.
  void EndSpan();

  /// Records structural-join pairs on the innermost open span and the
  /// query total.
  void AddJoinPairs(uint64_t pairs);

  /// Closes the root span and returns the finished tree. The stats object
  /// is spent afterwards.
  Span Finish();

 private:
  uint64_t trace_id_ = 0;
  Span root_;
  std::vector<Span*> open_;  // innermost last; open_[0] == &root_
  std::vector<std::chrono::steady_clock::time_point> start_;
  uint64_t page_hits_ = 0;
  uint64_t page_misses_ = 0;
  uint64_t join_pairs_ = 0;
  uint64_t index_seeks_ = 0;
};

/// RAII Begin/End pair. Null-safe: with a null stats pointer every method
/// is a no-op, so instrumented code paths need no branching.
class SpanScope {
 public:
  SpanScope(ExecStats* stats, StageKind kind, std::string label)
      : stats_(stats) {
    if (stats_ != nullptr) span_ = stats_->BeginSpan(kind, std::move(label));
  }
  ~SpanScope() {
    if (stats_ != nullptr) stats_->EndSpan();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void SetCardinalityIn(uint64_t n) {
    if (span_ != nullptr) span_->cardinality_in = n;
  }
  void SetCardinalityOut(uint64_t n) {
    if (span_ != nullptr) span_->cardinality_out = n;
  }
  void AddJoinPairs(uint64_t pairs) {
    if (stats_ != nullptr) stats_->AddJoinPairs(pairs);
  }

 private:
  ExecStats* stats_;
  Span* span_ = nullptr;
};

}  // namespace mctdb::obs
