// Fig 13 reproduction: geometric mean of the number of value joins / color
// crossings over the ER collection, per schema.
#include "er/er_catalog.h"

#include "bench/bench_util.h"
#include "bench/collection_util.h"
#include "bench/report.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (!args.ok) return 1;
  return RunCollectionBench(
      "fig13",
      "=== Fig 13: Geometric mean of number of value joins / color "
      "crossings, ER collection ===",
      "gmean_value_joins_crossings",
      [](const workload::CollectionCell& c) {
        return c.gmean_value_joins_crossings;
      },
      args.json_path);
}
