// WorkloadRunner: the one-call evaluation harness. Given a workload, it
// designs the requested schemas, draws one logical instance, materializes a
// store per schema, executes every query everywhere, checks logical result
// equivalence across schemas (the §6 "equivalent content" guarantee), and
// returns per-(schema, query) measurements. bench_table1 and downstream
// users build on this instead of wiring the pipeline by hand.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "workload/workload.h"

namespace mctdb::workload {

struct RunnerOptions {
  std::vector<design::Strategy> strategies = design::AllStrategies();
  /// Verify that every read query returns the same logical result set on
  /// every schema; mismatches are reported in RunSummary::problems.
  bool check_equivalence = true;
  /// Repetitions per query; the median time is reported.
  size_t repetitions = 1;
  /// When > 0, each store is wrapped in an ephemeral WAL-backed
  /// wal::DurableStore and ONE deterministic U1-U3 op stream (identical
  /// across schemas; see workload/update_gen.h) is interleaved with the
  /// query grid — roughly update_fraction update ops per figure query,
  /// applied at the same grid positions on every schema so cross-schema
  /// equivalence holds at every point of the run. Measurement rows named
  /// "U1"/"U2"/"U3" report median op latency plus wal_appends/wal_fsyncs,
  /// and after the grid the runner re-checks read-query equivalence on
  /// the updated stores. Update mode forces the serial grid path.
  double update_fraction = 0.0;
  /// Worker threads for the measurement grid. 1 = the classic serial
  /// loop; > 1 fans the (schema x query) grid out through an
  /// mctsvc::QueryService — one session per schema (so each store's
  /// queries, updates included, keep their serial order and results)
  /// running in parallel across schemas. Equivalence checking and
  /// median-of-repetitions semantics are unchanged.
  size_t num_threads = 1;
  storage::StoreOptions store;
};

struct Measurement {
  std::string schema;
  std::string query;
  query::PlanStats plan;
  double seconds = 0.0;
  size_t unique_results = 0;
  size_t raw_results = 0;
  size_t elements_updated = 0;
  /// Exact per-query I/O of the last repetition (charged at fetch time to
  /// this query, not diffed from pool-global counters).
  uint64_t page_misses = 0;
  uint64_t page_hits = 0;
  /// Structural-join containment pairs of the last repetition.
  uint64_t join_pairs = 0;
  /// WAL work attributed to this row (update rows only): records appended
  /// and fsyncs led. Fsyncs can be < the op count — group commit.
  uint64_t wal_appends = 0;
  uint64_t wal_fsyncs = 0;
  /// Per-stage rollup of the last repetition's span trace (self time per
  /// stage kind; rows sum to the query's elapsed time).
  obs::StageTable stages{};
};

/// True median: the middle element for odd sizes, the mean of the two
/// middle elements for even sizes. Exposed for testing; RunWorkload uses
/// it for the reported per-query time.
double MedianSeconds(std::vector<double> times);

struct RunSummary {
  /// Storage statistics per schema, in strategy order.
  std::vector<std::pair<std::string, storage::StoreStats>> storage;
  /// One row per (schema, figure query), schema-major.
  std::vector<Measurement> measurements;
  /// Equivalence violations and planning failures, empty when healthy.
  std::vector<std::string> problems;
  /// Wall-clock split: design + instance + materialization vs. the
  /// (schema x query) measurement grid (what num_threads parallelizes).
  double setup_seconds = 0.0;
  double grid_seconds = 0.0;

  const Measurement* Find(const std::string& schema,
                          const std::string& query) const;
};

/// Runs `workload` end to end. Fails only on setup errors; per-query
/// problems are collected in the summary.
Result<RunSummary> RunWorkload(const Workload& workload,
                               const RunnerOptions& options = {});

}  // namespace mctdb::workload
