// TPC-W designer walkthrough (the paper's running example, §1 + Fig 5).
//
// Prints the Fig 1 ER graph, shows why single-color XML cannot satisfy both
// NN and AR on it (Theorem 4.1), then derives all seven schemas of the
// evaluation and prints the property matrix — ending with the multi-colored
// DR schema, our regeneration of Fig 5.
//
// Build & run:  ./build/examples/tpcw_designer
#include <cstdio>

#include "design/designer.h"
#include "design/feasibility.h"
#include "er/er_catalog.h"

using namespace mctdb;

int main() {
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph(diagram);

  std::printf("=== TPC-W ER graph (Fig 1) ===\n%s\n",
              graph.DebugString().c_str());

  auto feasibility = design::CheckSingleColorNnAr(graph);
  std::printf("=== Theorem 4.1 on TPC-W ===\n%s\n\n",
              feasibility.explanation.c_str());

  design::Designer designer(graph);
  std::printf("=== Property matrix (paper section 6) ===\n");
  std::printf("%-8s %s\n", "schema", "properties");
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    std::printf("%-8s %s\n", schema.name().c_str(),
                designer.Report(schema).ToString().c_str());
  }

  std::printf("\n=== The DR schema (our Fig 5) ===\n");
  mct::MctSchema dr = designer.Design(design::Strategy::kDr);
  std::printf("%s\n", dr.DebugString().c_str());

  std::printf("=== The EN schema (Algorithm MC output) ===\n");
  mct::MctSchema en = designer.Design(design::Strategy::kEn);
  std::printf("%s", en.DebugString().c_str());
  return 0;
}
