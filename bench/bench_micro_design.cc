// Ablation: design-algorithm cost and color frugality as the ER graph
// grows. MC is near-linear; DUMC pays for eligible-path enumeration +
// packing (the price of complete direct recoverability); color counts stay
// small (instance independence, §3.3).
#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "design/algorithm_dumc.h"
#include "design/algorithm_mc.h"
#include "design/algorithm_mcmr.h"
#include "er/er_random.h"

namespace {

using namespace mctdb;

er::ErDiagram MakeGraph(size_t entities) {
  Rng rng(entities * 7919);
  er::RandomErOptions opts;
  opts.num_entities = entities;
  opts.num_relationships = entities + entities / 2;
  opts.p_many_many = 0.15;
  opts.p_one_one = 0.15;
  return er::GenerateRandomEr(&rng, opts);
}

void BM_AlgorithmMC(benchmark::State& state) {
  er::ErDiagram d = MakeGraph(size_t(state.range(0)));
  er::ErGraph g(d);
  size_t colors = 0;
  for (auto _ : state) {
    mct::MctSchema s = design::AlgorithmMc(g);
    colors = s.num_colors();
    benchmark::DoNotOptimize(colors);
  }
  state.counters["colors"] = double(colors);
  state.counters["er_nodes"] = double(d.num_nodes());
}

void BM_AlgorithmMCMR(benchmark::State& state) {
  er::ErDiagram d = MakeGraph(size_t(state.range(0)));
  er::ErGraph g(d);
  size_t colors = 0;
  for (auto _ : state) {
    mct::MctSchema s = design::AlgorithmMcmr(g);
    colors = s.num_colors();
    benchmark::DoNotOptimize(colors);
  }
  state.counters["colors"] = double(colors);
}

void BM_AlgorithmDUMC(benchmark::State& state) {
  er::ErDiagram d = MakeGraph(size_t(state.range(0)));
  er::ErGraph g(d);
  size_t colors = 0;
  for (auto _ : state) {
    mct::MctSchema s = design::AlgorithmDumc(g);
    colors = s.num_colors();
    benchmark::DoNotOptimize(colors);
  }
  state.counters["colors"] = double(colors);
}

}  // namespace

BENCHMARK(BM_AlgorithmMC)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_AlgorithmMCMR)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_AlgorithmDUMC)->Arg(8)->Arg(16)->Arg(32);

MCTDB_MICRO_BENCH_MAIN();
