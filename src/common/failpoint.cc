#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

enum class ActionKind { kError, kTruncate, kEnospc, kEio, kDelay, kPanic };

/// The probabilistic fault actions and the Fault each maps to. Parsing and
/// evaluation share this table so adding an action is one row.
struct ProbAction {
  std::string_view head;
  ActionKind kind;
  Fault fault;
};
constexpr ProbAction kProbActions[] = {
    {"err", ActionKind::kError, Fault::kError},
    {"trunc", ActionKind::kTruncate, Fault::kTruncate},
    {"enospc", ActionKind::kEnospc, Fault::kEnospc},
    {"eio", ActionKind::kEio, Fault::kEio},
};

struct Action {
  ActionKind kind = ActionKind::kError;
  double probability = 1.0;  // err/trunc
  int delay_ms = 0;          // delay
  std::string spec;          // original action string, for CurrentAction()
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Action, std::less<>> armed;
  std::map<std::string, uint64_t, std::less<>> hits;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<HitObserver> g_hit_observer{nullptr};

/// Splitmix64 stream for probability rolls, shared across threads: the
/// slow path already serializes on the registry mutex, so one relaxed
/// fetch_add is noise here.
double NextDouble() {
  static std::atomic<uint64_t> counter{0x243F6A8885A308D3ull};
  uint64_t x =
      counter.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
  return static_cast<double>(Hash64(x) >> 11) * 0x1.0p-53;
}

/// Parses one action string ("err", "err(0.01)", "delay(5)", "trunc",
/// "panic", "off"). "off" is reported via *is_off.
bool ParseAction(std::string_view s, Action* out, bool* is_off,
                 std::string* error) {
  *is_off = false;
  std::string_view head = s;
  std::string_view arg;
  size_t open = s.find('(');
  if (open != std::string_view::npos) {
    if (s.back() != ')') {
      *error = "unterminated '(' in action '" + std::string(s) + "'";
      return false;
    }
    head = s.substr(0, open);
    arg = s.substr(open + 1, s.size() - open - 2);
  }
  out->spec = std::string(s);
  if (head == "off") {
    if (!arg.empty()) {
      *error = "'off' takes no argument";
      return false;
    }
    *is_off = true;
    return true;
  }
  if (head == "panic") {
    if (!arg.empty()) {
      *error = "'panic' takes no argument";
      return false;
    }
    out->kind = ActionKind::kPanic;
    return true;
  }
  for (const ProbAction& pa : kProbActions) {
    if (head != pa.head) continue;
    out->kind = pa.kind;
    out->probability = 1.0;
    if (!arg.empty()) {
      char* end = nullptr;
      std::string buf(arg);
      out->probability = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str() || *end != '\0' || out->probability < 0.0 ||
          out->probability > 1.0) {
        *error = "probability must be in [0,1], got '" + buf + "'";
        return false;
      }
    }
    return true;
  }
  if (head == "delay") {
    if (arg.empty()) {
      *error = "'delay' needs a millisecond argument";
      return false;
    }
    char* end = nullptr;
    std::string buf(arg);
    long ms = std::strtol(buf.c_str(), &end, 10);
    if (end == buf.c_str() || *end != '\0' || ms < 0 || ms > 60000) {
      *error = "delay must be 0..60000 ms, got '" + buf + "'";
      return false;
    }
    out->kind = ActionKind::kDelay;
    out->delay_ms = static_cast<int>(ms);
    return true;
  }
  *error = "unknown action '" + std::string(head) + "'";
  return false;
}

void ArmLocked(Registry& r, const std::string& name, const Action& a) {
  auto [it, inserted] = r.armed.insert_or_assign(name, a);
  (void)it;
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void DisarmLocked(Registry& r, std::string_view name) {
  auto it = r.armed.find(name);
  if (it != r.armed.end()) {
    r.armed.erase(it);
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

/// Parses MCTDB_FAILPOINTS once at process start so env-armed chaos specs
/// are live before any reader thread exists.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("MCTDB_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    std::string error;
    if (!Configure(spec, &error)) {
      MCTDB_CHECK_MSG(false, ("bad MCTDB_FAILPOINTS: " + error).c_str());
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace internal {

Fault EvaluateSlow(std::string_view name) {
  Action action;
  {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.armed.find(name);
    if (it == r.armed.end()) return Fault::kNone;
    action = it->second;
    if (action.kind != ActionKind::kDelay &&
        action.kind != ActionKind::kPanic) {
      if (action.probability < 1.0 && NextDouble() >= action.probability) {
        return Fault::kNone;
      }
    }
    r.hits[std::string(name)]++;
  }
  if (HitObserver obs = g_hit_observer.load(std::memory_order_acquire)) {
    obs(name);
  }
  switch (action.kind) {
    case ActionKind::kError:
      return Fault::kError;
    case ActionKind::kTruncate:
      return Fault::kTruncate;
    case ActionKind::kEnospc:
      return Fault::kEnospc;
    case ActionKind::kEio:
      return Fault::kEio;
    case ActionKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(action.delay_ms));
      return Fault::kNone;
    case ActionKind::kPanic:
      MCTDB_CHECK_MSG(false, "failpoint panic action fired");
  }
  return Fault::kNone;
}

}  // namespace internal

bool Configure(std::string_view spec, std::string* error) {
  // Parse everything before mutating so a malformed tail leaves the
  // registry untouched.
  std::vector<std::pair<std::string, Action>> to_arm;
  std::vector<std::string> to_disarm;
  for (const std::string& entry : Split(spec, ';')) {
    std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error) *error = "expected name=action, got '" +
                          std::string(trimmed) + "'";
      return false;
    }
    std::string name(Trim(trimmed.substr(0, eq)));
    std::string_view action_str = Trim(trimmed.substr(eq + 1));
    Action action;
    bool is_off = false;
    std::string parse_error;
    if (!ParseAction(action_str, &action, &is_off, &parse_error)) {
      if (error) *error = name + ": " + parse_error;
      return false;
    }
    if (is_off) {
      to_disarm.push_back(std::move(name));
    } else {
      to_arm.emplace_back(std::move(name), std::move(action));
    }
  }
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::string& name : to_disarm) DisarmLocked(r, name);
  for (auto& [name, action] : to_arm) {
    MCTDB_LOG(kInfo, "failpoint", "armed",
              {{"name", name}, {"action", action.spec}});
    ArmLocked(r, name, action);
  }
  return true;
}

bool Arm(std::string_view name, std::string_view action_str,
         std::string* error) {
  Action action;
  bool is_off = false;
  std::string parse_error;
  if (!ParseAction(action_str, &action, &is_off, &parse_error)) {
    if (error) *error = std::string(name) + ": " + parse_error;
    return false;
  }
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (is_off) {
    DisarmLocked(r, name);
  } else {
    ArmLocked(r, std::string(name), action);
  }
  return true;
}

void Disarm(std::string_view name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  DisarmLocked(r, name);
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  while (!r.armed.empty()) {
    DisarmLocked(r, r.armed.begin()->first);
  }
}

uint64_t HitCount(std::string_view name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

void SetHitObserver(HitObserver observer) {
  g_hit_observer.store(observer, std::memory_order_release);
}

std::string CurrentAction(std::string_view name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.armed.find(name);
  return it == r.armed.end() ? std::string() : it->second.spec;
}

FailpointGuard::FailpointGuard(std::string_view name,
                               std::string_view action)
    : name_(name), previous_(CurrentAction(name)) {
  std::string error;
  MCTDB_CHECK_MSG(Arm(name_, action, &error), error.c_str());
}

FailpointGuard::~FailpointGuard() {
  if (previous_.empty()) {
    Disarm(name_);
  } else {
    std::string error;
    MCTDB_CHECK_MSG(Arm(name_, previous_, &error), error.c_str());
  }
}

}  // namespace mctdb::failpoint
