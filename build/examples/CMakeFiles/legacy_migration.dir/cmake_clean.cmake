file(REMOVE_RECURSE
  "CMakeFiles/legacy_migration.dir/legacy_migration.cc.o"
  "CMakeFiles/legacy_migration.dir/legacy_migration.cc.o.d"
  "legacy_migration"
  "legacy_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
