// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mctdb::bench {

/// TPC-W scale factor: first CLI argument, or MCTDB_SCALE env var, or 1.0.
inline double ScaleFromArgs(int argc, char** argv) {
  if (argc > 1) return std::atof(argv[1]);
  if (const char* env = std::getenv("MCTDB_SCALE")) return std::atof(env);
  return 1.0;
}

/// The seven TPC-W schemas with their materialized stores.
struct TpcwSetup {
  workload::Workload w;
  std::unique_ptr<er::ErGraph> graph;
  std::unique_ptr<design::Designer> designer;
  std::unique_ptr<instance::LogicalInstance> logical;
  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;

  explicit TpcwSetup(double scale, bool materialize = true)
      : w(workload::TpcwWorkload(scale)) {
    graph = std::make_unique<er::ErGraph>(w.diagram);
    designer = std::make_unique<design::Designer>(*graph);
    for (design::Strategy s : design::AllStrategies()) {
      schemas.push_back(designer->Design(s));
    }
    if (materialize) {
      logical = std::make_unique<instance::LogicalInstance>(
          instance::GenerateInstance(*graph, w.gen));
      for (mct::MctSchema& schema : schemas) {
        stores.push_back(instance::Materialize(*logical, schema));
      }
    }
  }
};

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mctdb::bench
