#include "analysis/schema_lint.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "er/er_parser.h"

namespace mctdb::analysis {
namespace {

using design::Strategy;

NormalFormClaims ClaimsFrom(const design::DesignReport& report) {
  NormalFormClaims claims;
  claims.node_normal = report.node_normal;
  claims.edge_normal = report.edge_normal;
  claims.association_recoverable = report.association_recoverable;
  claims.fully_direct_recoverable = report.fully_direct_recoverable;
  return claims;
}

TEST(SchemaLintTest, CleanOnEveryDesignerStrategy) {
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph(diagram);
  design::Designer designer(graph);
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    design::DesignReport dr = designer.Report(schema);
    NormalFormClaims claims = ClaimsFrom(dr);
    SchemaLintOptions options;
    options.claims = &claims;
    DiagnosticReport report = LintSchema(schema, options);
    EXPECT_TRUE(report.empty())
        << schema.name() << ":\n" << report.ToText();
  }
}

TEST(SchemaLintTest, CleanOnShippedExampleFiles) {
  for (const char* file : {"blog.er", "warehouse.er"}) {
    std::ifstream in(std::string(MCTDB_EXAMPLES_DIR) + "/" + file);
    ASSERT_TRUE(in) << "cannot open " << file;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto diagram = er::ParseErDiagram(buffer.str());
    ASSERT_TRUE(diagram.ok()) << file << ": "
                              << diagram.status().ToString();
    er::ErGraph graph(*diagram);
    design::Designer designer(graph);
    for (Strategy s : design::AllStrategies()) {
      mct::MctSchema schema = designer.Design(s);
      design::DesignReport dr = designer.Report(schema);
      NormalFormClaims claims = ClaimsFrom(dr);
      SchemaLintOptions options;
      options.claims = &claims;
      DiagnosticReport report = LintSchema(schema, options);
      EXPECT_TRUE(report.empty())
          << file << " " << schema.name() << ":\n" << report.ToText();
    }
  }
}

/// Two-color schema over a -r1-> b realizing the edge twice, so
/// ComputeIcics yields a constraint to corrupt.
struct IcicFixture {
  er::ErDiagram diagram;
  er::ErGraph graph;
  mct::MctSchema schema;
  er::NodeId a, b, r1;
  er::EdgeId edge_a, edge_b;

  IcicFixture()
      : diagram(Make()), graph(diagram), schema("inject", &graph) {
    a = *diagram.FindNode("a");
    b = *diagram.FindNode("b");
    r1 = *diagram.FindNode("r1");
    for (er::EdgeId eid : graph.incident(r1)) {
      if (graph.edge(eid).node == a) edge_a = eid;
      if (graph.edge(eid).node == b) edge_b = eid;
    }
    for (int c = 0; c < 2; ++c) {
      mct::ColorId color = schema.AddColor();
      mct::OccId oa = schema.AddRoot(color, a);
      mct::OccId orel = schema.AddChild(oa, r1, edge_a);
      schema.AddChild(orel, b, edge_b);
    }
  }

  static er::ErDiagram Make() {
    er::ErDiagram d("t");
    auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
    auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
    EXPECT_TRUE(d.AddOneToMany("r1", a, b, er::Totality::kTotal).ok());
    return d;
  }
};

TEST(SchemaLintTest, ComputedIcicsAreCleanByConstruction) {
  IcicFixture f;
  ASSERT_FALSE(f.schema.ComputeIcics().empty());
  DiagnosticReport report = LintSchema(f.schema);
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(SchemaLintTest, DetectsDanglingIcicColor) {
  IcicFixture f;
  std::vector<mct::Icic> icics = f.schema.ComputeIcics();
  ASSERT_FALSE(icics.empty());
  icics[0].colors.push_back(99);  // dangling color reference
  SchemaLintOptions options;
  options.icics = &icics;
  DiagnosticReport report = LintSchema(f.schema, options);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("SCH010")) << report.ToText();
}

TEST(SchemaLintTest, DetectsIcicWithBadRealization) {
  IcicFixture f;
  std::vector<mct::Icic> icics = f.schema.ComputeIcics();
  ASSERT_FALSE(icics.empty());
  icics[0].realizations.push_back(9999);  // nonexistent occurrence
  SchemaLintOptions options;
  options.icics = &icics;
  DiagnosticReport report = LintSchema(f.schema, options);
  EXPECT_TRUE(report.HasCode("SCH011")) << report.ToText();
}

TEST(SchemaLintTest, DetectsSingleColorIcic) {
  IcicFixture f;
  std::vector<mct::Icic> icics = f.schema.ComputeIcics();
  ASSERT_FALSE(icics.empty());
  // Keep only realizations from one color: no longer inter-color.
  mct::Icic& icic = icics[0];
  std::vector<mct::OccId> one_color;
  for (mct::OccId r : icic.realizations) {
    if (f.schema.occ(r).color == 0) one_color.push_back(r);
  }
  icic.realizations = one_color;
  SchemaLintOptions options;
  options.icics = &icics;
  DiagnosticReport report = LintSchema(f.schema, options);
  EXPECT_TRUE(report.HasCode("SCH012")) << report.ToText();
}

TEST(SchemaLintTest, DetectsCyclicIcicDependency) {
  // Three entities in a relationship cycle a -r1-> b -r2-> c -r3-> a, with
  // every edge realized in the same orientation in both colors: the
  // oriented ICIC dependency graph is a directed cycle, so no topological
  // repair order exists.
  er::ErDiagram d("cycle");
  auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
  auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
  auto c = d.AddEntity("c", {{"id", er::AttrType::kString, true}});
  ASSERT_TRUE(d.AddOneToMany("r1", a, b).ok());
  ASSERT_TRUE(d.AddOneToMany("r2", b, c).ok());
  ASSERT_TRUE(d.AddOneToMany("r3", c, a).ok());
  er::ErGraph graph(d);
  auto find_edge = [&](er::NodeId rel, er::NodeId endpoint) {
    for (er::EdgeId eid : graph.incident(rel)) {
      if (graph.edge(eid).node == endpoint) return eid;
    }
    return er::kInvalidEdge;
  };
  er::NodeId r1 = *d.FindNode("r1"), r2 = *d.FindNode("r2"),
             r3 = *d.FindNode("r3");
  mct::MctSchema schema("cyclic", &graph);
  for (int color = 0; color < 2; ++color) {
    mct::ColorId cid = schema.AddColor();
    mct::OccId oa = schema.AddRoot(cid, a);
    mct::OccId o1 = schema.AddChild(oa, r1, find_edge(r1, a));
    mct::OccId ob = schema.AddChild(o1, b, find_edge(r1, b));
    mct::OccId o2 = schema.AddChild(ob, r2, find_edge(r2, b));
    mct::OccId oc = schema.AddChild(o2, c, find_edge(r2, c));
    mct::OccId o3 = schema.AddChild(oc, r3, find_edge(r3, c));
    schema.AddChild(o3, a, find_edge(r3, a));
  }
  DiagnosticReport report = LintSchema(schema);
  ASSERT_TRUE(report.has_errors()) << report.ToText();
  EXPECT_TRUE(report.HasCode("SCH013")) << report.ToText();
}

TEST(SchemaLintTest, DetectsOrphanNodeType) {
  // A diagram with two relationships but a schema realizing only one of
  // them: r2 and c never occur.
  er::ErDiagram d("orphan");
  auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
  auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
  auto c = d.AddEntity("c", {{"id", er::AttrType::kString, true}});
  ASSERT_TRUE(d.AddOneToMany("r1", a, b).ok());
  ASSERT_TRUE(d.AddOneToMany("r2", b, c).ok());
  er::ErGraph graph(d);
  er::NodeId r1 = *d.FindNode("r1");
  er::EdgeId edge_a = er::kInvalidEdge, edge_b = er::kInvalidEdge;
  for (er::EdgeId eid : graph.incident(r1)) {
    if (graph.edge(eid).node == a) edge_a = eid;
    if (graph.edge(eid).node == b) edge_b = eid;
  }
  mct::MctSchema schema("partial", &graph);
  mct::ColorId c0 = schema.AddColor();
  mct::OccId oa = schema.AddRoot(c0, a);
  mct::OccId orel = schema.AddChild(oa, r1, edge_a);
  schema.AddChild(orel, b, edge_b);
  DiagnosticReport report = LintSchema(schema);
  ASSERT_TRUE(report.has_errors());
  EXPECT_GE(report.CountCode("SCH004"), 2u)
      << "both 'c' and 'r2' are orphans:\n" << report.ToText();
}

TEST(SchemaLintTest, DetectsFalseNormalFormClaim) {
  // DEEP duplicates node types inside one color, so it is not node normal;
  // claiming NN must be flagged (and the honest claims must not be).
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph(diagram);
  design::Designer designer(graph);
  mct::MctSchema deep = designer.Design(Strategy::kDeep);
  design::DesignReport honest = designer.Report(deep);
  ASSERT_FALSE(honest.node_normal)
      << "fixture assumption: DEEP is not node normal";

  NormalFormClaims claims = ClaimsFrom(honest);
  claims.node_normal = true;  // the lie
  SchemaLintOptions options;
  options.claims = &claims;
  DiagnosticReport report = LintSchema(deep, options);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("SCH020")) << report.ToText();
}

TEST(SchemaLintTest, DetectsFalseRecoverabilityClaim) {
  // SHALLOW keeps every color single-level, so association recovery needs
  // value joins: claiming full direct recoverability must be flagged.
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph(diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  design::DesignReport honest = designer.Report(shallow);
  ASSERT_FALSE(honest.fully_direct_recoverable)
      << "fixture assumption: SHALLOW is not fully direct";

  NormalFormClaims claims = ClaimsFrom(honest);
  claims.fully_direct_recoverable = true;  // the lie
  SchemaLintOptions options;
  options.claims = &claims;
  DiagnosticReport report = LintSchema(shallow, options);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("SCH023")) << report.ToText();
}

}  // namespace
}  // namespace mctdb::analysis
