#include "query/mcxpath.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "instance/materialize.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

TEST(McXPathParseTest, SimplePath) {
  auto p = ParseMcXPath("/country//order");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->steps.size(), 2u);
  EXPECT_FALSE(p->steps[0].descendant);
  EXPECT_TRUE(p->steps[1].descendant);
  EXPECT_EQ(p->steps[0].tag, "country");
}

TEST(McXPathParseTest, ColorsAndPredicates) {
  auto p = ParseMcXPath("/(blue)country[@name='Japan']//(red)order");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->steps[0].color, "blue");
  EXPECT_EQ(p->steps[0].pred_attr, "name");
  EXPECT_EQ(p->steps[0].pred_value, "Japan");
  EXPECT_EQ(p->steps[1].color, "red");
}

TEST(McXPathParseTest, RoundTripsToString) {
  const char* text = "/(blue)country[@name='Japan']//(blue)order";
  auto p = ParseMcXPath(text);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), text);
}

TEST(McXPathParseTest, Errors) {
  EXPECT_FALSE(ParseMcXPath("").ok());
  EXPECT_FALSE(ParseMcXPath("country").ok());
  EXPECT_FALSE(ParseMcXPath("/country[@name=Japan]").ok());
  EXPECT_FALSE(ParseMcXPath("/(blue").ok());
  EXPECT_FALSE(ParseMcXPath("//").ok());
}

class McXPathEvalTest : public testing::Test {
 protected:
  void SetUpSchema(design::Strategy strategy) {
    w_ = std::make_unique<workload::Workload>(workload::TpcwWorkload(0.05));
    graph_ = std::make_unique<er::ErGraph>(w_->diagram);
    designer_ = std::make_unique<design::Designer>(*graph_);
    schema_ = std::make_unique<mct::MctSchema>(designer_->Design(strategy));
    auto logical = instance::GenerateInstance(*graph_, w_->gen);
    store_ = instance::Materialize(logical, *schema_);
  }

  std::unique_ptr<workload::Workload> w_;
  std::unique_ptr<er::ErGraph> graph_;
  std::unique_ptr<design::Designer> designer_;
  std::unique_ptr<mct::MctSchema> schema_;
  std::unique_ptr<storage::MctStore> store_;
};

TEST_F(McXPathEvalTest, Q1OnEnSchema) {
  SetUpSchema(design::Strategy::kEn);
  // The paper's Q1 against the EN schema's blue tree.
  auto p = ParseMcXPath("/(blue)country[@name='Japan']//(blue)order");
  ASSERT_TRUE(p.ok());
  auto r = EvalMcXPath(*p, *store_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->elements.size(), 0u);
  EXPECT_EQ(r->structural_joins, 1u);
  EXPECT_EQ(r->color_crossings, 0u);
  // Every result is an order.
  er::NodeId order = *w_->diagram.FindNode("order");
  for (storage::ElemId e : r->elements) {
    EXPECT_EQ(store_->element(e).er_node, order);
  }
}

TEST_F(McXPathEvalTest, ParentChildVsDescendant) {
  SetUpSchema(design::Strategy::kEn);
  // country/order (parent-child) is empty: orders are deeper.
  auto pc = ParseMcXPath("/(blue)country/(blue)order");
  auto ad = ParseMcXPath("/(blue)country//(blue)order");
  auto r1 = EvalMcXPath(*pc, *store_);
  auto r2 = EvalMcXPath(*ad, *store_);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->elements.empty());
  EXPECT_FALSE(r2->elements.empty());
}

TEST_F(McXPathEvalTest, ColorCrossingCounted) {
  SetUpSchema(design::Strategy::kEn);
  // In EN blue, items sit under author/write; their occur_in children live
  // in the red tree — the crossing re-anchors the shared item nodes.
  auto p = ParseMcXPath("/(blue)author//(blue)item/(red)occur_in");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto r = EvalMcXPath(*p, *store_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->color_crossings, 1u);
  EXPECT_FALSE(r->elements.empty()) << "items have order lines";
}

TEST_F(McXPathEvalTest, UnknownColorOrTagFails) {
  SetUpSchema(design::Strategy::kEn);
  auto p1 = ParseMcXPath("/(chartreuse)country");
  ASSERT_TRUE(p1.ok());
  EXPECT_TRUE(EvalMcXPath(*p1, *store_).status().IsNotFound());
  auto p2 = ParseMcXPath("/(blue)starship");
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(EvalMcXPath(*p2, *store_).status().IsNotFound());
}

TEST_F(McXPathEvalTest, SingleColorSchemaNeedsNoColors) {
  SetUpSchema(design::Strategy::kAf);
  // The paper's Q1 expression verbatim (§1): color-free on 1-color AF.
  auto p = ParseMcXPath("/country[@name='Japan']//order");
  ASSERT_TRUE(p.ok());
  auto r = EvalMcXPath(*p, *store_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->elements.size(), 0u);
}

}  // namespace
}  // namespace mctdb::query
