// Whole-store validation: structural invariants of the labeled forests and
// the instance-level inter-color integrity constraints (ICICs, §2.3).
//
// An ICIC on an ER edge realized in several colors demands that "in any
// valid database instance either the edge between the nodes u and v must be
// present in all colors, or it must be absent in all". At instance level we
// check, per constrained ER edge: all *complete* realizations (the
// maximal per-color pair sets) are identical, and every partial realization
// (a denormalized graft copy) asserts only pairs the complete ones hold.
//
// Schema-level invariants (forest-ness, ICIC definitions, normal-form
// claims) are the schema-lint pass's job (analysis/schema_lint.h); this
// validator runs it first and then adds the instance-level checks, so one
// report covers both without duplicating the schema checks here.
//
// Diagnostic codes (stable; see analysis/diagnostics.h):
//   STO001  degenerate label interval (start >= end)
//   STO002  partially overlapping label intervals
//   STO003  label level disagrees with nesting depth
//   STO004  parent pointer disagrees with interval nesting
//   STO005  posting list out of start order
//   STO006  posting entry for an element of the wrong type
//   STO007  posting entry disagrees with the label store
//   STO008  element missing from the key index
//   STO009  ICIC instance violation (realizations disagree)
//   STO010  missing idref attribute
//   STO011  dangling idref (no key of the target type matches)
//   STO012  posting list unreadable (page checksum failure / data loss)
#pragma once

#include "analysis/diagnostics.h"
#include "storage/store.h"

namespace mctdb::storage {

struct ValidateOptions {
  /// Cap on recorded diagnostics; further findings are still counted
  /// (DiagnosticReport::suppressed) but not stored, so a corrupted store
  /// cannot balloon the report.
  size_t max_diagnostics = 256;
  /// Also verify every id/idref attribute resolves to an existing key of
  /// its target type.
  bool check_idrefs = true;
  /// Run the schema-lint pass over store.schema() first and merge its
  /// findings (location-prefixed "schema") into the report.
  bool lint_schema = true;
};

/// Validates label nesting, parent pointers, posting order, the key index,
/// ICIC consistency and (optionally) idref integrity. Reports every
/// violation found (up to the cap), never stopping at the first.
analysis::DiagnosticReport ValidateStore(const MctStore& store,
                                         const ValidateOptions& options = {});

}  // namespace mctdb::storage
