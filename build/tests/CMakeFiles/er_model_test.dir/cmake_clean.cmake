file(REMOVE_RECURSE
  "CMakeFiles/er_model_test.dir/er_model_test.cc.o"
  "CMakeFiles/er_model_test.dir/er_model_test.cc.o.d"
  "er_model_test"
  "er_model_test.pdb"
  "er_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
