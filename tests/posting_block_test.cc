// Batched posting reads: NextSpan block iteration, the per-page interval
// summaries (the persistent posting index), index-assisted page skipping,
// and the single-reservation materialization contract of ReadAll.
#include "storage/posting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/exec_stats.h"
#include "storage/pager.h"

namespace mctdb::storage {
namespace {

/// n sibling intervals in document order: entry i is (2i+1, 2i+2) at
/// level 1 — strictly increasing starts, like any real posting list.
std::vector<LabelEntry> Siblings(size_t n) {
  std::vector<LabelEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i].elem = static_cast<ElemId>(i);
    entries[i].start = static_cast<uint32_t>(2 * i + 1);
    entries[i].end = static_cast<uint32_t>(2 * i + 2);
    entries[i].level = 1;
    entries[i].logical = static_cast<uint32_t>(i);
  }
  return entries;
}

PostingMeta Build(Pager* pager, const std::vector<LabelEntry>& entries) {
  PostingWriter writer(pager);
  for (const LabelEntry& e : entries) writer.Append(e);
  return writer.Finish();
}

bool Same(const LabelEntry& a, const LabelEntry& b) {
  return a.elem == b.elem && a.start == b.start && a.end == b.end &&
         a.level == b.level && a.is_copy == b.is_copy &&
         a.logical == b.logical;
}

TEST(PostingBlockTest, NextSpanYieldsTheExactNextSequence) {
  Pager pager;
  // 2.5 pages: a full page, a full page, a partial tail.
  std::vector<LabelEntry> entries = Siblings(kEntriesPerPage * 2 + 200);
  PostingMeta meta = Build(&pager, entries);
  BufferPool pool(&pager, 8);

  std::vector<LabelEntry> via_next;
  {
    PostingCursor cursor(&pool, &meta);
    LabelEntry e;
    while (cursor.Next(&e)) via_next.push_back(e);
    ASSERT_TRUE(cursor.status().ok());
  }
  std::vector<LabelEntry> via_span;
  size_t spans = 0;
  {
    PostingCursor cursor(&pool, &meta);
    const LabelEntry* data = nullptr;
    size_t n = 0;
    while (cursor.NextSpan(&data, &n)) {
      via_span.insert(via_span.end(), data, data + n);
      ++spans;
    }
    ASSERT_TRUE(cursor.status().ok());
  }
  ASSERT_EQ(via_next.size(), entries.size());
  ASSERT_EQ(via_span.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(Same(via_next[i], via_span[i])) << "entry " << i;
    EXPECT_TRUE(Same(via_span[i], entries[i])) << "entry " << i;
  }
  // One span per page: the block path does one fetch per page, never a
  // per-entry copy loop.
  EXPECT_EQ(spans, meta.num_pages());
}

TEST(PostingBlockTest, WriterBuildsOneSummaryPerPage) {
  Pager pager;
  std::vector<LabelEntry> entries = Siblings(kEntriesPerPage * 2 + 31);
  PostingMeta meta = Build(&pager, entries);

  ASSERT_TRUE(meta.has_index());
  ASSERT_EQ(meta.summaries.size(), meta.pages.size());
  for (size_t p = 0; p < meta.summaries.size(); ++p) {
    size_t lo = p * kEntriesPerPage;
    size_t hi = std::min(lo + kEntriesPerPage, entries.size());
    uint32_t max_end = 0;
    for (size_t i = lo; i < hi; ++i) max_end = std::max(max_end, entries[i].end);
    EXPECT_EQ(meta.summaries[p].first_start, entries[lo].start) << "page " << p;
    EXPECT_EQ(meta.summaries[p].max_end, max_end) << "page " << p;
  }
}

TEST(PostingBlockTest, BoundsSkipPagesWithoutFetchingThem) {
  Pager pager;
  std::vector<LabelEntry> entries = Siblings(kEntriesPerPage * 4);
  PostingMeta meta = Build(&pager, entries);
  ASSERT_EQ(meta.num_pages(), 4u);

  // Baseline: an unbounded scan fetches every page.
  {
    BufferPool pool(&pager, 8);
    obs::ExecStats stats("full");
    PostingCursor cursor(&pool, &meta, &stats);
    const LabelEntry* data = nullptr;
    size_t n = 0;
    while (cursor.NextSpan(&data, &n)) {
    }
    EXPECT_EQ(stats.page_misses(), 4u);
    EXPECT_EQ(stats.index_seeks(), 0u);
  }

  // A forward-join bound anchored in the last page: the front seek must
  // jump the first three pages without fetching them, and the scan must
  // still return every qualifying entry (bounds are necessary conditions,
  // never filters).
  ScanBounds bounds;
  bounds.start_gt = entries[kEntriesPerPage * 3 + 10].start;
  {
    BufferPool pool(&pager, 8);
    obs::ExecStats stats("bounded");
    PostingCursor cursor(&pool, &meta, &stats);
    cursor.ApplyBounds(bounds);
    std::vector<LabelEntry> got;
    const LabelEntry* data = nullptr;
    size_t n = 0;
    while (cursor.NextSpan(&data, &n)) got.insert(got.end(), data, data + n);
    ASSERT_TRUE(cursor.status().ok());
    EXPECT_EQ(stats.page_misses(), 1u) << "three pages ruled out unfetched";
    EXPECT_GE(stats.index_seeks(), 1u);
    std::vector<LabelEntry> qualifying;
    for (const LabelEntry& e : entries) {
      if (e.start > bounds.start_gt) qualifying.push_back(e);
    }
    ASSERT_FALSE(qualifying.empty());
    for (const LabelEntry& want : qualifying) {
      EXPECT_TRUE(std::any_of(got.begin(), got.end(), [&](const LabelEntry& g) {
        return Same(g, want);
      })) << "entry with start " << want.start << " was wrongly skipped";
    }
  }

  // An early-stop bound anchored in the first page: the tail never loads.
  {
    BufferPool pool(&pager, 8);
    obs::ExecStats stats("early");
    PostingCursor cursor(&pool, &meta, &stats);
    ScanBounds early;
    early.start_lt = entries[5].start;
    cursor.ApplyBounds(early);
    const LabelEntry* data = nullptr;
    size_t n = 0;
    while (cursor.NextSpan(&data, &n)) {
    }
    ASSERT_TRUE(cursor.status().ok());
    EXPECT_EQ(stats.page_misses(), 1u) << "only the front page is fetched";
  }
}

TEST(PostingBlockTest, MetaWithoutSummariesDegradesToSequentialScan) {
  Pager pager;
  std::vector<LabelEntry> entries = Siblings(kEntriesPerPage + 50);
  PostingMeta meta = Build(&pager, entries);
  meta.summaries.clear();  // hand-built metas may lack the index
  ASSERT_FALSE(meta.has_index());

  BufferPool pool(&pager, 8);
  obs::ExecStats stats("degraded");
  PostingCursor cursor(&pool, &meta, &stats);
  ScanBounds bounds;
  bounds.start_gt = entries.back().start;  // would skip everything if indexed
  cursor.ApplyBounds(bounds);
  size_t total = 0;
  const LabelEntry* data = nullptr;
  size_t n = 0;
  while (cursor.NextSpan(&data, &n)) total += n;
  EXPECT_EQ(total, entries.size()) << "no index, no skipping — plain scan";
  EXPECT_EQ(stats.index_seeks(), 0u);
}

TEST(PostingBlockTest, ReadAllMaterializesWithOneExactReservation) {
  // The regression this pins: posting materialization must reserve the
  // known final size up front. A growth loop over a multi-page list
  // reallocates log(n) times and copies every entry repeatedly; the
  // tell-tale is capacity() > size() afterwards.
  Pager pager;
  std::vector<LabelEntry> entries = Siblings(kEntriesPerPage * 3 + 7);
  PostingMeta meta = Build(&pager, entries);
  BufferPool pool(&pager, 8);

  std::vector<LabelEntry> all = ReadAll(&pool, meta);
  ASSERT_EQ(all.size(), meta.count);
  EXPECT_EQ(all.capacity(), meta.count)
      << "ReadAll must reserve meta.count once, not grow geometrically";
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_TRUE(Same(all[i], entries[i])) << "entry " << i;
  }
}

TEST(PostingBlockTest, LabelBlockRoundTripsEntries) {
  std::vector<LabelEntry> entries = Siblings(123);
  entries[7].is_copy = 1;
  entries[9].level = 4;
  LabelBlock block;
  block.Fill(entries.data(), entries.size());
  ASSERT_EQ(block.size, entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(Same(block.Get(i), entries[i])) << "entry " << i;
  }
  block.Clear();
  EXPECT_EQ(block.size, 0u);
}

}  // namespace
}  // namespace mctdb::storage
