// Hashing utilities used by value-join hash tables and value indexes.
#pragma once

#include <cstdint>
#include <string_view>

namespace mctdb {

/// 64-bit FNV-1a. Stable across platforms (value-index layouts depend on it).
inline uint64_t Hash64(std::string_view s, uint64_t seed = 0xCBF29CE484222325ull) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t Hash64(uint64_t x) {
  // splitmix64 finalizer: good avalanche for integer keys.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
}

}  // namespace mctdb
