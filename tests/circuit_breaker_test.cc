#include "service/circuit_breaker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mctsvc {
namespace {

using State = CircuitBreaker::State;

// A hand-cranked clock so open->half-open transitions need no sleeping.
struct FakeClock {
  std::chrono::steady_clock::time_point now{};
  void Advance(double seconds) {
    now += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
  }
  CircuitBreaker::Clock fn() {
    return [this] { return now; };
  }
};

CircuitBreaker::Options Opts(int threshold, double open_seconds) {
  CircuitBreaker::Options o;
  o.failure_threshold = threshold;
  o.open_seconds = open_seconds;
  return o;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker b("s");
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_TRUE(b.Allow());
  EXPECT_EQ(b.RetryAfterSeconds(), 0.0);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  FakeClock clock;
  CircuitBreaker b("s", Opts(3, 5.0), clock.fn());
  b.RecordFailure();
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kClosed);
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.Allow());
  EXPECT_GT(b.RetryAfterSeconds(), 0.0);
  EXPECT_LE(b.RetryAfterSeconds(), 5.0);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreaker b("s", Opts(3, 5.0));
  b.RecordFailure();
  b.RecordFailure();
  b.RecordSuccess();
  b.RecordFailure();
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_EQ(b.consecutive_failures(), 2);
}

TEST(CircuitBreakerTest, HalfOpensAfterTheWindowAndProbeSuccessCloses) {
  FakeClock clock;
  CircuitBreaker b("s", Opts(1, 5.0), clock.fn());
  b.RecordFailure();
  ASSERT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.Allow());
  clock.Advance(5.1);
  // First caller after the window is the probe.
  EXPECT_TRUE(b.Allow());
  EXPECT_EQ(b.state(), State::kHalfOpen);
  // Concurrent callers bounce until the probe resolves.
  EXPECT_FALSE(b.Allow());
  b.RecordSuccess();
  EXPECT_EQ(b.state(), State::kClosed);
  EXPECT_TRUE(b.Allow());
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherFullWindow) {
  FakeClock clock;
  CircuitBreaker b("s", Opts(1, 5.0), clock.fn());
  b.RecordFailure();
  clock.Advance(5.1);
  ASSERT_TRUE(b.Allow());
  b.RecordFailure();
  EXPECT_EQ(b.state(), State::kOpen);
  EXPECT_FALSE(b.Allow());
  // The window restarts from the probe failure.
  clock.Advance(4.0);
  EXPECT_FALSE(b.Allow());
  clock.Advance(1.5);
  EXPECT_TRUE(b.Allow());
}

TEST(CircuitBreakerTest, OnlyOneProbeUnderConcurrency) {
  FakeClock clock;
  CircuitBreaker b("s", Opts(1, 1.0), clock.fn());
  b.RecordFailure();
  clock.Advance(1.5);
  std::atomic<int> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (b.Allow()) allowed.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(allowed.load(), 1);
  EXPECT_EQ(b.state(), State::kHalfOpen);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(State::kClosed), "closed");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kOpen), "open");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace mctsvc
