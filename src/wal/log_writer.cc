#include "wal/log_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"

namespace mctdb::wal {

namespace flight = obs::flight;

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path,
                                                   uint64_t fingerprint,
                                                   Lsn checkpoint_lsn,
                                                   Lsn durable_lsn) {
  std::unique_ptr<LogWriter> w(new LogWriter());
  w->fingerprint_ = fingerprint;
  w->durable_lsn_.store(durable_lsn);
  w->next_lsn_ = durable_lsn + 1;
  if (path.empty()) {
    WalHeader h{fingerprint, checkpoint_lsn};
    EncodeWalHeader(h, &w->mem_);
    w->durable_bytes_.store(w->mem_.size());
    return w;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("wal: open failed: " + path + ": " +
                           std::strerror(errno));
  }
  w->fd_ = fd;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError("wal: fstat failed: " + path);
  }
  if (st.st_size == 0) {
    std::string header;
    EncodeWalHeader({fingerprint, checkpoint_lsn}, &header);
    Status s = w->WriteRaw(header.data(), header.size());
    if (s.ok() && ::fsync(fd) != 0) {
      s = Status::IoError("wal: header fsync failed");
    }
    MCTDB_RETURN_IF_ERROR(s);
    w->durable_bytes_.store(header.size());
  } else {
    // Recovered log: append after the (already truncated) valid prefix.
    if (::lseek(fd, 0, SEEK_END) < 0) {
      return Status::IoError("wal: seek failed: " + path);
    }
    w->durable_bytes_.store(static_cast<uint64_t>(st.st_size));
  }
  return w;
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogWriter::WriteRaw(const char* data, size_t n) {
  if (fd_ < 0) {
    mem_.append(data, n);
    return Status::OK();
  }
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<Lsn> LogWriter::Append(RecordType type, std::string_view payload) {
  std::lock_guard lk(append_mu_);
  if (degraded()) {
    return Status::Unavailable("wal: writer degraded, reopen to recover");
  }
  switch (MCTDB_FAILPOINT("wal.append")) {
    case failpoint::Fault::kError:
      // Clean abort: the record never reached the buffer; the store is
      // untouched and later appends continue normally.
      return Status::IoError("wal: injected append fault");
    case failpoint::Fault::kTruncate: {
      // Torn append: half the encoded record reaches the OS (ahead of an
      // fsync it will never get). Recovery cuts this tail; the writer
      // degrades because its buffered stream is no longer contiguous
      // with the file.
      std::string rec;
      EncodeWalRecord(next_lsn_, type, payload, &rec);
      {
        // The injected bytes share the fd with group-commit leaders,
        // which run WriteAndSync without append_mu_. Holding commit_mu_
        // blocks a new leader from starting; if a sync is already in
        // flight we skip the file write entirely rather than interleave
        // torn bytes into the middle of its batch (the writer still
        // degrades either way, which is the fault being modeled).
        std::unique_lock clk(commit_mu_);
        if (!sync_in_progress_) {
          (void)WriteRaw(rec.data(), rec.size() / 2);
        }
      }
      degraded_.store(true, std::memory_order_release);
      return Status::IoError("wal: injected torn append");
    }
    case failpoint::Fault::kNone:
      break;
  }
  Lsn lsn = next_lsn_++;
  EncodeWalRecord(lsn, type, payload, &buffer_);
  last_buffered_ = lsn;
  appends_.fetch_add(1, std::memory_order_relaxed);
  pending_records_.fetch_add(1, std::memory_order_relaxed);
  pending_bytes_.store(buffer_.size(), std::memory_order_relaxed);
  flight::Record(flight::Subsystem::kWal, flight::Site::kWalAppend,
                 obs::CurrentTraceId(), lsn);
  return lsn;
}

Status LogWriter::WriteAndSync(const std::string& batch) {
  switch (MCTDB_FAILPOINT("wal.fsync")) {
    case failpoint::Fault::kError:
      return Status::IoError("wal: injected fsync fault");
    case failpoint::Fault::kTruncate:
      // Half the batch lands before the failure: a torn multi-record tail.
      (void)WriteRaw(batch.data(), batch.size() / 2);
      return Status::IoError("wal: injected torn batch write");
    case failpoint::Fault::kNone:
      break;
  }
  MCTDB_RETURN_IF_ERROR(WriteRaw(batch.data(), batch.size()));
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return Status::IoError(std::string("wal: fsync failed: ") +
                           std::strerror(errno));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  durable_bytes_.fetch_add(batch.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status LogWriter::Commit(Lsn lsn) {
  std::unique_lock lk(commit_mu_);
  while (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    if (degraded()) {
      return Status::Unavailable("wal: writer degraded, reopen to recover");
    }
    if (sync_in_progress_) {
      // A leader's fsync is in flight; it may already cover our LSN.
      commit_cv_.wait(lk);
      continue;
    }
    // Become the leader: steal the whole batch, sync once for everyone.
    sync_in_progress_ = true;
    lk.unlock();
    std::string batch;
    Lsn batch_lsn;
    {
      std::lock_guard alk(append_mu_);
      batch.swap(buffer_);
      batch_lsn = last_buffered_;
      pending_records_.store(0, std::memory_order_relaxed);
      pending_bytes_.store(0, std::memory_order_relaxed);
    }
    Status s = Status::OK();
    if (!batch.empty()) {
      s = WriteAndSync(batch);
    } else if (batch_lsn < lsn) {
      s = Status::Internal("wal: Commit for an LSN never appended");
    }
    lk.lock();
    sync_in_progress_ = false;
    if (s.ok()) {
      Lsn prev = durable_lsn_.load(std::memory_order_relaxed);
      if (batch_lsn > prev) {
        durable_lsn_.store(batch_lsn, std::memory_order_release);
      }
      // One event per physical fsync, tagged with the leader's trace and
      // the batch's high LSN — the causal join point where piggybacked
      // requests' durability rides another trace's sync.
      flight::Record(flight::Subsystem::kWal, flight::Site::kWalFsync,
                     obs::CurrentTraceId(), batch_lsn);
    } else {
      degraded_.store(true, std::memory_order_release);
    }
    commit_cv_.notify_all();
    MCTDB_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status LogWriter::Reset(Lsn checkpoint_lsn) {
  std::scoped_lock lk(commit_mu_, append_mu_);
  if (degraded()) {
    return Status::Unavailable("wal: writer degraded, reopen to recover");
  }
  if (!buffer_.empty()) {
    return Status::Internal("wal: Reset with uncommitted records buffered");
  }
  std::string header;
  EncodeWalHeader({fingerprint_, checkpoint_lsn}, &header);
  if (fd_ < 0) {
    mem_.assign(header);
  } else {
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
      degraded_.store(true, std::memory_order_release);
      return Status::IoError("wal: log truncate failed");
    }
    MCTDB_RETURN_IF_ERROR(WriteRaw(header.data(), header.size()));
    if (::fsync(fd_) != 0) {
      degraded_.store(true, std::memory_order_release);
      return Status::IoError("wal: header fsync failed");
    }
  }
  durable_bytes_.store(header.size(), std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace mctdb::wal
