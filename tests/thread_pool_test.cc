#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/bounded_queue.h"
#include "common/latch.h"

namespace mctdb {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  CountdownLatch latch(100);
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&] {
        counter.fetch_add(1);
        latch.CountDown();
      }));
    }
    latch.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool::Options options;
    options.num_threads = 2;
    options.start_paused = true;
    ThreadPool pool(options);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 0) << "paused pool must not run work";
    // Close() implies resume; the destructor drains the backlog.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksCanSubmitContinuations) {
  std::atomic<int> counter{0};
  CountdownLatch latch(2);
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      counter.fetch_add(1);
      latch.CountDown();
      pool.Submit([&] {
        counter.fetch_add(1);
        latch.CountDown();
      });
    });
    latch.Wait();
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, PausedPoolReleasesOnResume) {
  std::atomic<int> counter{0};
  ThreadPool::Options options;
  options.num_threads = 2;
  options.start_paused = true;
  ThreadPool pool(options);
  CountdownLatch latch(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      latch.CountDown();
    });
  }
  EXPECT_EQ(pool.queue_depth(), 10u);
  EXPECT_EQ(counter.load(), 0);
  pool.Resume();
  latch.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "full queue must reject";
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q;
  q.TryPush(1);
  q.TryPush(2);
  q.Close();
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(CountdownLatchTest, WaitForTimesOut) {
  CountdownLatch latch(1);
  EXPECT_FALSE(latch.WaitFor(0.01));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(0.01));
  EXPECT_EQ(latch.count(), 0u);
}

}  // namespace
}  // namespace mctdb
