#include "service/plan_cache.h"

namespace mctsvc {

std::string PlanCache::Key(uint64_t store_fingerprint,
                           const std::string& schema_name,
                           const std::string& canonical_query) {
  std::string key = std::to_string(store_fingerprint);
  key += '/';
  key += schema_name;
  key += '/';
  key += canonical_query;
  return key;
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    mctdb::Lsn visible_lsn,
                                                    LookupOutcome* outcome) {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    *outcome = LookupOutcome::kMiss;
    return nullptr;
  }
  const std::shared_ptr<const CachedPlan>& entry = it->second.entry;
  if (entry->built_lsn != visible_lsn ||
      entry->generation != generation_.load(std::memory_order_acquire)) {
    // Visibility moved since the plan was built: an update committed or a
    // checkpoint relabeled. Drop the entry so the caller re-plans.
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    *outcome = LookupOutcome::kInvalidated;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *outcome = LookupOutcome::kHit;
  return entry;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

size_t PlanCache::size() const {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  return map_.size();
}

}  // namespace mctsvc
