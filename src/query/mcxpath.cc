#include "query/mcxpath.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "query/structural_join.h"

namespace mctdb::query {

std::string McXPath::ToString() const {
  std::string out;
  for (const McXPathStep& s : steps) {
    out += s.descendant ? "//" : "/";
    if (!s.color.empty()) out += "(" + s.color + ")";
    out += s.tag;
    if (!s.pred_attr.empty()) {
      out += "[@" + s.pred_attr + "='" + s.pred_value + "']";
    }
  }
  return out;
}

Result<McXPath> ParseMcXPath(std::string_view text) {
  McXPath path;
  size_t pos = 0;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StringPrintf("offset %zu: %s", pos, msg.c_str()));
  };
  auto name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  };
  while (pos < text.size()) {
    McXPathStep step;
    if (text[pos] != '/') return error("expected '/'");
    ++pos;
    if (pos < text.size() && text[pos] == '/') {
      step.descendant = true;
      ++pos;
    }
    if (pos < text.size() && text[pos] == '(') {
      ++pos;
      size_t start = pos;
      while (pos < text.size() && text[pos] != ')') ++pos;
      if (pos == text.size()) return error("unterminated color");
      step.color = std::string(text.substr(start, pos - start));
      ++pos;
    }
    size_t start = pos;
    while (pos < text.size() && name_char(text[pos])) ++pos;
    if (pos == start) return error("expected tag name");
    step.tag = std::string(text.substr(start, pos - start));
    if (pos < text.size() && text[pos] == '[') {
      ++pos;
      if (pos >= text.size() || text[pos] != '@') {
        return error("expected '@attr' predicate");
      }
      ++pos;
      start = pos;
      while (pos < text.size() && name_char(text[pos])) ++pos;
      step.pred_attr = std::string(text.substr(start, pos - start));
      if (pos + 1 >= text.size() || text[pos] != '=' || text[pos + 1] != '\'') {
        return error("expected ='value'");
      }
      pos += 2;
      start = pos;
      while (pos < text.size() && text[pos] != '\'') ++pos;
      if (pos == text.size()) return error("unterminated value");
      step.pred_value = std::string(text.substr(start, pos - start));
      ++pos;
      if (pos >= text.size() || text[pos] != ']') return error("expected ']'");
      ++pos;
    }
    path.steps.push_back(std::move(step));
  }
  if (path.steps.empty()) return Status::InvalidArgument("empty path");
  return path;
}

namespace {

using storage::ElemId;
using storage::LabelEntry;

Result<mct::ColorId> ResolveColor(const mct::MctSchema& schema,
                                  const std::string& name) {
  for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
    if (schema.color_name(c) == name) return c;
  }
  return Status::NotFound("no color named '" + name + "'");
}

Result<er::NodeId> ResolveTag(const er::ErDiagram& diagram,
                              const std::string& name) {
  auto node = diagram.FindNode(name);
  if (!node.has_value()) {
    return Status::NotFound("no element type named '" + name + "'");
  }
  return *node;
}

}  // namespace

Result<McXPathResult> EvalMcXPath(const McXPath& path,
                                  const storage::MctStore& store) {
  const mct::MctSchema& schema = store.schema();
  McXPathResult result;
  std::vector<LabelEntry> binding;
  mct::ColorId color = 0;
  bool first = true;

  for (const McXPathStep& step : path.steps) {
    mct::ColorId step_color = color;
    if (!step.color.empty()) {
      MCTDB_ASSIGN_OR_RETURN(step_color, ResolveColor(schema, step.color));
    }
    MCTDB_ASSIGN_OR_RETURN(er::NodeId tag,
                           ResolveTag(schema.diagram(), step.tag));
    // Scan the step tag's posting in the step color.
    std::vector<LabelEntry> candidates;
    const storage::PostingMeta* meta = store.Posting(step_color, tag);
    if (meta != nullptr) {
      storage::PostingCursor cursor(store.buffer_pool(), meta);
      LabelEntry e;
      while (cursor.Next(&e)) {
        if (!step.pred_attr.empty()) {
          const std::string* v = store.AttrValue(e.elem, step.pred_attr);
          if (v == nullptr || *v != step.pred_value) continue;
        }
        candidates.push_back(e);
      }
      MCTDB_RETURN_IF_ERROR(cursor.status());
    }
    if (first) {
      binding = std::move(candidates);
      first = false;
    } else {
      // Color crossing: re-anchor the current binding.
      if (step_color != color) {
        ++result.color_crossings;
        std::vector<LabelEntry> crossed;
        std::unordered_set<ElemId> seen;
        for (const LabelEntry& e : binding) {
          const storage::ElementMeta& meta2 = store.element(e.elem);
          for (ElemId sibling :
               store.ElementsFor(meta2.er_node, meta2.logical)) {
            LabelEntry label;
            if (store.Label(step_color, sibling, &label) &&
                seen.insert(label.elem).second) {
              crossed.push_back(label);
            }
          }
        }
        std::sort(crossed.begin(), crossed.end(),
                  [](const LabelEntry& a, const LabelEntry& b) {
                    return a.start < b.start;
                  });
        binding = std::move(crossed);
      }
      StructuralJoinOptions opts;
      opts.parent_child_only = !step.descendant;
      ++result.structural_joins;
      binding = StackTreeJoin(binding, candidates, opts).descendants;
    }
    color = step_color;
  }
  result.elements.reserve(binding.size());
  for (const LabelEntry& e : binding) result.elements.push_back(e.elem);
  return result;
}

}  // namespace mctdb::query
