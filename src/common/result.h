// Result<T>: value-or-Status, the return type for fallible producers.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mctdb {

/// Holds either a T or a non-OK Status. Analogous to absl::StatusOr /
/// rocksdb's (Status, out-param) pairs, but keeps call sites terse.
/// [[nodiscard]]: silently dropping an error is always a bug (enforced by
/// -Werror=unused-result).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return some_t;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error: `return Status::NotFound(...);`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; caller must have checked ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace mctdb

/// Evaluate a Result-returning expression; on error propagate the Status,
/// otherwise bind the value to `lhs`.
#define MCTDB_ASSIGN_OR_RETURN(lhs, expr)            \
  auto MCTDB_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!MCTDB_CONCAT_(_res_, __LINE__).ok())          \
    return MCTDB_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(MCTDB_CONCAT_(_res_, __LINE__)).value()

#define MCTDB_CONCAT_INNER_(a, b) a##b
#define MCTDB_CONCAT_(a, b) MCTDB_CONCAT_INNER_(a, b)
