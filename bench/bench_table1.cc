// Table 1 reproduction: TPC-W data statistics and query processing time for
// the seven schemas (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).
//
// The paper ran the full TPC-W data set on TIMBER/Pentium III; this harness
// regenerates the same table at a configurable scale (arg 1 or MCTDB_SCALE,
// default 1.0 ~ 20k logical nodes). Absolute numbers differ from the paper;
// the validated *shape* (see EXPERIMENTS.md): node-normal schemas tie on
// element/attribute/content counts, storage grows EN/MCMR < DR < UNDR <
// DEEP, SHALLOW suffers on join-heavy reads, DEEP/UNDR win reads but pay
// duplicates and update blowups, MCMR/DR sit in between with MCMR cheapest
// on single-element updates.
#include "bench/bench_util.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  std::printf("=== Table 1: TPC-W Data Statistics and Query Processing "
              "Time (scale %.2f) ===\n\n",
              scale);
  TpcwSetup setup(scale);

  // --- top: data statistics ------------------------------------------------
  std::printf("%-22s", "");
  for (const auto& schema : setup.schemas) {
    std::printf("%12s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(22 + 12 * setup.schemas.size());
  auto stat_row = [&](const char* label, auto getter) {
    std::printf("%-22s", label);
    for (const auto& store : setup.stores) {
      std::printf("%12s", getter(store->Stats()).c_str());
    }
    std::printf("\n");
  };
  stat_row("Num. Elements", [](const storage::StoreStats& s) {
    return std::to_string(s.num_elements);
  });
  stat_row("Num. Attributes", [](const storage::StoreStats& s) {
    return std::to_string(s.num_attributes);
  });
  stat_row("Num. Content Nodes", [](const storage::StoreStats& s) {
    return std::to_string(s.num_content_nodes);
  });
  stat_row("Data MBytes", [](const storage::StoreStats& s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", s.data_mbytes);
    return std::string(buf);
  });
  stat_row("Num. Colors", [](const storage::StoreStats& s) {
    return std::to_string(s.num_colors);
  });

  // --- bottom: query times ---------------------------------------------------
  std::printf("\n%-6s%-14s", "Query", "Num.Results");
  for (const auto& schema : setup.schemas) {
    std::printf("%12s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(20 + 12 * setup.schemas.size());

  for (const std::string& name : setup.w.figure_queries) {
    const query::AssociationQuery* q = setup.w.Find(name);
    std::string results = "?";
    std::vector<std::string> cells;
    for (size_t i = 0; i < setup.schemas.size(); ++i) {
      auto plan = query::PlanQuery(*q, setup.schemas[i]);
      if (!plan.ok()) {
        cells.push_back("plan-err");
        continue;
      }
      query::Executor exec(setup.stores[i].get());
      auto result = exec.Execute(*plan);
      if (!result.ok()) {
        cells.push_back("exec-err");
        continue;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", result->elapsed_seconds);
      cells.push_back(buf);
      // Result count column: unique results, with the duplicate surplus of
      // redundant schemas in parentheses (the paper's convention).
      if (i == 0 || results == "?") {
        size_t unique = q->is_update() ? result->logicals_updated
                                       : result->unique_count;
        results = std::to_string(unique);
      }
      size_t raw = q->is_update() ? result->elements_updated
                                  : result->raw_count;
      size_t unique = q->is_update() ? result->logicals_updated
                                     : result->unique_count;
      if (raw > unique) {
        results += "(" + std::to_string(raw) + "@" +
                   setup.schemas[i].name() + ")";
      }
    }
    std::printf("%-6s%-14s", name.c_str(), results.c_str());
    for (const std::string& cell : cells) std::printf("%12s", cell.c_str());
    std::printf("\n");
  }
  std::printf(
      "\n(times in seconds; parenthesized = stored-element matches incl. "
      "duplicates on that schema)\n");
  return 0;
}
