// Shared main() for the google-benchmark micro benches, so they honor
// the same `--json FILE` flag as the table/figure binaries: the flag is
// rewritten into --benchmark_out=FILE --benchmark_out_format=json before
// benchmark::Initialize consumes the argument vector. Unknown arguments
// are rejected (previously they were silently ignored).
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace mctdb::bench {

inline int MicroBenchMain(int argc, char** argv) {
  // Own the rewritten argv storage for the life of the run.
  static std::vector<std::string>* storage = new std::vector<std::string>();
  // Reserve up front: a push_back reallocation would invalidate the
  // c_str pointers already handed to `args`.
  storage->reserve(2 * static_cast<size_t>(argc) + 2);
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string out_path;
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strncmp(argv[i], "--json=", 7)) {
      out_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
      continue;
    }
    storage->push_back("--benchmark_out=" + out_path);
    args.push_back(storage->back().data());
    storage->push_back("--benchmark_out_format=json");
    args.push_back(storage->back().data());
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mctdb::bench

#define MCTDB_MICRO_BENCH_MAIN()                                \
  int main(int argc, char** argv) {                             \
    return mctdb::bench::MicroBenchMain(argc, argv);            \
  }
