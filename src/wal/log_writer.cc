#include "wal/log_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"

namespace mctdb::wal {

namespace flight = obs::flight;

namespace {

Status UnavailableForKind(DegradeKind kind) {
  return kind == DegradeKind::kSpace
             ? Status::Unavailable(
                   "wal: no space left on device; writes paused until space "
                   "recovers")
             : Status::Unavailable("wal: writer degraded, reopen to recover");
}

}  // namespace

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& path,
                                                   uint64_t fingerprint,
                                                   Lsn checkpoint_lsn,
                                                   Lsn durable_lsn) {
  std::unique_ptr<LogWriter> w(new LogWriter());
  w->fingerprint_ = fingerprint;
  w->durable_lsn_.store(durable_lsn);
  w->next_lsn_ = durable_lsn + 1;
  if (path.empty()) {
    WalHeader h{fingerprint, checkpoint_lsn};
    EncodeWalHeader(h, &w->mem_);
    w->durable_bytes_.store(w->mem_.size());
    return w;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("wal: open failed: " + path + ": " +
                           std::strerror(errno));
  }
  w->fd_ = fd;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError("wal: fstat failed: " + path);
  }
  if (st.st_size == 0) {
    std::string header;
    EncodeWalHeader({fingerprint, checkpoint_lsn}, &header);
    Status s = w->WriteRaw(header.data(), header.size());
    if (s.ok() && ::fsync(fd) != 0) {
      s = Status::IoError("wal: header fsync failed");
    }
    MCTDB_RETURN_IF_ERROR(s);
    w->durable_bytes_.store(header.size());
  } else {
    // Recovered log: append after the (already truncated) valid prefix.
    if (::lseek(fd, 0, SEEK_END) < 0) {
      return Status::IoError("wal: seek failed: " + path);
    }
    w->durable_bytes_.store(static_cast<uint64_t>(st.st_size));
  }
  return w;
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogWriter::WriteRaw(const char* data, size_t n) {
  if (fd_ < 0) {
    mem_.append(data, n);
    return Status::OK();
  }
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      last_errno_.store(errno, std::memory_order_relaxed);
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

void LogWriter::DegradeFromErrno() {
  DegradeKind next = last_errno_.load(std::memory_order_relaxed) == ENOSPC
                         ? DegradeKind::kSpace
                         : DegradeKind::kHard;
  // kHard is terminal: a later ENOSPC never downgrades it back to the
  // re-probeable state.
  if (degrade_.load(std::memory_order_relaxed) == DegradeKind::kHard) return;
  degrade_.store(next, std::memory_order_release);
}

Result<Lsn> LogWriter::Append(RecordType type, std::string_view payload) {
  std::lock_guard lk(append_mu_);
  if (degraded()) {
    return UnavailableForKind(degrade_kind());
  }
  switch (MCTDB_FAILPOINT("wal.append")) {
    case failpoint::Fault::kError:
      // Clean abort: the record never reached the buffer; the store is
      // untouched and later appends continue normally.
      return Status::IoError("wal: injected append fault");
    case failpoint::Fault::kEnospc:
      // The disk filled before this record could be reserved: a clean,
      // errno-faithful refusal. Nothing is buffered, so the writer enters
      // the recoverable kSpace state — Reprobe clears it once the
      // failpoint (or the real disk) relents.
      last_errno_.store(ENOSPC, std::memory_order_relaxed);
      DegradeFromErrno();
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(ENOSPC));
    case failpoint::Fault::kEio:
      // Media error on append: clean abort but the device can't be
      // trusted — sticky hard degradation, reopen required.
      last_errno_.store(EIO, std::memory_order_relaxed);
      DegradeFromErrno();
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(EIO));
    case failpoint::Fault::kTruncate: {
      // Torn append: half the encoded record reaches the OS (ahead of an
      // fsync it will never get). Recovery cuts this tail; the writer
      // degrades because its buffered stream is no longer contiguous
      // with the file.
      std::string rec;
      EncodeWalRecord(next_lsn_, type, payload, &rec);
      {
        // The injected bytes share the fd with group-commit leaders,
        // which run WriteAndSync without append_mu_. Holding commit_mu_
        // blocks a new leader from starting; if a sync is already in
        // flight we skip the file write entirely rather than interleave
        // torn bytes into the middle of its batch (the writer still
        // degrades either way, which is the fault being modeled).
        std::unique_lock clk(commit_mu_);
        if (!sync_in_progress_) {
          (void)WriteRaw(rec.data(), rec.size() / 2);
        }
      }
      last_errno_.store(0, std::memory_order_relaxed);
      degrade_.store(DegradeKind::kHard, std::memory_order_release);
      return Status::IoError("wal: injected torn append");
    }
    case failpoint::Fault::kNone:
      break;
  }
  Lsn lsn = next_lsn_++;
  EncodeWalRecord(lsn, type, payload, &buffer_);
  last_buffered_ = lsn;
  appends_.fetch_add(1, std::memory_order_relaxed);
  pending_records_.fetch_add(1, std::memory_order_relaxed);
  pending_bytes_.store(buffer_.size(), std::memory_order_relaxed);
  flight::Record(flight::Subsystem::kWal, flight::Site::kWalAppend,
                 obs::CurrentTraceId(), lsn);
  return lsn;
}

Status LogWriter::WriteAndSync(const std::string& batch) {
  switch (MCTDB_FAILPOINT("wal.fsync")) {
    case failpoint::Fault::kError:
      last_errno_.store(0, std::memory_order_relaxed);
      return Status::IoError("wal: injected fsync fault");
    case failpoint::Fault::kEnospc:
      // The batch write fails exactly as a full disk would: nothing of
      // the batch is on stable storage, errno says ENOSPC. The caller
      // parks the batch for Reprobe.
      last_errno_.store(ENOSPC, std::memory_order_relaxed);
      return Status::IoError(std::string("wal: write failed: ") +
                             std::strerror(ENOSPC));
    case failpoint::Fault::kEio:
      last_errno_.store(EIO, std::memory_order_relaxed);
      return Status::IoError(std::string("wal: fsync failed: ") +
                             std::strerror(EIO));
    case failpoint::Fault::kTruncate:
      // Half the batch lands before the failure: a torn multi-record tail.
      (void)WriteRaw(batch.data(), batch.size() / 2);
      last_errno_.store(0, std::memory_order_relaxed);
      return Status::IoError("wal: injected torn batch write");
    case failpoint::Fault::kNone:
      break;
  }
  MCTDB_RETURN_IF_ERROR(WriteRaw(batch.data(), batch.size()));
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    last_errno_.store(errno, std::memory_order_relaxed);
    return Status::IoError(std::string("wal: fsync failed: ") +
                           std::strerror(errno));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  durable_bytes_.fetch_add(batch.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status LogWriter::Commit(Lsn lsn) {
  std::unique_lock lk(commit_mu_);
  while (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    if (degraded()) {
      return UnavailableForKind(degrade_kind());
    }
    if (sync_in_progress_) {
      // A leader's fsync is in flight; it may already cover our LSN.
      commit_cv_.wait(lk);
      continue;
    }
    // Become the leader: steal the whole batch, sync once for everyone.
    sync_in_progress_ = true;
    lk.unlock();
    std::string batch;
    Lsn batch_lsn;
    uint64_t batch_records = 0;
    {
      std::lock_guard alk(append_mu_);
      batch.swap(buffer_);
      batch_lsn = last_buffered_;
      batch_records = pending_records_.exchange(0, std::memory_order_relaxed);
      pending_bytes_.store(0, std::memory_order_relaxed);
    }
    Status s = Status::OK();
    if (!batch.empty()) {
      s = WriteAndSync(batch);
    } else if (batch_lsn < lsn) {
      s = Status::Internal("wal: Commit for an LSN never appended");
    }
    if (!s.ok()) {
      // Degrade FIRST so appenders start refusing, then decide the batch's
      // fate. Out of space (kSpace): nothing of the batch is trusted on
      // disk, so re-stash it at the FRONT of the buffer — records appended
      // while our sync was in flight sort after it, keeping the buffered
      // stream contiguous with the durable prefix for Reprobe to flush.
      // Hard faults (and the never-appended Internal error) drop the
      // batch; only a reopen (recovery truncates the torn tail) can
      // resume.
      if (batch.empty()) {
        degrade_.store(DegradeKind::kHard, std::memory_order_release);
      } else {
        DegradeFromErrno();
        if (degrade_kind() == DegradeKind::kSpace) {
          std::lock_guard alk(append_mu_);
          buffer_.insert(0, batch);
          pending_records_.fetch_add(batch_records,
                                     std::memory_order_relaxed);
          pending_bytes_.store(buffer_.size(), std::memory_order_relaxed);
        }
      }
    }
    lk.lock();
    sync_in_progress_ = false;
    if (s.ok()) {
      Lsn prev = durable_lsn_.load(std::memory_order_relaxed);
      if (batch_lsn > prev) {
        durable_lsn_.store(batch_lsn, std::memory_order_release);
      }
      // One event per physical fsync, tagged with the leader's trace and
      // the batch's high LSN — the causal join point where piggybacked
      // requests' durability rides another trace's sync.
      flight::Record(flight::Subsystem::kWal, flight::Site::kWalFsync,
                     obs::CurrentTraceId(), batch_lsn);
    }
    commit_cv_.notify_all();
    MCTDB_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status LogWriter::Reprobe() {
  std::unique_lock lk(commit_mu_);
  while (sync_in_progress_) {
    commit_cv_.wait(lk);
  }
  const DegradeKind kind = degrade_kind();
  if (kind == DegradeKind::kNone) return Status::OK();
  if (kind == DegradeKind::kHard) {
    return UnavailableForKind(kind);
  }
  sync_in_progress_ = true;
  lk.unlock();
  std::string batch;
  Lsn batch_lsn;
  uint64_t batch_records = 0;
  {
    // Appends refuse while degraded, so the buffer is exactly the parked
    // batch (plus any records that slipped in before the degrade flag was
    // visible — still contiguous).
    std::lock_guard alk(append_mu_);
    batch.swap(buffer_);
    batch_lsn = last_buffered_;
    batch_records = pending_records_.exchange(0, std::memory_order_relaxed);
    pending_bytes_.store(0, std::memory_order_relaxed);
  }
  // Cut whatever torn tail the failed write left past the durable prefix,
  // so a successful probe resumes a contiguous log.
  Status s = Status::OK();
  const auto durable = static_cast<off_t>(durable_bytes_.load());
  if (fd_ >= 0) {
    if (::ftruncate(fd_, durable) != 0 ||
        ::lseek(fd_, durable, SEEK_SET) < 0) {
      last_errno_.store(errno, std::memory_order_relaxed);
      s = Status::IoError(std::string("wal: reprobe truncate failed: ") +
                          std::strerror(errno));
    }
  } else {
    mem_.resize(static_cast<size_t>(durable));
  }
  if (s.ok()) {
    // Replays the parked records through the normal write+fsync path; a
    // still-armed wal.fsync failpoint (or a still-full disk) fails here
    // and keeps the writer degraded. An empty batch still fsyncs: the
    // probe is a real I/O question, not a flag flip.
    s = WriteAndSync(batch);
  }
  if (!s.ok()) {
    DegradeFromErrno();
    if (degrade_kind() == DegradeKind::kSpace) {
      std::lock_guard alk(append_mu_);
      buffer_.insert(0, batch);
      pending_records_.fetch_add(batch_records, std::memory_order_relaxed);
      pending_bytes_.store(buffer_.size(), std::memory_order_relaxed);
    }
  }
  lk.lock();
  sync_in_progress_ = false;
  if (s.ok()) {
    Lsn prev = durable_lsn_.load(std::memory_order_relaxed);
    if (batch_lsn != kNoLsn && batch_lsn > prev) {
      durable_lsn_.store(batch_lsn, std::memory_order_release);
    }
    flight::Record(flight::Subsystem::kWal, flight::Site::kWalFsync,
                   obs::CurrentTraceId(), batch_lsn);
    last_errno_.store(0, std::memory_order_relaxed);
    degrade_.store(DegradeKind::kNone, std::memory_order_release);
  }
  commit_cv_.notify_all();
  return s;
}

Status LogWriter::Reset(Lsn checkpoint_lsn) {
  std::scoped_lock lk(commit_mu_, append_mu_);
  if (degraded()) {
    return UnavailableForKind(degrade_kind());
  }
  if (!buffer_.empty()) {
    return Status::Internal("wal: Reset with uncommitted records buffered");
  }
  std::string header;
  EncodeWalHeader({fingerprint_, checkpoint_lsn}, &header);
  if (fd_ < 0) {
    mem_.assign(header);
  } else {
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
      last_errno_.store(errno, std::memory_order_relaxed);
      degrade_.store(DegradeKind::kHard, std::memory_order_release);
      return Status::IoError("wal: log truncate failed");
    }
    MCTDB_RETURN_IF_ERROR(WriteRaw(header.data(), header.size()));
    if (::fsync(fd_) != 0) {
      last_errno_.store(errno, std::memory_order_relaxed);
      degrade_.store(DegradeKind::kHard, std::memory_order_release);
      return Status::IoError("wal: header fsync failed");
    }
  }
  durable_bytes_.store(header.size(), std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace mctdb::wal
