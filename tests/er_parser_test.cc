#include "er/er_parser.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::er {
namespace {

constexpr const char* kSample = R"(
diagram shop
# entities
entity country { key name attr currency string }
entity address { key id attr city string }
entity customer { key id attr discount int }

rel in: country (1) -- address (m!)
rel has: address (1) -- customer (m)
)";

TEST(ErParserTest, ParsesEntitiesAndRelationships) {
  auto result = ParseErDiagram(kSample);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ErDiagram& d = *result;
  EXPECT_EQ(d.name(), "shop");
  EXPECT_EQ(d.num_entities(), 3u);
  EXPECT_EQ(d.num_relationships(), 2u);

  NodeId in = *d.FindNode("in");
  // country (1) -- address (m): country participates in MANY 'in' instances.
  EXPECT_EQ(d.node(in).endpoints[0].target, *d.FindNode("country"));
  EXPECT_EQ(d.node(in).endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(d.node(in).endpoints[1].participation, Participation::kOne);
  EXPECT_EQ(d.node(in).endpoints[1].totality, Totality::kTotal);
}

TEST(ErParserTest, ParsesAttributes) {
  auto result = ParseErDiagram(kSample);
  ASSERT_TRUE(result.ok());
  const ErNode& customer = result->node(*result->FindNode("customer"));
  ASSERT_EQ(customer.attributes.size(), 2u);
  EXPECT_TRUE(customer.attributes[0].is_key);
  EXPECT_EQ(customer.attributes[1].name, "discount");
  EXPECT_EQ(customer.attributes[1].type, AttrType::kInt);
}

TEST(ErParserTest, ManyManyRatio) {
  auto r = ParseErDiagram("diagram t\nentity a\nentity b\n"
                          "rel mn: a (m) -- b (m)\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ErNode& mn = r->node(*r->FindNode("mn"));
  EXPECT_EQ(mn.endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(mn.endpoints[1].participation, Participation::kMany);
}

TEST(ErParserTest, OneOneRatio) {
  auto r = ParseErDiagram("diagram t\nentity a\nentity b\n"
                          "rel oo: a (1) -- b (1)\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ErNode& oo = r->node(*r->FindNode("oo"));
  EXPECT_EQ(oo.endpoints[0].participation, Participation::kOne);
  EXPECT_EQ(oo.endpoints[1].participation, Participation::kOne);
}

TEST(ErParserTest, RelationshipAttributes) {
  auto result = ParseErDiagram(
      "diagram t\nentity a\nentity b\n"
      "rel r: a (1) -- b (m) { attr qty int }\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ErNode& r = result->node(*result->FindNode("r"));
  ASSERT_EQ(r.attributes.size(), 1u);
  EXPECT_EQ(r.attributes[0].name, "qty");
}

TEST(ErParserTest, CommentsAndBlankLinesIgnored) {
  auto result = ParseErDiagram(
      "diagram t\n\n# whole line comment\nentity a # trailing\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->FindNode("a").has_value());
}

TEST(ErParserTest, MissingHeaderRejected) {
  EXPECT_TRUE(ParseErDiagram("entity a\n").status().IsInvalidArgument());
}

TEST(ErParserTest, UnknownEndpointRejected) {
  auto r = ParseErDiagram("diagram t\nentity a\nrel r: a (1) -- ghost (m)\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST(ErParserTest, BadCardinalityRejected) {
  auto r = ParseErDiagram("diagram t\nentity a\nentity b\nrel r: a (2) -- b (m)\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cardinality"), std::string::npos);
}

TEST(ErParserTest, DuplicateNodeRejected) {
  auto r = ParseErDiagram("diagram t\nentity a\nentity a\n");
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ErParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseErDiagram("diagram t\nentity a\nbogus stuff\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(ErParserTest, HigherOrderEndpoint) {
  auto r = ParseErDiagram(
      "diagram t\nentity a\nentity b\nentity lab\n"
      "rel base: a (1) -- b (m)\n"
      "rel verifies: lab (1) -- base (m)\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->Validate().ok());
}

TEST(ErParserTest, FormatRoundTripsCatalog) {
  for (const ErDiagram& original : EvaluationCollection()) {
    std::string text = FormatErDiagram(original);
    auto reparsed = ParseErDiagram(text);
    ASSERT_TRUE(reparsed.ok())
        << original.name() << ": " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->name(), original.name());
    ASSERT_EQ(reparsed->num_nodes(), original.num_nodes()) << original.name();
    for (NodeId i = 0; i < original.num_nodes(); ++i) {
      const ErNode& a = original.node(i);
      const ErNode& b = reparsed->node(i);
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.attributes.size(), b.attributes.size());
      if (a.is_relationship()) {
        for (int ep = 0; ep < 2; ++ep) {
          EXPECT_EQ(a.endpoints[ep].target, b.endpoints[ep].target);
          EXPECT_EQ(a.endpoints[ep].participation,
                    b.endpoints[ep].participation);
          EXPECT_EQ(a.endpoints[ep].totality, b.endpoints[ep].totality);
        }
      }
    }
  }
}

}  // namespace
}  // namespace mctdb::er
