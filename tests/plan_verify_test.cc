#include "analysis/plan_verify.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "query/planner.h"
#include "workload/workload.h"

namespace mctdb::analysis {
namespace {

using design::Strategy;
using query::QueryPlan;
using query::Segment;
using query::SegmentKind;

TEST(PlanVerifyTest, EveryWorkloadPlanIsCleanOnEveryStrategy) {
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    for (const query::AssociationQuery& q : w.queries) {
      auto plan = query::PlanQuery(q, schema);
      ASSERT_TRUE(plan.ok())
          << q.name << " on " << schema.name() << ": "
          << plan.status().ToString();
      DiagnosticReport report = VerifyPlan(*plan);
      EXPECT_TRUE(report.empty())
          << q.name << " on " << schema.name() << ":\n" << report.ToText();
    }
  }
}

TEST(PlanVerifyTest, RejectsUnboundPlan) {
  QueryPlan plan;  // not bound to query or schema
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN001")) << report.ToText();
}

/// Fixture: a multi-edge TPC-W plan on DR (all-structural) to corrupt.
struct CorruptionFixture {
  workload::Workload w;
  er::ErGraph graph;
  design::Designer designer;
  mct::MctSchema schema;

  CorruptionFixture()
      : w(workload::TpcwWorkload(0.03)), graph(w.diagram),
        designer(graph), schema(designer.Design(Strategy::kDr)) {}

  /// Returns a verified-clean plan for the named query.
  QueryPlan Plan(const char* name) {
    const query::AssociationQuery* q = w.Find(name);
    EXPECT_NE(q, nullptr);
    auto plan = query::PlanQuery(*q, schema);
    EXPECT_TRUE(plan.ok());
    EXPECT_TRUE(VerifyPlan(*plan).empty());
    return *std::move(plan);
  }
};

TEST(PlanVerifyTest, DetectsMissingEdgePlan) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  plan.edges.pop_back();  // a pattern node just lost its operator
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN003")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsDuplicateEdgePlan) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  plan.edges.push_back(plan.edges.back());
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN002")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsBadSegmentInterval) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  ASSERT_FALSE(plan.edges[0].segments.empty());
  Segment& seg = plan.edges[0].segments[0];
  seg.to_index = seg.from_index;  // empty interval: no join precondition
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN004")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsCoverageGap) {
  CorruptionFixture f;
  // Find a plan with a multi-step association so a tail can be uncovered.
  QueryPlan plan = f.Plan("Q2");
  bool corrupted = false;
  for (auto& edge : plan.edges) {
    if (edge.segments.empty()) continue;
    Segment& last = edge.segments.back();
    if (last.to_index - last.from_index >= 1 &&
        last.kind != SegmentKind::kValueJoin) {
      last.to_index -= 1;  // tail of the path now uncovered
      if (last.kind == SegmentKind::kStepChain) {
        last.num_structural_joins = last.to_index - last.from_index;
      }
      corrupted = true;
      break;
    }
  }
  if (!corrupted) GTEST_SKIP() << "no multi-step structural tail segment";
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN005")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsJoinArityMismatch) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  ASSERT_FALSE(plan.edges[0].segments.empty());
  Segment& seg = plan.edges[0].segments[0];
  ASSERT_NE(seg.kind, SegmentKind::kValueJoin);
  seg.num_structural_joins += 3;  // operator arity lie
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN006")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsDanglingColor) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  ASSERT_FALSE(plan.edges.empty());
  ASSERT_FALSE(plan.edges[0].segments.empty());
  Segment& seg = plan.edges[0].segments[0];
  ASSERT_NE(seg.kind, SegmentKind::kValueJoin);
  seg.color = 99;  // schema has nowhere near 100 colors
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN007")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsStaticallyEmptyColorPredicate) {
  // Two-color schema where color 1 holds only an unrelated entity:
  // retargeting a structural segment there can never match.
  er::ErDiagram d("empty");
  auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
  auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
  auto c = d.AddEntity("c", {{"id", er::AttrType::kString, true}});
  ASSERT_TRUE(d.AddOneToMany("r1", a, b).ok());
  er::ErGraph graph(d);
  er::NodeId r1 = *d.FindNode("r1");
  er::EdgeId edge_a = er::kInvalidEdge, edge_b = er::kInvalidEdge;
  for (er::EdgeId eid : graph.incident(r1)) {
    if (graph.edge(eid).node == a) edge_a = eid;
    if (graph.edge(eid).node == b) edge_b = eid;
  }
  mct::MctSchema schema("twocolor", &graph);
  mct::ColorId c0 = schema.AddColor();
  mct::OccId oa = schema.AddRoot(c0, a);
  mct::OccId orel = schema.AddChild(oa, r1, edge_a);
  schema.AddChild(orel, b, edge_b);
  mct::ColorId c1 = schema.AddColor();
  schema.AddRoot(c1, c);

  query::QueryBuilder builder("Qab", d);
  int root = builder.Root("a");
  builder.Via(root, {"r1", "b"});
  query::AssociationQuery q = builder.Build();
  auto plan = query::PlanQuery(q, schema);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(VerifyPlan(*plan).empty());

  ASSERT_FALSE(plan->edges.empty());
  ASSERT_FALSE(plan->edges[0].segments.empty());
  plan->edges[0].segments[0].color = c1;  // tags a/r1/b absent there
  DiagnosticReport report = VerifyPlan(*plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN008")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsValueJoinWithoutRefEdge) {
  // SHALLOW recovers associations through id/idref value joins; pointing
  // one at an ER edge with no ref edge must be flagged.
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  QueryPlan* corrupted = nullptr;
  std::vector<QueryPlan> plans;
  plans.reserve(w.queries.size());
  for (const query::AssociationQuery& q : w.queries) {
    auto plan = query::PlanQuery(q, shallow);
    ASSERT_TRUE(plan.ok());
    plans.push_back(*std::move(plan));
    for (auto& edge : plans.back().edges) {
      for (Segment& seg : edge.segments) {
        if (seg.kind == SegmentKind::kValueJoin && corrupted == nullptr) {
          seg.ref_edge = er::kInvalidEdge;  // no ref edge stands in now
          corrupted = &plans.back();
        }
      }
    }
    if (corrupted != nullptr) break;
  }
  ASSERT_NE(corrupted, nullptr)
      << "fixture assumption: SHALLOW plans use value joins";
  DiagnosticReport report = VerifyPlan(*corrupted);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN009")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsValueJoinSelfJoin) {
  // PLN013, operand half: both join operands naming the same posting list
  // is a degenerate self-join the executor would silently "satisfy" with
  // identity matches.
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  for (const query::AssociationQuery& q : w.queries) {
    auto plan = query::PlanQuery(q, shallow);
    ASSERT_TRUE(plan.ok());
    for (auto& edge : plan->edges) {
      for (Segment& seg : edge.segments) {
        if (seg.kind != SegmentKind::kValueJoin) continue;
        query::AssociationQuery copy = q;
        auto& path = copy.nodes[edge.pattern_node].path_from_parent;
        path[seg.to_index] = path[seg.from_index];  // same type both sides
        plan->query = &copy;
        DiagnosticReport report = VerifyPlan(*plan);
        ASSERT_TRUE(report.has_errors());
        EXPECT_TRUE(report.HasCode("PLN013")) << report.ToText();
        return;
      }
    }
  }
  FAIL() << "fixture assumption: SHALLOW plans use value joins";
}

TEST(PlanVerifyTest, DetectsValueJoinRefEdgeMismatch) {
  // PLN013, edge half: the segment's registered ref edge must connect the
  // exact path endpoints it covers — probing idref values from an
  // unrelated association joins disjoint key domains.
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  for (const query::AssociationQuery& q : w.queries) {
    auto plan = query::PlanQuery(q, shallow);
    ASSERT_TRUE(plan.ok());
    for (auto& edge : plan->edges) {
      const auto& path = q.nodes[edge.pattern_node].path_from_parent;
      for (Segment& seg : edge.segments) {
        if (seg.kind != SegmentKind::kValueJoin) continue;
        er::NodeId a = path[seg.from_index];
        er::NodeId b = path[seg.to_index];
        for (er::EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
          const er::ErEdge& e = graph.edge(eid);
          bool connects = (e.rel == a && e.node == b) ||
                          (e.rel == b && e.node == a);
          if (connects) continue;
          seg.ref_edge = eid;  // a real edge, the wrong association
          DiagnosticReport report = VerifyPlan(*plan);
          ASSERT_TRUE(report.has_errors());
          EXPECT_TRUE(report.HasCode("PLN013")) << report.ToText();
          return;
        }
      }
    }
  }
  FAIL() << "fixture assumption: SHALLOW plans use value joins";
}

TEST(PlanVerifyTest, DetectsEmptyAnchorScan) {
  CorruptionFixture f;
  QueryPlan plan = f.Plan("Q1");
  plan.anchor_color = 98;  // nonexistent: PLN007 on the anchor
  DiagnosticReport report = VerifyPlan(plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN007")) << report.ToText();
}

TEST(PlanVerifyTest, DetectsBrokenPatternParentChain) {
  CorruptionFixture f;
  const query::AssociationQuery* q = f.w.Find("Q1");
  ASSERT_NE(q, nullptr);
  query::AssociationQuery broken = *q;
  auto plan = query::PlanQuery(broken, f.schema);
  ASSERT_TRUE(plan.ok());
  // Sever the chain after planning: node 1 now points outside the array.
  ASSERT_GE(broken.nodes.size(), 2u);
  broken.nodes[1].parent = 42;
  DiagnosticReport report = VerifyPlan(*plan);
  ASSERT_TRUE(report.has_errors());
  EXPECT_TRUE(report.HasCode("PLN003")) << report.ToText();
}

}  // namespace
}  // namespace mctdb::analysis
