#include "design/algorithm_dumc.h"

#include <algorithm>

#include "common/logging.h"
#include "design/algorithm_mc.h"
#include "design/associations.h"
#include "design/chain_packing.h"
#include "design/recoverability.h"

namespace mctdb::design {

namespace {

/// A copy of `schema` with color `victim` removed (colors renumbered).
mct::MctSchema RebuildWithout(const mct::MctSchema& schema,
                              mct::ColorId victim) {
  mct::MctSchema out(schema.name(), &schema.graph());
  for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
    if (c == victim) continue;
    mct::ColorId nc = out.AddColor();
    // Recursive root-first copy (children may have lower ids than parents
    // after MC's tree merging, so plain id order is not safe).
    struct Frame {
      mct::OccId src;
      mct::OccId dst_parent;
    };
    std::vector<Frame> stack;
    for (mct::OccId root : schema.roots(c)) {
      stack.push_back({root, mct::kInvalidOcc});
    }
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const mct::SchemaOcc& src = schema.occ(f.src);
      mct::OccId dst =
          f.dst_parent == mct::kInvalidOcc
              ? out.AddRoot(nc, src.er_node)
              : out.AddChild(f.dst_parent, src.er_node, src.via_edge);
      for (mct::OccId child : src.children) stack.push_back({child, dst});
    }
  }
  return out;
}

}  // namespace

mct::MctSchema AlgorithmDumc(const er::ErGraph& graph,
                             std::string schema_name,
                             const DumcOptions& options) {
  mct::MctSchema schema = AlgorithmMc(graph, std::move(schema_name));

  EnumerateOptions enum_options;
  enum_options.max_paths = options.max_paths;
  enum_options.max_length = options.max_path_length;
  std::vector<AssociationPath> paths =
      EnumerateEligiblePaths(graph, enum_options);
  // Longest paths first: their sub-chains (and reverses) come along for
  // free, which is what keeps the color count near the paper's.
  std::stable_sort(paths.begin(), paths.end(),
                   [](const AssociationPath& a, const AssociationPath& b) {
                     return a.length() > b.length();
                   });

  std::vector<const AssociationPath*> uncovered;
  for (const AssociationPath& p : paths) {
    if (!IsPathDirectlyRecoverable(schema, p)) uncovered.push_back(&p);
  }
  // Packing predicate: a path newly covered as a side effect of earlier
  // packs (as a sub-chain, or in reverse) must not be packed again — that
  // is what keeps the color count near the paper's (TPC-W: 5).
  auto covered_or_packs = [&](mct::ColorId c, const AssociationPath* p) {
    return IsPathDirectlyRecoverable(schema, *p) ||
           TryRealizeInColor(&schema, c, *p);
  };
  // First try the MC colors themselves (extra paths at no cost in colors).
  for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
    std::erase_if(uncovered, [&](const AssociationPath* p) {
      return covered_or_packs(c, p);
    });
  }
  while (!uncovered.empty()) {
    mct::ColorId c = schema.AddColor();
    size_t before = uncovered.size();
    std::erase_if(uncovered, [&](const AssociationPath* p) {
      return covered_or_packs(c, p);
    });
    // The longest uncovered path always packs into an empty color, so each
    // round strictly shrinks the set.
    MCTDB_CHECK(uncovered.size() < before);
  }

  if (options.reduce_colors) {
    // Color frugality: greedily drop colors (newest first — the greedy
    // tail is the most likely to be subsumed) whose removal keeps AR and
    // complete DR.
    bool dropped = true;
    while (dropped && schema.num_colors() > 1) {
      dropped = false;
      for (mct::ColorId victim = schema.num_colors(); victim-- > 0;) {
        mct::MctSchema candidate = RebuildWithout(schema, victim);
        if (!IsAssociationRecoverable(candidate)) continue;
        bool complete = true;
        for (const AssociationPath& p : paths) {
          if (!IsPathDirectlyRecoverable(candidate, p)) {
            complete = false;
            break;
          }
        }
        if (complete) {
          schema = std::move(candidate);
          dropped = true;
          break;
        }
      }
    }
  }
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace mctdb::design
