// Hashing utilities used by value-join hash tables and value indexes.
#pragma once

#include <cstdint>
#include <string_view>

namespace mctdb {

/// 64-bit FNV-1a. Stable across platforms (value-index layouts depend on it).
inline uint64_t Hash64(std::string_view s, uint64_t seed = 0xCBF29CE484222325ull) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

inline uint64_t Hash64(uint64_t x) {
  // splitmix64 finalizer: good avalanche for integer keys.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
}

/// Fast 64-bit checksum over a page-sized buffer: consumes 8 bytes per step
/// with a wide-multiply mix, splitmix64 finalizer over the tail and length.
/// Chosen over a table-driven CRC32 because page verification runs on every
/// buffer-pool miss and must stay near memcpy speed (see DESIGN.md §12).
/// Stable across platforms: reads are assembled little-endian byte by byte.
inline uint64_t PageChecksum(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x9E3779B97F4A7C15ull ^ (static_cast<uint64_t>(len) *
                                        0xC2B2AE3D27D4EB4Full);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t k = 0;
    for (int b = 0; b < 8; ++b) {
      k |= static_cast<uint64_t>(p[i + b]) << (8 * b);
    }
    k *= 0x9E3779B185EBCA87ull;
    k = (k << 31) | (k >> 33);
    k *= 0xC2B2AE3D27D4EB4Full;
    h ^= k;
    h = ((h << 27) | (h >> 37)) * 5 + 0x52DCE729ull;
  }
  uint64_t tail = 0;
  // The main loop leaves at most 7 bytes; bounding b keeps the shift
  // width provably < 64 for the optimizer.
  for (int b = 0; b < 8 && i < len; ++i, ++b) {
    tail |= static_cast<uint64_t>(p[i]) << (8 * b);
  }
  h ^= tail * 0x9E3779B185EBCA87ull;
  return Hash64(h);
}

}  // namespace mctdb
