#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

namespace mctdb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(8)];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 10000 / 8 / 2) << "value " << v << " badly underrepresented";
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, OneInRoughFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.OneIn(10);
  EXPECT_NEAR(hits, 10000, 600);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(100, 0.8)];
  // Rank 0 must dominate the tail decisively under theta=0.8.
  EXPECT_GT(counts[0], counts[50] * 3);
  for (const auto& [v, c] : counts) EXPECT_LT(v, 100u);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(19);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 1000) << "value " << v;
    EXPECT_LT(c, 3200) << "value " << v;
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(29);
  std::vector<int> v{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    int x = rng.Pick(v);
    EXPECT_NE(std::find(v.begin(), v.end(), x), v.end());
  }
}

}  // namespace
}  // namespace mctdb
