# Empty compiler generated dependencies file for designer_test.
# This may be replaced when dependencies are built.
