#include "design/xml_mining.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "design/recoverability.h"
#include "er/er_catalog.h"
#include "instance/materialize.h"
#include "instance/xml_export.h"
#include "workload/workload.h"
#include "xml/xml_io.h"

namespace mctdb::design {
namespace {

TEST(XmlMiningTest, HandWrittenShallowDocument) {
  // A tiny SHALLOW-style document: users and posts at top level, `writes`
  // nested under user with an idref to the post.
  auto doc = xml::ParseXml(R"(
    <db>
      <user id="u1"/><user id="u2"/>
      <post id="p1" score="10"/><post id="p2" score="3"/><post id="p3" score="7"/>
      <user id="u3">
        <writes post_idref="p1"/>
        <writes post_idref="p2"/>
        <writes post_idref="p3"/>
      </user>
    </db>)");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  MiningReport report;
  auto mined = MineErDiagram(**doc, {}, &report);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(report.entity_tags, 2u);
  EXPECT_EQ(report.relationship_tags, 1u);
  const er::ErNode& writes = mined->node(*mined->FindNode("writes"));
  ASSERT_TRUE(writes.is_relationship());
  // u3 wrote 3 posts: user participates in MANY writes; each post written
  // once: ONE.
  er::NodeId user = *mined->FindNode("user");
  for (const er::Endpoint& ep : writes.endpoints) {
    if (ep.target == user) {
      EXPECT_EQ(ep.participation, er::Participation::kMany);
    } else {
      EXPECT_EQ(ep.participation, er::Participation::kOne);
    }
  }
  // `score` was numeric in every post.
  const er::ErNode& post = mined->node(*mined->FindNode("post"));
  bool saw_score = false;
  for (const er::Attribute& a : post.attributes) {
    if (a.name == "score") {
      saw_score = true;
      EXPECT_EQ(a.type, er::AttrType::kInt);
    }
  }
  EXPECT_TRUE(saw_score);
}

TEST(XmlMiningTest, ManyManyDetectedThroughRepeatedRefs) {
  auto doc = xml::ParseXml(R"(
    <db>
      <post id="p1"><tagged tag_idref="t1"/><tagged tag_idref="t2"/></post>
      <post id="p2"><tagged tag_idref="t1"/></post>
      <tag id="t1"/><tag id="t2"/>
    </db>)");
  ASSERT_TRUE(doc.ok());
  auto mined = MineErDiagram(**doc);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const er::ErNode& tagged = mined->node(*mined->FindNode("tagged"));
  // t1 referenced twice, posts fan out: M:N.
  EXPECT_EQ(tagged.endpoints[0].participation, er::Participation::kMany);
  EXPECT_EQ(tagged.endpoints[1].participation, er::Participation::kMany);
}

TEST(XmlMiningTest, ConnectorFormRecovered) {
  // AF-style: a -> r -> b structural connector, no idrefs.
  auto doc = xml::ParseXml(R"(
    <db>
      <a id="a1"><r><b id="b1"/></r><r><b id="b2"/></r></a>
      <a id="a2"><r><b id="b3"/></r></a>
    </db>)");
  ASSERT_TRUE(doc.ok());
  MiningReport report;
  auto mined = MineErDiagram(**doc, {}, &report);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(report.structural_edges, 1u);
  EXPECT_EQ(report.idref_edges, 0u);
  const er::ErNode& r = mined->node(*mined->FindNode("r"));
  ASSERT_TRUE(r.is_relationship());
  // every a has an r child -> a's side total.
  er::NodeId a = *mined->FindNode("a");
  for (const er::Endpoint& ep : r.endpoints) {
    if (ep.target == a) {
      EXPECT_EQ(ep.participation, er::Participation::kMany);
      EXPECT_EQ(ep.totality, er::Totality::kTotal);
    }
  }
}

TEST(XmlMiningTest, RoundTripsTpcwShallowExport) {
  // Export a SHALLOW TPC-W instance, mine it back, and compare the
  // recovered design to Fig 1: same node inventory, same cardinality
  // classes.
  workload::Workload w = workload::TpcwWorkload(0.05);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  auto logical = instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, shallow);
  auto doc = instance::ExportColorXml(*store, 0);
  ASSERT_TRUE(doc.ok());

  auto mined = MineErDiagram(**doc);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(mined->num_nodes(), w.diagram.num_nodes());
  EXPECT_EQ(mined->num_entities(), w.diagram.num_entities());
  for (const er::ErNode& orig : w.diagram.nodes()) {
    auto found = mined->FindNode(orig.name);
    ASSERT_TRUE(found.has_value()) << orig.name;
    const er::ErNode& got = mined->node(*found);
    EXPECT_EQ(got.kind, orig.kind) << orig.name;
    if (!orig.is_relationship()) continue;
    // Compare the multiset of participations (endpoint order may differ).
    auto classify = [](const er::ErNode& n) {
      int many = 0;
      for (const er::Endpoint& ep : n.endpoints) {
        many += ep.participation == er::Participation::kMany;
      }
      return many;
    };
    EXPECT_EQ(classify(got), classify(orig)) << orig.name;
  }
}

TEST(XmlMiningTest, MinedDesignIsRedesignable) {
  // The future-work pipeline end to end: legacy flat XML -> mined ER ->
  // DUMC -> a fully direct-recoverable MCT schema.
  workload::Workload w = workload::TpcwWorkload(0.05);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(Strategy::kShallow);
  auto logical = instance::GenerateInstance(graph, w.gen);
  auto store = instance::Materialize(logical, shallow);
  auto doc = instance::ExportColorXml(*store, 0);
  ASSERT_TRUE(doc.ok());
  auto mined = MineErDiagram(**doc);
  ASSERT_TRUE(mined.ok());

  er::ErGraph mined_graph(*mined);
  design::Designer redesigner(mined_graph);
  mct::MctSchema dr = redesigner.Design(Strategy::kDr);
  auto report = AnalyzeRecoverability(
      dr, EnumerateEligiblePaths(mined_graph));
  EXPECT_TRUE(report.fully_direct());
  EXPECT_TRUE(dr.IsNodeNormal());
}

TEST(XmlMiningTest, RejectsAmbiguousNesting) {
  // The same key-less tag nested under two different tags cannot be
  // attributed to one relationship.
  auto doc = xml::ParseXml(R"(
    <db>
      <a id="a1"><link b_idref="b1"/></a>
      <c id="c1"><link b_idref="b1"/></c>
      <b id="b1"/>
    </db>)");
  ASSERT_TRUE(doc.ok());
  auto mined = MineErDiagram(**doc);
  EXPECT_FALSE(mined.ok());
  EXPECT_NE(mined.status().message().find("link"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::design
