#include "workload/update_gen.h"

#include <string>

namespace mctdb::workload {

namespace {

using storage::SubtreeSpec;
using storage::UpdateOp;

/// Attribute list for a NEW instance of `node`: every diagram attribute,
/// key attrs id-valued (no content node, like the materializer), values
/// derived from the new logical id so keys stay unique.
std::vector<SubtreeSpec::Attr> NewAttrs(const er::ErNode& node,
                                        uint32_t logical) {
  std::vector<SubtreeSpec::Attr> attrs;
  for (const er::Attribute& a : node.attributes) {
    SubtreeSpec::Attr out;
    out.name = a.name;
    out.value = a.is_key ? node.name + "_new" + std::to_string(logical)
                         : "v_new" + std::to_string(logical);
    out.with_content = !a.is_key;
    attrs.push_back(std::move(out));
  }
  return attrs;
}

bool EligibleEverywhere(const std::vector<mct::MctSchema>& schemas,
                        const UpdateOp& op) {
  for (const mct::MctSchema& s : schemas) {
    if (!storage::VerifyUpdateOp(s, op).ok()) return false;
  }
  return true;
}

}  // namespace

std::vector<UpdateOp> GenerateUpdateOps(
    const std::vector<mct::MctSchema>& schemas,
    const instance::LogicalInstance& logical,
    const UpdateGenOptions& options) {
  std::vector<UpdateOp> ops;
  if (schemas.empty() || options.num_ops == 0) return ops;
  const er::ErDiagram& diagram = logical.diagram();

  uint32_t next_id = options.logical_id_base;
  size_t want_inserts = options.num_ops / 4;
  if (want_inserts == 0 && options.num_ops >= 2) want_inserts = 1;
  /// The deletable pool: (type, logical) of instances THIS stream created
  /// as insert-subtree children (leaf placements in every schema, so
  /// deleting one removes the same logical content everywhere).
  std::vector<std::pair<er::NodeId, uint32_t>> deletable;

  // U1: for every relationship type R with endpoints (X, Y), try inserting
  // a new R instance (with a new Y child) under an existing X, both
  // orientations. The cross-schema verifier filter keeps only subtrees
  // every schema can place.
  size_t made_inserts = 0;
  for (const er::ErNode& rel : diagram.nodes()) {
    if (made_inserts >= want_inserts) break;
    if (!rel.is_relationship()) continue;
    for (int side = 0; side < 2 && made_inserts < want_inserts; ++side) {
      er::NodeId target = rel.endpoints[side].target;
      er::NodeId child = rel.endpoints[1 - side].target;
      if (logical.count(target) == 0) continue;
      UpdateOp op;
      op.kind = UpdateOp::Kind::kInsertSubtree;
      op.target_type = target;
      // Spread targets deterministically across the instance range.
      op.target_logical = static_cast<uint32_t>(
          (made_inserts * 7919) % logical.count(target));
      op.subtree.type = rel.id;
      op.subtree.logical = next_id;
      op.subtree.attrs = NewAttrs(rel, next_id);
      SubtreeSpec child_spec;
      child_spec.type = child;
      child_spec.logical = next_id + 1;
      child_spec.attrs = NewAttrs(diagram.node(child), next_id + 1);
      op.subtree.children.push_back(std::move(child_spec));
      if (!EligibleEverywhere(schemas, op)) continue;
      next_id += 2;
      deletable.emplace_back(child, op.subtree.children[0].logical);
      ops.push_back(std::move(op));
      ++made_inserts;
    }
  }

  // U2: delete a subset of the just-inserted children (never pre-existing
  // instances; see file comment). At most half the pool, so inserts stay
  // observable in post-update equivalence queries.
  size_t want_deletes = options.num_ops / 4;
  if (want_deletes > deletable.size() / 2 + (deletable.size() % 2)) {
    want_deletes = deletable.size() / 2 + (deletable.size() % 2);
  }
  std::vector<UpdateOp> deletes;
  for (size_t k = 0; k < want_deletes; ++k) {
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDeleteSubtree;
    op.target_type = deletable[k].first;
    op.target_logical = deletable[k].second;
    if (!EligibleEverywhere(schemas, op)) continue;
    deletes.push_back(std::move(op));
  }

  // U3: renames fill the remainder. Round-robin over entities that carry a
  // non-key attribute; target instances stride through the range so
  // repeated renames of one instance stay rare.
  size_t want_renames =
      options.num_ops > ops.size() + deletes.size()
          ? options.num_ops - ops.size() - deletes.size()
          : 0;
  std::vector<const er::ErNode*> renameable;
  for (const er::ErNode& node : diagram.nodes()) {
    if (logical.count(node.id) == 0) continue;
    for (const er::Attribute& a : node.attributes) {
      if (!a.is_key) {
        renameable.push_back(&node);
        break;
      }
    }
  }
  for (size_t k = 0; k < want_renames && !renameable.empty(); ++k) {
    const er::ErNode& node = *renameable[k % renameable.size()];
    const er::Attribute* attr = nullptr;
    for (const er::Attribute& a : node.attributes) {
      if (!a.is_key) {
        attr = &a;
        break;
      }
    }
    UpdateOp op;
    op.kind = UpdateOp::Kind::kRenameValue;
    op.target_type = node.id;
    op.target_logical =
        static_cast<uint32_t>((k * 131) % logical.count(node.id));
    op.attr = attr->name;
    op.new_value = "renamed_" + std::to_string(k);
    if (!EligibleEverywhere(schemas, op)) continue;
    ops.push_back(std::move(op));
  }

  // Deletes go last: their targets must exist when they run, and a stream
  // applied in order is then valid from any prefix.
  for (UpdateOp& op : deletes) ops.push_back(std::move(op));
  return ops;
}

}  // namespace mctdb::workload
