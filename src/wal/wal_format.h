// On-disk WAL layout (DESIGN.md §13).
//
//   header : "MCTWAL1\n" (8) | schema fingerprint (8, LE) |
//            checkpoint LSN (8, LE) | checksum of the first 24 bytes (8, LE)
//   record : payload len (4, LE) | LSN (8, LE) | type (1) | payload |
//            checksum (8, LE) over everything before it
//
// Checksums reuse PageChecksum — the same mix the pager verifies on every
// buffer-pool miss — so a torn or bit-flipped record is detected exactly
// like a torn page. LSNs start at 1 (kNoLsn = 0 means "nothing") and are
// strictly increasing within a log; a record whose LSN breaks the sequence
// marks the torn tail even when its checksum happens to verify (stale bytes
// from a recycled file).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/lsn.h"
#include "common/result.h"

namespace mctdb::wal {

inline constexpr char kWalMagic[8] = {'M', 'C', 'T', 'W', 'A', 'L', '1', '\n'};
inline constexpr size_t kWalHeaderSize = 32;
/// len + lsn + type prefix.
inline constexpr size_t kRecordPrefixSize = 4 + 8 + 1;
/// Prefix plus trailing checksum: bytes a record adds beyond its payload.
inline constexpr size_t kRecordOverhead = kRecordPrefixSize + 8;
/// Refuse absurd payload lengths before trusting a torn length prefix.
inline constexpr uint32_t kMaxPayloadSize = 64u << 20;

enum class RecordType : uint8_t {
  kUpdateOp = 1,  ///< payload = storage::EncodeUpdateOp bytes
};

struct WalHeader {
  uint64_t fingerprint = 0;  ///< storage::SchemaFingerprint of the store
  Lsn checkpoint_lsn = kNoLsn;  ///< every op with lsn <= this is in the store
};

void EncodeWalHeader(const WalHeader& header, std::string* out);
/// DataLoss on short/checksum-failed bytes (torn header: recover as empty
/// log), InvalidArgument on wrong magic (not a WAL file at all).
Result<WalHeader> DecodeWalHeader(std::string_view bytes);

struct WalRecord {
  Lsn lsn = kNoLsn;
  RecordType type = RecordType::kUpdateOp;
  std::string payload;
};

void EncodeWalRecord(Lsn lsn, RecordType type, std::string_view payload,
                     std::string* out);

/// Decodes the record starting at bytes[0]. Returns the record and sets
/// *consumed; DataLoss when the bytes are short, torn, or checksum-failed
/// (callers treat the position as the torn tail).
Result<WalRecord> DecodeWalRecord(std::string_view bytes, size_t* consumed);

}  // namespace mctdb::wal
