// Flight-recorder contract tests (DESIGN.md §16): record/snapshot
// roundtrip, binary dump + decode, corruption handling, ring wrap, the
// fatal-signal dump path, and the Status-escalation one-shot. The
// concurrency test doubles as the TSAN target for the lock-free ring.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/trace_id.h"

namespace mctdb::obs::flight {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + name;
}

std::vector<Event> ForTrace(const std::vector<Event>& events, uint64_t id) {
  std::vector<Event> out;
  for (const Event& e : events) {
    if (e.trace_id == id) out.push_back(e);
  }
  return out;
}

class FlightRecorderTest : public testing::Test {
 protected:
  void SetUp() override {
    Enable();
    SetDumpPath("");
    ResetForTest();
  }
  void TearDown() override { SetDumpPath(""); }
};

TEST_F(FlightRecorderTest, SnapshotPreservesEveryField) {
  const uint64_t trace = MintTraceId();
  Record(Subsystem::kService, Site::kAdmit, trace, 3);
  Record(Subsystem::kWal, Site::kWalAppend, trace, 42);
  std::vector<Event> mine = ForTrace(Snapshot(), trace);
  ASSERT_EQ(mine.size(), 2u);
  // Events from one thread share a ring, so seq orders them.
  if (mine[0].seq > mine[1].seq) std::swap(mine[0], mine[1]);
  EXPECT_EQ(mine[0].subsystem, Subsystem::kService);
  EXPECT_EQ(mine[0].site, Site::kAdmit);
  EXPECT_EQ(mine[0].arg, 3u);
  EXPECT_EQ(mine[1].subsystem, Subsystem::kWal);
  EXPECT_EQ(mine[1].site, Site::kWalAppend);
  EXPECT_EQ(mine[1].arg, 42u);
  EXPECT_GT(mine[0].nanos, 0u);
  EXPECT_LE(mine[0].nanos, mine[1].nanos);
  EXPECT_EQ(mine[0].thread_index, mine[1].thread_index);
}

TEST_F(FlightRecorderTest, DumpFileDecodesToTheSameEvents) {
  const uint64_t trace = MintTraceId();
  Record(Subsystem::kCheckpoint, Site::kCheckpointBegin, trace, 100);
  Record(Subsystem::kPool, Site::kEvict, trace, 7);
  Record(Subsystem::kStatus, Site::kEscalation, trace, 9);
  const std::string path = TempPath("flight_roundtrip.bin");
  ASSERT_TRUE(DumpToFile(path.c_str()).ok());
  auto decoded = DecodeFile(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::vector<Event> mine = ForTrace(*decoded, trace);
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].site, Site::kCheckpointBegin);
  EXPECT_EQ(mine[1].site, Site::kEvict);
  EXPECT_EQ(mine[1].arg, 7u);
  EXPECT_EQ(mine[2].site, Site::kEscalation);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, DecodeRejectsBadMagicAndTruncation) {
  EXPECT_TRUE(Decode("definitely not a flight dump").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Decode("").status().IsInvalidArgument());

  Record(Subsystem::kService, Site::kAdmit, MintTraceId(), 1);
  const std::string path = TempPath("flight_trunc.bin");
  ASSERT_TRUE(DumpToFile(path.c_str()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 32u);
  // Cut inside the first ring header, then inside its body: both are
  // DataLoss, distinct from the bad-magic InvalidArgument.
  EXPECT_TRUE(Decode(bytes.substr(0, 12)).status().IsDataLoss());
  EXPECT_TRUE(Decode(bytes.substr(0, bytes.size() / 2)).status()
                  .IsDataLoss());
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, RenderersFilterByTrace) {
  const uint64_t keep = MintTraceId();
  const uint64_t drop = MintTraceId();
  Record(Subsystem::kWal, Site::kWalFsync, keep, 5);
  Record(Subsystem::kPool, Site::kQuarantine, drop, 6);
  std::vector<Event> events = Snapshot();
  const std::string text = RenderText(events, keep);
  EXPECT_NE(text.find("wal.wal_fsync"), std::string::npos) << text;
  EXPECT_EQ(text.find("quarantine"), std::string::npos) << text;
  const std::string json = RenderJson(events, keep);
  EXPECT_EQ(json.rfind("{\"events\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"site\":\"wal_fsync\""), std::string::npos);
  EXPECT_EQ(json.find("\"site\":\"quarantine\""), std::string::npos);
  // Unfiltered render keeps both traces.
  EXPECT_NE(RenderText(events).find("quarantine"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingWrapKeepsTheNewestEvents) {
  // Sizing applies to rings claimed after Enable, so record from a fresh
  // thread whose ring is born with capacity 8.
  Enable(8);
  const uint64_t trace = MintTraceId();
  std::thread writer([trace] {
    for (uint64_t i = 0; i < 20; ++i) {
      Record(Subsystem::kExec, Site::kSpanBegin, trace, i);
    }
  });
  writer.join();
  Enable(1024);  // restore default sizing for later rings
  std::vector<Event> mine = ForTrace(Snapshot(), trace);
  ASSERT_EQ(mine.size(), 8u);
  uint64_t min_arg = 20, max_arg = 0;
  for (const Event& e : mine) {
    min_arg = std::min(min_arg, e.arg);
    max_arg = std::max(max_arg, e.arg);
  }
  EXPECT_EQ(min_arg, 12u) << "oldest surviving event after wrap";
  EXPECT_EQ(max_arg, 19u) << "newest event must survive";
}

// The TSAN target: four writers hammer their rings while the main thread
// snapshots concurrently. Torn slots must be dropped, never decoded into
// garbage enum values.
TEST_F(FlightRecorderTest, ConcurrentSnapshotSeesOnlyConsistentEvents) {
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t, &done] {
      for (uint64_t i = 0; i < 10000; ++i) {
        Record(Subsystem::kPool, Site::kEvict,
               static_cast<uint64_t>(t) + 1, i);
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < 4) {
    std::vector<Event> events = Snapshot();
    for (const Event& e : events) {
      ASSERT_LT(static_cast<size_t>(e.subsystem), kNumSubsystems);
      ASSERT_LT(static_cast<size_t>(e.site), kNumSites);
    }
  }
  for (std::thread& w : writers) w.join();
  EXPECT_FALSE(Snapshot().empty());
}

TEST_F(FlightRecorderTest, EscalationOneShotDumpsThenDisarms) {
  const std::string path = TempPath("flight_escalation.bin");
  std::remove(path.c_str());
  SetDumpPath(path.c_str());
  ResetForTest();  // re-arm the one-shot
  const uint64_t trace = MintTraceId();
  Record(Subsystem::kService, Site::kAdmit, trace, 1);
  { Status s = Status::DataLoss("injected escalation"); }
  auto decoded = DecodeFile(path);
  ASSERT_TRUE(decoded.ok()) << "escalation must have dumped: "
                            << decoded.status().ToString();
  bool saw_admit = false, saw_escalation = false;
  for (const Event& e : *decoded) {
    if (e.trace_id == trace && e.site == Site::kAdmit) saw_admit = true;
    if (e.site == Site::kEscalation) saw_escalation = true;
  }
  EXPECT_TRUE(saw_admit) << "in-flight admission context must be in the dump";
  EXPECT_TRUE(saw_escalation);
  // One-shot: a second escalation must not rewrite the file.
  std::remove(path.c_str());
  { Status s = Status::Unavailable("second escalation"); }
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good()) << "escalation dump fired twice";
  std::remove(path.c_str());
}

TEST(FlightRecorderDeathTest, FatalSignalDumpDecodesWithInFlightEvents) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = TempPath("flight_crash.bin");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        Enable();
        SetDumpPath(path.c_str());
        InstallCrashHandler();
        // The workload that was in flight when the process died.
        Record(Subsystem::kService, Site::kAdmit, 7777, 1);
        Record(Subsystem::kWal, Site::kWalAppend, 7777, 5);
        Record(Subsystem::kWal, Site::kWalFsync, 7777, 5);
        std::abort();
      },
      testing::KilledBySignal(SIGABRT), "");
  auto decoded = DecodeFile(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::vector<Event> mine = ForTrace(*decoded, 7777);
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].site, Site::kAdmit);
  EXPECT_EQ(mine[1].site, Site::kWalAppend);
  EXPECT_EQ(mine[1].arg, 5u) << "LSN must survive the crash dump";
  EXPECT_EQ(mine[2].site, Site::kWalFsync);
  EXPECT_EQ(mine[2].arg, mine[1].arg)
      << "fsync batch LSN and append LSN must be consistent";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mctdb::obs::flight
