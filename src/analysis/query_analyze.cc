#include "analysis/query_analyze.h"

#include <set>
#include <tuple>
#include <unordered_set>

#include "common/string_util.h"

namespace mctdb::analysis {

namespace {

using mct::MctSchema;
using mct::OccId;
using mct::SchemaOcc;
using query::AssociationQuery;
using query::McXPath;
using query::McXPathStep;
using query::PatternNode;
using storage::SubtreeSpec;
using storage::UpdateOp;

std::string TypeName(const MctSchema& schema, er::NodeId n) {
  return n < schema.diagram().num_nodes() ? schema.diagram().node(n).name
                                          : StringPrintf("node#%u", n);
}

/// The ER edge joining adjacent path nodes, or kInvalidEdge.
er::EdgeId EdgeBetween(const er::ErGraph& graph, er::NodeId a, er::NodeId b) {
  if (a >= graph.num_nodes()) return er::kInvalidEdge;
  for (er::EdgeId eid : graph.incident(a)) {
    if (graph.edge(eid).other(a) == b) return eid;
  }
  return er::kInvalidEdge;
}

/// Can the (a, b) association step be covered by one structural segment
/// the planner would accept? Mirrors the planner's chain matching: the
/// parent occurrence must be a root or *clean* (graft/copy tops cover only
/// part of the instances, so the planner never anchors a join there), the
/// child a direct occurrence child, in either direction.
bool PairStructurallyPlannable(const MctSchema& schema, er::NodeId a,
                               er::NodeId b) {
  for (const SchemaOcc& o : schema.occurrences()) {
    if (o.er_node != a && o.er_node != b) continue;
    if (!o.is_root() && !schema.IsCleanOcc(o.id)) continue;
    er::NodeId want = o.er_node == a ? b : a;
    for (OccId child : o.children) {
      if (schema.occ(child).er_node == want) return true;
    }
  }
  return false;
}

/// Does any parent-child occurrence pair (parent tag `a`, child tag `b`)
/// exist in `color`? Satisfiability of a '/' axis step: interval labels
/// nest exactly as the color's occurrence forest does, so no pair => the
/// structural join can never produce output on any valid instance.
bool ParentChildPairInColor(const MctSchema& schema, mct::ColorId color,
                            er::NodeId a, er::NodeId b) {
  for (const SchemaOcc& o : schema.occurrences()) {
    if (o.color != color || o.er_node != a) continue;
    for (OccId child : o.children) {
      if (schema.occ(child).er_node == b) return true;
    }
  }
  return false;
}

/// The '//' analog: any occurrence of `b` in `color` with a proper
/// ancestor occurrence of `a`.
bool AncDescPairInColor(const MctSchema& schema, mct::ColorId color,
                        er::NodeId a, er::NodeId b) {
  for (const SchemaOcc& o : schema.occurrences()) {
    if (o.color != color || o.er_node != b) continue;
    for (OccId cur = o.parent; cur != mct::kInvalidOcc;
         cur = schema.occ(cur).parent) {
      if (schema.occ(cur).er_node == a) return true;
    }
  }
  return false;
}

/// Is `attr` a claim the schema makes about elements of type `tag`: a
/// declared ER attribute, or an idref attribute a ref edge materializes on
/// some occurrence of the type? A predicate on anything else is
/// always-false — stored elements only ever carry declared attributes.
bool AttrDeclared(const MctSchema& schema, er::NodeId tag,
                  const std::string& attr) {
  if (tag < schema.diagram().num_nodes()) {
    for (const er::Attribute& a : schema.diagram().node(tag).attributes) {
      if (a.name == attr) return true;
    }
  }
  for (const mct::RefEdge& re : schema.ref_edges()) {
    if (schema.occ(re.from).er_node == tag && re.attr_name == attr) {
      return true;
    }
  }
  return false;
}

/// Shared emptiness bookkeeping: records the first emptiness reason and
/// emits the detailed finding.
struct EmptyTracker {
  QueryAnalysis* out;
  void Flag(const std::string& code, const std::string& loc,
            const std::string& message, const std::string& fixit = "") {
    out->report.Warning(code, loc, message, fixit);
    if (!out->statically_empty) {
      out->statically_empty = true;
      out->empty_reason = code + ": " + message;
    }
  }
};

void FinishEmptiness(QueryAnalysis* out, const std::string& loc) {
  if (!out->statically_empty) return;
  out->report.Warning(
      "QRY010", loc,
      "query is statically empty on this schema (" + out->empty_reason +
          "); the planner prunes it to a zero-I/O empty result",
      "fix the step the detailed finding points at, or accept the empty "
      "answer");
}

const char* UpdateKindLabel(UpdateOp::Kind kind) {
  switch (kind) {
    case UpdateOp::Kind::kInsertSubtree: return "U1";
    case UpdateOp::Kind::kDeleteSubtree: return "U2";
    case UpdateOp::Kind::kRenameValue: return "U3";
  }
  return "U?";
}

const std::string* KeyAttrName(const er::ErDiagram& d, er::NodeId node) {
  for (const er::Attribute& a : d.node(node).attributes) {
    if (a.is_key) return &a.name;
  }
  return nullptr;
}

void VerifyInsertNodeStatic(const MctSchema& schema, const SubtreeSpec& node,
                            er::NodeId partner_type, const std::string& loc,
                            std::unordered_set<uint64_t>* logicals_seen,
                            DiagnosticReport* report) {
  const er::ErDiagram& diagram = schema.diagram();
  if (node.type >= diagram.num_nodes()) {
    report->Error("QRY012", loc,
                  StringPrintf("insert: unknown node type %u", node.type));
    return;  // nothing below is checkable without the type
  }
  const std::string& type_name = diagram.node(node.type).name;
  if (!logicals_seen->insert((uint64_t{node.type} << 32) | node.logical)
           .second) {
    report->Error(
        "QRY012", loc,
        "insert: duplicate new logical id for " + type_name,
        "assign every inserted instance a fresh logical id");
  }
  if (EdgeBetween(schema.graph(), node.type, partner_type) ==
      er::kInvalidEdge) {
    report->Error("QRY012", loc,
                  "insert: no ER edge between " + type_name + " and " +
                      TypeName(schema, partner_type),
                  "nest the subtree along an existing association");
  }
  if (const std::string* key = KeyAttrName(diagram, node.type)) {
    bool has_key = false;
    for (const SubtreeSpec::Attr& a : node.attrs) has_key |= a.name == *key;
    if (!has_key) {
      report->Error("QRY012", loc,
                    "insert: spec for " + type_name +
                        " misses key attribute " + *key,
                    "every inserted instance needs its key (the key index "
                    "and idref joins resolve through it)");
    }
  }
  // Supported placement class: every occurrence of the type is a root or
  // nests under the spec partner's type; anything else needs placements
  // the applier cannot derive from the op.
  std::unordered_set<er::NodeId> spec_partners{partner_type};
  for (const SubtreeSpec& c : node.children) spec_partners.insert(c.type);
  for (OccId oid : schema.OccurrencesOf(node.type)) {
    const SchemaOcc& occ = schema.occ(oid);
    if (occ.is_root()) continue;
    if (schema.occ(occ.parent).er_node != partner_type) {
      report->Error(
          "QRY012", loc,
          "insert: " + type_name + " occurs under " +
              TypeName(schema, schema.occ(occ.parent).er_node) +
              " in schema " + schema.name() + "; only root or " +
              TypeName(schema, partner_type) +
              "-nested occurrences are supported",
          "insert under the type the schema nests the subtree beneath, or "
          "target a schema variant that does");
      break;  // one placement finding per type is enough
    }
  }
  for (const mct::RefEdge& re : schema.ref_edges()) {
    if (schema.occ(re.from).er_node != node.type) continue;
    if (spec_partners.count(re.target) == 0) {
      report->Error("QRY012", loc,
                    "insert: " + type_name + " carries an idref to " +
                        TypeName(schema, re.target) +
                        " outside the inserted subtree",
                    "include the referenced instance in the op, or drop "
                    "the dangling association");
    }
  }
  for (const SubtreeSpec& c : node.children) {
    VerifyInsertNodeStatic(schema, c, node.type, loc, logicals_seen, report);
  }
}

}  // namespace

bool IsFatalQueryCode(std::string_view code) {
  return code == "QRY001" || code == "QRY002" || code == "QRY006" ||
         code == "QRY012";
}

QueryAnalysis AnalyzeQuery(const AssociationQuery& q, const MctSchema& schema,
                           const QueryAnalyzeOptions& options) {
  QueryAnalysis out;
  out.report = DiagnosticReport(options.max_diagnostics);
  EmptyTracker empty{&out};
  const er::ErDiagram& diagram = schema.diagram();
  const er::ErGraph& graph = schema.graph();
  std::string loc = StringPrintf("%s on %s", q.name.c_str(),
                                 schema.name().c_str());
  if (q.nodes.empty()) {
    out.report.Error("QRY002", loc, "query has no pattern nodes");
    return out;
  }
  // (type, attr, value) predicates already seen — the redundancy check.
  std::set<std::tuple<er::NodeId, std::string, std::string>> preds_seen;
  for (size_t i = 0; i < q.nodes.size(); ++i) {
    const PatternNode& node = q.nodes[i];
    std::string node_loc = StringPrintf("%s node %zu", loc.c_str(), i);
    if (node.er_node >= diagram.num_nodes()) {
      out.report.Error("QRY001", node_loc,
                       StringPrintf("unknown element type %u", node.er_node));
      continue;
    }
    if (node.parent >= static_cast<int>(q.nodes.size()) ||
        node.parent == static_cast<int>(i)) {
      out.report.Error("QRY002", node_loc,
                       StringPrintf("broken parent index %d", node.parent));
      continue;
    }
    if (node.parent >= 0) {
      const auto& path = node.path_from_parent;
      if (path.size() < 2) {
        out.report.Error("QRY002", node_loc,
                         "non-root pattern node carries no association path");
      } else {
        er::NodeId parent_type = q.nodes[node.parent].er_node;
        if (path.front() != parent_type || path.back() != node.er_node) {
          out.report.Error(
              "QRY002", node_loc,
              "association path endpoints disagree with the pattern "
              "(expected " + TypeName(schema, parent_type) + " .. " +
                  TypeName(schema, node.er_node) + ")");
        }
        for (size_t p = 0; p + 1 < path.size(); ++p) {
          er::NodeId a = path[p], b = path[p + 1];
          if (a >= diagram.num_nodes() || b >= diagram.num_nodes()) {
            out.report.Error("QRY001", node_loc,
                             StringPrintf("unknown element type %u on the "
                                          "association path",
                                          a >= diagram.num_nodes() ? a : b));
            continue;
          }
          er::EdgeId eid = EdgeBetween(graph, a, b);
          if (eid == er::kInvalidEdge) {
            out.report.Error("QRY002", node_loc,
                             "path nodes " + TypeName(schema, a) + " and " +
                                 TypeName(schema, b) +
                                 " are not adjacent in the ER graph");
            continue;
          }
          bool has_ref = false;
          for (const mct::RefEdge& ref : schema.ref_edges()) {
            has_ref |= ref.er_edge == eid;
          }
          if (!PairStructurallyPlannable(schema, a, b) && !has_ref) {
            out.report.Error(
                "QRY006", node_loc,
                "association step " + TypeName(schema, a) + " - " +
                    TypeName(schema, b) +
                    " is neither structurally realized in any color nor "
                    "covered by a ref edge; no plan exists on this schema",
                "realize the edge structurally or add an id/idref pair");
          }
        }
      }
    }
    if (node.predicate.has_value()) {
      const auto& pred = *node.predicate;
      if (!AttrDeclared(schema, node.er_node, pred.attr)) {
        empty.Flag(
            "QRY007", node_loc,
            "predicate @" + pred.attr + "='" + pred.value + "' tests an "
            "attribute '" + TypeName(schema, node.er_node) +
                "' does not declare; it is false on every stored element",
            "drop the predicate or test a declared attribute");
      } else if (!preds_seen
                      .insert({node.er_node, pred.attr, pred.value})
                      .second) {
        out.report.Note(
            "QRY008", node_loc,
            "predicate @" + pred.attr + "='" + pred.value +
                "' repeats an identical test on another pattern node of "
                "type " + TypeName(schema, node.er_node),
            "factor the shared predicate once");
        out.simplifiable = true;
      }
    }
  }
  // Redundant distinct: set semantics where the schema provably admits no
  // duplicate placement of the output type (single occurrence overall,
  // and its context never fans out above a reverse link).
  if (q.distinct && q.nodes.size() == 1 &&
      q.nodes[0].er_node < diagram.num_nodes()) {
    // Clean (all-traversable root path) single occurrence: the
    // materializer stores every logical instance there exactly once, so
    // the scan cannot produce duplicates.
    std::vector<OccId> occs = schema.OccurrencesOf(q.nodes[0].er_node);
    if (occs.size() == 1 && schema.IsCleanOcc(occs[0])) {
      out.report.Note(
          "QRY009", loc,
          "distinct is redundant: the schema stores every " +
              TypeName(schema, q.nodes[0].er_node) +
              " instance exactly once, so the scan cannot produce "
              "duplicates",
          "drop distinct to save the duplicate-elimination pass");
      out.simplifiable = true;
    }
  }
  FinishEmptiness(&out, loc);
  return out;
}

QueryAnalysis AnalyzeMcXPath(const McXPath& path, const MctSchema& schema,
                             const QueryAnalyzeOptions& options) {
  QueryAnalysis out;
  out.report = DiagnosticReport(options.max_diagnostics);
  EmptyTracker empty{&out};
  const er::ErDiagram& diagram = schema.diagram();
  std::string loc = StringPrintf("mc-xpath on %s", schema.name().c_str());
  if (path.steps.empty()) {
    out.report.Error("QRY002", loc, "empty path");
    return out;
  }
  if (schema.num_colors() == 0) {
    out.report.Error("QRY002", loc, "schema has no colors");
    return out;
  }
  std::set<std::tuple<er::NodeId, std::string, std::string>> preds_seen;
  // A step with no color inherits the previous step's; the first defaults
  // to color 0 — the same rule EvalMcXPath applies.
  mct::ColorId color = 0;
  er::NodeId prev_tag = er::kInvalidNode;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const McXPathStep& step = path.steps[i];
    std::string step_loc = StringPrintf(
        "%s step %zu (%s%s%s%s)", loc.c_str(), i, step.descendant ? "//" : "/",
        step.color.empty() ? "" : ("(" + step.color + ")").c_str(),
        step.tag.c_str(),
        step.pred_attr.empty()
            ? ""
            : ("[@" + step.pred_attr + "='" + step.pred_value + "']").c_str());
    mct::ColorId step_color = color;
    bool color_ok = true;
    if (!step.color.empty()) {
      color_ok = false;
      for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
        if (schema.color_name(c) == step.color) {
          step_color = c;
          color_ok = true;
          break;
        }
      }
      if (!color_ok) {
        out.report.Error("QRY002", step_loc,
                         "no color named '" + step.color + "' in this schema",
                         "use one of the schema's color names");
      }
    }
    auto tag_id = diagram.FindNode(step.tag);
    if (!tag_id.has_value()) {
      out.report.Error("QRY001", step_loc,
                       "no element type named '" + step.tag + "'");
      prev_tag = er::kInvalidNode;
      continue;
    }
    er::NodeId tag = *tag_id;
    if (color_ok) {
      if (schema.FindOcc(step_color, tag) == mct::kInvalidOcc) {
        empty.Flag("QRY003", step_loc,
                   "tag '" + step.tag + "' has no occurrence in color " +
                       schema.color_name(step_color) +
                       "; the step can never match",
                   "navigate in a color that holds the tag");
      } else if (prev_tag != er::kInvalidNode) {
        if (step_color != color &&
            schema.FindOcc(step_color, prev_tag) == mct::kInvalidOcc) {
          empty.Flag(
              "QRY005", step_loc,
              "color crossing into " + schema.color_name(step_color) +
                  " is always empty: '" + TypeName(schema, prev_tag) +
                  "' has no occurrence there (disjoint color domains)",
              "cross at a tag shared by both colors");
        } else {
          bool pair = step.descendant
                          ? AncDescPairInColor(schema, step_color, prev_tag,
                                               tag)
                          : ParentChildPairInColor(schema, step_color,
                                                   prev_tag, tag);
          if (!pair) {
            empty.Flag(
                "QRY004", step_loc,
                std::string("the schema forest of color ") +
                    schema.color_name(step_color) + " has no " +
                    (step.descendant ? "ancestor-descendant"
                                     : "parent-child") +
                    " occurrence pair " + TypeName(schema, prev_tag) +
                    " -> " + step.tag + "; the structural join is always "
                    "empty",
                step.descendant
                    ? "check the nesting the designer chose for these types"
                    : "use '//' if the types nest only transitively");
          }
        }
      }
    }
    if (!step.pred_attr.empty()) {
      if (!AttrDeclared(schema, tag, step.pred_attr)) {
        empty.Flag("QRY007", step_loc,
                   "predicate @" + step.pred_attr + "='" + step.pred_value +
                       "' tests an attribute '" + step.tag +
                       "' does not declare; it is false on every stored "
                       "element",
                   "drop the predicate or test a declared attribute");
      } else if (!preds_seen
                      .insert({tag, step.pred_attr, step.pred_value})
                      .second) {
        out.report.Note("QRY008", step_loc,
                        "predicate @" + step.pred_attr + "='" +
                            step.pred_value +
                            "' repeats an identical test on an earlier "
                            "step over '" + step.tag + "'",
                        "apply the predicate once");
        out.simplifiable = true;
      }
    }
    prev_tag = tag;
    if (color_ok) color = step_color;
  }
  FinishEmptiness(&out, loc);
  return out;
}

namespace {

/// Shared divergence pass over per-schema analyses.
DiagnosticReport Divergence(const std::string& query_label,
                            const std::vector<const MctSchema*>& schemas,
                            const std::vector<QueryAnalysis>& per,
                            const QueryAnalyzeOptions& options) {
  DiagnosticReport merged(options.max_diagnostics);
  for (size_t i = 0; i < schemas.size(); ++i) {
    merged.MergeFrom(per[i].report, schemas[i]->name());
  }
  // Divergence: equivalent designer variants must agree on satisfiability
  // — the designers all preserve the same associations (the paper's AR
  // property), so "empty here, satisfiable there" indicates a designer
  // bug or a schema the designer's claims do not actually hold for.
  const MctSchema* satisfiable_on = nullptr;
  for (size_t i = 0; i < schemas.size(); ++i) {
    if (!per[i].fatal() && !per[i].statically_empty) {
      satisfiable_on = schemas[i];
      break;
    }
  }
  if (satisfiable_on == nullptr) return merged;
  for (size_t i = 0; i < schemas.size(); ++i) {
    if (!per[i].fatal() && !per[i].statically_empty) continue;
    merged.Warning(
        "QRY011", schemas[i]->name() + "/" + query_label,
        std::string(per[i].fatal() ? "unplannable" : "statically empty") +
            " on this schema but satisfiable on equivalent variant " +
            satisfiable_on->name() +
            " — the designer outputs disagree about the same logical query",
        "inspect this variant's occurrence forests / ref edges; "
        "equivalents of one ER source must answer alike");
  }
  return merged;
}

}  // namespace

DiagnosticReport AnalyzeQueryAcrossSchemas(
    const AssociationQuery& q, const std::vector<const MctSchema*>& schemas,
    const QueryAnalyzeOptions& options) {
  std::vector<QueryAnalysis> per;
  per.reserve(schemas.size());
  for (const MctSchema* s : schemas) {
    per.push_back(AnalyzeQuery(q, *s, options));
  }
  return Divergence(q.name, schemas, per, options);
}

DiagnosticReport AnalyzeMcXPathAcrossSchemas(
    const McXPath& path, const std::vector<const MctSchema*>& schemas,
    const QueryAnalyzeOptions& options) {
  std::vector<QueryAnalysis> per;
  per.reserve(schemas.size());
  for (const MctSchema* s : schemas) {
    per.push_back(AnalyzeMcXPath(path, *s, options));
  }
  std::string label = "mc-xpath";
  if (!path.steps.empty()) label += "/" + path.steps.back().tag;
  return Divergence(label, schemas, per, options);
}

DiagnosticReport VerifyUpdateOpStatic(const MctSchema& schema,
                                      const UpdateOp& op,
                                      const QueryAnalyzeOptions& options) {
  DiagnosticReport report(options.max_diagnostics);
  const er::ErDiagram& diagram = schema.diagram();
  std::string loc = std::string("update/") + UpdateKindLabel(op.kind);
  if (op.target_type >= diagram.num_nodes()) {
    report.Error("QRY012", loc,
                 StringPrintf("unknown target type %u", op.target_type));
    return report;
  }
  switch (op.kind) {
    case UpdateOp::Kind::kInsertSubtree: {
      std::unordered_set<uint64_t> logicals_seen;
      VerifyInsertNodeStatic(schema, op.subtree, op.target_type, loc,
                             &logicals_seen, &report);
      break;
    }
    case UpdateOp::Kind::kDeleteSubtree:
      break;
    case UpdateOp::Kind::kRenameValue: {
      const er::ErNode& target = diagram.node(op.target_type);
      bool found = false;
      for (const er::Attribute& a : target.attributes) {
        if (a.name != op.attr) continue;
        found = true;
        if (a.is_key) {
          report.Error("QRY012", loc,
                       "rename: " + op.attr + " is a key attribute of " +
                           target.name + " (idref joins would dangle)",
                       "renames never touch keys; delete and re-insert "
                       "instead");
        }
        break;
      }
      if (!found) {
        report.Error("QRY012", loc,
                     "rename: " + target.name + " has no attribute " +
                         op.attr,
                     "rename a declared non-key attribute");
      }
      break;
    }
  }
  return report;
}

}  // namespace mctdb::analysis
