#include "common/retry.h"

#include <cstdlib>

#include "common/string_util.h"

namespace mctdb {

namespace {
RetryPolicy ParseFromEnv() {
  RetryPolicy p;
  if (const char* e = std::getenv("MCTDB_RETRY_ATTEMPTS")) {
    uint64_t v = 0;
    if (ParseUint64(e, &v) && v <= 100) {
      p.max_attempts = static_cast<int>(v);
    }
  }
  if (const char* e = std::getenv("MCTDB_RETRY_BACKOFF_US")) {
    uint64_t v = 0;
    if (ParseUint64(e, &v) && v <= 10'000'000) {
      p.initial_backoff = std::chrono::microseconds(v);
    }
  }
  return p;
}
}  // namespace

const RetryPolicy& RetryPolicy::FromEnv() {
  static const RetryPolicy policy = ParseFromEnv();
  return policy;
}

}  // namespace mctdb
