file(REMOVE_RECURSE
  "CMakeFiles/update_anomalies.dir/update_anomalies.cc.o"
  "CMakeFiles/update_anomalies.dir/update_anomalies.cc.o.d"
  "update_anomalies"
  "update_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
