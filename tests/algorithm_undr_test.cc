#include "design/algorithm_undr.h"

#include <gtest/gtest.h>

#include "design/algorithm_dumc.h"
#include "design/recoverability.h"
#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;

TEST(AlgorithmUndrTest, KeepsArAndDrOnCatalog) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    mct::MctSchema s = AlgorithmUndr(g);
    EXPECT_TRUE(IsAssociationRecoverable(s)) << d.name();
    auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
    EXPECT_TRUE(report.fully_direct()) << d.name();
    EXPECT_TRUE(s.Validate().ok());
  }
}

TEST(AlgorithmUndrTest, TpcwBreaksNodeNormalForm) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmUndr(g);
  std::string why;
  EXPECT_FALSE(s.IsNodeNormal(&why)) << "UNDR trades NN for locality";
}

TEST(AlgorithmUndrTest, SameColorsAsDr) {
  // UNDR denormalizes within DUMC's colors, never adds any (Table 1: both 5
  // for TPC-W).
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    EXPECT_EQ(AlgorithmUndr(g).num_colors(), AlgorithmDumc(g).num_colors())
        << d.name();
  }
}

TEST(AlgorithmUndrTest, BiggerThanDrSmallerBoundIsRespected) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema dr = AlgorithmDumc(g);
  mct::MctSchema undr = AlgorithmUndr(g);
  EXPECT_GT(undr.num_occurrences(), dr.num_occurrences());

  UndrOptions tight;
  tight.max_occurrences = dr.num_occurrences() + 5;
  mct::MctSchema capped = AlgorithmUndr(g, "UNDR", tight);
  EXPECT_LE(capped.num_occurrences(), tight.max_occurrences + 1)
      << "cap may only be overshot by the occurrence being appended";
}

TEST(AlgorithmUndrTest, GraftsBillingAddressContext) {
  // The whole point for TPC-W: under some billing occurrence there must now
  // be a duplicated address with its in/country context, so Q2-style
  // queries run in one color without a crossing.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmUndr(g);
  er::NodeId billing = *d.FindNode("billing");
  er::NodeId address = *d.FindNode("address");
  er::NodeId country = *d.FindNode("country");
  bool found = false;
  for (const auto& o : s.occurrences()) {
    if (o.er_node != billing) continue;
    for (mct::OccId c1 : o.children) {
      if (s.occ(c1).er_node != address) continue;
      // look for country two functional hops below the grafted address
      for (mct::OccId c2 : s.occ(c1).children) {
        for (mct::OccId c3 : s.occ(c2).children) {
          if (s.occ(c3).er_node == country) found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found) << s.DebugString();
}

TEST(AlgorithmUndrTest, ContextChainsDoNotFanOut) {
  // Functional context must never multiply: no grafted occurrence may sit
  // below a reverse edge AND have a MANY-participation fan-out child link.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema dr = AlgorithmDumc(g);
  mct::MctSchema s = AlgorithmUndr(g);
  // All grafted occurrences have ids >= dr occurrence count; check their
  // child links are functional.
  for (size_t id = dr.num_occurrences(); id < s.num_occurrences(); ++id) {
    const auto& o = s.occ(static_cast<mct::OccId>(id));
    for (mct::OccId child : o.children) {
      const er::ErEdge& e = g.edge(s.occ(child).via_edge);
      bool functional = (o.er_node == e.rel) ||
                        e.participation == er::Participation::kOne;
      EXPECT_TRUE(functional);
    }
  }
}

}  // namespace
}  // namespace mctdb::design
