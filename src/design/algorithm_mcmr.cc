#include "design/algorithm_mcmr.h"

#include <algorithm>

#include "common/logging.h"
#include "design/algorithm_mc.h"
#include "design/associations.h"
#include "design/chain_packing.h"
#include "design/recoverability.h"

namespace mctdb::design {

mct::MctSchema AlgorithmMcmr(const er::ErGraph& graph,
                             std::string schema_name) {
  mct::MctSchema schema = AlgorithmMc(graph, std::move(schema_name));

  std::vector<AssociationPath> paths = EnumerateEligiblePaths(graph);
  std::stable_sort(paths.begin(), paths.end(),
                   [](const AssociationPath& a, const AssociationPath& b) {
                     return a.length() > b.length();
                   });
  // Phase 1: pack missing eligible paths into existing colors (no new
  // colors — MCMR is color minimal by construction).
  for (const AssociationPath& p : paths) {
    if (IsPathDirectlyRecoverable(schema, p)) continue;
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      if (TryRealizeInColor(&schema, c, p)) break;
    }
  }
  // Phase 2: saturate every color with any further traversable edge whose
  // parent side is present and child side absent.
  bool changed = true;
  while (changed) {
    changed = false;
    for (mct::ColorId c = 0; c < schema.num_colors(); ++c) {
      for (const er::ErEdge& e : graph.edges()) {
        for (er::NodeId from : {e.node, e.rel}) {
          if (!graph.Traversable(e, from)) continue;
          er::NodeId to = e.other(from);
          mct::OccId from_occ = schema.FindOcc(c, from);
          if (from_occ == mct::kInvalidOcc) continue;
          if (schema.FindOcc(c, to) != mct::kInvalidOcc) continue;
          schema.AddChild(from_occ, to, e.id);
          changed = true;
        }
      }
    }
  }
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace mctdb::design
