// Plan verifier: static checks over a query::QueryPlan before execution.
//
// A plan that fails these checks would execute incorrectly (wrong arity,
// uncovered path steps) or uselessly (a color predicate no element can
// ever satisfy, an unreachable operator). The planner self-checks its
// output with this pass in debug builds, and the mctsvc QueryService runs
// it at admission so malformed plans are rejected with InvalidArgument
// before they occupy a worker slot.
//
// Codes:
//   * PLN001 plan not bound to a query/schema
//   * PLN002 edge-plan/pattern mismatch (count, range, duplicate)
//   * PLN003 unreachable pattern node / broken parent chain
//   * PLN004 segment interval violates the structural-join precondition
//   * PLN005 segment coverage gap or overlap on the association path
//   * PLN006 join-arity mismatch (operator arity inconsistent with kind)
//   * PLN007 dangling color reference in a segment
//   * PLN008 statically-empty color predicate (tags or chain absent from
//            the segment's color: the operator can never match)
//   * PLN009 value join on an ER edge with no ref edge in the schema
//   * PLN010 statically-empty anchor scan
//   * PLN011 update op rejected (bad target, missing attr, malformed
//            subtree, duplicate logical id)
//   * PLN012 update op unsupported under this schema's placement (no
//            occurrence of the subtree root fits the target's colors)
//   * PLN013 value-join operand mismatch: both operands reference the
//            same posting list (degenerate self-join), or the segment's
//            ref edge does not connect the path endpoints it covers
#pragma once

#include <cstddef>

#include "analysis/diagnostics.h"
#include "query/plan.h"
#include "storage/update_ops.h"

namespace mctdb::analysis {

struct PlanVerifyOptions {
  size_t max_diagnostics = 256;
};

/// Runs every plan check; never aborts, reports all findings.
DiagnosticReport VerifyPlan(const query::QueryPlan& plan,
                            const PlanVerifyOptions& options = {});

/// The write-path analog of VerifyPlan: static checks over one update op
/// against the schema, run at admission (mctsvc SubmitUpdate, mctc
/// update) so a doomed op is rejected before it reaches the WAL.
DiagnosticReport VerifyUpdate(const mct::MctSchema& schema,
                              const storage::UpdateOp& op);

}  // namespace mctdb::analysis
