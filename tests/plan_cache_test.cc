// PlanCache unit tests: key composition, the strict LSN/generation
// freshness guard, LRU eviction, and shared_ptr pinning semantics.
#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace mctsvc {
namespace {

std::shared_ptr<CachedPlan> Entry(mctdb::Lsn built_lsn,
                                  uint64_t generation) {
  auto e = std::make_shared<CachedPlan>();
  e->built_lsn = built_lsn;
  e->generation = generation;
  return e;
}

TEST(PlanCacheTest, KeySeparatesStoreSchemaAndQuery) {
  std::string a = PlanCache::Key(1, "EN", "q{...}");
  EXPECT_NE(a, PlanCache::Key(2, "EN", "q{...}"));
  EXPECT_NE(a, PlanCache::Key(1, "DEEP", "q{...}"));
  EXPECT_NE(a, PlanCache::Key(1, "EN", "q{...x}"));
  EXPECT_EQ(a, PlanCache::Key(1, "EN", "q{...}"));
}

TEST(PlanCacheTest, LookupOutcomesHitMissInvalidated) {
  PlanCache cache(4);
  LookupOutcome outcome;
  EXPECT_EQ(cache.Lookup("k", 5, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kMiss);

  cache.Insert("k", Entry(5, cache.generation()));
  auto hit = cache.Lookup("k", 5, &outcome);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kHit);
  EXPECT_EQ(hit->built_lsn, 5u);

  // The store's visible LSN moved (an update committed): the entry is
  // stale, dropped on lookup, and the slot is a clean miss afterwards.
  EXPECT_EQ(cache.Lookup("k", 6, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kInvalidated);
  EXPECT_EQ(cache.Lookup("k", 6, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, OlderVisibleLsnAlsoInvalidates) {
  // Freshness is equality, not ordering: a plan built at LSN 7 must not
  // serve a session whose visible LSN is 6 (e.g. after a store swap).
  PlanCache cache(4);
  cache.Insert("k", Entry(7, cache.generation()));
  LookupOutcome outcome;
  EXPECT_EQ(cache.Lookup("k", 6, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kInvalidated);
}

TEST(PlanCacheTest, GenerationBumpInvalidatesEverything) {
  PlanCache cache(4);
  cache.Insert("a", Entry(1, cache.generation()));
  cache.Insert("b", Entry(1, cache.generation()));
  ASSERT_EQ(cache.size(), 2u);

  cache.BumpGeneration();  // a checkpoint relabeled intervals

  LookupOutcome outcome;
  EXPECT_EQ(cache.Lookup("a", 1, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kInvalidated);
  EXPECT_EQ(cache.Lookup("b", 1, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kInvalidated);
  EXPECT_EQ(cache.size(), 0u);

  // Entries built under the NEW generation hit again.
  cache.Insert("a", Entry(1, cache.generation()));
  EXPECT_NE(cache.Lookup("a", 1, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kHit);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  PlanCache cache(2);
  cache.Insert("a", Entry(1, cache.generation()));
  cache.Insert("b", Entry(1, cache.generation()));
  LookupOutcome outcome;
  // Touch "a" so "b" is now the coldest.
  ASSERT_NE(cache.Lookup("a", 1, &outcome), nullptr);
  cache.Insert("c", Entry(1, cache.generation()));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("a", 1, &outcome), nullptr);
  EXPECT_NE(cache.Lookup("c", 1, &outcome), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kMiss);
}

TEST(PlanCacheTest, ReplacingAKeyKeepsCapacityAccounting) {
  PlanCache cache(2);
  cache.Insert("a", Entry(1, cache.generation()));
  cache.Insert("a", Entry(2, cache.generation()));
  EXPECT_EQ(cache.size(), 1u);
  LookupOutcome outcome;
  auto got = cache.Lookup("a", 2, &outcome);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->built_lsn, 2u);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Insert("a", Entry(1, cache.generation()));
  EXPECT_EQ(cache.size(), 0u);
  LookupOutcome outcome;
  EXPECT_EQ(cache.Lookup("a", 1, &outcome), nullptr);
  EXPECT_EQ(outcome, LookupOutcome::kMiss);
}

TEST(PlanCacheTest, EvictionCannotDangleAHeldEntry) {
  PlanCache cache(1);
  cache.Insert("a", Entry(9, cache.generation()));
  LookupOutcome outcome;
  std::shared_ptr<const CachedPlan> held = cache.Lookup("a", 9, &outcome);
  ASSERT_NE(held, nullptr);
  cache.Insert("b", Entry(1, cache.generation()));  // evicts "a"
  EXPECT_EQ(cache.Lookup("a", 9, &outcome), nullptr);
  // The holder keeps the evicted entry alive — this is what lets a queued
  // task keep pointing into a cached plan across evictions.
  EXPECT_EQ(held->built_lsn, 9u);
}

}  // namespace
}  // namespace mctsvc
