#include "design/xml_design.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/logging.h"
#include "design/algorithm_mc.h"
#include "design/associations.h"
#include "design/recoverability.h"

namespace mctdb::design {

namespace {

/// Adds root occurrences for ER nodes with no occurrence yet, and turns
/// every structurally unrealized ER edge into an id/idref edge hung off the
/// relationship side's occurrence (bill_address_idref-style, Fig 3).
void CoverRemainderWithRefs(const er::ErGraph& graph, mct::MctSchema* schema) {
  const mct::ColorId color = 0;
  for (er::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (schema->FindOcc(color, v) == mct::kInvalidOcc) {
      schema->AddRoot(color, v);
    }
  }
  std::vector<bool> realized(graph.num_edges(), false);
  for (const mct::SchemaOcc& o : schema->occurrences()) {
    if (!o.is_root()) realized[o.via_edge] = true;
  }
  for (const er::ErEdge& e : graph.edges()) {
    if (realized[e.id]) continue;
    mct::OccId rel_occ = schema->FindOcc(color, e.rel);
    MCTDB_CHECK(rel_occ != mct::kInvalidOcc);
    schema->AddRefEdge(rel_occ, e.id, e.node);
  }
}

}  // namespace

mct::MctSchema DesignShallow(const er::ErGraph& graph, std::string name) {
  const er::ErDiagram& diagram = graph.diagram();
  mct::MctSchema schema(std::move(name), &graph);
  mct::ColorId color = schema.AddColor();

  // Entity types become roots. Relationship types nest under one
  // participating type; nodes are created in id order, and relationship ids
  // exceed their endpoints' (stratification), so parents always exist.
  for (const er::ErNode& node : diagram.nodes()) {
    if (node.is_entity()) {
      schema.AddRoot(color, node.id);
      continue;
    }
    // Prefer the endpoint with MANY participation (the "one side" owner —
    // order_line under order, Fig 2); fall back to endpoint 0.
    int parent_ep =
        node.endpoints[1].participation == er::Participation::kMany &&
                node.endpoints[0].participation == er::Participation::kOne
            ? 1
            : 0;
    er::NodeId parent_node = node.endpoints[parent_ep].target;
    er::NodeId other_node = node.endpoints[1 - parent_ep].target;
    // Locate the ER edges for each endpoint of this relationship.
    er::EdgeId parent_edge = er::kInvalidEdge, other_edge = er::kInvalidEdge;
    for (er::EdgeId eid : graph.incident(node.id)) {
      const er::ErEdge& e = graph.edge(eid);
      if (e.rel != node.id) continue;
      if (e.endpoint_index == parent_ep) parent_edge = eid;
      if (e.endpoint_index == 1 - parent_ep) other_edge = eid;
    }
    MCTDB_CHECK(parent_edge != er::kInvalidEdge &&
                other_edge != er::kInvalidEdge);
    mct::OccId parent_occ = schema.FindOcc(color, parent_node);
    MCTDB_CHECK(parent_occ != mct::kInvalidOcc);
    mct::OccId rel_occ = schema.AddChild(parent_occ, node.id, parent_edge);
    schema.AddRefEdge(rel_occ, other_edge, other_node);
  }
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

mct::MctSchema DesignAf(const er::ErGraph& graph, std::string name) {
  McOptions options;
  options.single_color = true;
  mct::MctSchema schema = AlgorithmMc(graph, std::move(name), options);
  CoverRemainderWithRefs(graph, &schema);
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

namespace {

class DeepUnfolder {
 public:
  DeepUnfolder(const er::ErGraph& graph, mct::MctSchema* schema,
               const DeepOptions& options)
      : graph_(graph), schema_(schema), options_(options) {}

  void UnfoldFromRoot(er::NodeId root) {
    if (schema_->num_occurrences() >= options_.max_occurrences) return;
    mct::OccId occ = schema_->AddRoot(0, root);
    std::vector<bool> on_path(graph_.num_nodes(), false);
    on_path[root] = true;
    Expand(occ, &on_path, /*reverse_above=*/false);
  }

 private:
  /// Is traversing `e` out of `from` a "reverse" step — nesting the one side
  /// under the many side, duplicating instances of the far end?
  bool IsReverse(const er::ErEdge& e, er::NodeId from) const {
    return !graph_.Traversable(e, from);
  }
  /// Is it a "forward fan-out" step — entity to relationship with MANY
  /// participation (one parent instance, many children)?
  static bool IsFanOut(const er::ErEdge& e, er::NodeId from) {
    return from == e.node && e.participation == er::Participation::kMany;
  }

  void Expand(mct::OccId occ, std::vector<bool>* on_path, bool reverse_above) {
    if (schema_->num_occurrences() >= options_.max_occurrences) return;
    er::NodeId node = schema_->occ(occ).er_node;
    for (er::EdgeId eid : graph_.incident(node)) {
      const er::ErEdge& e = graph_.edge(eid);
      er::NodeId other = e.other(node);
      if ((*on_path)[other]) continue;  // each node once per root path
      bool reverse = IsReverse(e, node);
      // Below a reverse step only functional context may follow: fan-out
      // there would nest one duplicated instance's unbounded set, which
      // Fig 4 does not do (it duplicates address/country/item/author
      // *context*, not whole sub-hierarchies).
      if (reverse_above && IsFanOut(e, node)) continue;
      if (schema_->num_occurrences() >= options_.max_occurrences) return;
      mct::OccId child = schema_->AddChild(occ, other, eid);
      (*on_path)[other] = true;
      Expand(child, on_path, reverse_above || reverse);
      (*on_path)[other] = false;
    }
  }

  const er::ErGraph& graph_;
  mct::MctSchema* schema_;
  const DeepOptions& options_;
};

}  // namespace

mct::MctSchema DesignDeep(const er::ErGraph& graph, std::string name,
                          const DeepOptions& options) {
  mct::MctSchema schema(std::move(name), &graph);
  schema.AddColor();
  DeepUnfolder unfolder(graph, &schema, options);

  std::set<er::NodeId> rooted;
  for (er::NodeId src : graph.SourceSccNodes()) {
    // One root per source SCC suffices; prefer the smallest id for
    // determinism, and skip nodes with no outgoing structure.
    bool has_out = false;
    for (er::EdgeId eid : graph.incident(src)) {
      if (graph.Traversable(eid, src)) {
        has_out = true;
        break;
      }
    }
    if (has_out || graph.incident(src).empty()) {
      unfolder.UnfoldFromRoot(src);
      rooted.insert(src);
    }
  }

  // Completeness: every eligible association must be directly recoverable;
  // add unfold roots for sources of still-missing paths. (The tree unfolded
  // from p.source realizes every simple traversable path out of p.source,
  // in particular p.)
  auto paths = EnumerateEligiblePaths(graph);
  for (const AssociationPath& p : paths) {
    if (schema.num_occurrences() >= options.max_occurrences) break;
    if (rooted.count(p.source)) continue;
    if (!IsPathDirectlyRecoverable(schema, p)) {
      unfolder.UnfoldFromRoot(p.source);
      rooted.insert(p.source);
    }
  }
  // Isolated / still-missing nodes become bare roots so the schema covers
  // every type.
  for (er::NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (schema.FindOcc(0, v) == mct::kInvalidOcc &&
        std::find_if(schema.occurrences().begin(),
                     schema.occurrences().end(),
                     [&](const mct::SchemaOcc& o) {
                       return o.er_node == v;
                     }) == schema.occurrences().end()) {
      schema.AddRoot(0, v);
    }
  }
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace mctdb::design
