#include "storage/sharded_pool.h"

#include <thread>

#include "common/hash.h"
#include "common/log.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"

namespace mctdb::storage {

namespace flight = obs::flight;

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t PickShardCount(size_t requested, size_t capacity_pages) {
  size_t n = requested;
  if (n == 0) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 4;
    n = 2 * hw;
  }
  n = NextPow2(n);
  if (n > 64) n = 64;
  // Every shard must own at least one page of the budget.
  while (n > 1 && n > capacity_pages) n >>= 1;
  return n;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(const Pager* pager,
                                     size_t capacity_pages,
                                     size_t num_shards)
    : pager_(pager), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {
  size_t n = PickShardCount(num_shards, capacity_);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
    MCTDB_CHECK(shard->capacity >= 1);
    shards_.push_back(std::move(shard));
  }
}

ShardedBufferPool::Shard& ShardedBufferPool::ShardFor(PageId id) {
  return *shards_[Hash64(uint64_t(id)) & (shards_.size() - 1)];
}

const ShardedBufferPool::Shard& ShardedBufferPool::ShardFor(
    PageId id) const {
  return *shards_[Hash64(uint64_t(id)) & (shards_.size() - 1)];
}

void ShardedBufferPool::ReleaseFailedLocked(Shard& s, PageId id, Frame& f) {
  MCTDB_CHECK(f.load_failed && f.pins > 0);
  if (--f.pins == 0) {
    s.frames.erase(id);
    // Wake fetchers parked until the poisoned frame is gone so they can
    // fault the page in fresh.
    s.load_cv.notify_all();
  }
}

Status ShardedBufferPool::Fetch(PageId id, const char** out_frame,
                                bool* out_miss) {
  Shard& s = ShardFor(id);
  std::unique_lock<mctdb::OrderedMutex> lock(s.mu);
  for (;;) {
    auto it = s.frames.find(id);
    if (it != s.frames.end()) {
      Frame& f = it->second;
      if (f.load_failed) {
        // A previous load of this page failed and its pin holders have
        // not all drained yet. Wait for the frame to be erased, then
        // retry the fetch from scratch (fresh read, fresh luck).
        s.load_cv.wait(lock, [&s, id] {
          auto again = s.frames.find(id);
          return again == s.frames.end() || !again->second.load_failed;
        });
        continue;
      }
      s.hits.fetch_add(1, std::memory_order_relaxed);
      *out_miss = false;
      if (f.in_lru) {
        s.lru.erase(f.lru_pos);
        f.in_lru = false;
      }
      ++f.pins;
      if (f.loading) {
        // Another thread reserved this frame and is reading it in with
        // the lock released; our pin keeps the frame alive, so just wait
        // for the bytes (one disk read serves every concurrent fetcher).
        // NOTE: insertions during the wait may rehash the map, so use the
        // stable Frame reference, not the iterator.
        s.load_cv.wait(lock, [&f] { return !f.loading; });
        if (f.load_failed) {
          Status failure = f.load_status;
          ReleaseFailedLocked(s, id, f);
          return failure;
        }
      }
      *out_frame = f.data.get();
      return Status::OK();
    }
    s.misses.fetch_add(1, std::memory_order_relaxed);
    *out_miss = true;
    if (s.frames.size() >= s.capacity && !s.lru.empty()) {
      PageId victim = s.lru.back();
      s.lru.pop_back();
      s.frames.erase(victim);
      MCTDB_LOG(kDebug, "pool", "page evicted",
                {{"victim", uint64_t(victim)},
                 {"for", uint64_t(id)},
                 {"resident", uint64_t(s.frames.size())}});
      flight::Record(flight::Subsystem::kPool, flight::Site::kEvict,
                     obs::CurrentTraceId(), victim);
    }
    Frame f;
    f.data = std::make_unique<char[]>(kPageSize);
    f.pins = 1;
    f.loading = true;
    auto [pos, inserted] = s.frames.emplace(id, std::move(f));
    MCTDB_CHECK(inserted);
    // Read OUTSIDE the shard lock: a miss's disk I/O must not serialize
    // hits on other pages of the shard. The frame is pinned and marked
    // loading, so it cannot be evicted or trimmed, and `frame` stays
    // valid (rehash moves buckets, not elements).
    Frame& frame = pos->second;
    char* data = frame.data.get();
    Status read_status;
    // Quarantine protocol: if the read fails even after the pager's own
    // retries, evict the poisoned bytes and re-read once before giving
    // up — a transient fault localized to one transfer should not fail
    // the fetch.
    for (int attempt = 0; attempt < 2; ++attempt) {
      lock.unlock();
      read_status = pager_->Read(id, data);
      lock.lock();
      if (read_status.ok()) break;
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      MCTDB_LOG(kWarn, "pool", "frame quarantined",
                {{"page", uint64_t(id)},
                 {"attempt", uint64_t(attempt)},
                 {"status", read_status.ToString()}});
      flight::Record(flight::Subsystem::kPool, flight::Site::kQuarantine,
                     obs::CurrentTraceId(), id);
    }
    frame.loading = false;
    if (read_status.ok()) {
      s.load_cv.notify_all();
      *out_frame = data;
      return Status::OK();
    }
    frame.load_failed = true;
    frame.load_status = read_status;
    // Wake piggybacked waiters so they observe the failure and drain
    // their pins; ours drops here (possibly erasing the frame already).
    s.load_cv.notify_all();
    ReleaseFailedLocked(s, id, frame);
    return read_status;
  }
}

void ShardedBufferPool::Unpin(PageId id) {
  Shard& s = ShardFor(id);
  std::lock_guard<mctdb::OrderedMutex> lock(s.mu);
  auto it = s.frames.find(id);
  MCTDB_CHECK_MSG(it != s.frames.end(), "unpin of non-resident page");
  Frame& f = it->second;
  MCTDB_CHECK_MSG(f.pins > 0, "unpin without matching fetch");
  if (--f.pins > 0) return;
  if (s.frames.size() > s.capacity) {
    // The shard overflowed while everything was pinned; trim immediately.
    s.frames.erase(it);
    MCTDB_LOG(kDebug, "pool", "overflow frame trimmed",
              {{"page", uint64_t(id)}, {"resident", uint64_t(s.frames.size())}});
    return;
  }
  s.lru.push_front(id);
  f.lru_pos = s.lru.begin();
  f.in_lru = true;
}

uint64_t ShardedBufferPool::hits() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->hits.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ShardedBufferPool::misses() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->misses.load(std::memory_order_relaxed);
  }
  return total;
}

size_t ShardedBufferPool::resident() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<mctdb::OrderedMutex> lock(s->mu);
    total += s->frames.size();
  }
  return total;
}

std::vector<ShardedBufferPool::ShardStats> ShardedBufferPool::PerShard()
    const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    ShardStats stats;
    stats.hits = s->hits.load(std::memory_order_relaxed);
    stats.misses = s->misses.load(std::memory_order_relaxed);
    {
      std::lock_guard<mctdb::OrderedMutex> lock(s->mu);
      stats.resident = s->frames.size();
    }
    out.push_back(stats);
  }
  return out;
}

void ShardedBufferPool::ResetStats() {
  for (const auto& s : shards_) {
    s->hits.store(0, std::memory_order_relaxed);
    s->misses.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mctdb::storage
