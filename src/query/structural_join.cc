#include "query/structural_join.h"

#include <algorithm>

namespace mctdb::query {

StructuralJoinResult StackTreeJoin(
    const std::vector<storage::LabelEntry>& ancestors,
    const std::vector<storage::LabelEntry>& descendants,
    const StructuralJoinOptions& options) {
  StructuralJoinResult out;
  // Stack of open ancestor intervals (nested by construction). For each
  // descendant, the matching ancestors are exactly the stack contents.
  std::vector<storage::LabelEntry> stack;
  std::vector<bool> stack_matched;

  size_t ai = 0;
  auto pop_closed = [&](uint32_t before_start) {
    while (!stack.empty() && stack.back().end < before_start) {
      if (stack_matched.back()) out.ancestors.push_back(stack.back());
      stack.pop_back();
      stack_matched.pop_back();
    }
  };

  for (const storage::LabelEntry& d : descendants) {
    // Open every ancestor starting before this descendant.
    while (ai < ancestors.size() && ancestors[ai].start < d.start) {
      pop_closed(ancestors[ai].start);
      stack.push_back(ancestors[ai]);
      stack_matched.push_back(false);
      ++ai;
    }
    pop_closed(d.start);
    bool matched = false;
    for (size_t s = 0; s < stack.size(); ++s) {
      if (stack[s].end < d.end) continue;  // not containing (sibling zone)
      if (options.parent_child_only && d.level != stack[s].level + 1) {
        continue;
      }
      ++out.pairs;
      matched = true;
      stack_matched[s] = true;
      if (!options.parent_child_only) {
        // All further stack entries also contain d (nested intervals), but
        // for the binding semantics one match suffices; still count pairs.
        for (size_t t = s + 1; t < stack.size(); ++t) {
          if (stack[t].end > d.end) {
            ++out.pairs;
            stack_matched[t] = true;
          }
        }
        break;
      }
    }
    if (matched) out.descendants.push_back(d);
  }
  pop_closed(UINT32_MAX);
  std::sort(out.ancestors.begin(), out.ancestors.end(),
            [](const storage::LabelEntry& a, const storage::LabelEntry& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace mctdb::query
