// mctsvc::QueryService — an embeddable concurrent query service over one
// or more MctStores.
//
// Architecture:
//   * a fixed-size worker ThreadPool with a bounded admission window:
//     Submit returns Status::ResourceExhausted once max_queued requests
//     are in flight (queued or running), instead of buffering unboundedly;
//   * per-request deadlines: a request whose deadline passes while it
//     waits is cancelled cleanly at dequeue with Status::DeadlineExceeded
//     (it never starts executing);
//   * sessions: a Session's requests execute in submission order, one at a
//     time (a strand), while distinct sessions run in parallel on the
//     worker pool. Read-only queries may run from any number of sessions
//     of the same store concurrently; update plans are only legal through
//     a session, relying on "one session per store" for exclusivity;
//   * one thread-safe ShardedBufferPool per registered store, shared by
//     all of that store's sessions; each request gets its own Executor
//     over that pool handle, so the single-threaded store-owned
//     BufferPool is bypassed entirely on the service path;
//   * a ServiceMetrics registry (latency histogram, queue depth, admission
//     rejections, per-shard pool hit/miss) exportable as JSON;
//   * graceful degradation: a load-shedding admission controller (past
//     the low watermark new-session/low-priority work is shed with
//     Status::Unavailable and a retry-after hint, past the high watermark
//     normal-priority too — high-priority rides until the hard admission
//     limit) and a per-store circuit breaker that opens after N
//     consecutive hard failures (DataLoss/Internal) and half-opens on a
//     timer. A degraded service says so on /healthz (HTTP 503) while the
//     healthy stores keep serving.
//
// Stores are registered non-owning and must outlive the service. The
// service treats store data as shared read-only state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "obs/exec_stats.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/update_exec.h"
#include "service/circuit_breaker.h"
#include "service/http_endpoint.h"
#include "service/metrics.h"
#include "service/plan_cache.h"
#include "storage/sharded_pool.h"
#include "storage/store.h"
#include "wal/maintenance.h"

namespace mctsvc {

/// Request priority for the load-shedding admission controller. Under
/// pressure the service sheds from the bottom up: kLow first (one-shot
/// Execute calls — "new sessions" — submit at kLow), then kNormal; kHigh
/// is only refused at the hard admission limit.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

struct ServiceOptions {
  /// Worker threads executing requests.
  size_t num_threads = 4;
  /// Admission window: requests in flight (queued or running) across all
  /// sessions. Submissions beyond it are rejected, not buffered.
  size_t max_queued = 256;
  /// Per-store sharded buffer pool: capacity in pages and shard count
  /// (0 = heuristic, see ShardedBufferPool).
  size_t pool_pages = 2048;
  size_t pool_shards = 0;
  /// Default per-request deadline in seconds; 0 = none.
  double default_timeout_seconds = 0.0;
  /// Start with the workers parked until Resume(). Lets an embedder stage
  /// a batch deterministically (also how the admission tests drive the
  /// queue to overflow without races).
  bool start_paused = false;
  /// Run the static plan verifier (analysis::VerifyPlan) at admission.
  /// Malformed plans are rejected with Status::InvalidArgument before they
  /// consume an admission slot or a worker.
  bool verify_plans = true;
  /// Per-store plan cache capacity (entries) for SubmitQuery. A hit skips
  /// planning AND admission-time verification (the cached entry was
  /// verified when it was built). 0 disables the cache — every SubmitQuery
  /// plans fresh.
  size_t plan_cache_capacity = 64;
  /// Slow-query threshold in seconds: a completed request whose execution
  /// took at least this long is recorded in the slow-query log (and
  /// counted in metrics). 0 disables the log.
  double slow_query_seconds = 0.0;
  /// Ring-buffer capacity of the slow-query log; the oldest entry is
  /// dropped once full.
  size_t slow_query_log_capacity = 32;
  /// Keep the rendered span trace of the last N completed requests for
  /// the /tracez endpoint. 0 (the default) disables the ring entirely —
  /// no per-completion serialization cost on the hot path.
  size_t trace_log_capacity = 0;
  /// Load-shedding watermarks as fractions of max_queued. Once the
  /// in-flight count crosses shed_low_fraction * max_queued, kLow
  /// submissions are shed with Status::Unavailable; past
  /// shed_normal_fraction, kNormal too. Shedding keeps headroom for
  /// high-priority and already-started work instead of letting the hard
  /// limit reject indiscriminately.
  double shed_low_fraction = 0.75;
  double shed_normal_fraction = 0.9;
  /// Per-store circuit breaker: consecutive hard failures (DataLoss /
  /// Internal) that trip it, and how long it stays open before probing.
  /// A threshold of 0 disables the breakers.
  int breaker_failure_threshold = 5;
  double breaker_open_seconds = 5.0;
  /// Serve /metrics, /healthz, /slowlog and /tracez over HTTP on
  /// 127.0.0.1. -1 disables the endpoint; 0 binds an ephemeral port
  /// (read it back with HttpPort()); > 0 binds that port. A bind
  /// failure is logged and leaves the service running without the
  /// endpoint (observability must never take the data path down).
  int http_port = -1;
  /// Start one wal::MaintenanceManager per durable store (background
  /// checkpointing, interval-label rebalancing, read-only re-probing;
  /// DESIGN.md §17). Off by default so embedders and tests that pin WAL
  /// counters see no background activity.
  bool maintenance_enabled = false;
  /// Trigger thresholds for the per-store maintenance managers.
  mctdb::wal::MaintenanceOptions maintenance;
};

using QueryFuture = std::future<mctdb::Result<mctdb::query::ExecResult>>;
using UpdateFuture =
    std::future<mctdb::Result<mctdb::query::UpdateExecResult>>;

class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options = {});
  /// Drains every admitted request, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a store under `name` (non-owning; the store must outlive
  /// the service) and builds its shared sharded buffer pool.
  mctdb::Status AddStore(const std::string& name,
                         mctdb::storage::MctStore* store);

  /// Registers a WAL-backed durable store (non-owning; must outlive the
  /// service): its in-memory MctStore serves reads like AddStore, and
  /// sessions on it additionally accept SubmitUpdate. Recovery work done
  /// when the store was opened lands in mctsvc_recovery_replayed_records.
  mctdb::Status AddDurableStore(const std::string& name,
                                mctdb::wal::DurableStore* store);

  class Session;
  /// Opens a session on a registered store. The session must not outlive
  /// the service.
  mctdb::Result<std::shared_ptr<Session>> OpenSession(
      const std::string& store);

  /// One-shot convenience: submits on an ephemeral session and waits.
  /// Rejects update plans — updates need an explicit session so the
  /// caller owns the serialization domain. One-shots are the service's
  /// "new session" class and submit at Priority::kLow, so under overload
  /// they are shed before established sessions' work.
  mctdb::Result<mctdb::query::ExecResult> Execute(
      const std::string& store, const mctdb::query::QueryPlan& plan,
      double timeout_seconds = 0.0);

  /// One-shot by QUERY (not plan): plans through the store's plan cache —
  /// or serves a cached, still-fresh plan without re-planning — then
  /// executes and waits. Same shed class and update rejection as Execute.
  mctdb::Result<mctdb::query::ExecResult> ExecuteQuery(
      const std::string& store, const mctdb::query::AssociationQuery& query,
      double timeout_seconds = 0.0);

  /// Checkpoints a durable store (fold deltas into a fresh compact image,
  /// trim the WAL) and bumps its plan-cache generation: a checkpoint may
  /// relabel intervals, so every cached plan built before it stops
  /// hitting. InvalidArgument for read-only or unknown stores.
  mctdb::Result<mctdb::wal::CheckpointStats> Checkpoint(
      const std::string& store);

  /// The named store's plan cache, or nullptr if unknown. Exposed for
  /// tests and embedders.
  PlanCache* plan_cache(const std::string& store) const;

  /// Releases workers of a start_paused service (idempotent).
  void Resume();
  /// Blocks until no request is queued or running.
  void Drain();

  ServiceMetrics& metrics() { return metrics_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  /// Service counters plus per-store, per-shard pool statistics as JSON.
  std::string MetricsJson() const;
  /// The same data in Prometheus text exposition format (counters, the
  /// latency histogram with cumulative `le` buckets, per-store pool
  /// gauges), ready to serve from a /metrics endpoint.
  std::string MetricsText() const;

  /// One slow-query log entry: the per-stage breakdown of a request that
  /// crossed the slow_query_seconds threshold — or a request the admission
  /// path turned away (outcome "shed"/"rejected"/"breaker"), so the log
  /// still tells the story when the service is saturated and nothing
  /// completes at all.
  struct SlowQueryRecord {
    std::string store;
    std::string query;
    /// Correlation key (obs/trace_id.h); filters `mctc trace --id` and
    /// joins against flight-recorder dumps.
    uint64_t trace_id = 0;
    /// "completed" (crossed the latency threshold), or why admission
    /// turned the request away: "shed", "rejected", "breaker".
    std::string outcome = "completed";
    double seconds = 0.0;
    uint64_t page_hits = 0;
    uint64_t page_misses = 0;
    uint64_t join_pairs = 0;
    mctdb::obs::StageTable stages{};
  };
  /// Snapshot of the slow-query ring buffer, oldest first.
  std::vector<SlowQueryRecord> SlowQueries() const;
  /// The same snapshot as one JSON document (the /slowlog response):
  /// {"slow_queries":[{"store":...,"query":...,"seconds":...,...}]}.
  std::string SlowQueriesJson() const;
  /// Rendered span traces of recent completions, oldest first (empty
  /// unless ServiceOptions::trace_log_capacity > 0).
  std::vector<std::string> RecentTraces() const;
  /// The /tracez response: {"traces":[<span tree>,...]}.
  std::string TracesJson() const;
  /// The /healthz response: status ("ok"/"degraded"), uptime, store and
  /// worker counts, and per-store breaker states.
  std::string HealthJson() const;
  /// The /statusz response — live introspection in one JSON document:
  /// currently-executing requests (trace id, store, query, elapsed),
  /// queue depth and the queue-wait histogram, per-durable-store in-flight
  /// WAL batch size, plan-cache and breaker state, buffer-pool residency
  /// per store, and per-rank lock contention.
  std::string StatuszJson() const;
  /// The /flightz response: a live flight-recorder snapshot rendered as
  /// {"events":[...]} (obs::flight::Snapshot; empty when the recorder is
  /// disabled).
  std::string FlightzJson() const;
  /// True while any store's circuit breaker is open or half-open. The
  /// /healthz route answers 503 in this state so load balancers steer
  /// away, but the service keeps answering for its healthy stores.
  bool Degraded() const;
  /// The named store's breaker, or nullptr if unknown / breakers are
  /// disabled. Exposed for tests and embedders; the service itself
  /// records outcomes.
  CircuitBreaker* breaker(const std::string& store) const;

  /// Port of the live HTTP endpoint, or 0 when disabled / bind failed.
  uint16_t HttpPort() const;

  /// Registers an extra HTTP route served before the built-in
  /// observability routes (exact path match, GET or POST) — how `mctc
  /// serve` mounts POST /update. The handler runs on the listener thread;
  /// it may call back into the service (OpenSession/SubmitUpdate lock
  /// nothing across the call). Replaces any previous handler for `path`.
  void AddHttpRoute(const std::string& path, HttpEndpoint::Handler handler);

 private:
  friend class Session;
  /// The (store, pool) pair requests execute against. A kRebaseLive
  /// maintenance checkpoint swaps the durable store's live MctStore; the
  /// service then publishes a fresh view (new pool over the new store's
  /// pager) and in-flight requests finish on the view they resolved —
  /// the old store stays alive in DurableStore's retired list, the old
  /// pool stays alive through this shared_ptr. Store and pool must always
  /// be swapped together: a pool caches pages by id from ITS pager, so a
  /// mixed pair would serve another store's bytes.
  struct StoreView {
    mctdb::storage::MctStore* store = nullptr;
    std::shared_ptr<mctdb::storage::ShardedBufferPool> pool;
  };
  struct StoreEntry {
    std::shared_ptr<const StoreView> view;  // current pair; swapped on rebase
    mctdb::wal::DurableStore* durable = nullptr;  // null for read-only
    std::unique_ptr<CircuitBreaker> breaker;  // null when disabled
    std::unique_ptr<PlanCache> plan_cache;
    /// storage::SchemaFingerprint of the store's schema, part of every
    /// plan-cache key.
    uint64_t fingerprint = 0;
    /// Checkpoints run through QueryService::Checkpoint (reason "manual"
    /// in mctsvc_checkpoints_triggered_total). Guarded by mu_.
    uint64_t manual_checkpoints = 0;
    /// Declared last so it is destroyed (thread joined) before the state
    /// its callback touches.
    std::unique_ptr<mctdb::wal::MaintenanceManager> maintenance;
  };

  /// The store's current view, or null if unknown. Sessions resolve this
  /// per request instead of caching raw pointers across rebases.
  std::shared_ptr<const StoreView> CurrentView(const std::string& store) const;
  /// MaintenanceManager completion callback (runs on the maintenance
  /// thread): publishes a fresh view after a live rebase, bumps the plan
  /// cache generation — even on failure, mirroring Checkpoint() — and
  /// records the generation-bump flight event under the cycle's trace id.
  void OnMaintenanceCheckpoint(
      const std::string& store,
      const mctdb::wal::MaintenanceManager::Event& event);
  void RunNext(const std::shared_ptr<Session>& session);
  void FinishOne();
  /// Records per-query I/O counters and, past the threshold, appends the
  /// request to the slow-query ring.
  void RecordCompletion(const Session& session,
                        const mctdb::query::ExecResult& result);
  /// Appends an admission-refused request (shed / hard-limit reject /
  /// open breaker) to the slow-query ring — saturation is exactly when
  /// the log must not go quiet. No-op when the log is disabled.
  void RecordRejection(const std::string& store, const char* outcome,
                       uint64_t trace_id, const std::string& query_label);

  /// One currently-executing request, keyed by TraceId in inflight_.
  struct InFlightEntry {
    std::string store;
    std::string query;
    std::chrono::steady_clock::time_point start;
  };
  void BeginInFlight(uint64_t trace_id, const std::string& store,
                     std::string query_label);
  void EndInFlight(uint64_t trace_id);

  // Lock ranks (see common/ordered_mutex.h): registry < strand < drain <
  // pool shard. The rank checker aborts on any acquisition that inverts
  // this order.
  ServiceOptions options_;
  ServiceMetrics metrics_;
  mutable mctdb::OrderedMutex mu_{
      mctdb::LockRank::kServiceRegistry};  // guards stores_, http_routes_
  std::map<std::string, StoreEntry> stores_;
  std::map<std::string, HttpEndpoint::Handler> http_routes_;
  std::atomic<uint64_t> pending_{0};
  mctdb::OrderedMutex drain_mu_{mctdb::LockRank::kServiceDrain};
  std::condition_variable_any drained_cv_;
  mutable mctdb::OrderedMutex slow_mu_{mctdb::LockRank::kSlowQueryLog};
  std::deque<SlowQueryRecord> slow_log_;  // bounded ring, oldest first
  std::deque<std::string> trace_log_;     // rendered traces, same ring rank
  mutable mctdb::OrderedMutex inflight_mu_{
      mctdb::LockRank::kInFlightTable};
  std::map<uint64_t, InFlightEntry> inflight_;  // trace id -> running task
  std::unique_ptr<mctdb::ThreadPool> pool_;
  std::chrono::steady_clock::time_point start_time_;
  std::unique_ptr<HttpEndpoint> http_;  // created last, destroyed first
};

/// A strand of requests over one store: FIFO order, no intra-session
/// concurrency, inter-session parallelism. Obtain via OpenSession.
class QueryService::Session
    : public std::enable_shared_from_this<QueryService::Session> {
 public:
  /// Submits `plan` for execution. The plan (and whatever it references)
  /// must stay alive until the returned future resolves. `timeout_seconds`
  /// <= 0 falls back to the service default. Under overload, requests
  /// below the current shedding watermark are refused with
  /// Status::Unavailable (retry-after hint in the message); an open
  /// circuit breaker on this store refuses the same way.
  mctdb::Result<QueryFuture> Submit(
      const mctdb::query::QueryPlan& plan, double timeout_seconds = 0.0,
      Priority priority = Priority::kNormal);

  /// Submits a QUERY, planning through the store's plan cache. A fresh
  /// entry keyed by (store fingerprint, schema, canonical query text) that
  /// was built at the store's CURRENT visible LSN under the CURRENT cache
  /// generation is reused as-is — no planning, no re-verification (the
  /// entry was verified when built). Anything else re-plans against
  /// current state and installs the new entry. The strict LSN guard makes
  /// a stale cached result impossible by construction: any committed
  /// update advances the visible LSN and invalidates on next lookup.
  /// Unlike Submit, the query need not outlive the call — the cached
  /// entry owns a copy.
  mctdb::Result<QueryFuture> SubmitQuery(
      const mctdb::query::AssociationQuery& query,
      double timeout_seconds = 0.0, Priority priority = Priority::kNormal);

  /// Submits one update op on this session's strand. Requires the store
  /// to be registered via AddDurableStore (InvalidArgument otherwise).
  /// Updates are admitted at Priority::kHigh: an update the caller is
  /// about to fsync is the last thing to shed under load, so it rides
  /// until the hard admission limit like other high-priority work. The op
  /// must stay alive until the future resolves.
  mctdb::Result<UpdateFuture> SubmitUpdate(
      const mctdb::storage::UpdateOp& op, double timeout_seconds = 0.0);

  const std::string& store_name() const { return store_name_; }
  /// The store's CURRENT sharded pool (owned by the service). The pointer
  /// is stable until the next maintenance rebase publishes a fresh pool.
  mctdb::storage::ShardedBufferPool* pool() const {
    return service_->CurrentView(store_name_)->pool.get();
  }

 private:
  friend class QueryService;
  struct Task {
    const mctdb::query::QueryPlan* plan = nullptr;
    /// Set instead of `plan` for update tasks (resolves update_promise).
    const mctdb::storage::UpdateOp* op = nullptr;
    /// For SubmitQuery tasks: pins the cached (query, plan) pair `plan`
    /// points into, so cache eviction can never dangle a queued task.
    std::shared_ptr<const CachedPlan> holder;
    /// Correlation key minted at admission; the worker executes under
    /// ScopedTraceId(trace_id) so every downstream event carries it.
    uint64_t trace_id = 0;
    /// Admission time, for the queue-wait histogram at dequeue.
    std::chrono::steady_clock::time_point enqueue_time;
    /// Human-readable label for /statusz ("query Q3", "insert_subtree").
    std::string query_label;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    std::promise<mctdb::Result<mctdb::query::ExecResult>> promise;
    std::promise<mctdb::Result<mctdb::query::UpdateExecResult>>
        update_promise;
  };

  Session(QueryService* service, std::string store_name,
          mctdb::wal::DurableStore* durable, CircuitBreaker* breaker,
          PlanCache* plan_cache, uint64_t fingerprint)
      : service_(service), store_name_(std::move(store_name)),
        durable_(durable), breaker_(breaker), plan_cache_(plan_cache),
        fingerprint_(fingerprint) {}

  /// Shared admission tail of Submit and SubmitQuery: verification gates
  /// (skipped for verified cached plans), breaker, hard limit, shedding,
  /// then the strand enqueue. `holder` (may be null) rides on the task.
  mctdb::Result<QueryFuture> SubmitPlanned(
      const mctdb::query::QueryPlan& plan,
      std::shared_ptr<const CachedPlan> holder, double timeout_seconds,
      Priority priority, bool pre_verified, uint64_t trace_id);

  // The session deliberately does NOT cache the store or pool pointers: a
  // maintenance rebase swaps both, so every request resolves the current
  // StoreView through the service instead. The remaining raw pointers
  // (durable store, breaker, plan cache) are stable for the service's
  // lifetime.
  QueryService* service_;
  std::string store_name_;
  mctdb::wal::DurableStore* durable_;  // null for read-only stores
  CircuitBreaker* breaker_;            // owned by the service; may be null
  PlanCache* plan_cache_;              // owned by the service
  uint64_t fingerprint_ = 0;

  mctdb::OrderedMutex mu_{mctdb::LockRank::kSessionStrand};
  std::deque<Task> tasks_;
  bool scheduled_ = false;
};

}  // namespace mctsvc
