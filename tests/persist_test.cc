#include "storage/persist.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "storage/validate.h"
#include "workload/workload.h"

namespace mctdb::storage {
namespace {

using design::Strategy;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

struct Fixture {
  workload::Workload w = workload::TpcwWorkload(0.03);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  instance::LogicalInstance logical = instance::GenerateInstance(graph, w.gen);
};

TEST(PersistTest, SaveLoadRoundTripPreservesEverything) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kDr);
  auto original = instance::Materialize(f.logical, schema);
  std::string path = TempPath("dr.mctdb");
  ASSERT_TRUE(SaveStore(*original, path).ok());

  auto loaded = LoadStore(schema, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  MctStore& store = **loaded;

  auto a = original->Stats();
  auto b = store.Stats();
  EXPECT_EQ(a.num_elements, b.num_elements);
  EXPECT_EQ(a.num_attributes, b.num_attributes);
  EXPECT_EQ(a.num_content_nodes, b.num_content_nodes);
  EXPECT_EQ(a.num_colors, b.num_colors);

  // The loaded store passes full validation (including ICICs).
  analysis::DiagnosticReport report = ValidateStore(store);
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(PersistTest, LoadedStoreAnswersQueriesIdentically) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto original = instance::Materialize(f.logical, schema);
  std::string path = TempPath("en.mctdb");
  ASSERT_TRUE(SaveStore(*original, path).ok());
  auto loaded = LoadStore(schema, path);
  ASSERT_TRUE(loaded.ok());

  for (const char* name : {"Q1", "Q2", "Q6", "Q9"}) {
    const query::AssociationQuery* q = f.w.Find(name);
    auto plan = query::PlanQuery(*q, schema);
    ASSERT_TRUE(plan.ok());
    query::Executor exec_orig(original.get());
    query::Executor exec_loaded(loaded->get());
    auto r1 = exec_orig.Execute(*plan);
    auto r2 = exec_loaded.Execute(*plan);
    ASSERT_TRUE(r1.ok() && r2.ok()) << name;
    EXPECT_EQ(r1->logicals, r2->logicals) << name;
    EXPECT_EQ(r1->raw_count, r2->raw_count) << name;
  }
}

TEST(PersistTest, FingerprintMismatchRefused) {
  Fixture f;
  mct::MctSchema en = f.designer.Design(Strategy::kEn);
  mct::MctSchema dr = f.designer.Design(Strategy::kDr);
  auto store = instance::Materialize(f.logical, en);
  std::string path = TempPath("fp.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());
  auto wrong = LoadStore(dr, path);
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().IsInvalidArgument());
  EXPECT_NE(wrong.status().message().find("fingerprint"), std::string::npos);
}

TEST(PersistTest, TruncatedFileRefused) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kShallow);
  auto store = instance::Materialize(f.logical, schema);
  std::string path = TempPath("trunc.mctdb");
  ASSERT_TRUE(SaveStore(*store, path).ok());
  // Truncate to 100 bytes.
  {
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    ASSERT_NE(fp, nullptr);
    char buf[100];
    ASSERT_EQ(std::fread(buf, 1, sizeof(buf), fp), sizeof(buf));
    std::fclose(fp);
    fp = std::fopen(path.c_str(), "wb");
    std::fwrite(buf, 1, sizeof(buf), fp);
    std::fclose(fp);
  }
  auto bad = LoadStore(schema, path);
  EXPECT_FALSE(bad.ok());
}

TEST(PersistTest, GarbageFileRefused) {
  std::string path = TempPath("garbage.mctdb");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a store", fp);
  std::fclose(fp);
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto bad = LoadStore(schema, path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("magic"), std::string::npos);
}

TEST(PersistTest, MissingFileIsIoError) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto bad = LoadStore(schema, TempPath("does_not_exist.mctdb"));
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsIoError());
}

TEST(PersistTest, FingerprintSensitiveToSchemaShape) {
  Fixture f;
  mct::MctSchema en = f.designer.Design(Strategy::kEn);
  mct::MctSchema mcmr = f.designer.Design(Strategy::kMcmr);
  mct::MctSchema en2 = f.designer.Design(Strategy::kEn);
  EXPECT_NE(SchemaFingerprint(en), SchemaFingerprint(mcmr));
  EXPECT_EQ(SchemaFingerprint(en), SchemaFingerprint(en2))
      << "designs are deterministic";
}

}  // namespace
}  // namespace mctdb::storage
