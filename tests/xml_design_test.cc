#include "design/xml_design.h"

#include <gtest/gtest.h>

#include "design/recoverability.h"
#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;

TEST(ShallowTest, SingleColorNodeNormalNotAr) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    mct::MctSchema s = DesignShallow(g);
    EXPECT_EQ(s.num_colors(), 1u);
    std::string why;
    EXPECT_TRUE(s.IsNodeNormal(&why)) << d.name() << ": " << why;
    EXPECT_TRUE(s.IsEdgeNormal());
    EXPECT_TRUE(s.CoversAllNodes());
    // Every relationship has exactly one structural parent edge and one
    // idref, so refs == #relationships and AR fails whenever any exist.
    EXPECT_EQ(s.ref_edges().size(), d.num_relationships());
    if (d.num_relationships() > 0) {
      EXPECT_FALSE(IsAssociationRecoverable(s)) << d.name();
    }
    EXPECT_TRUE(s.Validate().ok());
  }
}

TEST(ShallowTest, EntitiesAreRoots) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = DesignShallow(g);
  for (const er::ErNode& n : d.nodes()) {
    mct::OccId occ = s.FindOcc(0, n.id);
    ASSERT_NE(occ, mct::kInvalidOcc);
    EXPECT_EQ(s.occ(occ).is_root(), n.is_entity()) << n.name;
  }
}

TEST(ShallowTest, OrderLineNestsUnderOrder) {
  // Fig 2: order_line (via contain) sits under order with an item idref
  // held by occur_in.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = DesignShallow(g);
  mct::OccId contain = s.FindOcc(0, *d.FindNode("contain"));
  ASSERT_NE(contain, mct::kInvalidOcc);
  EXPECT_EQ(s.occ(s.occ(contain).parent).er_node, *d.FindNode("order"));
}

TEST(AfTest, NodeNormalMaximizesStructure) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    mct::MctSchema s = DesignAf(g);
    EXPECT_EQ(s.num_colors(), 1u);
    std::string why;
    EXPECT_TRUE(s.IsNodeNormal(&why)) << d.name() << ": " << why;
    EXPECT_TRUE(s.CoversAllNodes(&why)) << d.name() << ": " << why;
    EXPECT_TRUE(s.Validate().ok());
    // structural realizations + refs account for every ER edge.
    std::vector<bool> covered(g.num_edges(), false);
    for (const auto& o : s.occurrences()) {
      if (!o.is_root()) covered[o.via_edge] = true;
    }
    for (const auto& r : s.ref_edges()) covered[r.er_edge] = true;
    for (size_t e = 0; e < covered.size(); ++e) {
      EXPECT_TRUE(covered[e]) << d.name() << " edge " << e;
    }
  }
}

TEST(AfTest, FewerRefsThanShallow) {
  // AF captures strictly more associations structurally than SHALLOW on
  // every non-trivial diagram.
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    EXPECT_LE(DesignAf(g).ref_edges().size(),
              DesignShallow(g).ref_edges().size())
        << d.name();
  }
}

TEST(AfTest, TpcwMatchesFigure3Shape) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = DesignAf(g);
  // country deep chain exists.
  mct::OccId country = s.FindOcc(0, *d.FindNode("country"));
  mct::OccId order = s.FindOcc(0, *d.FindNode("order"));
  ASSERT_NE(order, mct::kInvalidOcc);
  EXPECT_TRUE(s.IsAncestor(country, order));
  // billing exists as an element and its address association is an idref
  // (bill_address_idref in Fig 3).
  bool billing_ref = false;
  for (const auto& r : s.ref_edges()) {
    if (s.occ(r.from).er_node == *d.FindNode("billing") &&
        r.target == *d.FindNode("address")) {
      billing_ref = true;
    }
  }
  EXPECT_TRUE(billing_ref) << s.DebugString();
}

TEST(DeepTest, SingleColorEdgeNormalNotNodeNormal) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = DesignDeep(g);
  EXPECT_EQ(s.num_colors(), 1u);
  EXPECT_TRUE(s.IsEdgeNormal()) << "single color is trivially EN";
  EXPECT_FALSE(s.IsNodeNormal());
  EXPECT_TRUE(s.ComputeIcics().empty());
  EXPECT_TRUE(s.Validate().ok());
}

TEST(DeepTest, FullyDirectRecoverableOnCatalog) {
  for (const ErDiagram& d : er::EvaluationCollection()) {
    ErGraph g(d);
    mct::MctSchema s = DesignDeep(g);
    EXPECT_TRUE(IsAssociationRecoverable(s)) << d.name();
    auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
    EXPECT_TRUE(report.fully_direct())
        << d.name() << " missing "
        << (report.eligible_paths - report.directly_recoverable);
    EXPECT_EQ(s.ref_edges().size(), 0u) << "DEEP uses no idrefs";
  }
}

TEST(DeepTest, DuplicatesAddressStyleContext) {
  // Fig 4: "a great deal of redundancy in the representation of various
  // types of address, country, item, and author elements".
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = DesignDeep(g);
  auto count = [&](const char* name) {
    return s.OccurrencesOf(*d.FindNode(name)).size();
  };
  EXPECT_GT(count("address"), 1u);
  EXPECT_GT(count("country"), 1u);
  EXPECT_GT(count("item"), 1u);
  EXPECT_GT(count("author"), 1u);
}

TEST(DeepTest, MaxOccurrenceCapHolds) {
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  DeepOptions opts;
  opts.max_occurrences = 40;
  mct::MctSchema s = DesignDeep(g, "DEEP", opts);
  EXPECT_LE(s.num_occurrences(), 40u + d.num_nodes());
}

TEST(DeepTest, ChainDeepEqualsChainAf) {
  // On a pure 1:N chain there is nothing to duplicate: DEEP == AF shape.
  ErDiagram d = er::Er7Chain();
  ErGraph g(d);
  mct::MctSchema deep = DesignDeep(g);
  EXPECT_TRUE(deep.IsNodeNormal());
  EXPECT_EQ(deep.num_occurrences(), d.num_nodes());
}

}  // namespace
}  // namespace mctdb::design
