// Store persistence: serialize an MctStore to a single file and load it
// back. The format is a versioned, section-tagged binary layout:
//
//   header  : magic "MCTDB2\n", schema fingerprint
//   pages   : the pager's 8 KB pages verbatim (posting lists)
//   elements: ElementMeta records
//   attrs   : per-element AttrRecord lists
//   dicts   : attribute-name and value dictionaries
//   labels  : per color, (elem, LabelEntry) pairs
//   parents : per color, (elem, parent) pairs
//   postings: per (color, tag), page-id lists + counts
//   postidx : versioned per-(color, tag) page summaries (first start, max
//             end) — the persistent interval index behind index-assisted
//             posting seeks; one summary per posting page
//   keyindex: rebuilt on load (derivable)
//
// Every section ends with a 64-bit checksum of its bytes, verified on
// load. Version 2 (this PR's hardening) draws a clean error taxonomy:
// the wrong file or schema is InvalidArgument (bad magic, fingerprint or
// color-count mismatch, v1 files), while a damaged right file — truncated
// sections, flipped bits, counts pointing past the data — is DataLoss.
// Load never trusts a count it has not bounds-checked, so a corrupt file
// fails cleanly instead of over-allocating or indexing out of range (the
// tests/data corpus pins this down under ASAN).
//
// The schema itself is NOT serialized — the caller re-derives it (designs
// are deterministic functions of the ER diagram) and Load verifies the
// fingerprint, refusing to attach data to the wrong schema.
//
// Failpoints: "persist.save" (err -> every write fails; trunc -> the file
// is silently cut at 4 KB) and "persist.load" (err -> injected DataLoss;
// trunc -> the file reads as if cut in half).
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "storage/store.h"

namespace mctdb::storage {

/// Stable fingerprint of a schema's shape (colors, occurrences, edges, ref
/// edges) used to pair data files with schemas.
uint64_t SchemaFingerprint(const mct::MctSchema& schema);

/// Writes `store` to `path` (overwrites). With `sync`, the file's bytes
/// are fsynced before close, so a subsequent rename of `path` cannot
/// become durable ahead of the data it names (the checkpoint discipline:
/// sync file, rename, sync directory, only then trim the log).
Status SaveStore(const MctStore& store, const std::string& path,
                 bool sync = false);

/// fsyncs the directory containing `path`, making renames/removals of
/// entries in it durable. The companion to SaveStore(..., sync=true).
Status SyncParentDir(const std::string& path);

/// Reads a store from `path`. `schema` must outlive the result and match
/// the fingerprint recorded at save time.
Result<std::unique_ptr<MctStore>> LoadStore(const mct::MctSchema& schema,
                                            const std::string& path,
                                            const StoreOptions& options = {});

/// LoadStore with bounded retry-with-backoff on transient faults
/// (DataLoss / IoError / Unavailable — e.g. a snapshot mid-copy or an
/// injected "persist.load" fault); permanent errors (wrong schema, bad
/// magic) fail immediately. `retries` (optional) is incremented per extra
/// attempt, for metrics.
Result<std::unique_ptr<MctStore>> LoadStoreWithRetry(
    const mct::MctSchema& schema, const std::string& path,
    const StoreOptions& options = {},
    const RetryPolicy& policy = RetryPolicy::FromEnv(),
    uint64_t* retries = nullptr);

}  // namespace mctdb::storage
