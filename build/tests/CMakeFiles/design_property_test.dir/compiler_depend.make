# Empty compiler generated dependencies file for design_property_test.
# This may be replaced when dependencies are built.
