#include "common/json.h"

#include <cstdlib>

#include "common/string_util.h"

namespace mctdb::json {

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) found = &v;  // last duplicate wins, like most readers
  }
  return found;
}

double Value::NumberOr(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

std::string Value::StringOr(std::string_view key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->str() : fallback;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    MCTDB_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    Value v;
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        MCTDB_ASSIGN_OR_RETURN(v.string_, ParseString());
        v.type_ = Value::Type::kString;
        return v;
      }
      case 't':
        if (!ConsumeWord("true")) return Err("bad literal");
        v.type_ = Value::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!ConsumeWord("false")) return Err("bad literal");
        v.type_ = Value::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!ConsumeWord("null")) return Err("bad literal");
        return v;
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(size_t depth) {
    Value v;
    v.type_ = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      MCTDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      MCTDB_ASSIGN_OR_RETURN(Value member, ParseValue(depth + 1));
      v.members_.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Err("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(size_t depth) {
    Value v;
    v.type_ = Value::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      MCTDB_ASSIGN_OR_RETURN(Value element, ParseValue(depth + 1));
      v.array_.push_back(std::move(element));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return Err("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs from our
            // own writers never occur; lone surrogates pass through).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("control byte in string");
      }
      out += c;
      ++pos_;
    }
    return Err("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("unexpected character");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number");
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace mctdb::json
