#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace mctdb {
namespace {

TEST(ArenaTest, AllocatesDistinctWritableMemory) {
  Arena arena;
  char* a = arena.Allocate(16);
  char* b = arena.Allocate(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 16);
  std::memset(b, 0xBB, 16);
  EXPECT_EQ(static_cast<unsigned char>(a[0]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  arena.Allocate(3);  // misalign the cursor
  char* p = arena.AllocateAligned(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  arena.Allocate(1);
  char* q = arena.AllocateAligned(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 8, 0u);
}

TEST(ArenaTest, GrowsAcrossBlocks) {
  Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 100; ++i) {
    char* p = arena.Allocate(100);
    std::memset(p, i, 100);
  }
  EXPECT_GT(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_allocated(), 100u * 100u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, OversizedAllocationGetsOwnBlock) {
  Arena arena(/*block_bytes=*/1024);
  size_t blocks_before = arena.num_blocks();
  char* p = arena.Allocate(10000);
  std::memset(p, 1, 10000);
  EXPECT_GT(arena.num_blocks(), blocks_before);
  // A small allocation still works afterwards.
  char* q = arena.Allocate(8);
  std::memset(q, 2, 8);
}

TEST(ArenaTest, CopyStringOwnsBytes) {
  Arena arena;
  std::string original = "hello world";
  std::string_view copy = arena.CopyString(original);
  original[0] = 'X';
  EXPECT_EQ(copy, "hello world");
}

TEST(ArenaTest, CopyEmptyString) {
  Arena arena;
  EXPECT_EQ(arena.CopyString(""), "");
}

TEST(ArenaTest, NewConstructsTrivialTypes) {
  Arena arena;
  struct Pod {
    int a;
    double b;
  };
  Pod* p = arena.New<Pod>(Pod{3, 2.5});
  EXPECT_EQ(p->a, 3);
  EXPECT_EQ(p->b, 2.5);
}

TEST(ArenaTest, ZeroByteAllocationIsSafe) {
  Arena arena;
  char* a = arena.Allocate(0);
  char* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);  // still bumps, so pointers stay unique
}

}  // namespace
}  // namespace mctdb
