// LogWriter: appends checksummed, LSN-stamped records to the write-ahead
// log with GROUP COMMIT (DESIGN.md §13).
//
// Append is cheap: it assigns the next LSN and copies the encoded record
// into an in-memory batch under a short mutex — no I/O. Commit(lsn) makes
// everything up to `lsn` durable: the first committer becomes the LEADER,
// steals the whole batch, writes it and issues ONE fsync while later
// committers park on a condition variable; when the leader publishes the
// new durable LSN the parked writers find their records already covered
// and return without ever touching the disk. N concurrent writers
// therefore cost far fewer than N fsyncs — the group-commit win the
// tests/wal_log_test batching test pins down.
//
// Failure model (DESIGN.md §17): an I/O error during append or sync flips
// the writer into DEGRADED mode — every later Append/Commit refuses with
// Unavailable, the durable LSN stays wherever the last successful fsync
// left it, and readers keep their consistent view (visible_lsn never
// advances past durability). Degradation comes in two kinds:
//
//   kSpace (errno == ENOSPC): the device is FULL, not broken. The leader
//     RE-STASHES the failed batch at the front of the append buffer, so
//     the buffered record stream stays contiguous with the durable file.
//     Reprobe() — called by the maintenance re-probe timer once space may
//     have recovered — truncates any torn tail back to the durable prefix,
//     replays the parked batch through one write+fsync, and on success
//     clears the degradation. An op whose Commit hit ENOSPC got
//     Unavailable, but its record is parked: like a client timeout, the
//     outcome is indeterminate until the probe either makes it durable
//     (the store then publishes it) or the store is reopened (recovery
//     truncates it). Acknowledged ops are never lost either way.
//
//   kHard (EIO, short writes, anything else): the media may be lying; the
//     failed batch is dropped and the writer refuses everything until the
//     store is reopened. Recovery on next open truncates whatever torn
//     tail the failure left behind.
//
// Failpoints (DESIGN.md §12 catalog):
//   wal.append  err    -> the append fails cleanly (nothing buffered)
//               trunc  -> half the record's bytes reach the OS (a torn tail
//                         recovery must cut); writer degrades (kHard)
//               enospc -> clean refusal with the errno-faithful ENOSPC
//                         status; writer degrades kSpace (re-probeable)
//               eio    -> clean refusal, errno-faithful EIO; kHard
//   wal.fsync   err    -> the batch write/fsync fails; writer degrades kHard
//               trunc  -> half the batch reaches the OS, then the sync
//                         fails; kHard (torn tail on disk)
//               enospc -> the sync fails as a real full disk would: batch
//                         parked, writer degrades kSpace
//               eio    -> the sync fails with EIO; batch dropped, kHard
//
// An empty path runs the log IN MEMORY: appends, group commit, LSNs and
// counters all behave identically but bytes go to a string — the workload
// runner uses this for ephemeral stores so update benchmarks exercise the
// real write path without a filesystem.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/lsn.h"
#include "common/result.h"
#include "wal/wal_format.h"

namespace mctdb::wal {

/// How broken the writer is. kSpace is the recoverable out-of-disk state
/// (Reprobe can clear it); kHard requires a reopen.
enum class DegradeKind { kNone = 0, kSpace, kHard };

class LogWriter {
 public:
  /// Opens (or creates) the log at `path`. A missing/empty file gets a
  /// fresh fsynced header. A non-empty file is trusted as already
  /// recovered (RecoverLog truncated the torn tail) and is appended to;
  /// `durable_lsn` must be the last replayed LSN. Empty `path` = in-memory.
  static Result<std::unique_ptr<LogWriter>> Open(const std::string& path,
                                                 uint64_t fingerprint,
                                                 Lsn checkpoint_lsn,
                                                 Lsn durable_lsn);
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Assigns the next LSN and buffers the record. No I/O on success.
  Result<Lsn> Append(RecordType type, std::string_view payload);

  /// Blocks until every record with LSN <= `lsn` is durable (one fsync per
  /// batch, shared across concurrent committers). Unavailable once
  /// degraded.
  Status Commit(Lsn lsn);

  /// Truncates the log to a fresh header recording `checkpoint_lsn`. The
  /// caller must have quiesced appends (DurableStore holds its write mutex
  /// across checkpoints).
  Status Reset(Lsn checkpoint_lsn);

  /// Attempts to exit kSpace degradation: truncates any torn tail back to
  /// the durable prefix, rewrites the parked batch, fsyncs. On success the
  /// parked records become durable (durable_lsn advances over them) and the
  /// writer accepts appends again. Returns the write/sync error (and stays
  /// degraded) while the disk is still full; kHard degradation is never
  /// cleared here. OK and a no-op when not degraded.
  Status Reprobe();

  Lsn durable_lsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  /// Highest LSN ever appended, durable or still buffered. An aborted
  /// update (append succeeded, apply failed) leaves its record buffered
  /// past the last APPLIED lsn — checkpoints must commit up to here, not
  /// to last_applied_, before Reset.
  Lsn buffered_lsn() const {
    std::lock_guard lk(append_mu_);
    return last_buffered_;
  }
  DegradeKind degrade_kind() const {
    return degrade_.load(std::memory_order_acquire);
  }
  bool degraded() const { return degrade_kind() != DegradeKind::kNone; }
  /// errno of the most recent real or injected I/O failure (0 = none).
  int last_errno() const { return last_errno_.load(std::memory_order_relaxed); }
  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  /// Bytes of durable log (header included); the checkpoint trigger.
  uint64_t durable_bytes() const {
    return durable_bytes_.load(std::memory_order_relaxed);
  }
  /// Records appended but not yet stolen by a group-commit leader — the
  /// in-flight WAL batch /statusz reports. Approximate by design (no lock).
  uint64_t pending_records() const {
    return pending_records_.load(std::memory_order_relaxed);
  }
  uint64_t pending_bytes() const {
    return pending_bytes_.load(std::memory_order_relaxed);
  }
  bool in_memory() const { return fd_ < 0; }
  /// In-memory mode only: the accumulated log bytes, for tests.
  const std::string& memory_log() const { return mem_; }

 private:
  LogWriter() = default;

  /// Writes `batch` at the durable tail and fsyncs. Called by one leader
  /// at a time (sync_in_progress_).
  Status WriteAndSync(const std::string& batch);
  Status WriteRaw(const char* data, size_t n);
  /// Maps the most recent failure errno to a degradation kind and records
  /// it. ENOSPC -> kSpace (never downgrades an existing kHard).
  void DegradeFromErrno();

  int fd_ = -1;
  std::string mem_;  // in-memory sink when fd_ < 0
  uint64_t fingerprint_ = 0;

  mutable std::mutex append_mu_;  // guards buffer_, next_lsn_, last_buffered_
  std::string buffer_;
  Lsn next_lsn_ = 1;
  Lsn last_buffered_ = kNoLsn;

  std::mutex commit_mu_;          // guards sync_in_progress_ + cv waits
  std::condition_variable commit_cv_;
  bool sync_in_progress_ = false;

  std::atomic<Lsn> durable_lsn_{kNoLsn};
  std::atomic<DegradeKind> degrade_{DegradeKind::kNone};
  std::atomic<int> last_errno_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> durable_bytes_{0};
  std::atomic<uint64_t> pending_records_{0};  // mirrors buffer_ contents
  std::atomic<uint64_t> pending_bytes_{0};
};

}  // namespace mctdb::wal
