#include "storage/sharded_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

namespace mctdb::storage {
namespace {

/// Fills `pager` with `n` pages where page i holds the byte (i & 0xFF).
std::vector<PageId> FillPager(Pager* pager, size_t n) {
  std::vector<PageId> ids;
  char buf[kPageSize];
  for (size_t i = 0; i < n; ++i) {
    PageId p = pager->Allocate();
    std::memset(buf, int(i & 0xFF), kPageSize);
    pager->Write(p, buf);
    ids.push_back(p);
  }
  return ids;
}

TEST(ShardedPoolTest, HitAfterMissAndContent) {
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 4);
  ShardedBufferPool pool(&pager, 8, 4);
  const char* frame = pool.Fetch(ids[2]);
  EXPECT_EQ(frame[0], 2);
  EXPECT_EQ(pool.misses(), 1u);
  pool.Unpin(ids[2]);
  const char* again = pool.Fetch(ids[2]);
  EXPECT_EQ(again[0], 2);
  EXPECT_EQ(pool.hits(), 1u);
  pool.Unpin(ids[2]);
}

TEST(ShardedPoolTest, CapacityOnePoolStillServesEveryPage) {
  // The eviction boundary: a 1-page budget forces an eviction on every
  // distinct fetch, and the single shard must keep serving correct bytes.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 8);
  ShardedBufferPool pool(&pager, 1);
  EXPECT_EQ(pool.num_shards(), 1u) << "1-page budget collapses to 1 shard";
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const char* frame = pool.Fetch(ids[i]);
      ASSERT_EQ(frame[0], char(i));
      pool.Unpin(ids[i]);
      EXPECT_LE(pool.resident(), 1u);
    }
  }
  EXPECT_EQ(pool.hits() + pool.misses(), 3u * 8u);
}

TEST(ShardedPoolTest, CapacityEqualsWorkingSetNeverReEvicts) {
  // The other eviction boundary: with one shard and capacity == working
  // set, the warmup pass faults everything in and the steady state never
  // touches the pager again.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 16);
  ShardedBufferPool pool(&pager, 16, 1);
  for (PageId id : ids) {
    (void)pool.Fetch(id);  // warm the cache; frame not needed
    pool.Unpin(id);
  }
  EXPECT_EQ(pool.misses(), 16u);
  uint64_t reads_after_warmup = pager.disk_reads();
  for (int round = 0; round < 4; ++round) {
    for (PageId id : ids) {
      (void)pool.Fetch(id);  // warm the cache; frame not needed
      pool.Unpin(id);
    }
  }
  EXPECT_EQ(pool.hits(), 4u * 16u);
  EXPECT_EQ(pool.misses(), 16u);
  EXPECT_EQ(pager.disk_reads(), reads_after_warmup) << "fully cached";
}

TEST(ShardedPoolTest, ShardedWorkingSetStaysMostlyCached) {
  // Hash-sharding skews the 16-page working set across 4 x 4-page shards
  // (splitmix64 gives a 2/4/4/6 split), so the overflowing shard may keep
  // thrashing — but the rest of the budget must stay cached: per round at
  // most the overflowed remainder misses.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 16);
  ShardedBufferPool pool(&pager, 16, 4);
  for (int round = 0; round < 5; ++round) {
    for (PageId id : ids) {
      (void)pool.Fetch(id);  // warm the cache; frame not needed
      pool.Unpin(id);
    }
  }
  EXPECT_EQ(pool.hits() + pool.misses(), 5u * 16u);
  EXPECT_GE(pool.hits(), 5u * 16u / 2) << "majority of fetches cached";
  EXPECT_LE(pool.resident(), 16u);
}

TEST(ShardedPoolTest, PinnedFramesSurviveCapacityPressure) {
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 6);
  ShardedBufferPool pool(&pager, 1);  // 1 shard, 1 page budget
  const char* pinned = pool.Fetch(ids[0]);
  // Faulting other pages through an over-committed shard must not move or
  // free the pinned frame.
  for (size_t i = 1; i < ids.size(); ++i) {
    const char* frame = pool.Fetch(ids[i]);
    ASSERT_EQ(frame[0], char(i));
    pool.Unpin(ids[i]);
  }
  EXPECT_EQ(pinned[0], 0);
  EXPECT_EQ(pinned[kPageSize - 1], 0);
  pool.Unpin(ids[0]);
}

TEST(ShardedPoolTest, PerShardStatsSumToTotals) {
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 32);
  ShardedBufferPool pool(&pager, 16, 4);
  for (int round = 0; round < 2; ++round) {
    for (PageId id : ids) {
      (void)pool.Fetch(id);  // warm the cache; frame not needed
      pool.Unpin(id);
    }
  }
  uint64_t hit_sum = 0, miss_sum = 0;
  for (const auto& shard : pool.PerShard()) {
    hit_sum += shard.hits;
    miss_sum += shard.misses;
  }
  EXPECT_EQ(hit_sum, pool.hits());
  EXPECT_EQ(miss_sum, pool.misses());
  EXPECT_EQ(hit_sum + miss_sum, 2u * 32u);
}

TEST(ShardedPoolTest, MultiThreadedHammer) {
  // N threads x random fetches over M pages with an undersized budget:
  // every fetch must return the right bytes, and the global accounting
  // invariant hits + misses == total fetches must hold. Run under TSAN in
  // CI to certify the locking.
  constexpr size_t kPages = 64;
  constexpr size_t kThreads = 8;
  constexpr size_t kFetchesPerThread = 2000;
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, kPages);
  ShardedBufferPool pool(&pager, 16, 8);

  std::vector<std::thread> threads;
  std::atomic<size_t> wrong_bytes{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(uint32_t(t) * 7919u + 1u);
      std::uniform_int_distribution<size_t> pick(0, kPages - 1);
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        size_t j = pick(rng);
        const char* frame = pool.Fetch(ids[j]);
        if (frame[0] != char(j) || frame[kPageSize - 1] != char(j)) {
          wrong_bytes.fetch_add(1);
        }
        pool.Unpin(ids[j]);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_bytes.load(), 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kFetchesPerThread);
  EXPECT_LE(pool.resident(), 16u) << "no pins left, budget must hold";
}

TEST(ShardedPoolTest, TwoArgFetchReportsPerFetchOutcome) {
  // The attribution contract: the pool tells the CALLER whether each fetch
  // missed, so a query can charge its own I/O instead of diffing global
  // counters.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 2);
  ShardedBufferPool pool(&pager, 4, 1);
  bool miss = false;
  const char* frame = pool.Fetch(ids[0], &miss);
  EXPECT_TRUE(miss);
  EXPECT_EQ(frame[0], 0);
  pool.Unpin(ids[0]);
  frame = pool.Fetch(ids[0], &miss);
  EXPECT_FALSE(miss);
  EXPECT_EQ(frame[0], 0);
  pool.Unpin(ids[0]);
  (void)pool.Fetch(ids[1], &miss);
  EXPECT_TRUE(miss) << "a different page is its own miss";
  pool.Unpin(ids[1]);
}

TEST(ShardedPoolTest, SlowReadDoesNotSerializeHitsInSameShard) {
  // A miss's disk I/O runs with the shard lock RELEASED: while one thread
  // is stuck in a slow pager read of page A, a hit on already-resident
  // page B of the SAME shard must complete immediately.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 2);
  ShardedBufferPool pool(&pager, 4, 1);  // one shard: A and B share a mutex

  // Warm page B so the main thread's fetch below is a pure hit.
  (void)pool.Fetch(ids[1]);
  pool.Unpin(ids[1]);

  std::mutex mu;
  std::condition_variable cv;
  bool a_read_started = false;
  bool a_read_released = false;
  pager.SetReadHook([&](PageId id) {
    if (id != ids[0]) return;
    std::unique_lock<std::mutex> lock(mu);
    a_read_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return a_read_released; });
  });

  std::thread cold([&] {
    const char* frame = pool.Fetch(ids[0]);  // blocks inside the hook
    EXPECT_EQ(frame[0], 0);
    pool.Unpin(ids[0]);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return a_read_started; });
  }

  // The cold thread is now parked inside Pager::Read. A hit on page B
  // must not wait for it; if Fetch held the shard lock across the read,
  // this fetch would deadlock (we only release the hook afterwards).
  const char* frame = pool.Fetch(ids[1]);
  EXPECT_EQ(frame[0], 1);
  pool.Unpin(ids[1]);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(a_read_released)
        << "the hit completed while the slow read was still in flight";
    a_read_released = true;
  }
  cv.notify_all();
  cold.join();
  pager.SetReadHook(nullptr);
}

TEST(ShardedPoolTest, ConcurrentFetchOfLoadingPageWaitsForBytes) {
  // Two threads miss-race on the same page: the second must wait for the
  // first thread's in-flight read (one disk read serves both) and then
  // see the page's actual bytes, never a zero-filled frame.
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 1);
  ShardedBufferPool pool(&pager, 4, 1);

  std::mutex mu;
  std::condition_variable cv;
  bool read_started = false;
  bool read_released = false;
  pager.SetReadHook([&](PageId) {
    std::unique_lock<std::mutex> lock(mu);
    read_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return read_released; });
  });

  std::thread loader([&] {
    const char* frame = pool.Fetch(ids[0]);
    EXPECT_EQ(frame[0], 0);
    EXPECT_EQ(frame[kPageSize - 1], 0);
    pool.Unpin(ids[0]);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return read_started; });
  }
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    bool miss = true;
    const char* frame = pool.Fetch(ids[0], &miss);
    EXPECT_FALSE(miss) << "second fetcher rides the in-flight load";
    EXPECT_EQ(frame[0], 0);
    EXPECT_EQ(frame[kPageSize - 1], 0);
    pool.Unpin(ids[0]);
    waiter_done.store(true);
  });
  // Give the waiter a moment to reach the load_cv wait; it must NOT
  // finish while the bytes are still being read in.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_done.load());
  {
    std::lock_guard<std::mutex> lock(mu);
    read_released = true;
  }
  cv.notify_all();
  loader.join();
  waiter.join();
  EXPECT_EQ(pager.disk_reads(), 1u) << "one read served both fetchers";
  pager.SetReadHook(nullptr);
}

TEST(ShardedPoolTest, ConcurrentPagerCountersAreExact) {
  // The Pager's atomic I/O counters must not lose increments under
  // concurrent Read (the bug the seed had with `mutable uint64_t`).
  Pager pager;
  std::vector<PageId> ids = FillPager(&pager, 4);
  uint64_t before = pager.disk_reads();
  constexpr size_t kThreads = 8;
  constexpr size_t kReads = 500;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      char buf[kPageSize];
      for (size_t i = 0; i < kReads; ++i) {
        ASSERT_TRUE(pager.Read(ids[i % ids.size()], buf).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pager.disk_reads() - before, kThreads * kReads);
}

TEST(ShardedPoolQuarantineTest, FailedLoadReturnsDataLossAndQuarantines) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  std::vector<PageId> ids = FillPager(&pager, 4);
  pager.CorruptForTest(ids[1], 512);
  ShardedBufferPool pool(&pager, 8, 2);

  const char* frame = nullptr;
  bool miss = false;
  Status s = pool.Fetch(ids[1], &frame, &miss);
  ASSERT_TRUE(s.IsDataLoss()) << s.ToString();
  EXPECT_EQ(frame, nullptr);
  EXPECT_GE(pool.quarantined(), 1u);
  // The quarantined frame was evicted — nothing stale is resident, and
  // healthy pages keep serving.
  const char* ok_frame = pool.Fetch(ids[0]);
  EXPECT_EQ(ok_frame[0], 0);
  pool.Unpin(ids[0]);
}

TEST(ShardedPoolQuarantineTest, RepairThenRefetchRecovers) {
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  std::vector<PageId> ids = FillPager(&pager, 2);
  pager.CorruptForTest(ids[0], 8);
  ShardedBufferPool pool(&pager, 4, 1);

  const char* frame = nullptr;
  bool miss = false;
  ASSERT_TRUE(pool.Fetch(ids[0], &frame, &miss).IsDataLoss());
  pager.RepairForTest(ids[0]);
  // No pool restart needed: the failed frame was erased, so the next
  // fetch re-reads the (now healthy) page.
  Status s = pool.Fetch(ids[0], &frame, &miss);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(frame[0], 0);
  pool.Unpin(ids[0]);
}

TEST(ShardedPoolQuarantineTest, ConcurrentFetchersAllSeeTheFailure) {
  // Piggybacked waiters on a failing load must wake, observe the failure,
  // and return it — no hang, no crash, no half-initialized frame.
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  std::vector<PageId> ids = FillPager(&pager, 4);
  pager.CorruptForTest(ids[2], 100);
  ShardedBufferPool pool(&pager, 8, 2);

  constexpr int kThreads = 8;
  std::atomic<int> data_loss{0}, succeeded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const char* frame = nullptr;
        bool miss = false;
        Status s = pool.Fetch(ids[2], &frame, &miss);
        if (s.ok()) {
          succeeded.fetch_add(1);
          pool.Unpin(ids[2]);
        } else if (s.IsDataLoss()) {
          data_loss.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected status " << s.ToString();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(data_loss.load(), kThreads * 50);
  EXPECT_EQ(succeeded.load(), 0);
  EXPECT_GE(pool.quarantined(), 1u);

  // After repair every thread's next fetch succeeds.
  pager.RepairForTest(ids[2]);
  const char* frame = pool.Fetch(ids[2]);
  EXPECT_EQ(frame[0], 2);
  pool.Unpin(ids[2]);
}

TEST(ShardedPoolQuarantineTest, PoolRetriesOnceBeforeQuarantining) {
  // The pool's own second-chance re-read: a fault that clears between
  // attempts (here: repaired by a hook between reads) never surfaces.
  Pager pager;
  pager.SetRetryPolicy(RetryPolicy::None());
  std::vector<PageId> ids = FillPager(&pager, 1);
  pager.CorruptForTest(ids[0], 1);
  std::atomic<int> attempts{0};
  pager.SetReadHook([&](PageId id) {
    if (attempts.fetch_add(1) == 0) {
      // First attempt sees the corruption; heal before the re-read.
      // (Safe: the hook runs on the loading thread, outside pool locks,
      // and this test uses a single fetching thread.)
      return;
    }
    pager.RepairForTest(id);
  });

  ShardedBufferPool pool(&pager, 4, 1);
  const char* frame = nullptr;
  bool miss = false;
  Status s = pool.Fetch(ids[0], &frame, &miss);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(frame[0], 0);
  pool.Unpin(ids[0]);
}

}  // namespace
}  // namespace mctdb::storage
