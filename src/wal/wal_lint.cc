#include "wal/wal_lint.h"

#include "wal/durable_store.h"
#include "wal/log_reader.h"

namespace mctdb::wal {

size_t LintWal(const std::string& store_path, const WalLintOptions& options,
               analysis::DiagnosticReport* report) {
  std::string wal_path = DurableStore::WalPath(store_path);
  std::string loc = "wal " + wal_path;
  Result<LogScan> scan_or = ScanLog(wal_path, options.fingerprint);
  if (!scan_or.ok()) {
    if (scan_or.status().IsNotFound()) return 0;  // read-only store: clean
    report->Error("WAL005", loc, scan_or.status().message(),
                  "point the store at its own log or delete the stray file");
    return 1;
  }
  const LogScan& scan = scan_or.value();
  size_t added = 0;
  if (!scan.header_valid) {
    report->Warning("WAL003", loc,
                    "log header unreadable; it will be reset on open "
                    "(store image is authoritative)",
                    "open the store to repair, or delete the log");
    return 1;
  }
  if (!scan.records.empty()) {
    report->Warning(
        "WAL001", loc,
        "log tail is newer than the checkpoint (unclean shutdown): " +
            std::to_string(scan.records.size()) +
            " update record(s) will be replayed on open",
        "open the store (or `mctc recover`) to roll the log forward");
    ++added;
  }
  if (scan.torn()) {
    report->Warning("WAL002", loc,
                    "torn tail of " +
                        std::to_string(scan.file_bytes - scan.valid_bytes) +
                        " byte(s) will be truncated on open",
                    "expected after a crash; recovery handles it");
    ++added;
  }
  if (scan.header.checkpoint_lsn == kNoLsn &&
      scan.file_bytes > options.max_uncheckpointed_bytes) {
    report->Error(
        "WAL004", loc,
        "checkpoint-less log of " + std::to_string(scan.file_bytes) +
            " bytes exceeds the " +
            std::to_string(options.max_uncheckpointed_bytes) +
            "-byte threshold; refusing would-be-unbounded replay",
        "run `mctc recover` and checkpoint the store");
    ++added;
  }
  return added;
}

}  // namespace mctdb::wal
