// Query plans and the complexity surrogates the paper measures.
//
// A plan records, per pattern edge, how its association path is recovered
// against the chosen schema: as one ancestor-descendant structural join
// (direct recoverability), as a chain of parent-child structural joins (the
// path exists in one color but an a-d step would be ambiguous among
// redundant occurrences), via color crossings between per-color segments,
// or via id/idref value joins. The op counts are exactly the §6 metrics:
// structural joins (Fig 8/12), value joins + color crossings (Fig 9/13),
// duplicate eliminations / duplicate updates / group-bys (Fig 10/14).
#pragma once

#include <string>
#include <vector>

#include "mct/mct_schema.h"
#include "query/query_spec.h"

namespace mctdb::query {

enum class SegmentKind : uint8_t {
  kAncDesc,    ///< one ancestor-descendant structural join in one color
  kStepChain,  ///< parent-child structural join per path step, one color
  kValueJoin,  ///< one id/idref value join for one ER edge
};
const char* ToString(SegmentKind k);

struct Segment {
  SegmentKind kind = SegmentKind::kAncDesc;
  mct::ColorId color = 0;       ///< structural kinds only
  size_t from_index = 0;        ///< node index range into path_from_parent
  size_t to_index = 0;
  /// Chain realized with the pattern-child side as the tree ancestor
  /// (recovered with a parent/ancestor axis step).
  bool reversed = false;
  er::EdgeId ref_edge = er::kInvalidEdge;  ///< kValueJoin only
  size_t num_structural_joins = 0;
  /// A fan-out step above a reverse step on the matched occurrence chain
  /// (or the anchor occurrence's root path): the same logical pair can
  /// match several stored element pairs.
  bool dup_risk = false;
};

struct EdgePlan {
  int pattern_node = -1;  ///< the child pattern node this edge leads to
  std::vector<Segment> segments;
  size_t color_crossings = 0;
};

struct PlanStats {
  size_t structural_joins = 0;
  size_t value_joins = 0;
  size_t color_crossings = 0;
  size_t dup_elims = 0;
  size_t group_bys = 0;
  size_t dup_updates = 0;  ///< update queries: redundant copies rewritten

  /// Fig 9/13's combined metric.
  size_t value_joins_plus_crossings() const {
    return value_joins + color_crossings;
  }
  /// Fig 10/14's combined metric.
  size_t dup_ops() const { return dup_elims + group_bys + dup_updates; }
};

struct QueryPlan {
  const AssociationQuery* query = nullptr;
  const mct::MctSchema* schema = nullptr;
  /// One per non-root pattern node, in pattern order.
  std::vector<EdgePlan> edges;
  mct::ColorId anchor_color = 0;
  bool needs_dup_elim = false;
  bool needs_group_by = false;
  bool dup_update_risk = false;

  /// Static analysis verdict (analysis::AnalyzeQuery, attached by the
  /// planner): the result set is provably empty on this schema, so the
  /// executor short-circuits to an empty result without fetching a page.
  bool statically_empty = false;
  /// The emptiness finding driving the prune, "QRYnnn: message" — shown
  /// as a span annotation in `mctc trace`.
  std::string prune_reason;
  /// All QRY codes the analyzer raised for this (query, schema) pair;
  /// QRY008/009 here mark the plan simplifiable.
  std::vector<std::string> analysis_codes;

  PlanStats Stats() const;
  std::string DebugString() const;
};

}  // namespace mctdb::query
