// TraceId: the 64-bit correlation key that ties one request's footprint
// together across subsystems (DESIGN.md §16).
//
// A TraceId is minted once per request — at admission in
// QueryService::SubmitQuery/Submit/SubmitUpdate, or lazily in
// DurableStore::Apply for CLI/library updates that never passed through
// the service — and then propagated implicitly through a thread-local:
// the worker executing the request wraps the execution in a ScopedTraceId,
// and everything downstream (ExecStats span trees, WAL append/fsync
// events, pool evictions, failpoint hits) reads CurrentTraceId() instead
// of threading a parameter through every layer. Strands execute one task
// at a time on one worker, so the thread-local is exact: no two requests
// ever share a thread concurrently.
//
// 0 is reserved for "no trace": events recorded outside any request
// (background checkpoints invoked without a scope, pool activity from
// unattributed readers) carry trace id 0 and still land in the flight
// recorder for context.
#pragma once

#include <cstdint>

namespace mctdb::obs {

using TraceId = uint64_t;

/// Mints a fresh process-unique TraceId (never 0). Sequential, so dumps
/// read chronologically and tests are deterministic.
TraceId MintTraceId();

/// The calling thread's active TraceId, 0 when none is set.
TraceId CurrentTraceId();

/// Sets the calling thread's active TraceId (0 clears it). Prefer
/// ScopedTraceId — an unbalanced set leaks the id into unrelated work.
void SetCurrentTraceId(TraceId id);

/// RAII set/restore of the thread's TraceId around one request's
/// execution. Restores the PREVIOUS id on destruction, so nested scopes
/// (a service update calling into DurableStore::Apply, which would mint
/// its own id for bare CLI callers) compose correctly.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(TraceId id) : previous_(CurrentTraceId()) {
    SetCurrentTraceId(id);
  }
  ~ScopedTraceId() { SetCurrentTraceId(previous_); }

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  TraceId previous_;
};

}  // namespace mctdb::obs
