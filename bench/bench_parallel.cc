// bench_parallel — workload-grid throughput scaling through mctsvc.
//
// Runs the TPC-W (schema x query) measurement grid serially and with
// N-thread parallel execution (RunnerOptions::num_threads), and reports
// grid throughput (cells/second, setup excluded), the speedup over the
// serial run, and whether the equivalence check stayed healthy.
//
//   bench_parallel [scale] [threads ...]     default: scale 0.3, threads 1 2 4
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "workload/runner.h"

using namespace mctdb;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  if (scale <= 0) scale = 0.3;
  std::vector<size_t> thread_counts;
  for (int i = 2; i < argc; ++i) {
    size_t n = std::strtoul(argv[i], nullptr, 10);
    if (n > 0) thread_counts.push_back(n);
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4};

  workload::Workload w = workload::TpcwWorkload(scale);
  std::printf("TPC-W scale %.2f: %zu figure queries x 7 schemas, "
              "3 repetitions\n\n", scale, w.figure_queries.size());
  std::printf("%8s %12s %12s %10s %10s %9s\n", "threads", "setup(s)",
              "grid(s)", "cells", "cells/s", "speedup");
  bench::PrintRule(66);

  double serial_grid = 0.0;
  bool healthy = true;
  for (size_t threads : thread_counts) {
    workload::RunnerOptions options;
    options.repetitions = 3;
    options.num_threads = threads;
    auto summary = workload::RunWorkload(w, options);
    if (!summary.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    if (!summary->problems.empty()) {
      healthy = false;
      std::fprintf(stderr, "problems at %zu threads: %s (+%zu more)\n",
                   threads, summary->problems.front().c_str(),
                   summary->problems.size() - 1);
    }
    size_t cells = summary->measurements.size() * options.repetitions;
    if (threads == thread_counts.front()) serial_grid = summary->grid_seconds;
    double speedup =
        summary->grid_seconds > 0 ? serial_grid / summary->grid_seconds : 0;
    std::printf("%8zu %12.3f %12.3f %10zu %10.1f %8.2fx\n", threads,
                summary->setup_seconds, summary->grid_seconds, cells,
                cells / summary->grid_seconds, speedup);
  }
  std::printf("\nequivalence check: %s\n", healthy ? "passed" : "FAILED");
  return healthy ? 0 : 1;
}
