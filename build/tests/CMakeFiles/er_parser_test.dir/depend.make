# Empty dependencies file for er_parser_test.
# This may be replaced when dependencies are built.
