#include "instance/materialize.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"

namespace mctdb::instance {
namespace {

using design::Designer;
using design::Strategy;

struct TpcwFixture {
  er::ErDiagram diagram = er::Tpcw();
  er::ErGraph graph{diagram};
  Designer designer{graph};
  GenOptions gen;

  TpcwFixture() {
    gen.explicit_counts = {
        {"country", 5},        {"address", 60}, {"customer", 40},
        {"order", 50},         {"order_line", 150},
        {"item", 30},          {"author", 10},
        {"credit_card_transaction", 50},
    };
  }
};

TEST(MaterializeTest, NodeNormalSchemasShareElementCounts) {
  // Table 1: "All node normalized MCT schemas have the same number of
  // elements, attributes and content nodes".
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);

  std::vector<storage::StoreStats> stats;
  for (Strategy s : {Strategy::kShallow, Strategy::kAf, Strategy::kEn,
                     Strategy::kMcmr, Strategy::kDr}) {
    mct::MctSchema schema = f.designer.Design(s);
    auto store = Materialize(logical, schema);
    stats.push_back(store->Stats());
  }
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].num_elements, stats[0].num_elements);
    EXPECT_EQ(stats[i].num_content_nodes, stats[0].num_content_nodes);
  }
}

TEST(MaterializeTest, ElementCountEqualsLogicalNodesForNnSchemas) {
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);
  mct::MctSchema en = f.designer.Design(Strategy::kEn);
  auto store = Materialize(logical, en);
  EXPECT_EQ(store->Stats().num_elements, logical.TotalInstances());
}

TEST(MaterializeTest, DeepAndUndrAreBigger) {
  // Table 1 ordering: storage grows as more direct associations are
  // covered (DR < UNDR < DEEP in elements for TPC-W at paper scale; at
  // minimum the NN baseline is strictly below DEEP and UNDR).
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);
  mct::MctSchema en = f.designer.Design(Strategy::kEn);
  mct::MctSchema dr = f.designer.Design(Strategy::kDr);
  mct::MctSchema undr = f.designer.Design(Strategy::kUndr);
  mct::MctSchema deep = f.designer.Design(Strategy::kDeep);
  auto s_en = Materialize(logical, en)->Stats();
  auto s_dr = Materialize(logical, dr)->Stats();
  auto s_undr = Materialize(logical, undr)->Stats();
  auto s_deep = Materialize(logical, deep)->Stats();
  EXPECT_EQ(s_dr.num_elements, s_en.num_elements) << "DR is node normal";
  EXPECT_GT(s_undr.num_elements, s_dr.num_elements);
  EXPECT_GT(s_deep.num_elements, s_en.num_elements);
  // "Violating node normalization costs a great deal more in storage than
  // violating edge normalization": DR pays only extra labels vs EN.
  double edge_cost = s_dr.data_mbytes - s_en.data_mbytes;
  double node_cost = s_deep.data_mbytes - s_en.data_mbytes;
  EXPECT_GT(node_cost, edge_cost);
}

TEST(MaterializeTest, CopiesOnlyInNonNnSchemas) {
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);
  auto count_copies = [&](Strategy s) {
    mct::MctSchema schema = f.designer.Design(s);
    auto store = Materialize(logical, schema);
    size_t copies = 0;
    for (storage::ElemId e = 0; e < store->num_elements(); ++e) {
      copies += store->element(e).is_copy;
    }
    return copies;
  };
  EXPECT_EQ(count_copies(Strategy::kEn), 0u);
  EXPECT_EQ(count_copies(Strategy::kDr), 0u);
  EXPECT_EQ(count_copies(Strategy::kShallow), 0u);
  EXPECT_GT(count_copies(Strategy::kDeep), 0u);
  EXPECT_GT(count_copies(Strategy::kUndr), 0u);
}

TEST(MaterializeTest, ShallowHasIdrefAttributes) {
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);
  mct::MctSchema shallow = f.designer.Design(Strategy::kShallow);
  auto store = Materialize(logical, shallow);
  // SHALLOW nests occur_in under its one-side owner (item), so the other
  // endpoint (order_line) is the idref. Every occur_in element carries it
  // and it points at a real order_line key.
  er::NodeId occur_in = *f.diagram.FindNode("occur_in");
  er::NodeId order_line = *f.diagram.FindNode("order_line");
  size_t with_ref = 0, checked = 0;
  for (storage::ElemId e = 0; e < store->num_elements(); ++e) {
    if (store->element(e).er_node != occur_in) continue;
    ++checked;
    const std::string* v = store->AttrValue(e, "order_line_idref");
    if (v == nullptr) continue;
    ++with_ref;
    uint32_t rel_inst = store->element(e).logical;
    uint32_t target =
        logical.EndpointOf(occur_in, /*order_line side=*/1, rel_inst);
    EXPECT_EQ(*v, logical.KeyValue(order_line, target));
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(with_ref, checked);
}

TEST(MaterializeTest, LabelsFormValidForestPerColor) {
  TpcwFixture f;
  LogicalInstance logical = GenerateInstance(f.graph, f.gen);
  mct::MctSchema dr = f.designer.Design(Strategy::kDr);
  auto store = Materialize(logical, dr);
  for (mct::ColorId c = 0; c < dr.num_colors(); ++c) {
    for (storage::ElemId e = 0; e < store->num_elements(); ++e) {
      storage::LabelEntry child;
      if (!store->Label(c, e, &child)) continue;
      ASSERT_LT(child.start, child.end);
      storage::ElemId p = store->Parent(c, e);
      if (p == storage::kInvalidElem) continue;
      storage::LabelEntry parent;
      ASSERT_TRUE(store->Label(c, p, &parent));
      EXPECT_TRUE(parent.Contains(child));
      EXPECT_EQ(child.level, parent.level + 1);
    }
  }
}

TEST(MaterializeTest, SmallDiagramByHand) {
  // a (2 instances) -1:N-> b (4, total): EN store must hold 2 + 4 + 4
  // elements (a, b, and one r per b).
  er::ErDiagram d("t");
  auto a = d.AddEntity("a", {{"id", er::AttrType::kString, true}});
  auto b = d.AddEntity("b", {{"id", er::AttrType::kString, true}});
  auto r = d.AddOneToMany("r", a, b, er::Totality::kTotal);
  ASSERT_TRUE(r.ok());
  er::ErGraph g(d);
  Designer designer(g);
  GenOptions gen;
  gen.explicit_counts = {{"a", 2}, {"b", 4}};
  LogicalInstance logical = GenerateInstance(g, gen);
  auto store = Materialize(logical, designer.Design(Strategy::kEn));
  EXPECT_EQ(store->Stats().num_elements, 2u + 4u + 4u);
}

}  // namespace
}  // namespace mctdb::instance
