// Instance-level integrity constraints (paper §3.2 and the future-work
// list: "Often we will be aware of constraints that apply at the instance
// level, and knowledge of these constraints can be used to obtain better
// MCT schema designs").
//
// The paper's example: `name` is shared by parents `author` and `publisher`
// in one color; with the constraint that author names and publisher names
// are DISJOINT, no instance is ever represented twice, so node normal form
// holds even though the color is not a tree at the type level.
//
// A DisjointParentsConstraint declares a set of ER edges into one shared
// node whose instance participations are pairwise disjoint. Two effects:
//   * IsNodeNormalUnder() accepts multiple same-color occurrences of the
//     shared node when all their parent edges are covered by one
//     constraint;
//   * Algorithm MC (McOptions::constraints) may color several of the
//     constrained edges into the SAME color, producing strictly fewer
//     colors than the unconstrained design.
#pragma once

#include <string>
#include <vector>

#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

struct DisjointParentsConstraint {
  /// The shared node type whose instances split among the parents.
  er::NodeId shared = er::kInvalidNode;
  /// The ER edges (each incident on `shared`) with pairwise-disjoint
  /// instance participation.
  std::vector<er::EdgeId> edges;
};

using ConstraintSet = std::vector<DisjointParentsConstraint>;

/// True iff some constraint on `shared` covers every edge in `edges`.
bool ConstraintCovers(const ConstraintSet& constraints, er::NodeId shared,
                      const std::vector<er::EdgeId>& edges);

/// Node normal form modulo declared disjointness: multiple same-color
/// occurrences of a node are allowed when all their incoming edges are
/// covered by one constraint (reverse-cardinality nesting stays forbidden —
/// disjointness says nothing about it).
bool IsNodeNormalUnder(const mct::MctSchema& schema,
                       const ConstraintSet& constraints,
                       std::string* violation = nullptr);

// Forward declaration (design/associations.h).
struct AssociationPath;

/// Drops eligible paths that pass THROUGH a shared node entering and
/// leaving via two edges of one constraint: by disjointness such an
/// association is empty (no name is both an author name and a publisher
/// name), so it needs no recoverability.
std::vector<AssociationPath> FilterPathsUnder(
    const ConstraintSet& constraints, std::vector<AssociationPath> paths);

}  // namespace mctdb::design
