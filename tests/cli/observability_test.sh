#!/bin/sh
# CLI observability contract (README "Introspection"):
#   * `mctc trace --updates` prints update span trees in (lsn, start)
#     order — group commit may complete ops out of LSN order, but the
#     listing must not jump around the LSN axis. Trace ids are minted
#     sequentially as the ops execute, so in the sorted output the root
#     spans' trace_id values must be non-decreasing.
#   * `mctc --flight-dump PATH trace --id 0 --updates` runs the workload
#     through the query service with the flight recorder on and renders
#     the event timeline; the explicit dump decodes via `mctc blackbox`.
#   * `mctc blackbox` exits 2 on garbage input.
#
# Usage: observability_test.sh <path-to-mctc> <examples-designs-dir>
set -u

MCTC="$1"
DESIGNS="$2"
ER="$DESIGNS/warehouse.er"
TMP="${TMPDIR:-/tmp}/mctc_obs_$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

# --- trace --updates ordering -------------------------------------------
"$MCTC" trace --updates --json "$ER" > "$TMP/updates.json" 2> "$TMP/updates.err"
if [ $? -ne 0 ]; then
  fail "trace --updates --json exited non-zero: $(cat "$TMP/updates.err")"
fi
# Root spans of the per-op lines (after the query array line) carry
# monotonically increasing trace ids when sorted by (lsn, start).
grep -o '"trace_id":[0-9]*' "$TMP/updates.json" \
  | cut -d: -f2 > "$TMP/trace_ids.txt"
if [ ! -s "$TMP/trace_ids.txt" ]; then
  fail "trace --updates --json produced no trace ids"
else
  if ! sort -n -c "$TMP/trace_ids.txt" 2>/dev/null; then
    fail "update spans not in (lsn, start) order: trace ids regress"
  else
    echo "ok: trace --updates ordering ($(wc -l < "$TMP/trace_ids.txt") spans)"
  fi
fi

# --- live trace through the service + blackbox decode -------------------
DUMP="$TMP/flight.bin"
"$MCTC" --flight-dump "$DUMP" trace --id 0 --updates "$ER" \
  > "$TMP/live.txt" 2> "$TMP/live.err"
if [ $? -ne 0 ]; then
  fail "trace --id 0 --updates exited non-zero: $(cat "$TMP/live.err")"
fi
for site in admit wal.wal_append wal.wal_fsync; do
  if ! grep -q "$site" "$TMP/live.txt"; then
    fail "live timeline is missing '$site' events"
  fi
done
if ! grep -q 'trace_id=' "$TMP/live.err"; then
  fail "trace --id did not announce minted trace ids on stderr"
fi
echo "ok: live trace timeline covers admission and WAL"

# --- crash dump: kill an update run mid-workload, decode the black box --
CRASH_DUMP="$TMP/crash.bin"
"$MCTC" --flight-dump "$CRASH_DUMP" update "$ER" \
  --store "$TMP/crash.store" --ops 6 --crash-after 3 \
  > /dev/null 2> "$TMP/crash.err"
rc=$?
if [ "$rc" -ne 137 ]; then
  fail "crash-after run must exit 137, got $rc"
fi
if [ ! -s "$CRASH_DUMP" ]; then
  fail "crashed update left no flight-recorder dump"
else
  "$MCTC" blackbox "$CRASH_DUMP" > "$TMP/blackbox.txt" 2>&1
  if [ $? -ne 0 ]; then
    fail "blackbox failed to decode the crash dump: $(cat "$TMP/blackbox.txt")"
  elif ! grep -q 'wal.wal_append' "$TMP/blackbox.txt"; then
    fail "crash dump is missing the in-flight WAL append events"
  else
    echo "ok: crash dump decodes with WAL events"
  fi
  # `mctc trace --blackbox` renders the same dump filtered to one trace.
  "$MCTC" trace --blackbox "$CRASH_DUMP" --json > "$TMP/bb.json" 2>&1
  if [ $? -ne 0 ] || ! grep -q '"events"' "$TMP/bb.json"; then
    fail "trace --blackbox could not render the dump"
  fi
fi

# --- blackbox error contract --------------------------------------------
echo "garbage, not a dump" > "$TMP/garbage.bin"
"$MCTC" blackbox "$TMP/garbage.bin" > /dev/null 2>&1
if [ $? -ne 2 ]; then
  fail "blackbox on garbage must exit 2"
else
  echo "ok: blackbox rejects garbage with exit 2"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all observability CLI cases passed"
