// Rendering for obs::Span trees: an indented text form for humans (the
// `mctc trace` default and the slow-query log) and a nested JSON form for
// tooling (`mctc trace --json`, validated in CI).
#pragma once

#include <string>

#include "obs/exec_stats.h"

namespace mctdb::obs {

/// Indented one-line-per-span rendering:
///   query Q1                        1.234ms  in=0 out=67  pages 30h/2m
///     tag_scan item@c0              0.801ms  in=0 out=540 pages 28h/2m
std::string SpanTreeToText(const Span& root);

/// Nested JSON object per span: {"stage":...,"label":...,
/// "elapsed_seconds":...,"cardinality_in":...,"cardinality_out":...,
/// "join_pairs":...,"page_hits":...,"page_misses":...,"children":[...]}.
std::string SpanToJson(const Span& root);

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string JsonEscape(const std::string& s);

}  // namespace mctdb::obs
