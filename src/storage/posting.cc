#include "storage/posting.h"

#include <cstring>

#include "common/logging.h"

namespace mctdb::storage {

void PostingWriter::Append(const LabelEntry& entry) {
  if (in_buffer_ == kEntriesPerPage) {
    PageId page = pager_->Allocate();
    pager_->Write(page, buffer_);
    meta_.pages.push_back(page);
    in_buffer_ = 0;
  }
  std::memcpy(buffer_ + in_buffer_ * sizeof(LabelEntry), &entry,
              sizeof(LabelEntry));
  ++in_buffer_;
  ++meta_.count;
}

PostingMeta PostingWriter::Finish() {
  if (in_buffer_ > 0) {
    std::memset(buffer_ + in_buffer_ * sizeof(LabelEntry), 0,
                kPageSize - in_buffer_ * sizeof(LabelEntry));
    PageId page = pager_->Allocate();
    pager_->Write(page, buffer_);
    meta_.pages.push_back(page);
    in_buffer_ = 0;
  }
  return std::move(meta_);
}

bool PostingCursor::Next(LabelEntry* out) {
  if (!status_.ok() || index_ >= meta_->count) return false;
  size_t page_index = index_ / kEntriesPerPage;
  if (page_index != current_page_index_) {
    Release();
    bool miss = false;
    Status s = pool_->Fetch(meta_->pages[page_index], &current_page_, &miss);
    // The fetch outcome is charged even on failure: the pool did the work.
    if (stats_ != nullptr) stats_->OnPageFetch(miss);
    if (!s.ok()) {
      status_ = std::move(s);
      current_page_ = nullptr;
      return false;
    }
    current_page_index_ = page_index;
  }
  size_t slot = index_ % kEntriesPerPage;
  std::memcpy(out, current_page_ + slot * sizeof(LabelEntry),
              sizeof(LabelEntry));
  ++index_;
  return true;
}

void PostingCursor::Release() {
  if (current_page_ != nullptr) {
    pool_->Unpin(meta_->pages[current_page_index_]);
    current_page_ = nullptr;
    current_page_index_ = SIZE_MAX;
  }
}

std::vector<LabelEntry> ReadAll(PageCache* pool, const PostingMeta& meta,
                                obs::ExecStats* stats, Status* out_status) {
  std::vector<LabelEntry> out;
  out.reserve(meta.count);
  PostingCursor cursor(pool, &meta, stats);
  LabelEntry e;
  while (cursor.Next(&e)) out.push_back(e);
  if (out_status != nullptr) {
    *out_status = cursor.status();
  } else {
    MCTDB_CHECK_MSG(cursor.status().ok(), cursor.status().ToString().c_str());
  }
  return out;
}

}  // namespace mctdb::storage
