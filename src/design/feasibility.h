// Theorem 4.1 (paper §4.3): an ER graph translates to a *single color* XML
// schema satisfying both node normal form and association recoverability iff
//   (i)   the ER graph is a forest,
//   (ii)  it has no many-many relationship types (n-ary, n > 2, is excluded
//         by the simplified-ER precondition), and
//   (iii) no node is on the "many" side of more than one one-many
//         relationship type.
#pragma once

#include <string>

#include "er/er_graph.h"

namespace mctdb::design {

struct FeasibilityResult {
  bool feasible = false;
  bool is_forest = false;
  size_t many_many_relationships = 0;
  size_t multi_many_side_nodes = 0;
  std::string explanation;
};

/// Evaluates Theorem 4.1's conditions on `graph`.
FeasibilityResult CheckSingleColorNnAr(const er::ErGraph& graph);

}  // namespace mctdb::design
