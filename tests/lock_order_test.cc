#include "common/ordered_mutex.h"

#include <mutex>

#include <gtest/gtest.h>

namespace mctdb {
namespace {

#ifndef MCTDB_LOCK_ORDER_CHECKS
#error "tier-1 builds must compile the lock-order checker (see CMakeLists)"
#endif

TEST(OrderedMutexTest, InOrderAcquisitionSucceeds) {
  OrderedMutex registry(LockRank::kServiceRegistry);
  OrderedMutex strand(LockRank::kSessionStrand);
  OrderedMutex shard(LockRank::kPoolShard);
  {
    std::lock_guard<OrderedMutex> l1(registry);
    std::lock_guard<OrderedMutex> l2(strand);
    std::lock_guard<OrderedMutex> l3(shard);
  }
  // Ranks only order what a thread holds simultaneously; re-acquiring a
  // lower rank after releasing everything is fine.
  {
    std::lock_guard<OrderedMutex> l(registry);
  }
}

TEST(OrderedMutexTest, TryLockRespectsRanks) {
  OrderedMutex strand(LockRank::kSessionStrand);
  ASSERT_TRUE(strand.try_lock());
  strand.unlock();
}

TEST(OrderedMutexDeathTest, OutOfOrderAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex registry(LockRank::kServiceRegistry);
  OrderedMutex shard(LockRank::kPoolShard);
  EXPECT_DEATH(
      {
        std::lock_guard<OrderedMutex> leaf(shard);
        std::lock_guard<OrderedMutex> outer(registry);  // rank inversion
      },
      "lock-order violation");
}

TEST(OrderedMutexDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex a(LockRank::kPoolShard);
  OrderedMutex b(LockRank::kPoolShard);
  // Two shard locks at once would deadlock against a thread taking them
  // in the opposite order; equal rank is an inversion too.
  EXPECT_DEATH(
      {
        std::lock_guard<OrderedMutex> l1(a);
        std::lock_guard<OrderedMutex> l2(b);
      },
      "lock-order violation");
}

TEST(OrderedMutexDeathTest, UnlockWithoutLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex shard(LockRank::kPoolShard);
  EXPECT_DEATH(shard.unlock(), "lock-order violation");
}

}  // namespace
}  // namespace mctdb
