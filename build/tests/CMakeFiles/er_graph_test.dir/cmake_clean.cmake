file(REMOVE_RECURSE
  "CMakeFiles/er_graph_test.dir/er_graph_test.cc.o"
  "CMakeFiles/er_graph_test.dir/er_graph_test.cc.o.d"
  "er_graph_test"
  "er_graph_test.pdb"
  "er_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
