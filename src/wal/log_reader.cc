#include "wal/log_reader.h"

#include <cstdio>

namespace mctdb::wal {

LogScan ScanLogBytes(std::string_view bytes) {
  LogScan scan;
  scan.file_bytes = bytes.size();
  Result<WalHeader> header = DecodeWalHeader(
      bytes.substr(0, std::min<size_t>(bytes.size(), kWalHeaderSize)));
  if (!header.ok()) {
    return scan;  // header_valid = false, valid_bytes = 0
  }
  scan.header_valid = true;
  scan.header = header.value();
  scan.last_lsn = scan.header.checkpoint_lsn;
  scan.valid_bytes = kWalHeaderSize;
  size_t pos = kWalHeaderSize;
  Lsn prev = scan.header.checkpoint_lsn;
  while (pos < bytes.size()) {
    size_t consumed = 0;
    Result<WalRecord> rec = DecodeWalRecord(bytes.substr(pos), &consumed);
    if (!rec.ok()) break;  // torn tail starts here
    // Stale bytes from a recycled/overwritten log can checksum fine but
    // break LSN monotonicity; they are tail too.
    if (rec.value().lsn <= prev) break;
    prev = rec.value().lsn;
    pos += consumed;
    scan.valid_bytes = pos;
    scan.last_lsn = rec.value().lsn;
    scan.records.push_back(std::move(rec).value());
  }
  return scan;
}

Result<LogScan> ScanLog(const std::string& path,
                        uint64_t expected_fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("wal: no log at " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("wal: read failed: " + path);
  }
  // Wrong magic on a full-size header means "not a WAL file" — surface it
  // rather than silently resetting someone else's data.
  if (bytes.size() >= kWalHeaderSize) {
    Result<WalHeader> header =
        DecodeWalHeader(std::string_view(bytes).substr(0, kWalHeaderSize));
    if (!header.ok() && header.status().IsInvalidArgument()) {
      return header.status();
    }
    if (header.ok() && expected_fingerprint != 0 &&
        header.value().fingerprint != expected_fingerprint) {
      return Status::InvalidArgument(
          "wal: log belongs to a different schema (fingerprint mismatch)");
    }
  }
  return ScanLogBytes(bytes);
}

}  // namespace mctdb::wal
