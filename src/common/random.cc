#include "common/random.h"

#include <cmath>

namespace mctdb {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0 || n == 1) return Uniform(n);
  // Rejection-free inverse-CDF approximation (Gray et al., "Quickly
  // generating billion-record synthetic databases"). Recomputing zeta each
  // call is fine at our n (generation is not the measured path).
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n; ++i) zetan += 1.0 / std::pow(double(i), theta);
  const double alpha = 1.0 / (1.0 - theta);
  double zeta2 = 1.0 + std::pow(0.5, theta);
  const double eta =
      (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan);
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      double(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace mctdb
