#include "workload/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "query/planner.h"

namespace mctdb::workload {

double GeoMean1p(const std::vector<size_t>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (size_t x : xs) sum += std::log1p(double(x));
  return std::expm1(sum / double(xs.size()));
}

std::vector<QueryMetricsRow> PlanMetrics(const Workload& w,
                                         const mct::MctSchema& schema) {
  std::vector<QueryMetricsRow> rows;
  for (const std::string& name : w.figure_queries) {
    const query::AssociationQuery* q = w.Find(name);
    MCTDB_CHECK(q != nullptr);
    auto plan = query::PlanQuery(*q, schema);
    MCTDB_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
    rows.push_back({name, schema.name(), plan->Stats()});
  }
  return rows;
}

std::vector<CollectionCell> AnalyzeCollection(
    const std::vector<Workload>& workloads,
    const std::vector<design::Strategy>& strategies) {
  std::vector<CollectionCell> cells;
  for (const Workload& w : workloads) {
    er::ErGraph graph(w.diagram);
    design::Designer designer(graph);
    for (design::Strategy strategy : strategies) {
      mct::MctSchema schema = designer.Design(strategy);
      auto rows = PlanMetrics(w, schema);
      std::vector<size_t> sj, vjcc, dup;
      for (const auto& row : rows) {
        sj.push_back(row.stats.structural_joins);
        vjcc.push_back(row.stats.value_joins_plus_crossings());
        dup.push_back(row.stats.dup_ops());
      }
      CollectionCell cell;
      cell.diagram = w.diagram.name();
      cell.schema = schema.name();
      cell.gmean_structural_joins = GeoMean1p(sj);
      cell.gmean_value_joins_crossings = GeoMean1p(vjcc);
      cell.gmean_dup_ops = GeoMean1p(dup);
      cell.num_colors = schema.num_colors();
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace mctdb::workload
