#include "service/circuit_breaker.h"

#include "common/log.h"

namespace mctsvc {

CircuitBreaker::CircuitBreaker(std::string name)
    : CircuitBreaker(std::move(name), Options()) {}

CircuitBreaker::CircuitBreaker(std::string name, Options options,
                               Clock clock)
    : name_(std::move(name)), options_(options), clock_(std::move(clock)) {}

std::chrono::steady_clock::time_point CircuitBreaker::Now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      auto elapsed = std::chrono::duration<double>(Now() - opened_at_);
      if (elapsed.count() < options_.open_seconds) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      MCTDB_LOG(kWarn, "mctsvc", "circuit breaker half-open",
                {{"store", name_}});
      return true;  // this caller is the probe
    }
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps bouncing.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (state_ != State::kClosed) {
    MCTDB_LOG(kInfo, "mctsvc", "circuit breaker closed",
              {{"store", name_}});
    state_ = State::kClosed;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open for another full window.
    state_ = State::kOpen;
    opened_at_ = Now();
    MCTDB_LOG(kWarn, "mctsvc", "circuit breaker re-opened (probe failed)",
              {{"store", name_}});
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Now();
    MCTDB_LOG(kWarn, "mctsvc", "circuit breaker opened",
              {{"store", name_},
               {"consecutive_failures", int64_t(consecutive_failures_)},
               {"open_seconds", options_.open_seconds}});
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

double CircuitBreaker::RetryAfterSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kOpen) return 0.0;
  double elapsed =
      std::chrono::duration<double>(Now() - opened_at_).count();
  double left = options_.open_seconds - elapsed;
  return left > 0 ? left : 0.0;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace mctsvc
