// Store persistence: serialize an MctStore to a single file and load it
// back. The format is a versioned, section-tagged binary layout:
//
//   header  : magic "MCTDB1\n", schema fingerprint
//   pages   : the pager's 8 KB pages verbatim (posting lists)
//   elements: ElementMeta records
//   attrs   : per-element AttrRecord lists
//   dicts   : attribute-name and value dictionaries
//   labels  : per color, (elem, LabelEntry) pairs
//   parents : per color, (elem, parent) pairs
//   postings: per (color, tag), page-id lists + counts
//   keyindex: rebuilt on load (derivable)
//
// The schema itself is NOT serialized — the caller re-derives it (designs
// are deterministic functions of the ER diagram) and Load verifies the
// fingerprint, refusing to attach data to the wrong schema.
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/store.h"

namespace mctdb::storage {

/// Stable fingerprint of a schema's shape (colors, occurrences, edges, ref
/// edges) used to pair data files with schemas.
uint64_t SchemaFingerprint(const mct::MctSchema& schema);

/// Writes `store` to `path` (overwrites).
Status SaveStore(const MctStore& store, const std::string& path);

/// Reads a store from `path`. `schema` must outlive the result and match
/// the fingerprint recorded at save time.
Result<std::unique_ptr<MctStore>> LoadStore(const mct::MctSchema& schema,
                                            const std::string& path,
                                            const StoreOptions& options = {});

}  // namespace mctdb::storage
