# Empty dependencies file for mctdb_er.
# This may be replaced when dependencies are built.
