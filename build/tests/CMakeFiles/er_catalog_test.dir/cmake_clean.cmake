file(REMOVE_RECURSE
  "CMakeFiles/er_catalog_test.dir/er_catalog_test.cc.o"
  "CMakeFiles/er_catalog_test.dir/er_catalog_test.cc.o.d"
  "er_catalog_test"
  "er_catalog_test.pdb"
  "er_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
