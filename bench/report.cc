#include "bench/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/log.h"
#include "common/string_util.h"
#include "obs/trace_export.h"

namespace mctdb::bench {

namespace {

void AppendNumber(std::string* out, double v) {
  // Integral values print bare so counters round-trip exactly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    *out += buf;
  }
}

void AppendRecord(std::string* out, const QueryRecord& r) {
  *out += "{\"schema\":\"" + obs::JsonEscape(r.schema) + "\"";
  *out += ",\"query\":\"" + obs::JsonEscape(r.query) + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"median_seconds\":%.9f",
                r.median_seconds);
  *out += buf;
  std::snprintf(buf, sizeof(buf), ",\"page_hits\":%llu,\"page_misses\":%llu",
                static_cast<unsigned long long>(r.page_hits),
                static_cast<unsigned long long>(r.page_misses));
  *out += buf;
  std::snprintf(buf, sizeof(buf), ",\"join_pairs\":%llu,\"reps\":%zu",
                static_cast<unsigned long long>(r.join_pairs), r.reps);
  *out += buf;
  if (!r.extra.empty()) {
    *out += ",\"extra\":{";
    bool first = true;
    for (const auto& [name, value] : r.extra) {
      if (!first) *out += ',';
      first = false;
      *out += "\"" + obs::JsonEscape(name) + "\":";
      AppendNumber(out, value);
    }
    *out += '}';
  }
  *out += '}';
}

Result<QueryRecord> RecordFromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("bench record is not an object");
  }
  QueryRecord r;
  r.schema = v.StringOr("schema", "");
  r.query = v.StringOr("query", "");
  if (r.schema.empty() || r.query.empty()) {
    return Status::InvalidArgument(
        "bench record missing schema/query keys");
  }
  r.median_seconds = v.NumberOr("median_seconds", 0.0);
  r.page_hits = static_cast<uint64_t>(v.NumberOr("page_hits", 0));
  r.page_misses = static_cast<uint64_t>(v.NumberOr("page_misses", 0));
  r.join_pairs = static_cast<uint64_t>(v.NumberOr("join_pairs", 0));
  r.reps = static_cast<size_t>(v.NumberOr("reps", 0));
  if (const json::Value* extra = v.Find("extra");
      extra != nullptr && extra->is_object()) {
    for (const auto& [name, value] : extra->members()) {
      if (value.is_number()) r.extra.emplace_back(name, value.number());
    }
  }
  return r;
}

Result<BenchReport> ReportFromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("bench report is not a JSON object");
  }
  BenchReport report;
  report.bench = v.StringOr("bench", "");
  if (report.bench.empty()) {
    return Status::InvalidArgument("bench report missing \"bench\" name");
  }
  report.scale = v.NumberOr("scale", 0.0);
  report.reps = static_cast<size_t>(v.NumberOr("reps", 1));
  const json::Value* records = v.Find("records");
  if (records == nullptr || !records->is_array()) {
    return Status::InvalidArgument(
        "bench report missing \"records\" array");
  }
  for (const json::Value& rec : records->array()) {
    MCTDB_ASSIGN_OR_RETURN(QueryRecord r, RecordFromJson(rec));
    report.records.push_back(std::move(r));
  }
  return report;
}

std::string RecordKey(const QueryRecord& r) {
  return r.schema + "/" + r.query;
}

}  // namespace

const QueryRecord* BenchReport::Find(const std::string& schema,
                                     const std::string& query) const {
  for (const QueryRecord& r : records) {
    if (r.schema == schema && r.query == query) return &r;
  }
  return nullptr;
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"bench\":\"" + obs::JsonEscape(bench) + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"scale\":%g,\"reps\":%zu", scale,
                reps);
  out += buf;
  out += ",\"records\":[";
  bool first = true;
  for (const QueryRecord& r : records) {
    if (!first) out += ',';
    first = false;
    AppendRecord(&out, r);
  }
  out += "]}";
  return out;
}

JsonReporter::JsonReporter(std::string bench_name, double scale,
                           size_t reps) {
  report_.bench = std::move(bench_name);
  report_.scale = scale;
  report_.reps = reps;
}

QueryRecord& JsonReporter::Add(std::string schema, std::string query) {
  QueryRecord r;
  r.schema = std::move(schema);
  r.query = std::move(query);
  r.reps = report_.reps;
  report_.records.push_back(std::move(r));
  return report_.records.back();
}

Status JsonReporter::WriteTo(const std::string& path) const {
  std::string text = report_.ToJson();
  text += '\n';
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::OK();
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  MCTDB_LOG(kInfo, "bench", "report written",
            {{"bench", report_.bench},
             {"path", path},
             {"records", uint64_t(report_.records.size())},
             {"scale", report_.scale}});
  return Status::OK();
}

Result<BenchReport> ParseBenchReport(std::string_view json_text) {
  MCTDB_ASSIGN_OR_RETURN(json::Value v, json::Parse(json_text));
  return ReportFromJson(v);
}

Result<BenchReport> LoadBenchReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseBenchReport(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  return parsed;
}

std::string CombineReports(const std::vector<BenchReport>& reports) {
  std::string out = "{\"benches\":[";
  bool first = true;
  for (const BenchReport& r : reports) {
    if (!first) out += ',';
    first = false;
    out += r.ToJson();
  }
  out += "]}";
  return out;
}

CheckResult CheckAgainstBaseline(const BenchReport& current,
                                 const BenchReport& baseline,
                                 const CheckOptions& options) {
  CheckResult result;
  if (current.bench != baseline.bench) {
    result.regressions.push_back(StringPrintf(
        "bench name mismatch: current '%s' vs baseline '%s'",
        current.bench.c_str(), baseline.bench.c_str()));
    return result;
  }
  if (std::fabs(current.scale - baseline.scale) > 1e-9) {
    result.regressions.push_back(StringPrintf(
        "%s: scale mismatch: current %g vs baseline %g (re-run at the "
        "baseline scale or regenerate bench/baselines)",
        current.bench.c_str(), current.scale, baseline.scale));
    return result;
  }

  auto check_counter = [&](const QueryRecord& cur, const char* name,
                           double cur_v, double base_v) {
    if (cur_v > base_v) {
      std::string line = StringPrintf(
          "%s %s/%s: %s increased %.0f -> %.0f", current.bench.c_str(),
          cur.schema.c_str(), cur.query.c_str(), name, base_v, cur_v);
      if (options.gate_counters) {
        result.regressions.push_back(std::move(line));
      } else {
        result.notes.push_back(std::move(line));
      }
    } else if (cur_v < base_v) {
      result.notes.push_back(StringPrintf(
          "%s %s/%s: %s improved %.0f -> %.0f", current.bench.c_str(),
          cur.schema.c_str(), cur.query.c_str(), name, base_v, cur_v));
    }
  };

  for (const QueryRecord& base : baseline.records) {
    const QueryRecord* cur = current.Find(base.schema, base.query);
    if (cur == nullptr) {
      result.regressions.push_back(StringPrintf(
          "%s: record %s missing from the current run",
          current.bench.c_str(), RecordKey(base).c_str()));
      continue;
    }
    // Timing gate: relative headroom plus an absolute floor.
    double limit = base.median_seconds * (1.0 + options.tolerance);
    double growth = cur->median_seconds - base.median_seconds;
    if (cur->median_seconds > limit && growth > options.min_abs_seconds) {
      result.regressions.push_back(StringPrintf(
          "%s %s/%s: median %.6fs exceeds baseline %.6fs by more than "
          "%.0f%% (+%.6fs)",
          current.bench.c_str(), cur->schema.c_str(), cur->query.c_str(),
          cur->median_seconds, base.median_seconds,
          options.tolerance * 100.0, growth));
    }
    check_counter(*cur, "page_misses", double(cur->page_misses),
                  double(base.page_misses));
    check_counter(*cur, "join_pairs", double(cur->join_pairs),
                  double(base.join_pairs));
    for (const auto& [name, base_v] : base.extra) {
      for (const auto& [cur_name, cur_v] : cur->extra) {
        if (cur_name == name) {
          check_counter(*cur, name.c_str(), cur_v, base_v);
          break;
        }
      }
    }
  }
  for (const QueryRecord& cur : current.records) {
    if (baseline.Find(cur.schema, cur.query) == nullptr) {
      std::string line = StringPrintf(
          "%s: new record %s (no baseline yet%s)", current.bench.c_str(),
          RecordKey(cur).c_str(),
          options.strict_new_records
              ? "; strict mode fails on ungated records — regenerate "
                "bench/baselines"
              : "");
      if (options.strict_new_records) {
        result.regressions.push_back(std::move(line));
      } else {
        result.notes.push_back(std::move(line));
      }
    }
  }
  return result;
}

}  // namespace mctdb::bench
