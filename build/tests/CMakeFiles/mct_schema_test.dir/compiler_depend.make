# Empty compiler generated dependencies file for mct_schema_test.
# This may be replaced when dependencies are built.
