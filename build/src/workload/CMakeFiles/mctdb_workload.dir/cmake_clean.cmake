file(REMOVE_RECURSE
  "CMakeFiles/mctdb_workload.dir/derby.cc.o"
  "CMakeFiles/mctdb_workload.dir/derby.cc.o.d"
  "CMakeFiles/mctdb_workload.dir/metrics.cc.o"
  "CMakeFiles/mctdb_workload.dir/metrics.cc.o.d"
  "CMakeFiles/mctdb_workload.dir/runner.cc.o"
  "CMakeFiles/mctdb_workload.dir/runner.cc.o.d"
  "CMakeFiles/mctdb_workload.dir/tpcw.cc.o"
  "CMakeFiles/mctdb_workload.dir/tpcw.cc.o.d"
  "CMakeFiles/mctdb_workload.dir/xmark.cc.o"
  "CMakeFiles/mctdb_workload.dir/xmark.cc.o.d"
  "libmctdb_workload.a"
  "libmctdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
