#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/update_exec.h"
#include "storage/sharded_pool.h"
#include "wal/durable_store.h"
#include "workload/update_gen.h"
#include "workload/workload.h"

namespace mctdb::wal {
namespace {

using design::Strategy;

struct Fixture {
  workload::Workload w = workload::TpcwWorkload(0.02);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  mct::MctSchema schema = designer.Design(Strategy::kMcmr);
  instance::LogicalInstance logical = instance::GenerateInstance(graph, w.gen);

  std::unique_ptr<DurableStore> MakeDurable() {
    auto d = DurableStore::Ephemeral(
        instance::Materialize(logical, schema, {}));
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return std::move(*d);
  }

  std::vector<storage::UpdateOp> Ops(size_t n) {
    std::vector<mct::MctSchema> schemas{schema};
    workload::UpdateGenOptions gen;
    gen.num_ops = n;
    return workload::GenerateUpdateOps(schemas, logical, gen);
  }

  query::AssociationQuery* FirstPlannableQuery() {
    for (const std::string& name : w.figure_queries) {
      const query::AssociationQuery* q = w.Find(name);
      if (q == nullptr || q->is_update()) continue;
      if (query::PlanQuery(*q, schema).ok()) {
        return const_cast<query::AssociationQuery*>(q);
      }
    }
    return nullptr;
  }

  std::vector<uint32_t> Run(storage::MctStore* store,
                            const query::AssociationQuery& q, Lsn snapshot,
                            storage::PageCache* pool = nullptr) {
    auto plan = query::PlanQuery(q, schema);
    EXPECT_TRUE(plan.ok());
    query::Executor exec(store, pool);
    exec.set_snapshot(snapshot);
    auto r = exec.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->logicals;
  }
};

TEST(SnapshotIsolationTest, PinnedSnapshotIsImmuneToLaterUpdates) {
  Fixture f;
  auto durable = f.MakeDurable();
  auto ops = f.Ops(10);
  ASSERT_FALSE(ops.empty());
  const query::AssociationQuery* q = f.FirstPlannableQuery();
  ASSERT_NE(q, nullptr);

  Lsn s0 = durable->snapshot();
  std::vector<uint32_t> before = f.Run(durable->store(), *q, s0);

  // Time-travel stability: remember the answer at every intermediate
  // snapshot while the stream applies...
  query::UpdateExecutor exec(durable.get());
  std::vector<std::pair<Lsn, std::vector<uint32_t>>> at_snapshot;
  for (const auto& op : ops) {
    auto r = exec.Execute(op);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    at_snapshot.emplace_back(r->lsn, f.Run(durable->store(), *q, r->lsn));
  }

  // ...the pre-update snapshot still answers exactly as before...
  EXPECT_EQ(f.Run(durable->store(), *q, s0), before);
  // ...and every intermediate snapshot still answers as it did live.
  for (const auto& [lsn, expected] : at_snapshot) {
    EXPECT_EQ(f.Run(durable->store(), *q, lsn), expected) << "lsn " << lsn;
  }
}

// The PR's isolation acceptance criterion: readers running CONCURRENTLY
// with the update stream, pinned at the pre-update snapshot, return
// byte-identical results to a serial pre-update run — queries never block
// on or observe in-flight updates.
TEST(SnapshotIsolationTest, ConcurrentReadersMatchSerialPreUpdateRun) {
  Fixture f;
  auto durable = f.MakeDurable();
  auto ops = f.Ops(12);
  ASSERT_FALSE(ops.empty());
  const query::AssociationQuery* q = f.FirstPlannableQuery();
  ASSERT_NE(q, nullptr);

  Lsn s0 = durable->snapshot();
  const std::vector<uint32_t> serial = f.Run(durable->store(), *q, s0);

  // Concurrent readers share one store through the thread-safe pool, the
  // same arrangement the service uses (the store's own BufferPool is
  // single-threaded by contract).
  storage::ShardedBufferPool pool(durable->store()->pager(), 256);

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> divergent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      do {
        std::vector<uint32_t> got = f.Run(durable->store(), *q, s0, &pool);
        reads.fetch_add(1);
        if (got != serial) divergent.fetch_add(1);
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }
  query::UpdateExecutor exec(durable.get());
  for (const auto& op : ops) {
    ASSERT_TRUE(exec.Execute(op).ok());
  }
  writer_done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(divergent.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(durable->snapshot(), s0);  // the updates really landed
}

// Chaos: the ISSUE's fault mix — 1% clean append failures, 1% torn batch
// writes — over repeated streams. Every op either commits (and is exactly
// reproducible on a clean store) or fails with a clean status; reads at
// the published snapshot never see a torn state.
TEST(SnapshotIsolationTest, ChaosFaultMixPreservesCommittedPrefix) {
  Fixture f;
  const query::AssociationQuery* q = f.FirstPlannableQuery();
  ASSERT_NE(q, nullptr);
  auto ops = f.Ops(16);
  ASSERT_FALSE(ops.empty());

  std::string error;
  ASSERT_TRUE(failpoint::Configure(
      "wal.append=err(0.01);wal.fsync=trunc(0.01)", &error))
      << error;

  size_t faulted_rounds = 0;
  for (int round = 0; round < 40; ++round) {
    auto durable = f.MakeDurable();
    query::UpdateExecutor exec(durable.get());
    std::vector<const storage::UpdateOp*> committed;
    for (const auto& op : ops) {
      auto r = exec.Execute(op);
      if (r.ok()) {
        committed.push_back(&op);
        continue;
      }
      // Clean failure contract: injected faults surface as IoError (the
      // fault itself) or Unavailable (degraded writer afterwards) — never
      // a crash, never corruption.
      EXPECT_TRUE(r.status().IsIoError() || r.status().IsUnavailable())
          << r.status().ToString();
      ++faulted_rounds;
      if (durable->degraded()) break;
    }
    // The published snapshot covers exactly the committed ops. Replaying
    // them on a clean store must answer identically.
    failpoint::DisarmAll();
    auto clean = f.MakeDurable();
    query::UpdateExecutor clean_exec(clean.get());
    for (const storage::UpdateOp* op : committed) {
      ASSERT_TRUE(clean_exec.Execute(*op).ok());
    }
    EXPECT_EQ(f.Run(durable->store(), *q, durable->snapshot()),
              f.Run(clean->store(), *q, clean->snapshot()))
        << "round " << round;
    ASSERT_TRUE(failpoint::Configure(
        "wal.append=err(0.01);wal.fsync=trunc(0.01)", &error));
  }
  failpoint::DisarmAll();
  // 40 rounds x 16 ops at 1% per site: overwhelmingly likely to have hit
  // at least one fault; if the dice were astronomically kind the test
  // still verified the clean path.
  SUCCEED() << faulted_rounds << " faulted ops observed";
}

}  // namespace
}  // namespace mctdb::wal
