# Empty dependencies file for planner_collection_test.
# This may be replaced when dependencies are built.
