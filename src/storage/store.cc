#include "storage/store.h"

#include <algorithm>

#include "common/logging.h"

namespace mctdb::storage {

const std::string* MctStore::AttrValue(ElemId id,
                                       std::string_view attr_name) const {
  uint32_t name_id = FindAttrName(attr_name);
  if (name_id == UINT32_MAX) return nullptr;
  for (const AttrRecord& a : attrs_[id]) {
    if (a.name_id == name_id) return &values_[a.value_id];
  }
  return nullptr;
}

uint32_t MctStore::FindAttrName(std::string_view name) const {
  auto it = attr_name_index_.find(std::string(name));
  return it == attr_name_index_.end() ? UINT32_MAX : it->second;
}

uint32_t MctStore::FindValue(std::string_view v) const {
  auto it = value_index_.find(std::string(v));
  return it == value_index_.end() ? UINT32_MAX : it->second;
}

const PostingMeta* MctStore::Posting(mct::ColorId color,
                                     er::NodeId tag) const {
  if (color >= postings_.size() || tag >= postings_[color].size()) {
    return nullptr;
  }
  return postings_[color][tag].get();
}

bool MctStore::Label(mct::ColorId color, ElemId id, LabelEntry* out) const {
  if (color >= labels_.size()) return false;
  auto it = labels_[color].find(id);
  if (it == labels_[color].end()) return false;
  *out = it->second;
  return true;
}

ElemId MctStore::Parent(mct::ColorId color, ElemId id) const {
  if (color >= parents_.size()) return kInvalidElem;
  auto it = parents_[color].find(id);
  return it == parents_[color].end() ? kInvalidElem : it->second;
}

std::vector<LabelEntry> MctStore::ColorEntries(mct::ColorId color) const {
  std::vector<LabelEntry> out;
  if (color >= labels_.size()) return out;
  out.reserve(labels_[color].size());
  for (const auto& [elem, label] : labels_[color]) out.push_back(label);
  std::sort(out.begin(), out.end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              return a.start < b.start;
            });
  return out;
}

std::vector<ElemId> MctStore::ElementsFor(er::NodeId er_node,
                                          uint32_t logical) const {
  if (er_node >= key_index_.size()) return {};
  auto it = key_index_[er_node].find(logical);
  return it == key_index_[er_node].end() ? std::vector<ElemId>{} : it->second;
}

StoreStats MctStore::Stats() const {
  StoreStats st;
  st.num_elements = elements_.size();
  st.num_attributes = num_attribute_nodes_;
  st.num_content_nodes = num_content_nodes_;
  st.num_colors = schema_->num_colors();
  // Bytes: posting pages + element metadata + attribute/content records
  // (charged with their value text per record, as a real store lays them
  // out — dictionary compression is not assumed, so DEEP/UNDR copies pay
  // full freight) + label and parent maps.
  size_t bytes = pager_.bytes();
  bytes += elements_.size() * sizeof(ElementMeta);
  for (const auto& a : attrs_) {
    for (const AttrRecord& rec : a) {
      bytes += sizeof(AttrRecord) + values_[rec.value_id].size();
      if (rec.has_content) bytes += 8 + values_[rec.value_id].size();
    }
  }
  // Per-color parent pointers are part of the node record in a real
  // layout; the label maps themselves are in-memory indexes over the
  // posting pages already counted above.
  for (const auto& m : parents_) bytes += m.size() * sizeof(ElemId);
  st.data_mbytes = double(bytes) / (1024.0 * 1024.0);
  return st;
}

void MctStore::UpdateAttrValue(ElemId id, uint32_t name_id,
                               std::string_view value) {
  MCTDB_CHECK(id < elements_.size());
  auto it = value_index_.find(std::string(value));
  uint32_t value_id;
  if (it != value_index_.end()) {
    value_id = it->second;
  } else {
    value_id = static_cast<uint32_t>(values_.size());
    values_.emplace_back(value);
    value_index_.emplace(values_.back(), value_id);
  }
  for (AttrRecord& a : attrs_[id]) {
    if (a.name_id == name_id) {
      a.value_id = value_id;
      ++update_page_writes_;  // the element's attribute page is rewritten
      return;
    }
  }
  MCTDB_CHECK_MSG(false, "UpdateAttrValue: attribute not present");
}

// ---------------------------------------------------------------------------

StoreBuilder::StoreBuilder(const mct::MctSchema* schema,
                           const StoreOptions& options)
    : store_(std::unique_ptr<MctStore>(new MctStore())), options_(options) {
  store_->schema_ = schema;
  size_t colors = schema->num_colors();
  store_->postings_.resize(colors);
  for (auto& per_color : store_->postings_) {
    per_color.resize(schema->diagram().num_nodes());
  }
  store_->labels_.resize(colors);
  store_->parents_.resize(colors);
  store_->key_index_.resize(schema->diagram().num_nodes());
  per_tag_entries_.resize(schema->diagram().num_nodes());
}

ElemId StoreBuilder::AddElement(er::NodeId er_node, uint32_t logical,
                                bool is_copy) {
  ElemId id = static_cast<ElemId>(store_->elements_.size());
  store_->elements_.push_back({er_node, logical, is_copy});
  store_->attrs_.emplace_back();
  store_->key_index_[er_node][logical].push_back(id);
  return id;
}

uint32_t StoreBuilder::InternAttrName(std::string_view name) {
  auto it = store_->attr_name_index_.find(std::string(name));
  if (it != store_->attr_name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(store_->attr_names_.size());
  store_->attr_names_.emplace_back(name);
  store_->attr_name_index_.emplace(store_->attr_names_.back(), id);
  return id;
}

uint32_t StoreBuilder::InternValue(std::string_view value) {
  auto it = store_->value_index_.find(std::string(value));
  if (it != store_->value_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(store_->values_.size());
  store_->values_.emplace_back(value);
  store_->value_index_.emplace(store_->values_.back(), id);
  return id;
}

void StoreBuilder::AddAttr(ElemId elem, std::string_view name,
                           std::string_view value, bool with_content) {
  AttrRecord rec;
  rec.name_id = InternAttrName(name);
  rec.value_id = InternValue(value);
  rec.has_content = with_content;
  store_->attrs_[elem].push_back(rec);
  ++store_->num_attribute_nodes_;
  if (with_content) ++store_->num_content_nodes_;
}

void StoreBuilder::BeginColor(mct::ColorId color) {
  MCTDB_CHECK(!in_color_);
  in_color_ = true;
  color_ = color;
  label_counter_ = 0;
  open_stack_.clear();
  entries_.clear();
  entry_tag_.clear();
  for (auto& v : per_tag_entries_) v.clear();
}

void StoreBuilder::Enter(ElemId elem) {
  MCTDB_CHECK(in_color_);
  const ElementMeta& meta = store_->elements_[elem];
  LabelEntry entry;
  entry.elem = elem;
  entry.start = ++label_counter_;
  entry.level = static_cast<uint16_t>(open_stack_.size());
  entry.is_copy = meta.is_copy ? 1 : 0;
  entry.logical = meta.logical;
  // Parent pointer.
  ElemId parent = open_stack_.empty() ? kInvalidElem : open_stack_.back().elem;
  if (parent != kInvalidElem) {
    store_->parents_[color_][elem] = parent;
  }
  entries_.push_back(entry);
  entry_tag_.push_back(meta.er_node);
  open_stack_.push_back({elem, entries_.size() - 1});
}

void StoreBuilder::Leave(ElemId elem) {
  MCTDB_CHECK(in_color_ && !open_stack_.empty());
  MCTDB_CHECK(open_stack_.back().elem == elem);
  LabelEntry& entry = entries_[open_stack_.back().entry_index];
  entry.end = ++label_counter_;
  open_stack_.pop_back();
}

void StoreBuilder::EndColor() {
  MCTDB_CHECK(in_color_ && open_stack_.empty());
  // Scatter entries to per-tag lists (Enter order == document order) and
  // record labels.
  for (size_t i = 0; i < entries_.size(); ++i) {
    per_tag_entries_[entry_tag_[i]].push_back(entries_[i]);
    store_->labels_[color_][entries_[i].elem] = entries_[i];
  }
  for (size_t tag = 0; tag < per_tag_entries_.size(); ++tag) {
    if (per_tag_entries_[tag].empty()) continue;
    PostingWriter writer(&store_->pager_);
    for (const LabelEntry& e : per_tag_entries_[tag]) writer.Append(e);
    store_->postings_[color_][tag] =
        std::make_unique<PostingMeta>(writer.Finish());
  }
  in_color_ = false;
}

std::unique_ptr<MctStore> StoreBuilder::Finish() {
  MCTDB_CHECK(!in_color_);
  store_->pool_ =
      std::make_unique<BufferPool>(&store_->pager_, options_.buffer_pool_pages);
  return std::move(store_);
}

}  // namespace mctdb::storage
