#include "obs/exec_stats.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace_export.h"

namespace mctdb::obs {
namespace {

TEST(ExecStatsTest, RootSpanCarriesQueryLabel) {
  ExecStats stats("Q1");
  Span root = stats.Finish();
  EXPECT_EQ(root.kind, StageKind::kQuery);
  EXPECT_EQ(root.label, "Q1");
  EXPECT_GE(root.elapsed_seconds, 0.0);
  EXPECT_TRUE(root.children.empty());
}

TEST(ExecStatsTest, SpansNestWithStackDiscipline) {
  ExecStats stats("Q");
  stats.BeginSpan(StageKind::kStructuralJoin, "outer");
  stats.BeginSpan(StageKind::kTagScan, "inner");
  stats.EndSpan();
  stats.EndSpan();
  stats.BeginSpan(StageKind::kDupElim, "sibling");
  stats.EndSpan();
  Span root = stats.Finish();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].kind, StageKind::kStructuralJoin);
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].kind, StageKind::kTagScan);
  EXPECT_EQ(root.children[1].kind, StageKind::kDupElim);
  EXPECT_TRUE(root.children[1].children.empty());
}

TEST(ExecStatsTest, PageFetchesChargeTheInnermostOpenSpan) {
  ExecStats stats("Q");
  stats.OnPageFetch(true);  // root is innermost
  stats.BeginSpan(StageKind::kStructuralJoin, "join");
  stats.OnPageFetch(false);
  stats.BeginSpan(StageKind::kTagScan, "scan");
  stats.OnPageFetch(true);
  stats.OnPageFetch(true);
  stats.EndSpan();
  stats.OnPageFetch(false);  // back to the join span
  stats.EndSpan();
  EXPECT_EQ(stats.page_hits(), 2u);
  EXPECT_EQ(stats.page_misses(), 3u);
  Span root = stats.Finish();
  EXPECT_EQ(root.page_misses, 1u);
  EXPECT_EQ(root.page_hits, 0u);
  const Span& join = root.children[0];
  EXPECT_EQ(join.page_hits, 2u);
  EXPECT_EQ(join.page_misses, 0u);
  const Span& scan = join.children[0];
  EXPECT_EQ(scan.page_misses, 2u);
  EXPECT_EQ(scan.page_hits, 0u);
  // Inclusive counts roll the subtree up.
  EXPECT_EQ(root.total_page_hits(), 2u);
  EXPECT_EQ(root.total_page_misses(), 3u);
}

TEST(ExecStatsTest, JoinPairsAccumulateOnSpanAndQueryTotal) {
  ExecStats stats("Q");
  stats.BeginSpan(StageKind::kStructuralJoin, "a");
  stats.AddJoinPairs(5);
  stats.EndSpan();
  stats.BeginSpan(StageKind::kStructuralJoin, "b");
  stats.AddJoinPairs(7);
  stats.EndSpan();
  EXPECT_EQ(stats.join_pairs(), 12u);
  Span root = stats.Finish();
  EXPECT_EQ(root.join_pairs, 12u);
  EXPECT_EQ(root.children[0].join_pairs, 5u);
  EXPECT_EQ(root.children[1].join_pairs, 7u);
}

TEST(ExecStatsTest, AggregateByStageUsesSelfTime) {
  Span root;
  root.kind = StageKind::kQuery;
  root.elapsed_seconds = 1.0;
  Span join;
  join.kind = StageKind::kStructuralJoin;
  join.elapsed_seconds = 0.6;
  join.join_pairs = 9;
  Span scan;
  scan.kind = StageKind::kTagScan;
  scan.elapsed_seconds = 0.25;
  scan.page_misses = 3;
  scan.cardinality_out = 40;
  join.children.push_back(scan);
  root.children.push_back(join);

  StageTable table = AggregateByStage(root);
  const StageAgg& query = table[size_t(StageKind::kQuery)];
  const StageAgg& joins = table[size_t(StageKind::kStructuralJoin)];
  const StageAgg& scans = table[size_t(StageKind::kTagScan)];
  EXPECT_DOUBLE_EQ(query.seconds, 0.4);  // 1.0 - 0.6 child
  EXPECT_DOUBLE_EQ(joins.seconds, 0.35);  // 0.6 - 0.25 child
  EXPECT_DOUBLE_EQ(scans.seconds, 0.25);
  EXPECT_EQ(joins.calls, 1u);
  EXPECT_EQ(joins.join_pairs, 9u);
  EXPECT_EQ(scans.page_misses, 3u);
  EXPECT_EQ(scans.cardinality_out, 40u);
  // Self times sum back to the root's inclusive elapsed.
  double total = 0;
  for (const StageAgg& row : table) total += row.seconds;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(SpanScopeTest, NullStatsIsANoOp) {
  SpanScope scope(nullptr, StageKind::kTagScan, "scan");
  scope.SetCardinalityIn(3);
  scope.SetCardinalityOut(2);
  scope.AddJoinPairs(1);  // must not crash
}

TEST(TraceExportTest, JsonEscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny"), "x\\ny");
  EXPECT_EQ(JsonEscape(std::string("z\x01", 2)), "z\\u0001");
}

TEST(TraceExportTest, SpanToJsonEmitsNestedTree) {
  ExecStats stats("Q\"2\"");
  Span* span = stats.BeginSpan(StageKind::kTagScan, "item@c0");
  span->cardinality_in = 10;
  span->cardinality_out = 4;
  stats.OnPageFetch(true);
  stats.EndSpan();
  std::string json = SpanToJson(stats.Finish());
  EXPECT_NE(json.find("\"stage\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"Q\\\"2\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"tag_scan\""), std::string::npos);
  EXPECT_NE(json.find("\"cardinality_in\":10"), std::string::npos);
  EXPECT_NE(json.find("\"cardinality_out\":4"), std::string::npos);
  EXPECT_NE(json.find("\"page_misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[]"), std::string::npos);
}

TEST(TraceExportTest, TextRenderingIndentsChildren) {
  ExecStats stats("Q1");
  stats.BeginSpan(StageKind::kStructuralJoin, "post@c0");
  stats.BeginSpan(StageKind::kTagScan, "post@c0");
  stats.EndSpan();
  stats.EndSpan();
  std::string text = SpanTreeToText(stats.Finish());
  EXPECT_NE(text.find("query Q1"), std::string::npos);
  EXPECT_NE(text.find("\n  structural_join post@c0"), std::string::npos);
  EXPECT_NE(text.find("\n    tag_scan post@c0"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::obs
