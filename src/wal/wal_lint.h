// WAL lint: static diagnostics about a (store image, log) pair, reported
// through the shared analysis::DiagnosticReport (codes are stable, WALnnn):
//
//   WAL001 warning  log tail newer than the checkpoint — unclean shutdown;
//                   the store will recover on open (N records to replay)
//   WAL002 warning  torn tail of N bytes — will be truncated on open
//   WAL003 warning  log header unreadable — will be reset on open (the
//                   store image is authoritative)
//   WAL004 error    checkpoint-less log above the size threshold — refuse;
//                   run `mctc recover` / checkpoint before serving
//   WAL005 error    log is not a WAL file / names a different schema
//
// Pure read-only: lint never truncates, replays, or repairs — that is
// recovery's job. `mctc lint --store` wires this in next to the STOnnn
// store checks.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/diagnostics.h"

namespace mctdb::wal {

struct WalLintOptions {
  /// WAL004 threshold: a log this large with no checkpoint recorded means
  /// recovery would replay everything from scratch.
  uint64_t max_uncheckpointed_bytes = 64ull << 20;
  /// Expected schema fingerprint (0 = skip the pairing check).
  uint64_t fingerprint = 0;
};

/// Lints the log of the store at `store_path` ("<store_path>.wal"). A
/// missing log is clean (read-only store). Returns the number of
/// diagnostics added.
size_t LintWal(const std::string& store_path, const WalLintOptions& options,
               analysis::DiagnosticReport* report);

}  // namespace mctdb::wal
