#include "wal/wal_format.h"

#include <cstring>

#include "common/hash.h"

namespace mctdb::wal {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeWalHeader(const WalHeader& header, std::string* out) {
  size_t base = out->size();
  out->append(kWalMagic, sizeof(kWalMagic));
  PutU64(out, header.fingerprint);
  PutU64(out, header.checkpoint_lsn);
  uint64_t sum = PageChecksum(out->data() + base, kWalHeaderSize - 8);
  PutU64(out, sum);
}

Result<WalHeader> DecodeWalHeader(std::string_view bytes) {
  if (bytes.size() < kWalHeaderSize) {
    return Status::DataLoss("wal: torn header");
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("wal: bad magic (not a WAL file)");
  }
  uint64_t expect = PageChecksum(bytes.data(), kWalHeaderSize - 8);
  uint64_t got = GetU64(bytes.data() + kWalHeaderSize - 8);
  if (expect != got) {
    return Status::DataLoss("wal: header checksum mismatch");
  }
  WalHeader h;
  h.fingerprint = GetU64(bytes.data() + 8);
  h.checkpoint_lsn = GetU64(bytes.data() + 16);
  return h;
}

void EncodeWalRecord(Lsn lsn, RecordType type, std::string_view payload,
                     std::string* out) {
  size_t base = out->size();
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU64(out, lsn);
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
  uint64_t sum = PageChecksum(out->data() + base, out->size() - base);
  PutU64(out, sum);
}

Result<WalRecord> DecodeWalRecord(std::string_view bytes, size_t* consumed) {
  *consumed = 0;
  if (bytes.size() < kRecordOverhead) {
    return Status::DataLoss("wal: torn record prefix");
  }
  uint32_t len = GetU32(bytes.data());
  if (len > kMaxPayloadSize) {
    return Status::DataLoss("wal: implausible record length");
  }
  size_t total = kRecordOverhead + len;
  if (bytes.size() < total) {
    return Status::DataLoss("wal: torn record body");
  }
  uint64_t expect = PageChecksum(bytes.data(), total - 8);
  uint64_t got = GetU64(bytes.data() + total - 8);
  if (expect != got) {
    return Status::DataLoss("wal: record checksum mismatch");
  }
  WalRecord rec;
  rec.lsn = GetU64(bytes.data() + 4);
  rec.type = static_cast<RecordType>(bytes[12]);
  rec.payload.assign(bytes.data() + kRecordPrefixSize, len);
  *consumed = total;
  return rec;
}

}  // namespace mctdb::wal
