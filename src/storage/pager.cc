#include "storage/pager.h"

#include <cstring>

#include "common/logging.h"

namespace mctdb::storage {

PageId Pager::Allocate() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

void Pager::Write(PageId id, const char* data) {
  MCTDB_CHECK(id < pages_.size());
  std::memcpy(pages_[id].get(), data, kPageSize);
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::Read(PageId id, char* out) const {
  MCTDB_CHECK(id < pages_.size());
  if (read_hook_) read_hook_(id);
  std::memcpy(out, pages_[id].get(), kPageSize);
  disk_reads_.fetch_add(1, std::memory_order_relaxed);
}

const char* BufferPool::Fetch(PageId id, bool* out_miss) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    *out_miss = false;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
    return it->second.data.get();
  }
  ++misses_;
  *out_miss = true;
  if (frames_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
  Frame frame;
  frame.data = std::make_unique<char[]>(kPageSize);
  pager_->Read(id, frame.data.get());
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  MCTDB_CHECK(inserted);
  return pos->second.data.get();
}

}  // namespace mctdb::storage
