#include "common/string_util.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace mctdb {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, DropsEmptyByDefault) {
  EXPECT_EQ(Split("a,,b,", ','), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitTest, KeepsEmptyWhenAsked) {
  EXPECT_EQ(Split("a,,b,", ',', true),
            (std::vector<std::string>{"a", "", "b", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_EQ(Split("", ',', true), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "::"), "x::y::z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(PrefixSuffixTest, Works) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutput) {
  std::string big(5000, 'a');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 5000u);
}

TEST(EscapeXmlTest, EscapesAllFive) {
  EXPECT_EQ(EscapeXml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(EscapeXml("plain"), "plain");
}

TEST(ToLowerTest, Lowercases) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
}

TEST(ParseUint64Test, ValidAndInvalid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
}

TEST(HashTest, StableAndSensitive) {
  EXPECT_EQ(Hash64("abc"), Hash64("abc"));
  EXPECT_NE(Hash64("abc"), Hash64("abd"));
  EXPECT_NE(Hash64("abc"), Hash64("abc", /*seed=*/1));
  EXPECT_NE(Hash64(uint64_t{1}), Hash64(uint64_t{2}));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace mctdb
