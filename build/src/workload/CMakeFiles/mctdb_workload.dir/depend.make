# Empty dependencies file for mctdb_workload.
# This may be replaced when dependencies are built.
