#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mctdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("node x");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "node x");
  EXPECT_EQ(s.ToString(), "NotFound: node x");
}

TEST(StatusTest, EveryFactoryHasMatchingPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::ConstraintViolation("").IsConstraintViolation());
  EXPECT_TRUE(Status::IoError("").IsIoError());
  EXPECT_TRUE(Status::Internal("").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("").IsDeadlineExceeded());
}

TEST(StatusTest, ServiceCodesAreDistinctAndNamed) {
  Status full = Status::ResourceExhausted("queue full");
  Status late = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(full.ToString(), "ResourceExhausted: queue full");
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: too slow");
  EXPECT_FALSE(full.IsDeadlineExceeded());
  EXPECT_FALSE(late.IsResourceExhausted());
  EXPECT_FALSE(full == late);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status Fails() { return Status::IoError("disk"); }
Status Propagates() {
  MCTDB_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates().IsIoError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Status UseHalf(int x, int* out) {
  MCTDB_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(3, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace mctdb
