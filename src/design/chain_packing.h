// Shared helper for MCMR and DUMC: try to realize an eligible association
// path as a descending chain inside one color of a schema, *preserving node
// normal form* (at most one occurrence per ER node per color, every link
// traversable).
#pragma once

#include "design/associations.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

/// Attempts to realize `path` in color `color` of `schema`:
///   * occurrences already present must line up with the path (each present
///     node's parent must be the previous path node via the path's edge,
///     except the path's first node, which may hang anywhere);
///   * absent nodes are appended (the first as a new root if absent).
/// All-or-nothing; returns true iff the path is realized afterwards (either
/// it already was, or the needed occurrences were added).
bool TryRealizeInColor(mct::MctSchema* schema, mct::ColorId color,
                       const AssociationPath& path);

}  // namespace mctdb::design
