#include "common/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mctdb::logging {
namespace {

/// Installs a capturing sink for the test's lifetime and restores the
/// default (stderr) sink plus the warn default level afterwards, so tests
/// can run in any order.
class CapturingSink {
 public:
  CapturingSink() {
    SetSink([this](const std::string& line) { lines_.push_back(line); });
  }
  ~CapturingSink() {
    SetSink(nullptr);
    SetMinLevel(Level::kWarn);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogTest, FormatLineRendersStableJson) {
  std::string line = FormatLine(
      Level::kInfo, "pool", "page evicted",
      {{"victim", uint64_t(12)}, {"store", "tpcw"}, {"ratio", 0.5}},
      /*unix_nanos=*/1754380800123456789);  // 2025-08-05T08:00:00.123Z
  EXPECT_EQ(line,
            "{\"ts\":\"2025-08-05T08:00:00.123Z\",\"level\":\"info\","
            "\"component\":\"pool\",\"msg\":\"page evicted\","
            "\"victim\":12,\"store\":\"tpcw\",\"ratio\":0.5}");
}

TEST(LogTest, StringsAreJsonEscaped) {
  std::string line = FormatLine(Level::kWarn, "svc", "weird \"name\"\n",
                                {{"key", "a\\b\tc"}}, 0);
  EXPECT_NE(line.find("\"msg\":\"weird \\\"name\\\"\\n\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"key\":\"a\\\\b\\tc\""), std::string::npos) << line;
}

TEST(LogTest, FieldTypesRender) {
  std::string line = FormatLine(
      Level::kDebug, "c", "m",
      {{"b", true}, {"i", int64_t(-3)}, {"u", uint64_t(7)}, {"d", 2.25}}, 0);
  EXPECT_NE(line.find("\"b\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"i\":-3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"u\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"d\":2.25"), std::string::npos) << line;
}

TEST(LogTest, MinLevelFilters) {
  CapturingSink sink;
  SetMinLevel(Level::kWarn);
  EXPECT_FALSE(Enabled(Level::kDebug));
  EXPECT_FALSE(Enabled(Level::kInfo));
  EXPECT_TRUE(Enabled(Level::kWarn));
  EXPECT_TRUE(Enabled(Level::kError));
  MCTDB_LOG(kInfo, "t", "dropped");
  MCTDB_LOG(kError, "t", "kept", {{"n", uint64_t(1)}});
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_NE(sink.lines()[0].find("\"msg\":\"kept\""), std::string::npos);
  EXPECT_NE(sink.lines()[0].find("\"level\":\"error\""), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  CapturingSink sink;
  SetMinLevel(Level::kOff);
  MCTDB_LOG(kError, "t", "still dropped");
  EXPECT_TRUE(sink.lines().empty());
}

TEST(LogTest, SinkReceivesLinesWithoutTrailingNewline) {
  CapturingSink sink;
  SetMinLevel(Level::kDebug);
  MCTDB_LOG(kDebug, "t", "hello");
  ASSERT_EQ(sink.lines().size(), 1u);
  const std::string& line = sink.lines()[0];
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.front(), '{');
}

TEST(LogTest, ParseLevelNamesAndFallback) {
  EXPECT_EQ(ParseLevel("debug", Level::kOff), Level::kDebug);
  EXPECT_EQ(ParseLevel("INFO", Level::kOff), Level::kInfo);
  EXPECT_EQ(ParseLevel("Warning", Level::kOff), Level::kWarn);
  EXPECT_EQ(ParseLevel("error", Level::kOff), Level::kError);
  EXPECT_EQ(ParseLevel("none", Level::kWarn), Level::kOff);
  EXPECT_EQ(ParseLevel("bogus", Level::kWarn), Level::kWarn);
}

}  // namespace
}  // namespace mctdb::logging
