// OrderedMutex: an instrumented mutex enforcing a static lock-rank order.
//
// Every mutex in the concurrent (mctsvc) path is assigned a rank from the
// table below. A thread may only acquire a mutex whose rank is strictly
// greater than every rank it already holds; acquiring out of order aborts
// immediately, printing the offending acquisition chain — deadlock cycles
// are caught deterministically on first occurrence instead of surfacing
// as a rare production hang.
//
// Rank table (outermost first — lower ranks are taken before higher ones):
//   kServiceRegistry (100)  QueryService::mu_ — store registry
//   kPlanCache       (150)  PlanCache::mu_ — cached-plan LRU map
//   kSessionStrand   (200)  QueryService::Session::mu_ — strand queue
//   kServiceDrain    (300)  QueryService::drain_mu_ — drain barrier
//   kSlowQueryLog    (350)  QueryService::slow_mu_ — slow-query ring
//   kInFlightTable   (375)  QueryService::inflight_mu_ — /statusz table
//   kPoolShard       (400)  ShardedBufferPool::Shard::mu — page frames
// (Pager and ServiceMetrics are lock-free — atomics only — and hold no
// rank; the worker ThreadPool's internal queue mutex is leaf-level and
// never held across user code.)
//
// Checking is compiled in when MCTDB_LOCK_ORDER_CHECKS is defined (the
// default build sets it; configure with -DMCTDB_LOCK_ORDER_CHECKS=OFF to
// strip the per-acquisition bookkeeping from release binaries). Without
// it, OrderedMutex is a plain std::mutex wrapper with zero overhead.
//
// OrderedMutex satisfies BasicLockable, so std::lock_guard /
// std::unique_lock / std::condition_variable_any work unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace mctdb {

enum class LockRank : uint32_t {
  kServiceRegistry = 100,
  kPlanCache = 150,
  kSessionStrand = 200,
  kServiceDrain = 300,
  kSlowQueryLog = 350,
  kInFlightTable = 375,
  kPoolShard = 400,
};

inline const char* ToString(LockRank r) {
  switch (r) {
    case LockRank::kServiceRegistry:
      return "ServiceRegistry";
    case LockRank::kPlanCache:
      return "PlanCache";
    case LockRank::kSessionStrand:
      return "SessionStrand";
    case LockRank::kServiceDrain:
      return "ServiceDrain";
    case LockRank::kSlowQueryLog:
      return "SlowQueryLog";
    case LockRank::kInFlightTable:
      return "InFlightTable";
    case LockRank::kPoolShard:
      return "PoolShard";
  }
  return "?";
}

/// Every rank, in table order; exposition code iterates this to emit one
/// mctsvc_lock_wait_seconds series per rank.
inline constexpr LockRank kAllLockRanks[] = {
    LockRank::kServiceRegistry, LockRank::kPlanCache,
    LockRank::kSessionStrand,   LockRank::kServiceDrain,
    LockRank::kSlowQueryLog,    LockRank::kInFlightTable,
    LockRank::kPoolShard,
};
inline constexpr size_t kNumLockRanks =
    sizeof(kAllLockRanks) / sizeof(kAllLockRanks[0]);

/// Process-wide contention counters, one set per rank. `contended` counts
/// acquisitions that failed the try_lock fast path; `wait_nanos` is the
/// total time those spent blocked. All relaxed: the numbers feed metrics,
/// not synchronization.
struct LockWaitCounters {
  std::atomic<uint64_t> acquisitions{0};
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> wait_nanos{0};
};

inline size_t RankIndex(LockRank r) {
  switch (r) {
    case LockRank::kServiceRegistry:
      return 0;
    case LockRank::kPlanCache:
      return 1;
    case LockRank::kSessionStrand:
      return 2;
    case LockRank::kServiceDrain:
      return 3;
    case LockRank::kSlowQueryLog:
      return 4;
    case LockRank::kInFlightTable:
      return 5;
    case LockRank::kPoolShard:
      return 6;
  }
  return 0;
}

namespace internal {
inline LockWaitCounters g_lock_wait[kNumLockRanks];

/// try_lock-first blocking acquire that bills contention to the rank's
/// counters. Shared by both OrderedMutex variants.
inline void TimedLock(std::mutex& mu, LockRank rank) {
  LockWaitCounters& c = g_lock_wait[RankIndex(rank)];
  c.acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (mu.try_lock()) return;
  const auto t0 = std::chrono::steady_clock::now();
  mu.lock();
  const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  c.contended.fetch_add(1, std::memory_order_relaxed);
  c.wait_nanos.fetch_add(static_cast<uint64_t>(waited),
                         std::memory_order_relaxed);
}
}  // namespace internal

/// Read-side accessor for the per-rank contention counters.
inline const LockWaitCounters& LockWaitFor(LockRank r) {
  return internal::g_lock_wait[RankIndex(r)];
}

#ifdef MCTDB_LOCK_ORDER_CHECKS

class OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
    CheckOrder();
    internal::TimedLock(mu_, rank_);
    Held().push_back(this);
  }

  bool try_lock() {
    // try_lock cannot deadlock, but a successful out-of-order try_lock
    // still poisons later blocking acquisitions, so it obeys the ranks
    // too.
    CheckOrder();
    if (!mu_.try_lock()) return false;
    Held().push_back(this);
    return true;
  }

  void unlock() {
    std::vector<const OrderedMutex*>& held = Held();
    for (size_t i = held.size(); i > 0; --i) {
      if (held[i - 1] == this) {
        held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
        mu_.unlock();
        return;
      }
    }
    std::fprintf(stderr,
                 "lock-order violation: unlock of %s (%u) not held by this "
                 "thread\n",
                 ToString(rank_), static_cast<unsigned>(rank_));
    std::abort();
  }

  LockRank rank() const { return rank_; }

 private:
  static std::vector<const OrderedMutex*>& Held() {
    thread_local std::vector<const OrderedMutex*> held;
    return held;
  }

  void CheckOrder() const {
    const std::vector<const OrderedMutex*>& held = Held();
    for (const OrderedMutex* m : held) {
      if (m->rank_ >= rank_) {
        std::fprintf(
            stderr,
            "lock-order violation: acquiring %s (%u) while holding %s "
            "(%u); acquisition chain:",
            ToString(rank_), static_cast<unsigned>(rank_),
            ToString(m->rank_), static_cast<unsigned>(m->rank_));
        for (const OrderedMutex* h : held) {
          std::fprintf(stderr, " %s(%u)", ToString(h->rank_),
                       static_cast<unsigned>(h->rank_));
        }
        std::fprintf(stderr, " -> %s(%u)\n", ToString(rank_),
                     static_cast<unsigned>(rank_));
        std::abort();
      }
    }
  }

  std::mutex mu_;
  const LockRank rank_;
};

#else  // !MCTDB_LOCK_ORDER_CHECKS

class OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() { internal::TimedLock(mu_, rank_); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

#endif  // MCTDB_LOCK_ORDER_CHECKS

}  // namespace mctdb
