// PlanCache: an LSN-aware LRU cache of compiled query plans.
//
// Planning a query — path recovery per schema, color selection, static
// analysis — is pure CPU repeated verbatim for every resubmission of the
// same query text. The cache keys on (store fingerprint, schema name,
// canonical query text) so a plan can never be replayed against a
// different store, schema, or query, and every entry pins the whole chain
// a QueryPlan points into (the query copy AND the plan) in one
// heap-allocated CachedPlan, shared_ptr-held by the cache and by every
// in-flight task using it — eviction can never dangle a running query.
//
// Staleness is LSN-strict by construction: an entry built at visible LSN
// L only hits while the store's visible LSN is still L and no checkpoint
// has bumped the cache generation. The moment an update commits (visible
// LSN advances) or a checkpoint relabels intervals (generation bump), the
// next lookup reports kInvalidated, drops the entry, and the caller
// re-plans against current state — a cached plan can never serve a result
// older than the session's own snapshot rules allow, so "stale empty"
// results are impossible rather than merely unlikely.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/lsn.h"
#include "common/ordered_mutex.h"
#include "query/plan.h"
#include "query/query_spec.h"

namespace mctsvc {

/// One cached compilation: the query copy, the plan compiled from it
/// (plan.query points at the `query` member, plan.statically_empty /
/// analysis_codes carry the admission-time QRY verdict), and the
/// visibility state it was built under.
struct CachedPlan {
  mctdb::query::AssociationQuery query;
  mctdb::query::QueryPlan plan;
  /// The store's visible LSN when the plan was admitted.
  mctdb::Lsn built_lsn = mctdb::kNoLsn;
  /// PlanCache generation at build time (bumped by checkpoints).
  uint64_t generation = 0;
};

enum class LookupOutcome {
  kHit,          ///< fresh entry returned
  kMiss,         ///< no entry under the key
  kInvalidated,  ///< entry existed but was stale (LSN or generation moved)
};

class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The composite cache key. The canonical text covers every query field
  /// (query/query_spec.h), the schema name separates designs of one
  /// diagram, and the store fingerprint separates stores sharing a schema.
  static std::string Key(uint64_t store_fingerprint,
                         const std::string& schema_name,
                         const std::string& canonical_query);

  /// Returns the entry under `key` iff it was built at exactly
  /// `visible_lsn` and the current generation; a stale entry is erased and
  /// reported as kInvalidated. The returned pointer (kHit only) stays
  /// valid for as long as the caller holds it, regardless of eviction.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           mctdb::Lsn visible_lsn,
                                           LookupOutcome* outcome);

  /// Installs (or replaces) the entry under `key`, evicting the least
  /// recently used entry past capacity. A capacity of 0 disables caching.
  void Insert(const std::string& key,
              std::shared_ptr<const CachedPlan> entry);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Invalidates every cached plan (lazily, at next lookup). Called when a
  /// checkpoint rewrites the base store — interval labels may have moved,
  /// so even the LSN check is not enough.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const CachedPlan> entry;
    std::list<std::string>::iterator lru_it;
  };

  const size_t capacity_;
  std::atomic<uint64_t> generation_{0};
  mutable mctdb::OrderedMutex mu_{mctdb::LockRank::kPlanCache};
  std::list<std::string> lru_;  ///< most recently used first
  std::unordered_map<std::string, Slot> map_;
};

}  // namespace mctsvc
