file(REMOVE_RECURSE
  "libmctdb_mct.a"
)
