// Logical ER instances — the ToXgene substitute (DESIGN.md §5).
//
// The paper's generator was "orchestrated to contain equivalent content to
// produce equivalent query results" across the seven schemas. We obtain the
// same guarantee structurally: ONE logical instance (entity instances +
// relationship instances honoring cardinalities and totality) is drawn
// first, and every schema materializes that same instance — so all schemas
// answer every query with the same logical result set, differing only in
// representation.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "er/er_graph.h"

namespace mctdb::instance {

struct GenOptions {
  /// Instance count for "source" entities; downstream entities scale by
  /// fanout along 1:N chains.
  size_t base_count = 40;
  /// Average number of many-side instances per one-side instance.
  double fanout = 3.0;
  /// Zipf skew for partner selection (0 = uniform).
  double zipf_theta = 0.3;
  /// Per-entity hard cap.
  size_t max_per_node = 500000;
  /// Probability that a partial-participation instance participates at all.
  double partial_participation = 0.7;
  uint64_t seed = 42;
  /// Per-entity-name count overrides (used by the TPC-W workload).
  std::map<std::string, size_t> explicit_counts;
};

/// One materialization-ready logical instance of an ER diagram.
class LogicalInstance {
 public:
  const er::ErDiagram& diagram() const { return *diagram_; }
  const er::ErGraph& graph() const { return *graph_; }

  /// Number of instances of an entity or relationship type.
  size_t count(er::NodeId node) const { return counts_[node]; }

  /// Relationship instance `rel_inst`'s endpoint instance on side
  /// `endpoint_index`.
  uint32_t EndpointOf(er::NodeId rel, int endpoint_index,
                      uint32_t rel_inst) const {
    return rel_pairs_[rel][rel_inst][endpoint_index];
  }

  /// Relationship instances (of edge.rel) in which instance `x_inst` of the
  /// edge's endpoint node participates.
  const std::vector<uint32_t>& RelsOf(er::EdgeId edge,
                                      uint32_t x_inst) const {
    return adjacency_[edge][x_inst];
  }

  /// Deterministic attribute value. Key attributes yield
  /// "<node>_<instance>"; string data attributes draw from a small
  /// vocabulary (so predicates are selective); ints are pseudo-random in
  /// [0, 1000).
  std::string AttrValue(er::NodeId node, uint32_t inst,
                        size_t attr_index) const;

  /// The key value of an instance (for idrefs and point predicates).
  std::string KeyValue(er::NodeId node, uint32_t inst) const;

  /// Sum of instance counts over all nodes.
  size_t TotalInstances() const;

 private:
  friend LogicalInstance GenerateInstance(const er::ErGraph&,
                                          const GenOptions&);
  const er::ErDiagram* diagram_ = nullptr;
  const er::ErGraph* graph_ = nullptr;
  std::vector<size_t> counts_;
  /// rel_pairs_[rel][inst] = {endpoint0 instance, endpoint1 instance};
  /// empty for entity nodes.
  std::vector<std::vector<std::array<uint32_t, 2>>> rel_pairs_;
  /// adjacency_[edge][x_inst] = rel instances containing x_inst.
  std::vector<std::vector<std::vector<uint32_t>>> adjacency_;
};

/// Draws a logical instance. `graph` must outlive the result.
LogicalInstance GenerateInstance(const er::ErGraph& graph,
                                 const GenOptions& options = {});

}  // namespace mctdb::instance
