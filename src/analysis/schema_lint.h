// Schema lint: offline static verification of an MctSchema (§2.2/§2.3
// well-formedness plus the §3 normal-form claims).
//
// Checks, each with a stable diagnostic code:
//   * SCH001 malformed color forest (parent/child/color bookkeeping broken)
//   * SCH002 cycle in an occurrence forest
//   * SCH003 dangling ER node/edge reference from an occurrence
//   * SCH004 orphan ER node type (no occurrence in any color)
//   * SCH005 dangling ref edge (bad occurrence, ER edge, or target)
//   * SCH010 ICIC references a nonexistent color
//   * SCH011 ICIC references a nonexistent occurrence/edge, or a
//            realization that does not realize the constrained edge
//   * SCH012 ICIC involves fewer than two distinct colors
//   * SCH013 cyclic ICIC dependency: orienting each constrained ER edge by
//            its realized parent->child direction (edges realized in both
//            directions impose no net orientation and are skipped) must
//            give an acyclic graph over node types — a cycle leaves no
//            topological order in which ICIC maintenance can repair an
//            update
//   * SCH020..SCH023 false normal-form claim: a schema advertising
//            NN/EN/AR/DR (what the designer algorithms emitted) that does
//            not actually hold the property when re-derived from the
//            association graph
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.h"
#include "mct/mct_schema.h"

namespace mctdb::analysis {

/// The §3 properties a schema claims to satisfy, as emitted by the
/// designer algorithms (MC/DUMC/MCMR/UNDR). Mirrors design::DesignReport's
/// boolean flags without depending on the design layer's report type.
struct NormalFormClaims {
  bool node_normal = false;                ///< NN (§3.2)
  bool edge_normal = false;                ///< EN (§3.2)
  bool association_recoverable = false;    ///< AR (§3.1)
  bool fully_direct_recoverable = false;   ///< DR (§3.1)
};

struct SchemaLintOptions {
  /// Claimed normal-form flags to cross-check against re-derived
  /// properties; null skips the claim checks.
  const NormalFormClaims* claims = nullptr;
  /// Explicit ICIC set to verify; null verifies schema.ComputeIcics().
  /// (The computed set is structurally consistent by construction, so the
  /// explicit form is how persisted or hand-assembled constraint sets get
  /// checked.)
  const std::vector<mct::Icic>* icics = nullptr;
  size_t max_diagnostics = 256;
};

/// Runs every schema-lint check; never aborts, reports all findings.
DiagnosticReport LintSchema(const mct::MctSchema& schema,
                            const SchemaLintOptions& options = {});

}  // namespace mctdb::analysis
