#include "wal/log_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "wal/log_reader.h"
#include "wal/wal_format.h"

namespace mctdb::wal {
namespace {

constexpr uint64_t kFp = 0xFEEDFACE12345678ull;

std::string TempPath(const char* name) {
  // Fresh file per run: LogWriter::Open appends to an existing log, so a
  // leftover from a previous test run would change record counts.
  std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

// ---------------------------------------------------------------- format

TEST(WalFormatTest, HeaderRoundTrip) {
  WalHeader h;
  h.fingerprint = kFp;
  h.checkpoint_lsn = 42;
  std::string bytes;
  EncodeWalHeader(h, &bytes);
  ASSERT_EQ(bytes.size(), kWalHeaderSize);
  auto decoded = DecodeWalHeader(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->fingerprint, kFp);
  EXPECT_EQ(decoded->checkpoint_lsn, 42u);
}

TEST(WalFormatTest, HeaderChecksumCatchesBitFlip) {
  WalHeader h;
  h.fingerprint = kFp;
  std::string bytes;
  EncodeWalHeader(h, &bytes);
  bytes[10] ^= 0x40;
  EXPECT_TRUE(DecodeWalHeader(bytes).status().IsDataLoss());
}

TEST(WalFormatTest, WrongMagicIsInvalidArgument) {
  std::string bytes(kWalHeaderSize, 'Z');
  EXPECT_TRUE(DecodeWalHeader(bytes).status().IsInvalidArgument());
}

TEST(WalFormatTest, RecordRoundTrip) {
  std::string bytes;
  EncodeWalRecord(7, RecordType::kUpdateOp, "payload bytes", &bytes);
  size_t consumed = 0;
  auto rec = DecodeWalRecord(bytes, &consumed);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(rec->lsn, 7u);
  EXPECT_EQ(rec->payload, "payload bytes");
}

TEST(WalFormatTest, TornRecordIsDataLoss) {
  std::string bytes;
  EncodeWalRecord(7, RecordType::kUpdateOp, "payload bytes", &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t consumed = 0;
    auto rec = DecodeWalRecord(std::string_view(bytes).substr(0, cut),
                               &consumed);
    EXPECT_TRUE(rec.status().IsDataLoss()) << "cut=" << cut;
  }
}

TEST(WalFormatTest, CorruptedPayloadIsDataLoss) {
  std::string bytes;
  EncodeWalRecord(7, RecordType::kUpdateOp, "payload bytes", &bytes);
  bytes[kRecordPrefixSize + 3] ^= 1;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeWalRecord(bytes, &consumed).status().IsDataLoss());
}

// ------------------------------------------------------------ log writer

TEST(LogWriterTest, InMemoryAppendCommitScan) {
  auto writer = LogWriter::Open("", kFp, kNoLsn, kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  EXPECT_TRUE(log.in_memory());
  for (int i = 0; i < 5; ++i) {
    auto lsn = log.Append(RecordType::kUpdateOp, "op" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, static_cast<Lsn>(i + 1));
  }
  EXPECT_EQ(log.durable_lsn(), kNoLsn);  // nothing committed yet
  ASSERT_TRUE(log.Commit(5).ok());
  EXPECT_EQ(log.durable_lsn(), 5u);

  LogScan scan = ScanLogBytes(log.memory_log());
  EXPECT_TRUE(scan.header_valid);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[4].payload, "op4");
  EXPECT_EQ(scan.last_lsn, 5u);
  EXPECT_FALSE(scan.torn());
}

TEST(LogWriterTest, GroupCommitOneSyncCoversTheBatch) {
  auto writer = LogWriter::Open(TempPath("group.wal"), kFp, kNoLsn, kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  const int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(log.Append(RecordType::kUpdateOp, "x").ok());
  }
  // One commit of the highest LSN syncs the whole buffered batch at once.
  ASSERT_TRUE(log.Commit(kOps).ok());
  EXPECT_EQ(log.appends(), static_cast<uint64_t>(kOps));
  EXPECT_EQ(log.fsyncs(), 1u);
  // Re-committing already-durable LSNs is free.
  ASSERT_TRUE(log.Commit(3).ok());
  EXPECT_EQ(log.fsyncs(), 1u);
}

TEST(LogWriterTest, ConcurrentCommittersShareFsyncs) {
  auto writer = LogWriter::Open(TempPath("group_mt.wal"), kFp, kNoLsn,
                                kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  constexpr int kWriters = 8;
  std::vector<Lsn> lsns(kWriters, kNoLsn);
  for (int i = 0; i < kWriters; ++i) {
    auto lsn = log.Append(RecordType::kUpdateOp, "w" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    lsns[i] = *lsn;
  }
  // All writers commit their own record concurrently: a leader emerges,
  // fsyncs once for everyone, and the rest find their LSN already durable.
  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&log, &lsns, i] {
      EXPECT_TRUE(log.Commit(lsns[i]).ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.durable_lsn(), static_cast<Lsn>(kWriters));
  // The group-commit win: strictly fewer syncs than writers.
  EXPECT_LT(log.fsyncs(), static_cast<uint64_t>(kWriters));
  EXPECT_GE(log.fsyncs(), 1u);
}

TEST(LogWriterTest, AppendErrorFaultIsCleanAndRecoverable) {
  auto writer = LogWriter::Open("", kFp, kNoLsn, kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  {
    failpoint::FailpointGuard guard("wal.append", "err");
    auto lsn = log.Append(RecordType::kUpdateOp, "doomed");
    EXPECT_TRUE(lsn.status().IsIoError());
  }
  EXPECT_FALSE(log.degraded());
  // The failed append buffered nothing: the next one takes LSN 1.
  auto lsn = log.Append(RecordType::kUpdateOp, "fine");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
  EXPECT_TRUE(log.Commit(*lsn).ok());
}

TEST(LogWriterTest, FsyncFaultDegradesTheWriter) {
  auto writer = LogWriter::Open(TempPath("degrade.wal"), kFp, kNoLsn,
                                kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  ASSERT_TRUE(log.Append(RecordType::kUpdateOp, "op").ok());
  {
    failpoint::FailpointGuard guard("wal.fsync", "err");
    EXPECT_FALSE(log.Commit(1).ok());
  }
  EXPECT_TRUE(log.degraded());
  EXPECT_EQ(log.durable_lsn(), kNoLsn);
  // Degraded is sticky: every later append/commit refuses.
  EXPECT_TRUE(log.Append(RecordType::kUpdateOp, "x").status().IsUnavailable());
  EXPECT_TRUE(log.Commit(1).IsUnavailable());
}

TEST(LogWriterTest, TornBatchLeavesRecoverablePrefixOnDisk) {
  std::string path = TempPath("torn.wal");
  auto writer = LogWriter::Open(path, kFp, kNoLsn, kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  // Unequal payloads, so "half the batch" can never land exactly on a
  // record boundary — the torn tail must cut through a record.
  for (size_t len : {5u, 100u, 7u, 9u}) {
    ASSERT_TRUE(log.Append(RecordType::kUpdateOp, std::string(len, 'r')).ok());
  }
  {
    failpoint::FailpointGuard guard("wal.fsync", "trunc");
    EXPECT_FALSE(log.Commit(4).ok());
  }
  EXPECT_TRUE(log.degraded());
  // Half the batch reached the OS: the scan must find a checksum-valid,
  // LSN-monotonic prefix and flag the rest as torn tail.
  auto scan = ScanLog(path, kFp);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_valid);
  EXPECT_TRUE(scan->torn());
  EXPECT_LT(scan->records.size(), 4u);
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, static_cast<Lsn>(i + 1));
  }
}

TEST(LogWriterTest, ResetTruncatesToFreshHeader) {
  std::string path = TempPath("reset.wal");
  auto writer = LogWriter::Open(path, kFp, kNoLsn, kNoLsn);
  ASSERT_TRUE(writer.ok());
  LogWriter& log = **writer;
  ASSERT_TRUE(log.Append(RecordType::kUpdateOp, "pre-checkpoint").ok());
  ASSERT_TRUE(log.Commit(1).ok());
  ASSERT_TRUE(log.Reset(1).ok());
  EXPECT_EQ(log.durable_bytes(), kWalHeaderSize);

  auto scan = ScanLog(path, kFp);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->header_valid);
  EXPECT_EQ(scan->header.checkpoint_lsn, 1u);
  EXPECT_TRUE(scan->records.empty());
  // LSNs continue after the checkpoint rather than restarting.
  auto lsn = log.Append(RecordType::kUpdateOp, "post-checkpoint");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST(LogWriterTest, ReopenAppendsAfterRecoveredTail) {
  std::string path = TempPath("reopen.wal");
  {
    auto writer = LogWriter::Open(path, kFp, kNoLsn, kNoLsn);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(RecordType::kUpdateOp, "one").ok());
    ASSERT_TRUE((*writer)->Commit(1).ok());
  }
  auto writer = LogWriter::Open(path, kFp, kNoLsn, /*durable_lsn=*/1);
  ASSERT_TRUE(writer.ok());
  auto lsn = (*writer)->Append(RecordType::kUpdateOp, "two");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  ASSERT_TRUE((*writer)->Commit(2).ok());

  auto scan = ScanLog(path, kFp);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[1].payload, "two");
}

}  // namespace
}  // namespace mctdb::wal
