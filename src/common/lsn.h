// Log sequence numbers, the global ordering of the write path (DESIGN.md
// §13): every WAL record carries one, every store-side delta is tagged with
// the LSN of the update that produced it, and every reader snapshots the
// store's visible LSN once at query start.
#pragma once

#include <cstdint>

namespace mctdb {

using Lsn = uint64_t;

/// "No update has happened": the LSN of a freshly materialized or freshly
/// checkpointed store. Real records start at kNoLsn + 1.
inline constexpr Lsn kNoLsn = 0;

/// "See everything": the default snapshot of unversioned readers. Any
/// delta's LSN compares <= kMaxLsn, so a reader at kMaxLsn observes the
/// latest applied state.
inline constexpr Lsn kMaxLsn = ~0ull;

}  // namespace mctdb
