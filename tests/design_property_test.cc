// Property sweeps over random ER graphs: the paper's theorems must hold on
// arbitrary simplified ER diagrams, not just the curated catalog.
#include <gtest/gtest.h>

#include "design/algorithm_dumc.h"
#include "design/algorithm_mc.h"
#include "design/algorithm_mcmr.h"
#include "design/algorithm_undr.h"
#include "design/feasibility.h"
#include "design/recoverability.h"
#include "design/xml_design.h"
#include "er/er_random.h"

namespace mctdb::design {
namespace {

struct SweepParam {
  uint64_t seed;
  size_t entities;
  size_t relationships;
  double p_many_many;
  double p_one_one;
  double p_higher_order;
};

std::string ParamName(const testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  return "seed" + std::to_string(p.seed) + "_e" + std::to_string(p.entities) +
         "_r" + std::to_string(p.relationships) + "_mm" +
         std::to_string(int(p.p_many_many * 100)) + "_oo" +
         std::to_string(int(p.p_one_one * 100)) + "_ho" +
         std::to_string(int(p.p_higher_order * 100));
}

class DesignPropertyTest : public testing::TestWithParam<SweepParam> {
 protected:
  er::ErDiagram MakeDiagram() const {
    const SweepParam& p = GetParam();
    Rng rng(p.seed);
    er::RandomErOptions opts;
    opts.num_entities = p.entities;
    opts.num_relationships = p.relationships;
    opts.p_many_many = p.p_many_many;
    opts.p_one_one = p.p_one_one;
    opts.p_higher_order = p.p_higher_order;
    return er::GenerateRandomEr(&rng, opts);
  }
};

TEST_P(DesignPropertyTest, Theorem51McIsNnEnAr) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  mct::MctSchema s = AlgorithmMc(g);
  std::string why;
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_TRUE(s.IsNodeNormal(&why)) << why;
  EXPECT_TRUE(s.IsEdgeNormal(&why)) << why;
  EXPECT_TRUE(IsAssociationRecoverable(s));
  EXPECT_TRUE(s.CoversAllNodes(&why)) << why;
}

TEST_P(DesignPropertyTest, Theorem52DumcIsNnArDr) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  std::string why;
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_TRUE(s.IsNodeNormal(&why)) << why;
  EXPECT_TRUE(IsAssociationRecoverable(s));
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct())
      << report.directly_recoverable << "/" << report.eligible_paths;
}

TEST_P(DesignPropertyTest, McmrSandwichedBetweenMcAndDumc) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  auto paths = EnumerateEligiblePaths(g);
  auto mc = AnalyzeRecoverability(AlgorithmMc(g), paths);
  mct::MctSchema mcmr_schema = AlgorithmMcmr(g);
  auto mcmr = AnalyzeRecoverability(mcmr_schema, paths);
  EXPECT_GE(mcmr.directly_recoverable, mc.directly_recoverable);
  EXPECT_TRUE(mcmr_schema.IsNodeNormal());
  EXPECT_TRUE(IsAssociationRecoverable(mcmr_schema));
}

TEST_P(DesignPropertyTest, ShallowAlwaysNodeNormalSingleColor) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  mct::MctSchema s = DesignShallow(g);
  EXPECT_EQ(s.num_colors(), 1u);
  EXPECT_TRUE(s.IsNodeNormal());
  EXPECT_TRUE(s.CoversAllNodes());
}

TEST_P(DesignPropertyTest, DeepAlwaysCompletesDr) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  mct::MctSchema s = DesignDeep(g);
  EXPECT_EQ(s.num_colors(), 1u);
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct());
}

TEST_P(DesignPropertyTest, UndrKeepsDrOfDumc) {
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  mct::MctSchema s = AlgorithmUndr(g);
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct());
  EXPECT_TRUE(IsAssociationRecoverable(s));
}

TEST_P(DesignPropertyTest, Theorem41ForwardDirection) {
  // When the feasibility conditions hold, AF (single color, NN) must in
  // fact achieve AR — the constructive half of Theorem 4.1.
  er::ErDiagram d = MakeDiagram();
  er::ErGraph g(d);
  auto feas = CheckSingleColorNnAr(g);
  mct::MctSchema af = DesignAf(g);
  EXPECT_TRUE(af.IsNodeNormal());
  if (feas.feasible) {
    EXPECT_TRUE(IsAssociationRecoverable(af))
        << "feasible graph but AF left refs: " << af.DebugString();
    EXPECT_EQ(af.ref_edges().size(), 0u);
  } else {
    // Converse: infeasible graphs must leave at least one value edge in any
    // single-color NN design our AF produces.
    EXPECT_FALSE(IsAssociationRecoverable(af));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignPropertyTest,
    testing::Values(
        // Small sparse graphs, pure 1:N.
        SweepParam{1, 4, 3, 0.0, 0.0, 0.0},
        SweepParam{2, 5, 4, 0.0, 0.0, 0.0},
        SweepParam{3, 6, 5, 0.0, 0.0, 0.0},
        // Forest-leaning shapes (exercise Theorem 4.1 feasible side).
        SweepParam{4, 7, 6, 0.0, 0.0, 0.0},
        SweepParam{5, 8, 7, 0.0, 0.0, 0.0},
        // 1:1-heavy (undirected SCCs, root merging).
        SweepParam{6, 6, 6, 0.0, 0.6, 0.0},
        SweepParam{7, 8, 8, 0.0, 0.8, 0.0},
        SweepParam{8, 5, 7, 0.0, 1.0, 0.0},
        // M:N-heavy (color pressure).
        SweepParam{9, 6, 6, 0.6, 0.0, 0.0},
        SweepParam{10, 8, 9, 0.8, 0.1, 0.0},
        // Mixed, denser.
        SweepParam{11, 8, 10, 0.3, 0.2, 0.0},
        SweepParam{12, 10, 12, 0.25, 0.25, 0.0},
        SweepParam{13, 12, 14, 0.2, 0.2, 0.0},
        // Higher-order relationships.
        SweepParam{14, 6, 8, 0.2, 0.2, 0.3},
        SweepParam{15, 8, 10, 0.1, 0.3, 0.4},
        SweepParam{16, 10, 12, 0.3, 0.1, 0.2},
        // Larger, paper-scale (10-30 nodes).
        SweepParam{17, 12, 16, 0.2, 0.2, 0.1},
        SweepParam{18, 14, 15, 0.15, 0.15, 0.1},
        SweepParam{19, 15, 14, 0.1, 0.4, 0.0},
        SweepParam{20, 13, 17, 0.35, 0.05, 0.15}),
    ParamName);

}  // namespace
}  // namespace mctdb::design
