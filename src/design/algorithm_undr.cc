#include "design/algorithm_undr.h"

#include <set>

#include "common/logging.h"
#include "design/algorithm_dumc.h"

namespace mctdb::design {

namespace {

/// Is traversing `e` out of `from` instance-functional (at most one child
/// instance per parent instance)? True for rel->endpoint (each relationship
/// instance has exactly one endpoint instance) and for entity->rel under
/// ONE participation.
bool IsFunctional(const er::ErEdge& e, er::NodeId from) {
  if (from == e.rel) return true;
  return e.participation == er::Participation::kOne;
}

/// ER nodes on the root path of `occ`, inclusive.
std::set<er::NodeId> RootPathNodes(const mct::MctSchema& schema,
                                   mct::OccId occ) {
  std::set<er::NodeId> out;
  for (mct::OccId cur = occ; cur != mct::kInvalidOcc;
       cur = schema.occ(cur).parent) {
    out.insert(schema.occ(cur).er_node);
  }
  return out;
}

void ExpandFunctionalContext(const er::ErGraph& graph, mct::MctSchema* schema,
                             mct::OccId occ, std::set<er::NodeId>* on_path,
                             size_t depth, const UndrOptions& options) {
  if (depth >= options.max_context_depth) return;
  if (schema->num_occurrences() >= options.max_occurrences) return;
  er::NodeId node = schema->occ(occ).er_node;
  for (er::EdgeId eid : graph.incident(node)) {
    const er::ErEdge& e = graph.edge(eid);
    er::NodeId other = e.other(node);
    if (on_path->count(other)) continue;
    if (!IsFunctional(e, node)) continue;
    if (schema->num_occurrences() >= options.max_occurrences) return;
    mct::OccId child = schema->AddChild(occ, other, eid);
    on_path->insert(other);
    ExpandFunctionalContext(graph, schema, child, on_path, depth + 1, options);
    on_path->erase(other);
  }
}

}  // namespace

mct::MctSchema AlgorithmUndr(const er::ErGraph& graph,
                             std::string schema_name,
                             const UndrOptions& options) {
  mct::MctSchema schema = AlgorithmDumc(graph, std::move(schema_name));

  // Snapshot: grafting appends occurrences, which must not themselves be
  // expanded again.
  const size_t base_occs = schema.num_occurrences();
  std::set<er::EdgeId> grafted_edges;
  for (mct::OccId id = 0; id < base_occs; ++id) {
    const mct::SchemaOcc snapshot = schema.occ(id);
    const er::ErNode& node = graph.diagram().node(snapshot.er_node);
    if (!node.is_relationship()) continue;
    for (er::EdgeId eid : graph.incident(snapshot.er_node)) {
      const er::ErEdge& e = graph.edge(eid);
      if (e.rel != snapshot.er_node) continue;  // endpoint edges only
      er::NodeId endpoint = e.node;
      // Skip endpoints already realized at this occurrence (as parent or as
      // a child via the same edge).
      if (!snapshot.is_root() && snapshot.via_edge == eid) continue;
      bool has_child = false;
      for (mct::OccId child : schema.occ(id).children) {
        if (schema.occ(child).via_edge == eid) {
          has_child = true;
          break;
        }
      }
      if (has_child) continue;
      std::set<er::NodeId> on_path = RootPathNodes(schema, id);
      if (on_path.count(endpoint)) continue;
      if (options.graft_once_per_edge && !grafted_edges.insert(eid).second) {
        continue;
      }
      if (schema.num_occurrences() >= options.max_occurrences) break;
      mct::OccId dup = schema.AddChild(id, endpoint, eid);
      on_path.insert(endpoint);
      ExpandFunctionalContext(graph, &schema, dup, &on_path, 1, options);
      if (schema.num_occurrences() >= options.max_occurrences) break;
    }
  }
  MCTDB_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace mctdb::design
