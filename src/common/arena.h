// Arena: block bump allocator for node storage.
//
// The storage layer allocates millions of small node records and string
// payloads per loaded database; an arena keeps them contiguous, cheap to
// allocate and freed all at once when the store is dropped (the same reason
// LevelDB/RocksDB memtables use one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace mctdb {

/// Bump allocator over geometrically growing blocks. Not thread-safe; each
/// store owns its own arena.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` with alignment suitable for any scalar type.
  char* Allocate(size_t bytes);

  /// Allocate with explicit alignment (power of two).
  char* AllocateAligned(size_t bytes, size_t alignment = alignof(max_align_t));

  /// Copy `s` into the arena; returned view lives as long as the arena.
  std::string_view CopyString(std::string_view s);

  /// Construct a T in arena memory. T must be trivially destructible (the
  /// arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible T");
    char* mem = AllocateAligned(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Total bytes handed out to callers.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system (>= bytes_allocated()).
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  char* AllocateNewBlock(size_t bytes);

  size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace mctdb
