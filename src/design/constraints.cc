#include "design/constraints.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "design/associations.h"

namespace mctdb::design {

bool ConstraintCovers(const ConstraintSet& constraints, er::NodeId shared,
                      const std::vector<er::EdgeId>& edges) {
  for (const DisjointParentsConstraint& c : constraints) {
    if (c.shared != shared) continue;
    bool all = true;
    for (er::EdgeId e : edges) {
      if (std::find(c.edges.begin(), c.edges.end(), e) == c.edges.end()) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool IsNodeNormalUnder(const mct::MctSchema& schema,
                       const ConstraintSet& constraints,
                       std::string* violation) {
  const er::ErGraph& graph = schema.graph();
  const er::ErDiagram& diagram = schema.diagram();

  // Group same-color occurrences per node.
  std::map<std::pair<mct::ColorId, er::NodeId>, std::vector<mct::OccId>>
      groups;
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    groups[{o.color, o.er_node}].push_back(o.id);
  }
  for (const auto& [key, occs] : groups) {
    if (occs.size() < 2) continue;
    // All parent edges of the duplicated node must sit under one
    // disjointness constraint; root occurrences (no parent edge) cannot be
    // excused — a root repeats every instance.
    std::vector<er::EdgeId> edges;
    bool has_root = false;
    for (mct::OccId id : occs) {
      const mct::SchemaOcc& o = schema.occ(id);
      if (o.is_root()) {
        has_root = true;
      } else {
        edges.push_back(o.via_edge);
      }
    }
    if (has_root || !ConstraintCovers(constraints, key.second, edges)) {
      if (violation != nullptr) {
        *violation = StringPrintf(
            "node '%s' occurs %zu times in color %s without a covering "
            "disjointness constraint",
            diagram.node(key.second).name.c_str(), occs.size(),
            schema.color_name(key.first).c_str());
      }
      return false;
    }
  }
  // Reverse-cardinality nesting duplicates instances regardless of
  // disjointness.
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    if (o.is_root()) continue;
    const er::ErEdge& e = graph.edge(o.via_edge);
    if (!graph.Traversable(e, schema.occ(o.parent).er_node)) {
      if (violation != nullptr) {
        *violation = StringPrintf(
            "'%s' nested against the cardinality under '%s'",
            diagram.node(o.er_node).name.c_str(),
            diagram.node(schema.occ(o.parent).er_node).name.c_str());
      }
      return false;
    }
  }
  return true;
}

std::vector<AssociationPath> FilterPathsUnder(
    const ConstraintSet& constraints, std::vector<AssociationPath> paths) {
  auto crosses_disjointly = [&](const AssociationPath& p) {
    // An interior node entered via edge i-1 and left via edge i.
    for (size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      for (const DisjointParentsConstraint& c : constraints) {
        if (c.shared != p.nodes[i]) continue;
        bool in_covered = std::find(c.edges.begin(), c.edges.end(),
                                    p.edges[i - 1]) != c.edges.end();
        bool out_covered = std::find(c.edges.begin(), c.edges.end(),
                                     p.edges[i]) != c.edges.end();
        if (in_covered && out_covered && p.edges[i - 1] != p.edges[i]) {
          return true;
        }
      }
    }
    return false;
  };
  std::erase_if(paths, crosses_disjointly);
  return paths;
}

}  // namespace mctdb::design
