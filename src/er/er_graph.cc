#include "er/er_graph.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::er {

ErGraph::ErGraph(const ErDiagram& diagram) : diagram_(&diagram) {
  incident_.resize(diagram.num_nodes());
  for (const ErNode& node : diagram.nodes()) {
    if (!node.is_relationship()) continue;
    for (int i = 0; i < 2; ++i) {
      const Endpoint& ep = node.endpoints[i];
      ErEdge e;
      e.id = static_cast<EdgeId>(edges_.size());
      e.rel = node.id;
      e.node = ep.target;
      e.endpoint_index = i;
      e.participation = ep.participation;
      e.totality = ep.totality;
      incident_[e.rel].push_back(e.id);
      incident_[e.node].push_back(e.id);
      edges_.push_back(e);
    }
  }
}

bool ErGraph::Traversable(const ErEdge& e, NodeId from) const {
  if (from == e.node) return true;  // endpoint -> rel: 1:1 or 1:N
  MCTDB_CHECK(from == e.rel);
  return e.participation == Participation::kOne;  // rel -> endpoint
}

std::vector<int> ErGraph::ComputeSccIds(int* num_sccs) const {
  // Iterative Tarjan over the mixed graph: directed edges go node->rel only;
  // undirected edges go both ways.
  const size_t n = num_nodes();
  std::vector<int> index(n, -1), lowlink(n, 0), scc(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0, next_scc = 0;

  // Successors of `u` in the mixed digraph.
  auto for_each_succ = [&](NodeId u, const std::function<void(NodeId)>& f) {
    for (EdgeId eid : incident_[u]) {
      const ErEdge& e = edges_[eid];
      NodeId v = e.other(u);
      if (e.directed()) {
        if (u == e.node) f(v);  // only node -> rel
      } else {
        f(v);
      }
    }
  };

  struct Frame {
    NodeId u;
    size_t child = 0;
    std::vector<NodeId> succs;
  };

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0, {}});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    for_each_succ(start, [&](NodeId v) { frames.back().succs.push_back(v); });

    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.child < fr.succs.size()) {
        NodeId v = fr.succs[fr.child++];
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0, {}});
          for_each_succ(v,
                        [&](NodeId w) { frames.back().succs.push_back(w); });
        } else if (on_stack[v]) {
          lowlink[fr.u] = std::min(lowlink[fr.u], index[v]);
        }
      } else {
        NodeId u = fr.u;
        if (lowlink[u] == index[u]) {
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = next_scc;
            if (w == u) break;
          }
          ++next_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          NodeId parent = frames.back().u;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  if (num_sccs) *num_sccs = next_scc;
  return scc;
}

std::vector<NodeId> ErGraph::SourceSccNodes() const {
  int num_sccs = 0;
  std::vector<int> scc = ComputeSccIds(&num_sccs);
  std::vector<bool> has_incoming(static_cast<size_t>(num_sccs), false);
  for (const ErEdge& e : edges_) {
    if (!e.directed()) continue;
    // directed node -> rel
    if (scc[e.node] != scc[e.rel]) has_incoming[scc[e.rel]] = true;
  }
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (!has_incoming[scc[v]]) out.push_back(v);
  }
  return out;
}

bool ErGraph::IsForest() const {
  // Union-find over undirected structure; any edge joining two already
  // connected nodes closes a cycle.
  std::vector<NodeId> parent(num_nodes());
  for (NodeId i = 0; i < num_nodes(); ++i) parent[i] = i;
  std::function<NodeId(NodeId)> find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const ErEdge& e : edges_) {
    NodeId a = find(e.rel), b = find(e.node);
    if (a == b) return false;
    parent[a] = b;
  }
  return true;
}

std::vector<std::vector<bool>> ErGraph::TraversableClosure() const {
  const size_t n = num_nodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  // BFS from each node along traversable directions. ER graphs are small
  // (tens of nodes); O(n * (n + m)) is fine.
  for (NodeId s = 0; s < n; ++s) {
    std::vector<NodeId> queue{s};
    reach[s][s] = true;
    while (!queue.empty()) {
      NodeId u = queue.back();
      queue.pop_back();
      for (EdgeId eid : incident_[u]) {
        const ErEdge& e = edges_[eid];
        if (!Traversable(e, u)) continue;
        NodeId v = e.other(u);
        if (!reach[s][v]) {
          reach[s][v] = true;
          queue.push_back(v);
        }
      }
    }
    reach[s][s] = false;  // self-association is not an association
  }
  return reach;
}

ErGraphStats ErGraph::Stats() const {
  ErGraphStats st;
  st.num_nodes = num_nodes();
  st.num_edges = num_edges();
  st.is_forest = IsForest();
  // Count per-relationship cardinality classes.
  std::vector<size_t> many_side_count(num_nodes(), 0);
  for (const ErNode& node : diagram_->nodes()) {
    if (!node.is_relationship()) continue;
    Participation p0 = node.endpoints[0].participation;
    Participation p1 = node.endpoints[1].participation;
    if (p0 == Participation::kMany && p1 == Participation::kMany) {
      ++st.num_many_many;
    } else if (p0 == Participation::kOne && p1 == Participation::kOne) {
      ++st.num_one_one;
    } else {
      ++st.num_one_many;
      // The "many side" of a 1:N relationship is the endpoint with ONE
      // participation (many of them per one instance of the other side).
      NodeId many_side = p0 == Participation::kOne ? node.endpoints[0].target
                                                   : node.endpoints[1].target;
      ++many_side_count[many_side];
    }
  }
  for (size_t c : many_side_count) {
    if (c > 1) ++st.num_multi_many_side_nodes;
  }
  return st;
}

std::string ErGraph::DebugString() const {
  std::string out = "ErGraph(" + diagram_->name() + ")\n";
  for (const ErEdge& e : edges_) {
    const std::string& rel = diagram_->node(e.rel).name;
    const std::string& node = diagram_->node(e.node).name;
    if (e.directed()) {
      out += StringPrintf("  %s -> %s (many participation)\n", node.c_str(),
                          rel.c_str());
    } else {
      out += StringPrintf("  %s -- %s (one participation)\n", node.c_str(),
                          rel.c_str());
    }
  }
  return out;
}

}  // namespace mctdb::er
