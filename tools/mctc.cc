// mctc — the mctdb command-line designer.
//
//   mctc validate <file.er>                   parse + Theorem 4.1 verdict
//   mctc report   <file.er>                   property matrix, 7 strategies
//   mctc design   <file.er> [-s STRATEGY] [--dtd|--dot|--tree]
//   mctc paths    <file.er> [--max N]         eligible associations
//   mctc mine     <file.xml> [--redesign]     ER from XML id/idrefs
//   mctc workload <file.er> [--threads N] [--base N] [--reps N] [--stages]
//                          [--update-fraction F]
//                                             run the emulated workload grid
//   mctc trace    <file.er> [--query NAME] [-s STRATEGY] [--json] [--base N]
//                 [--updates] [--id N] [--blackbox FILE]
//                                             execute the workload queries and
//                                             print each one's stage-span
//                                             trace (exact per-query I/O);
//                                             --id runs them through the query
//                                             service with the flight recorder
//                                             on and prints the end-to-end
//                                             timeline of one trace (0 = all);
//                                             --blackbox reads the events from
//                                             a recorder dump instead
//   mctc blackbox <dump> [--json] [--id N]    decode a flight-recorder dump
//   mctc lint     <file.er> [--json] [--schema-only] [--grid]
//                 [--query NAME|MCXPATH] [--store PATH]
//                                             static analysis: schema lint +
//                                             plan verification, 7 strategies;
//                                             --grid adds the full query-
//                                             analysis grid (QRY001-012, all
//                                             workload queries x all designer
//                                             schemas); --query analyzes one
//                                             workload query or an MC-XPath
//                                             expression across the schemas
//   mctc bench    [--scale S] [--reps N] [--bench NAME] [--json]
//                 [--out DIR] [--check] [--strict] [--tolerance T]
//                 [--min-abs S] [--baselines DIR] [--list]
//                                             run the registered benchmarks
//                                             in-process, write BENCH_*.json,
//                                             and gate against baselines
//   mctc serve    <file.er> [--port P] [--threads N] [--base N]
//                 [--passes N] [--linger S] [--updates] [--update-ops N]
//                 [--label-stride N]
//                                             run the workload through the
//                                             query service with the live
//                                             /metrics HTTP endpoint up;
//                                             --updates registers WAL-backed
//                                             stores with background
//                                             maintenance and mounts
//                                             POST /update?store=NAME&count=K
//                                             serving the deterministic U1-U3
//                                             stream through the admission
//                                             pipeline
//   mctc update   <file.er> --store PATH [-s STRATEGY] [--base N] [--ops N]
//                 [--take K] [--crash-after K] [--checkpoint] [--trace]
//                                             apply the deterministic U1-U3
//                                             stream through the WAL (creates
//                                             the store on first use)
//   mctc recover  <file.er> --store PATH [-s STRATEGY] [--base N]
//                 [--expect-store PATH2]
//                                             open with crash recovery, print
//                                             replay stats; --expect-store
//                                             checks query equivalence against
//                                             a reference store
//   mctc demo                                 built-in TPC-W walkthrough
//
// Files with the .er extension use the DSL of er/er_parser.h (see
// examples/designs/). Exit status: 0 ok, 1 usage, 2 input error (for bench
// with --check: 2 when the regression gate fails). `mctc lint` has its own
// contract: 0 = no error-severity findings (warnings/notes still print),
// 1 = error diagnostics found, 2 = internal/input error (unreadable file,
// bad syntax) — so scripts can tell "the input is bad" from "the lint
// found problems".
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include "analysis/plan_verify.h"
#include "analysis/query_analyze.h"
#include "analysis/schema_lint.h"
#include "bench/report.h"
#include "bench/suite.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/string_util.h"
#include "design/designer.h"
#include "design/feasibility.h"
#include "design/xml_mining.h"
#include "er/er_catalog.h"
#include "er/er_parser.h"
#include "instance/materialize.h"
#include "mct/schema_export.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "obs/trace_id.h"
#include "query/executor.h"
#include "query/mcxpath.h"
#include "query/planner.h"
#include "query/update_exec.h"
#include "service/query_service.h"
#include "wal/durable_store.h"
#include "wal/wal_lint.h"
#include "workload/runner.h"
#include "workload/update_gen.h"
#include "xml/xml_io.h"

using namespace mctdb;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mctc <command> [args]\n"
      "  validate <file.er>\n"
      "  report   <file.er>\n"
      "  design   <file.er> [-s SHALLOW|AF|DEEP|EN|MCMR|DR|UNDR]"
      " [--dtd|--dot|--tree]\n"
      "  paths    <file.er> [--max N]\n"
      "  mine     <file.xml> [--redesign]\n"
      "  workload <file.er> [--threads N] [--base N] [--reps N] [--stages]\n"
      "           [--update-fraction F]\n"
      "  trace    <file.er> [--query NAME] [-s STRATEGY] [--json]"
      " [--base N]\n"
      "           [--updates] [--id N] [--blackbox FILE]\n"
      "  blackbox <dump> [--json] [--id N]\n"
      "  lint     <file.er> [--json] [--schema-only] [--grid]"
      " [--query NAME|MCXPATH]\n"
      "           [--store PATH]\n"
      "  bench    [--scale S] [--reps N] [--bench NAME] [--json] [--out DIR]"
      " [--check]\n"
      "           [--strict] [--tolerance T] [--min-abs S] [--baselines DIR]"
      " [--list]\n"
      "  serve    <file.er> [--port P] [--threads N] [--base N] [--passes N]"
      " [--linger S]\n"
      "           [--updates] [--update-ops N] [--label-stride N]\n"
      "  update   <file.er> --store PATH [-s STRATEGY] [--base N] [--ops N]"
      " [--take K]\n"
      "           [--crash-after K] [--checkpoint] [--trace]\n"
      "  recover  <file.er> --store PATH [-s STRATEGY] [--base N]"
      " [--expect-store PATH2]\n"
      "  demo\n"
      "global flags:\n"
      "  --failpoints SPEC   arm fault injection points, e.g.\n"
      "                      'pager.read=err(0.005);persist.load=trunc'\n"
      "                      (also readable from $MCTDB_FAILPOINTS)\n"
      "  --flight-dump PATH  enable the flight recorder and dump the black\n"
      "                      box to PATH on fatal signals, on the first\n"
      "                      DataLoss/Unavailable escalation, and on the\n"
      "                      crash-injection exits of `mctc update`\n");
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<er::ErDiagram> LoadEr(const char* path) {
  MCTDB_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return er::ParseErDiagram(text);
}

int CmdValidate(const char* path) {
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  er::ErGraphStats stats = graph.Stats();
  std::printf("diagram '%s': %zu entities, %zu relationships "
              "(%zu 1:N, %zu M:N, %zu 1:1), forest=%s\n",
              diagram->name().c_str(), diagram->num_entities(),
              diagram->num_relationships(), stats.num_one_many,
              stats.num_many_many, stats.num_one_one,
              stats.is_forest ? "yes" : "no");
  auto feasibility = design::CheckSingleColorNnAr(graph);
  std::printf("single-color XML with NN+AR (Theorem 4.1): %s\n",
              feasibility.explanation.c_str());
  return 0;
}

int CmdReport(const char* path) {
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  std::printf("%-8s %s\n", "schema", "properties");
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    std::printf("%-8s %s\n", schema.name().c_str(),
                designer.Report(schema).ToString().c_str());
  }
  return 0;
}

int CmdDesign(int argc, char** argv) {
  const char* path = nullptr;
  const char* strategy_name = "MCMR";
  enum { kTree, kDtd, kDot } format = kTree;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--dtd")) {
      format = kDtd;
    } else if (!std::strcmp(argv[i], "--dot")) {
      format = kDot;
    } else if (!std::strcmp(argv[i], "--tree")) {
      format = kTree;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  auto strategy = design::ParseStrategy(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n", strategy.status().ToString().c_str());
    return 1;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  mct::MctSchema schema = designer.Design(*strategy);
  switch (format) {
    case kTree:
      std::printf("%s", schema.DebugString().c_str());
      std::printf("properties: %s\n",
                  designer.Report(schema).ToString().c_str());
      break;
    case kDtd:
      std::printf("%s", mct::ExportDtd(schema).c_str());
      break;
    case kDot:
      std::printf("%s", mct::ExportDot(schema).c_str());
      break;
  }
  return 0;
}

int CmdPaths(int argc, char** argv) {
  const char* path = nullptr;
  size_t max_shown = 50;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max") && i + 1 < argc) {
      max_shown = std::strtoul(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  auto paths = design::EnumerateEligiblePaths(graph);
  std::printf("%zu eligible associations\n", paths.size());
  for (size_t i = 0; i < paths.size() && i < max_shown; ++i) {
    const auto& p = paths[i];
    std::printf("  %s => %s  via %s\n",
                diagram->node(p.source).name.c_str(),
                diagram->node(p.target).name.c_str(),
                p.Label(*diagram).c_str());
  }
  if (paths.size() > max_shown) {
    std::printf("  ... (%zu more; --max to widen)\n",
                paths.size() - max_shown);
  }
  return 0;
}

int CmdMine(int argc, char** argv) {
  const char* path = nullptr;
  bool redesign = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--redesign")) {
      redesign = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 2;
  }
  auto doc = xml::ParseXml(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "xml error: %s\n", doc.status().ToString().c_str());
    return 2;
  }
  design::MiningReport report;
  auto mined = design::MineErDiagram(**doc, {}, &report);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining error: %s\n",
                 mined.status().ToString().c_str());
    return 2;
  }
  std::printf("# mined from %s: %zu entity tags, %zu relationship tags "
              "(%zu structural, %zu idref edges)\n",
              path, report.entity_tags, report.relationship_tags,
              report.structural_edges, report.idref_edges);
  std::printf("%s", er::FormatErDiagram(*mined).c_str());
  if (redesign) {
    er::ErGraph graph(*mined);
    design::Designer designer(graph);
    mct::MctSchema dr = designer.Design(design::Strategy::kDr);
    std::printf("\n# redesigned (DUMC):\n%s", dr.DebugString().c_str());
  }
  return 0;
}

int CmdWorkload(int argc, char** argv) {
  const char* path = nullptr;
  size_t threads = 1;
  size_t base_count = 0;
  size_t reps = 1;
  bool stages = false;
  double update_fraction = 0.0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stages")) {
      stages = true;
    } else if (!std::strcmp(argv[i], "--update-fraction") && i + 1 < argc) {
      update_fraction = std::strtod(argv[++i], nullptr);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || threads == 0 || reps == 0) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);
  if (base_count > 0) w.gen.base_count = base_count;
  workload::RunnerOptions options;
  options.num_threads = threads;
  options.repetitions = reps;
  options.update_fraction = update_fraction;
  auto summary = workload::RunWorkload(w, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "error: %s\n", summary.status().ToString().c_str());
    return 2;
  }
  std::printf("# %s: %zu queries, %zu threads, %zu reps "
              "(setup %.3fs, grid %.3fs)\n",
              diagram->name().c_str(), w.figure_queries.size(), threads,
              reps, summary->setup_seconds, summary->grid_seconds);
  std::printf("%-8s %-6s %10s %10s %10s %12s %10s %10s\n", "schema",
              "query", "seconds", "unique", "raw", "page_misses",
              "page_hits", "pairs");
  for (const workload::Measurement& m : summary->measurements) {
    std::printf("%-8s %-6s %10.6f %10zu %10zu %12llu %10llu %10llu",
                m.schema.c_str(), m.query.c_str(), m.seconds,
                m.unique_results, m.raw_results,
                static_cast<unsigned long long>(m.page_misses),
                static_cast<unsigned long long>(m.page_hits),
                static_cast<unsigned long long>(m.join_pairs));
    if (m.wal_appends > 0) {
      std::printf("  wal=%llu/%llu",
                  static_cast<unsigned long long>(m.wal_appends),
                  static_cast<unsigned long long>(m.wal_fsyncs));
    }
    std::printf("\n");
    if (!stages) continue;
    // Per-stage breakdown of the last repetition: self time per stage
    // kind (rows sum to the query's elapsed time), plus the stage's own
    // output cardinality, join pairs, and attributed page I/O.
    for (size_t k = 0; k < obs::kNumStageKinds; ++k) {
      const obs::StageAgg& row = m.stages[k];
      if (row.calls == 0) continue;
      std::printf("    %-18s %9.3fms calls=%llu out=%llu pairs=%llu "
                  "pages %lluh/%llum\n",
                  obs::ToString(static_cast<obs::StageKind>(k)),
                  row.seconds * 1e3,
                  static_cast<unsigned long long>(row.calls),
                  static_cast<unsigned long long>(row.cardinality_out),
                  static_cast<unsigned long long>(row.join_pairs),
                  static_cast<unsigned long long>(row.page_hits),
                  static_cast<unsigned long long>(row.page_misses));
    }
  }
  for (const std::string& p : summary->problems) {
    std::fprintf(stderr, "problem: %s\n", p.c_str());
  }
  return summary->problems.empty() ? 0 : 2;
}

int CmdTrace(int argc, char** argv) {
  const char* path = nullptr;
  const char* strategy_name = "MCMR";
  const char* query_name = nullptr;
  const char* blackbox_path = nullptr;
  bool json = false;
  bool updates = false;
  bool has_id = false;
  uint64_t trace_filter = 0;
  size_t base_count = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--query") && i + 1 < argc) {
      query_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--updates")) {
      updates = true;
    } else if (!std::strcmp(argv[i], "--id") && i + 1 < argc) {
      has_id = true;
      trace_filter = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--blackbox") && i + 1 < argc) {
      blackbox_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  // --blackbox: the events come from a recorder dump, no workload run (and
  // no .er file) needed — render the chosen trace's timeline and exit.
  if (blackbox_path != nullptr) {
    auto events = obs::flight::DecodeFile(blackbox_path);
    if (!events.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   events.status().ToString().c_str());
      return 2;
    }
    if (json) {
      std::printf("%s\n",
                  obs::flight::RenderJson(*events, trace_filter).c_str());
    } else {
      std::printf("%s",
                  obs::flight::RenderText(*events, trace_filter).c_str());
    }
    return 0;
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  auto strategy = design::ParseStrategy(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n", strategy.status().ToString().c_str());
    return 1;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);
  if (base_count > 0) w.gen.base_count = base_count;

  std::vector<std::string> names;
  for (const std::string& name : w.figure_queries) {
    if (query_name == nullptr || name == query_name) names.push_back(name);
  }
  if (names.empty()) {
    std::fprintf(stderr, "error: no workload query named '%s'\n",
                 query_name == nullptr ? "" : query_name);
    return 2;
  }

  mct::MctSchema schema = designer.Design(*strategy);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  std::unique_ptr<storage::MctStore> store =
      instance::Materialize(logical, schema, {});

  // --id: run the workload THROUGH the query service with the flight
  // recorder on, so the printed timeline is the full request lifecycle —
  // admission, plan-cache outcome, executor stage spans, and (with
  // --updates) WAL append/group-commit — not just the executor's spans.
  // Each request's minted trace id is announced on stderr; --id 0 keeps
  // every trace.
  if (has_id) {
    obs::flight::Enable();
    auto durable = wal::DurableStore::Ephemeral(std::move(store));
    if (!durable.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   durable.status().ToString().c_str());
      return 2;
    }
    {
      mctsvc::ServiceOptions sopts;
      sopts.num_threads = 1;
      mctsvc::QueryService service(sopts);
      Status added =
          service.AddDurableStore(schema.name(), durable->get());
      if (!added.ok()) {
        std::fprintf(stderr, "error: %s\n", added.ToString().c_str());
        return 2;
      }
      auto session = service.OpenSession(schema.name());
      if (!session.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     session.status().ToString().c_str());
        return 2;
      }
      for (const std::string& name : names) {
        const query::AssociationQuery* q = w.Find(name);
        auto future = (*session)->SubmitQuery(*q);
        if (!future.ok()) {
          std::fprintf(stderr, "error: %s: %s\n", name.c_str(),
                       future.status().ToString().c_str());
          return 2;
        }
        auto result = future->get();
        if (!result.ok()) {
          std::fprintf(stderr, "error: %s: %s\n", name.c_str(),
                       result.status().ToString().c_str());
          return 2;
        }
        std::fprintf(stderr, "%s trace_id=%llu\n", name.c_str(),
                     static_cast<unsigned long long>(
                         result->trace.trace_id));
      }
      if (updates) {
        std::vector<mct::MctSchema> schemas_vec;
        schemas_vec.push_back(schema);
        std::vector<storage::UpdateOp> ops =
            workload::GenerateUpdateOps(schemas_vec, logical, {});
        for (const storage::UpdateOp& op : ops) {
          auto future = (*session)->SubmitUpdate(op);
          if (!future.ok()) continue;
          auto result = future->get();
          if (result.ok()) {
            std::fprintf(stderr, "%s trace_id=%llu lsn=%llu\n",
                         storage::UpdateKindName(op.kind),
                         static_cast<unsigned long long>(
                             result->trace.trace_id),
                         static_cast<unsigned long long>(result->lsn));
          }
        }
      }
      service.Drain();
    }
    std::vector<obs::flight::Event> events = obs::flight::Snapshot();
    if (json) {
      std::printf("%s\n",
                  obs::flight::RenderJson(events, trace_filter).c_str());
    } else {
      std::printf("%s",
                  obs::flight::RenderText(events, trace_filter).c_str());
    }
    return 0;
  }

  if (json) std::printf("{\"schema\":\"%s\",\"queries\":[", schema.name().c_str());
  bool first = true;
  for (const std::string& name : names) {
    const query::AssociationQuery* q = w.Find(name);
    if (q == nullptr) {
      std::fprintf(stderr, "error: unknown figure query %s\n", name.c_str());
      return 2;
    }
    auto plan = query::PlanQuery(*q, schema);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s on %s: %s\n", name.c_str(),
                   schema.name().c_str(), plan.status().ToString().c_str());
      return 2;
    }
    query::Executor exec(store.get());
    auto result = exec.Execute(*plan);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s on %s: %s\n", name.c_str(),
                   schema.name().c_str(),
                   result.status().ToString().c_str());
      return 2;
    }
    if (json) {
      if (!first) std::printf(",");
      std::printf("%s", obs::SpanToJson(result->trace).c_str());
    } else {
      std::printf("%s", obs::SpanTreeToText(result->trace).c_str());
    }
    first = false;
  }
  if (json) std::printf("]}\n");

  // --updates: run the deterministic U1-U3 stream through an ephemeral
  // WAL-backed store and print each op's span tree — the kWal stages
  // (append, group_commit) show where the write path's time goes.
  if (updates) {
    std::vector<mct::MctSchema> schemas_vec;
    schemas_vec.push_back(schema);
    std::vector<storage::UpdateOp> ops =
        workload::GenerateUpdateOps(schemas_vec, logical, {});
    auto durable = wal::DurableStore::Ephemeral(std::move(store));
    if (!durable.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   durable.status().ToString().c_str());
      return 2;
    }
    query::UpdateExecutor uexec(durable->get());
    // Print in (lsn, start time) order, NOT completion order: group commit
    // lets an op whose fsync a later leader covered return after ops with
    // higher LSNs, and a trace listing that jumps around the LSN axis
    // misreads as reordered writes.
    struct UpdateTraceRow {
      Lsn lsn;
      uint64_t start_nanos;
      std::string rendered;
    };
    std::vector<UpdateTraceRow> rows;
    for (const storage::UpdateOp& op : ops) {
      auto result = uexec.Execute(op);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s: %s\n",
                     storage::DebugString(op).c_str(),
                     result.status().ToString().c_str());
        return 2;
      }
      rows.push_back({result->lsn, result->trace.start_nanos,
                      json ? obs::SpanToJson(result->trace) + "\n"
                           : obs::SpanTreeToText(result->trace)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const UpdateTraceRow& a, const UpdateTraceRow& b) {
                return std::tie(a.lsn, a.start_nanos) <
                       std::tie(b.lsn, b.start_nanos);
              });
    for (const UpdateTraceRow& row : rows) {
      std::printf("%s", row.rendered.c_str());
    }
  }
  return 0;
}

// `mctc blackbox <dump> [--json] [--id N]`: decodes a flight-recorder dump
// (written by the crash handler, the escalation one-shot, or an explicit
// DumpToFile) into a per-event timeline, optionally filtered to one trace.
int CmdBlackbox(int argc, char** argv) {
  const char* path = nullptr;
  bool json = false;
  uint64_t trace_filter = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--id") && i + 1 < argc) {
      trace_filter = std::strtoull(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto events = obs::flight::DecodeFile(path);
  if (!events.ok()) {
    std::fprintf(stderr, "error: %s\n", events.status().ToString().c_str());
    return 2;
  }
  if (json) {
    std::printf("%s\n",
                obs::flight::RenderJson(*events, trace_filter).c_str());
  } else {
    std::printf("# %zu events\n%s", events->size(),
                obs::flight::RenderText(*events, trace_filter).c_str());
  }
  return 0;
}

int CmdLint(int argc, char** argv) {
  const char* path = nullptr;
  const char* store_path = nullptr;
  const char* query_arg = nullptr;
  bool json = false;
  bool schema_only = false;
  bool grid = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--schema-only")) {
      schema_only = true;
    } else if (!std::strcmp(argv[i], "--grid")) {
      grid = true;
    } else if (!std::strcmp(argv[i], "--query") && i + 1 < argc) {
      query_arg = argv[++i];
    } else if (!std::strcmp(argv[i], "--store") && i + 1 < argc) {
      store_path = argv[++i];
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);

  std::vector<mct::MctSchema> schemas;
  schemas.reserve(design::AllStrategies().size());
  for (design::Strategy s : design::AllStrategies()) {
    schemas.push_back(designer.Design(s));
  }
  std::vector<const mct::MctSchema*> schema_ptrs;
  schema_ptrs.reserve(schemas.size());
  for (const mct::MctSchema& s : schemas) schema_ptrs.push_back(&s);

  analysis::DiagnosticReport combined;

  auto emit = [&]() {
    if (json) {
      std::printf("%s\n", combined.ToJson().c_str());
    } else {
      std::printf("%s", combined.ToText().c_str());
    }
    // Exit contract (README): 0 = no error-severity findings (warnings
    // and notes still print), 1 = error diagnostics found, 2 = internal
    // or input error (unreadable file, bad syntax).
    return combined.has_errors() ? 1 : 0;
  };

  // --query: analyze ONE query (a workload query by name, or an MC-XPath
  // expression starting with '/') against every designer schema, with
  // cross-schema divergence (QRY011).
  if (query_arg != nullptr) {
    if (query_arg[0] == '/') {
      auto parsed = query::ParseMcXPath(query_arg);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      combined.MergeFrom(
          analysis::AnalyzeMcXPathAcrossSchemas(*parsed, schema_ptrs));
    } else {
      const query::AssociationQuery* found = nullptr;
      for (const query::AssociationQuery& q : w.queries) {
        if (q.name == query_arg) found = &q;
      }
      if (found == nullptr) {
        std::fprintf(stderr,
                     "error: no workload query named '%s' (try Q1..Q%zu, "
                     "or pass an MC-XPath starting with '/')\n",
                     query_arg, w.queries.size());
        return 2;
      }
      combined.MergeFrom(
          analysis::AnalyzeQueryAcrossSchemas(*found, schema_ptrs));
    }
    return emit();
  }

  for (const mct::MctSchema& schema : schemas) {
    // Schema lint, cross-checking the normal-form flags the designer
    // claims for this strategy against re-derived ones.
    design::DesignReport dr = designer.Report(schema);
    analysis::NormalFormClaims claims;
    claims.node_normal = dr.node_normal;
    claims.edge_normal = dr.edge_normal;
    claims.association_recoverable = dr.association_recoverable;
    claims.fully_direct_recoverable = dr.fully_direct_recoverable;
    analysis::SchemaLintOptions lint_options;
    lint_options.claims = &claims;
    combined.MergeFrom(analysis::LintSchema(schema, lint_options),
                       schema.name());

    // Plan verification over the emulated workload.
    if (schema_only) continue;
    for (const query::AssociationQuery& q : w.queries) {
      std::string loc = schema.name() + "/" + q.name;
      auto plan = query::PlanQuery(q, schema);
      if (!plan.ok()) {
        combined.Error("PLN000", loc,
                       "planner rejected query: " +
                           plan.status().ToString());
        continue;
      }
      combined.MergeFrom(analysis::VerifyPlan(*plan), loc);
    }
  }

  // --grid: the full static-analysis grid — every workload query analyzed
  // against every designer schema, including cross-schema divergence.
  if (grid && !schema_only) {
    for (const query::AssociationQuery& q : w.queries) {
      combined.MergeFrom(
          analysis::AnalyzeQueryAcrossSchemas(q, schema_ptrs));
    }
  }

  // WAL-state diagnostics for an on-disk store: tail newer than the
  // checkpoint (will recover on open), torn tail, oversized
  // checkpoint-less log.
  if (store_path != nullptr) {
    wal::LintWal(store_path, {}, &combined);
  }

  return emit();
}

Status WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

// Runs the registered in-process benchmarks (bench/suite.h; the same
// measurement code the standalone bench binaries use), writes one
// BENCH_<name>.json per benchmark plus a combined document, and with
// --check gates each report against the committed baselines.
int CmdBench(int argc, char** argv) {
  double scale = 1.0;
  size_t reps = 3;
  const char* only = nullptr;
  bool combined_to_stdout = false;
  std::string out_dir = ".";
  bool check = false;
  bench::CheckOptions check_options;
  std::string baselines_dir = "bench/baselines";

  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--list")) {
      for (const bench::BenchmarkDef& def : bench::RegisteredBenchmarks()) {
        std::printf("%-10s %s\n", def.name, def.description);
      }
      return 0;
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      if (!bench::ParseScale(argv[++i], &scale)) {
        std::fprintf(stderr, "error: bad --scale '%s'\n", argv[i]);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      char* end = nullptr;
      unsigned long n = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n == 0 || n > 1000) {
        std::fprintf(stderr, "error: bad --reps '%s'\n", argv[i]);
        return 1;
      }
      reps = n;
    } else if (!std::strcmp(argv[i], "--bench") && i + 1 < argc) {
      only = argv[++i];
    } else if (!std::strcmp(argv[i], "--json")) {
      combined_to_stdout = true;
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else if (!std::strcmp(argv[i], "--strict")) {
      check_options.strict_new_records = true;
    } else if (!std::strcmp(argv[i], "--tolerance") && i + 1 < argc) {
      char* end = nullptr;
      double t = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(t >= 0.0)) {
        std::fprintf(stderr, "error: bad --tolerance '%s'\n", argv[i]);
        return 1;
      }
      check_options.tolerance = t;
    } else if (!std::strcmp(argv[i], "--min-abs") && i + 1 < argc) {
      char* end = nullptr;
      double t = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(t >= 0.0)) {
        std::fprintf(stderr, "error: bad --min-abs '%s'\n", argv[i]);
        return 1;
      }
      check_options.min_abs_seconds = t;
    } else if (!std::strcmp(argv[i], "--baselines") && i + 1 < argc) {
      baselines_dir = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown bench argument '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (only != nullptr && bench::FindBenchmark(only) == nullptr) {
    std::fprintf(stderr, "error: no registered benchmark named '%s' "
                         "(try --list)\n", only);
    return 1;
  }

  bench::SuiteOptions suite_options;
  suite_options.scale = scale;
  suite_options.repetitions = reps;

  std::vector<bench::BenchReport> reports;
  size_t regressions = 0;
  for (const bench::BenchmarkDef& def : bench::RegisteredBenchmarks()) {
    if (only != nullptr && std::strcmp(def.name, only) != 0) continue;
    bench::BenchReport report = def.fn(suite_options);
    std::string path = out_dir + "/BENCH_" + def.name + ".json";
    Status written = WriteText(path, report.ToJson() + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s (%zu records)\n", path.c_str(),
                 report.records.size());
    if (check) {
      std::string baseline_path =
          baselines_dir + "/BENCH_" + std::string(def.name) + ".json";
      auto baseline = bench::LoadBenchReport(baseline_path);
      if (!baseline.ok()) {
        // A benchmark without a loadable baseline cannot be gated — that
        // is itself a gate failure, never a silent pass.
        std::fprintf(stderr, "REGRESSION %s: baseline %s: %s\n", def.name,
                     baseline_path.c_str(),
                     baseline.status().ToString().c_str());
        ++regressions;
      } else {
        bench::CheckResult verdict =
            bench::CheckAgainstBaseline(report, *baseline, check_options);
        for (const std::string& line : verdict.notes) {
          std::fprintf(stderr, "note %s: %s\n", def.name, line.c_str());
        }
        for (const std::string& line : verdict.regressions) {
          std::fprintf(stderr, "REGRESSION %s: %s\n", def.name,
                       line.c_str());
        }
        regressions += verdict.regressions.size();
      }
    }
    reports.push_back(std::move(report));
  }

  std::string combined = bench::CombineReports(reports);
  Status written = WriteText(out_dir + "/BENCH_combined.json", combined + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 2;
  }
  if (combined_to_stdout) std::printf("%s\n", combined.c_str());
  if (check) {
    std::fprintf(stderr, "gate: %zu regression(s) at tolerance %.2f "
                         "(min abs %.3fs)\n",
                 regressions, check_options.tolerance,
                 check_options.min_abs_seconds);
    if (regressions > 0) return 2;
  }
  return 0;
}

// Drives the emulated workload of an ER design through the query service
// with the HTTP observability endpoint live, so /metrics, /healthz,
// /slowlog and /tracez can be scraped while real queries execute.
/// Pulls `key=value` out of an HTTP query string ("store=X&count=2").
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return std::string();
}

int CmdServe(int argc, char** argv) {
  const char* path = nullptr;
  int port = 8080;
  size_t threads = 2;
  size_t base_count = 0;
  size_t passes = 2;
  double linger_seconds = 0.0;
  bool updates = false;
  size_t update_ops = 512;
  uint32_t label_stride = 0;  // 0 = store default
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      char* end = nullptr;
      long p = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || p < 0 || p > 65535) {
        std::fprintf(stderr, "error: bad --port '%s'\n", argv[i]);
        return 1;
      }
      port = static_cast<int>(p);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--passes") && i + 1 < argc) {
      passes = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--linger") && i + 1 < argc) {
      char* end = nullptr;
      linger_seconds = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || linger_seconds < 0) {
        std::fprintf(stderr, "error: bad --linger '%s'\n", argv[i]);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--updates")) {
      updates = true;
    } else if (!std::strcmp(argv[i], "--update-ops") && i + 1 < argc) {
      update_ops = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--label-stride") && i + 1 < argc) {
      label_stride =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || threads == 0 || passes == 0) return Usage();
  // /flightz is a live recorder snapshot, so serve always records;
  // --flight-dump additionally arms the crash/escalation dump triggers.
  obs::flight::Enable();
  // Lifecycle events (store registration, endpoint URL, slow queries) go
  // to stderr as JSONL; an explicit MCTDB_LOG_LEVEL still wins.
  if (std::getenv("MCTDB_LOG_LEVEL") == nullptr) {
    mctdb::logging::SetMinLevel(mctdb::logging::Level::kInfo);
  }
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);
  if (base_count > 0) w.gen.base_count = base_count;
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);

  // The stores keep pointers into `schemas`; finish growing the vector
  // before materializing against its elements.
  std::vector<mct::MctSchema> schemas;
  for (design::Strategy s : design::AllStrategies()) {
    schemas.push_back(designer.Design(s));
  }
  instance::MaterializeOptions mopts;
  if (label_stride > 0) mopts.store.label_stride = label_stride;
  std::vector<std::unique_ptr<storage::MctStore>> stores;
  std::vector<std::unique_ptr<wal::DurableStore>> durables;
  if (updates) {
    // WAL-backed ephemeral stores: the full write path (group commit,
    // snapshots, maintenance) without touching the filesystem.
    for (const mct::MctSchema& schema : schemas) {
      auto d = wal::DurableStore::Ephemeral(
          instance::Materialize(logical, schema, mopts));
      if (!d.ok()) {
        std::fprintf(stderr, "error: %s\n", d.status().ToString().c_str());
        return 2;
      }
      durables.push_back(std::move(*d));
    }
  } else {
    for (const mct::MctSchema& schema : schemas) {
      stores.push_back(instance::Materialize(logical, schema, mopts));
    }
  }
  // POST /update state. Each store gets its own deterministic stream:
  // the cross-schema eligibility filter keeps only ops EVERY schema can
  // place, and for realistic diagrams that intersection contains no
  // inserts at all (each schema nests a relationship differently), so a
  // shared stream could never build interval-label gap pressure. When a
  // store drains its stream the cursor wraps: the stream is regenerated
  // with a fresh logical-id base but the same deterministic parent
  // targets, so successive wraps stack children under the same parents
  // until the gap-pressure maintenance trigger (or the saturation stall
  // path) fires. The listener thread serves connections serially, so the
  // cursors need no lock. Declared before `service` so the route
  // handler's captures outlive the endpoint.
  struct UpdateStream {
    size_t schema_index = 0;
    std::vector<storage::UpdateOp> ops;
    size_t next = 0;
    uint32_t wrap = 0;
    std::shared_ptr<mctsvc::QueryService::Session> session;
  };
  std::map<std::string, UpdateStream> cursors;

  mctsvc::ServiceOptions options;
  options.num_threads = threads;
  options.http_port = port;
  options.trace_log_capacity = 16;
  options.slow_query_seconds = 1e-4;  // populate /slowlog under toy loads
  if (updates) {
    // Self-maintenance with toy-sized thresholds so the smoke workload
    // crosses them in seconds, not gigabytes.
    options.maintenance_enabled = true;
    options.maintenance.wal_bytes_threshold = 256 << 10;
    options.maintenance.gap_pressure_min_free = 2;
    options.maintenance.poll_seconds = 0.02;
  }
  mctsvc::QueryService service(options);
  for (size_t i = 0; i < schemas.size(); ++i) {
    Status added =
        updates
            ? service.AddDurableStore(schemas[i].name(), durables[i].get())
            : service.AddStore(schemas[i].name(), stores[i].get());
    if (!added.ok()) {
      std::fprintf(stderr, "error: %s\n", added.ToString().c_str());
      return 2;
    }
  }
  if (service.HttpPort() == 0) {
    std::fprintf(stderr, "error: HTTP endpoint failed to bind port %d\n",
                 port);
    return 2;
  }
  if (updates) {
    for (size_t i = 0; i < schemas.size(); ++i) {
      auto session = service.OpenSession(schemas[i].name());
      if (!session.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     session.status().ToString().c_str());
        return 2;
      }
      UpdateStream& cursor = cursors[schemas[i].name()];
      cursor.schema_index = i;
      cursor.session = *session;
      workload::UpdateGenOptions gen;
      gen.num_ops = update_ops;
      cursor.ops = workload::GenerateUpdateOps({schemas[i]}, logical, gen);
    }
    const std::string default_store = schemas.front().name();
    service.AddHttpRoute(
        "/update",
        [&schemas, &logical, &cursors, update_ops,
         default_store](const mctsvc::HttpRequest& req) {
          mctsvc::HttpResponse response;
          response.content_type = "application/json";
          if (req.method != "POST") {
            response.status = 405;
            response.body = "{\"error\":\"POST only\"}\n";
            return response;
          }
          std::string store = QueryParam(req.query, "store");
          if (store.empty()) store = default_store;
          auto it = cursors.find(store);
          if (it == cursors.end()) {
            response.status = 404;
            response.body = "{\"error\":\"unknown store\"}\n";
            return response;
          }
          size_t count = 1;
          if (std::string c = QueryParam(req.query, "count"); !c.empty()) {
            count = std::strtoul(c.c_str(), nullptr, 10);
            if (count == 0) count = 1;
          }
          UpdateStream& cursor = it->second;
          size_t applied = 0, skipped = 0;
          std::string last_error;
          bool unavailable = false;
          while (count-- > 0) {
            if (cursor.next >= cursor.ops.size()) {
              // Wrap: fresh logical ids, same deterministic parent
              // targets — each wrap stacks more children under the same
              // parents, shrinking bounded label gaps.
              workload::UpdateGenOptions gen;
              gen.num_ops = update_ops;
              gen.logical_id_base += ++cursor.wrap * 200000u;
              cursor.ops = workload::GenerateUpdateOps(
                  {schemas[cursor.schema_index]}, logical, gen);
              cursor.next = 0;
              if (cursor.ops.empty()) break;
            }
            const storage::UpdateOp& op = cursor.ops[cursor.next];
            auto future = cursor.session->SubmitUpdate(op);
            Result<query::UpdateExecResult> result =
                future.ok() ? future->get()
                            : Result<query::UpdateExecResult>(
                                  future.status());
            if (result.ok()) {
              ++applied;
              ++cursor.next;
            } else if (result.status().IsAlreadyExists() ||
                       result.status().IsNotFound() ||
                       result.status().IsNotSupported()) {
              // Deterministic stream replayed against state that already
              // has the op (or an op no color of this schema realizes):
              // a skip, exactly like recovery's replay rules.
              ++skipped;
              ++cursor.next;
            } else {
              // Degraded-mode refusals (read-only store, stall budget
              // spent) leave the cursor so a later retry can succeed.
              last_error = result.status().ToString();
              unavailable = result.status().IsUnavailable() ||
                            result.status().IsResourceExhausted();
              break;
            }
          }
          response.status = last_error.empty() ? 200
                            : unavailable      ? 503
                                               : 500;
          response.body = mctdb::StringPrintf(
              "{\"store\":\"%s\",\"applied\":%zu,\"skipped\":%zu,"
              "\"index\":%zu,\"total\":%zu,\"wrap\":%u%s%s%s}\n",
              store.c_str(), applied, skipped, cursor.next,
              cursor.ops.size(), unsigned(cursor.wrap),
              last_error.empty() ? "" : ",\"error\":\"",
              last_error.empty() ? "" : obs::JsonEscape(last_error).c_str(),
              last_error.empty() ? "" : "\"");
          return response;
        });
  }
  std::printf("serving http://127.0.0.1:%u  (/metrics /metrics.json "
              "/healthz /slowlog /tracez /statusz /flightz%s)\n",
              unsigned(service.HttpPort()),
              updates ? " POST:/update" : "");
  // Scrape scripts read the port from this line; don't sit in the stdio
  // buffer while the workload runs.
  std::fflush(stdout);

  // Keep every plan alive until its future resolves.
  std::vector<std::unique_ptr<query::QueryPlan>> plans;
  size_t executed = 0, failed = 0;
  for (size_t pass = 0; pass < passes; ++pass) {
    for (size_t i = 0; i < schemas.size(); ++i) {
      auto session = service.OpenSession(schemas[i].name());
      if (!session.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     session.status().ToString().c_str());
        return 2;
      }
      std::vector<mctsvc::QueryFuture> futures;
      for (const std::string& name : w.figure_queries) {
        const query::AssociationQuery* q = w.Find(name);
        auto plan = query::PlanQuery(*q, schemas[i]);
        if (!plan.ok()) {
          ++failed;
          continue;
        }
        plans.push_back(std::make_unique<query::QueryPlan>(std::move(*plan)));
        auto future = (*session)->Submit(*plans.back());
        if (!future.ok()) {
          ++failed;
          continue;
        }
        futures.push_back(std::move(*future));
      }
      for (mctsvc::QueryFuture& f : futures) {
        auto result = f.get();
        result.ok() ? ++executed : ++failed;
      }
    }
  }
  service.Drain();
  std::printf("workload done: %zu queries executed, %zu failed "
              "(%zu passes over %zu schemas)\n",
              executed, failed, passes, schemas.size());
  if (linger_seconds > 0) {
    std::printf("lingering %.1fs for scrapes...\n", linger_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(linger_seconds));
  }
  return failed == 0 ? 0 : 2;
}


/// Shared setup for the update/recover commands: one strategy's schema plus
/// the deterministic logical instance it stores. The op stream and the
/// equivalence oracle both derive from this, so a store written by
/// `mctc update` and reopened by `mctc recover` agree on every input.
struct UpdateWorld {
  // Declaration order matters: graph points into diagram, schema and
  // logical point into graph. The struct lives behind a unique_ptr so the
  // addresses stay stable.
  er::ErDiagram diagram;
  er::ErGraph graph;
  mct::MctSchema schema;
  workload::Workload workload;
  instance::LogicalInstance logical;

  UpdateWorld(er::ErDiagram d, const design::Strategy& strategy,
              size_t base_count)
      : diagram(std::move(d)),
        graph(diagram),
        schema(design::Designer(graph).Design(strategy)),
        workload(workload::XmarkEmulatedWorkload(diagram)),
        logical([&] {
          if (base_count > 0) workload.gen.base_count = base_count;
          return instance::GenerateInstance(graph, workload.gen);
        }()) {}
};

int BuildUpdateWorld(const char* path, const char* strategy_name,
                     size_t base_count, std::unique_ptr<UpdateWorld>* out) {
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  auto strategy = design::ParseStrategy(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 strategy.status().ToString().c_str());
    return 1;
  }
  *out = std::make_unique<UpdateWorld>(*std::move(diagram), *strategy,
                                       base_count);
  return 0;
}

/// `mctc update <file.er> --store PATH [...]`: applies the deterministic
/// U1-U3 stream through the WAL. First run against a missing store file
/// materializes and saves it; later runs reopen it (with recovery). The
/// stream is a pure function of (schema, instance), so --take K on a fresh
/// store builds exactly the state a crashed run's first K ops produced —
/// that is the CI crash matrix's equivalence oracle.
int CmdUpdate(int argc, char** argv) {
  const char* path = nullptr;
  const char* store_path = nullptr;
  const char* strategy_name = "MCMR";
  size_t base_count = 0;
  size_t num_ops = 8;
  size_t take = 0;         // 0 = all
  long crash_after = -1;   // -1 = never
  bool do_checkpoint = false;
  bool trace = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--store") && i + 1 < argc) {
      store_path = argv[++i];
    } else if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--ops") && i + 1 < argc) {
      num_ops = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--take") && i + 1 < argc) {
      take = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--crash-after") && i + 1 < argc) {
      crash_after = std::strtol(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      do_checkpoint = true;
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || store_path == nullptr) return Usage();

  std::unique_ptr<UpdateWorld> world;
  if (int rc = BuildUpdateWorld(path, strategy_name, base_count, &world)) {
    return rc;
  }

  bool store_exists = std::ifstream(store_path).good();
  mctdb::Result<std::unique_ptr<wal::DurableStore>> durable =
      std::unique_ptr<wal::DurableStore>();
  if (store_exists) {
    durable = wal::DurableStore::Open(world->schema, store_path);
  } else {
    durable = wal::DurableStore::Create(
        instance::Materialize(world->logical, world->schema, {}), store_path);
  }
  if (!durable.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", store_path,
                 durable.status().ToString().c_str());
    return 2;
  }
  if (store_exists) {
    const wal::RecoveryStats& r = (*durable)->recovery();
    if (r.replayed_records > 0 || r.truncated_bytes > 0) {
      std::printf("recovered: replayed=%llu truncated_bytes=%llu\n",
                  static_cast<unsigned long long>(r.replayed_records),
                  static_cast<unsigned long long>(r.truncated_bytes));
    }
  }

  std::vector<mct::MctSchema> schemas_vec;
  schemas_vec.push_back(world->schema);
  workload::UpdateGenOptions gen;
  gen.num_ops = num_ops;
  std::vector<storage::UpdateOp> ops =
      workload::GenerateUpdateOps(schemas_vec, world->logical, gen);
  if (take > 0 && take < ops.size()) ops.resize(take);

  query::UpdateExecutor uexec(durable->get());
  size_t applied = 0;
  size_t skipped = 0;
  for (const storage::UpdateOp& op : ops) {
    auto result = uexec.Execute(op);
    if (!result.ok()) {
      // The stream is deterministic, so reopening a store and re-running
      // replays ops it already holds. Mirror recovery's idempotent-replay
      // rules: already-done ops are skips, not failures.
      if (result.status().IsAlreadyExists() ||
          result.status().IsNotFound()) {
        ++skipped;
        continue;
      }
      std::fprintf(stderr, "error: %s: %s\n",
                   storage::DebugString(op).c_str(),
                   result.status().ToString().c_str());
      return 2;
    }
    if (trace) {
      std::printf("%s", obs::SpanTreeToText(result->trace).c_str());
    }
    ++applied;
    // Crash injection for the CI recovery matrix: die without flushing or
    // checkpointing the moment op K has committed. The WAL is the only
    // thing carrying those K ops; recovery must rebuild them.
    if (crash_after >= 0 && applied == static_cast<size_t>(crash_after)) {
      std::fflush(stdout);
      // _Exit raises no signal, so the crash handler never fires; flush
      // the black box explicitly so the post-mortem still has the
      // admission/WAL events leading up to the "crash".
      if (obs::flight::Enabled() && obs::flight::DumpPath()[0] != '\0') {
        (void)obs::flight::DumpToConfiguredPath();
      }
      std::_Exit(137);
    }
  }

  std::printf("applied %zu ops (%zu already present)"
              "  wal_appends=%llu wal_fsyncs=%llu\n",
              applied, skipped,
              static_cast<unsigned long long>((*durable)->wal_appends()),
              static_cast<unsigned long long>((*durable)->wal_fsyncs()));
  if (do_checkpoint) {
    auto cp = (*durable)->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "error: checkpoint: %s\n",
                   cp.status().ToString().c_str());
      return 2;
    }
    std::printf("checkpoint: lsn=%llu trimmed_bytes=%llu\n",
                static_cast<unsigned long long>(cp->checkpoint_lsn),
                static_cast<unsigned long long>(cp->log_bytes_trimmed));
  }
  return 0;
}

/// `mctc recover <file.er> --store PATH [...]`: reopens a (possibly
/// crashed) store, prints the recovery stats, and with --expect-store
/// proves the recovered state answers every workload read query with the
/// same logicals as a reference store built without the crash.
int CmdRecover(int argc, char** argv) {
  const char* path = nullptr;
  const char* store_path = nullptr;
  const char* expect_path = nullptr;
  const char* strategy_name = "MCMR";
  size_t base_count = 0;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--store") && i + 1 < argc) {
      store_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--expect-store") && i + 1 < argc) {
      expect_path = argv[++i];
    } else if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || store_path == nullptr) return Usage();

  std::unique_ptr<UpdateWorld> world;
  if (int rc = BuildUpdateWorld(path, strategy_name, base_count, &world)) {
    return rc;
  }

  auto durable = wal::DurableStore::Open(world->schema, store_path);
  if (!durable.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", store_path,
                 durable.status().ToString().c_str());
    return 2;
  }
  const wal::RecoveryStats& r = (*durable)->recovery();
  if (json) {
    std::printf(
        "{\"scanned\":%llu,\"replayed\":%llu,\"skipped\":%llu,"
        "\"truncated_bytes\":%llu,\"log_reset\":%s,\"last_lsn\":%llu}\n",
        static_cast<unsigned long long>(r.scanned_records),
        static_cast<unsigned long long>(r.replayed_records),
        static_cast<unsigned long long>(r.skipped_records),
        static_cast<unsigned long long>(r.truncated_bytes),
        r.log_reset ? "true" : "false",
        static_cast<unsigned long long>(r.last_lsn));
  } else {
    std::printf(
        "recovery: scanned=%llu replayed=%llu skipped=%llu"
        " truncated_bytes=%llu log_reset=%s last_lsn=%llu\n",
        static_cast<unsigned long long>(r.scanned_records),
        static_cast<unsigned long long>(r.replayed_records),
        static_cast<unsigned long long>(r.skipped_records),
        static_cast<unsigned long long>(r.truncated_bytes),
        r.log_reset ? "true" : "false",
        static_cast<unsigned long long>(r.last_lsn));
  }

  if (expect_path == nullptr) return 0;

  auto expect = wal::DurableStore::Open(world->schema, expect_path);
  if (!expect.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", expect_path,
                 expect.status().ToString().c_str());
    return 2;
  }
  // Query-equivalence proof: both stores hold the same MCT schema of the
  // same logical instance, so every read query must return identical
  // logical-id sets. Compare with each store's own recovered snapshot.
  size_t compared = 0;
  size_t mismatches = 0;
  for (const std::string& name : world->workload.figure_queries) {
    const query::AssociationQuery* q = world->workload.Find(name);
    if (q == nullptr || q->is_update()) continue;
    auto plan = query::PlanQuery(*q, world->schema);
    if (!plan.ok()) continue;  // schema variant can't express it; skip
    query::Executor got_exec(durable->get()->store());
    got_exec.set_snapshot(durable->get()->snapshot());
    query::Executor want_exec(expect->get()->store());
    want_exec.set_snapshot(expect->get()->snapshot());
    auto got = got_exec.Execute(*plan);
    auto want = want_exec.Execute(*plan);
    if (!got.ok() || !want.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", name.c_str(),
                   (!got.ok() ? got : want).status().ToString().c_str());
      return 2;
    }
    ++compared;
    if (got->logicals != want->logicals) {
      ++mismatches;
      std::fprintf(stderr,
                   "mismatch: %s returned %zu logicals, expected %zu\n",
                   name.c_str(), got->logicals.size(),
                   want->logicals.size());
    }
  }
  std::printf("equivalence: %zu queries compared, %zu mismatches\n",
              compared, mismatches);
  return mismatches == 0 ? 0 : 2;
}

int CmdDemo() {
  er::ErDiagram diagram = er::Tpcw();
  std::printf("%s\n", er::FormatErDiagram(diagram).c_str());
  er::ErGraph graph(diagram);
  design::Designer designer(graph);
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    std::printf("%-8s %s\n", schema.name().c_str(),
                designer.Report(schema).ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global flag, accepted anywhere on the command line: arm failpoints
  // for fault-injection runs (same grammar as MCTDB_FAILPOINTS, e.g.
  // --failpoints 'pager.read=err(0.005);persist.load=trunc').
  for (int i = 1; i + 1 < argc;) {
    if (std::strcmp(argv[i], "--failpoints") != 0) {
      ++i;
      continue;
    }
    std::string error;
    if (!failpoint::Configure(argv[i + 1], &error)) {
      std::fprintf(stderr, "error: bad --failpoints spec: %s\n",
                   error.c_str());
      return 1;
    }
    for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  // Global flag: turn the flight recorder on and arm every dump trigger
  // (fatal-signal handler, Status-escalation one-shot, and the explicit
  // dump in `mctc update --crash-after`).
  for (int i = 1; i + 1 < argc;) {
    if (std::strcmp(argv[i], "--flight-dump") != 0) {
      ++i;
      continue;
    }
    obs::flight::Enable();
    obs::flight::SetDumpPath(argv[i + 1]);
    obs::flight::InstallCrashHandler();
    for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
  }
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (!std::strcmp(cmd, "validate") && argc >= 3) return CmdValidate(argv[2]);
  if (!std::strcmp(cmd, "report") && argc >= 3) return CmdReport(argv[2]);
  if (!std::strcmp(cmd, "design")) return CmdDesign(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "paths")) return CmdPaths(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "mine")) return CmdMine(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "workload")) return CmdWorkload(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "trace")) return CmdTrace(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "blackbox")) return CmdBlackbox(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "lint")) return CmdLint(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "bench")) return CmdBench(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "serve")) return CmdServe(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "update")) return CmdUpdate(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "recover")) return CmdRecover(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "demo")) return CmdDemo();
  return Usage();
}
