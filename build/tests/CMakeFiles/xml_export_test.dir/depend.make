# Empty dependencies file for xml_export_test.
# This may be replaced when dependencies are built.
