#include "design/algorithm_dumc.h"

#include <gtest/gtest.h>

#include "design/algorithm_mc.h"
#include "design/recoverability.h"
#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;

void ExpectNnArDr(const ErDiagram& d) {
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  std::string why;
  EXPECT_TRUE(s.IsNodeNormal(&why)) << d.name() << ": " << why;
  EXPECT_TRUE(IsAssociationRecoverable(s)) << d.name();
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct())
      << d.name() << ": " << report.directly_recoverable << "/"
      << report.eligible_paths;
  EXPECT_TRUE(s.Validate().ok());
}

TEST(AlgorithmDumcTest, Theorem52HoldsOnCatalog) {
  for (const ErDiagram& d : er::EvaluationCollection()) ExpectNnArDr(d);
  ExpectNnArDr(er::ToyMcNotDr());
  ExpectNnArDr(er::ToyMcmrInsufficient());
}

TEST(AlgorithmDumcTest, ToyMcNotDrSolvedInTwoColors) {
  // §5.2: {A r1 B r2 C} + {D r3 B r2 C} — two colors reach complete DR.
  ErDiagram d = er::ToyMcNotDr();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  EXPECT_EQ(s.num_colors(), 2u) << s.DebugString();
  EXPECT_FALSE(s.IsEdgeNormal()) << "B-r2-C must be re-used across colors";
}

TEST(AlgorithmDumcTest, ToyMcmrInsufficientNeedsTwoColors) {
  // §5.2 second toy: the 1:1 edge must be oriented both ways.
  ErDiagram d = er::ToyMcmrInsufficient();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  EXPECT_GE(s.num_colors(), 2u);
  auto report = AnalyzeRecoverability(s, EnumerateEligiblePaths(g));
  EXPECT_TRUE(report.fully_direct());
}

TEST(AlgorithmDumcTest, ChainStaysSingleColor) {
  // A pure 1:N chain is already completely DR in MC's one color.
  ErDiagram d = er::Er7Chain();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  EXPECT_EQ(s.num_colors(), 1u);
}

TEST(AlgorithmDumcTest, TpcwAroundFiveColors) {
  // Table 1: the paper's DR schema for TPC-W uses 5 colors. Our greedy
  // packing should land in the same neighborhood.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  EXPECT_GE(s.num_colors(), 4u) << s.DebugString();
  EXPECT_LE(s.num_colors(), 7u) << s.DebugString();
}

TEST(AlgorithmDumcTest, TpcwBillingChainDirect) {
  // Q2's association: country -> in -> address -> billing -> order must be
  // a descending chain in some color.
  ErDiagram d = er::Tpcw();
  ErGraph g(d);
  mct::MctSchema s = AlgorithmDumc(g);
  for (const auto& p : EnumerateEligiblePaths(g)) {
    if (d.node(p.source).name == "country" &&
        d.node(p.target).name == "order" && p.length() == 4 &&
        d.node(p.nodes[3]).name == "billing") {
      EXPECT_TRUE(IsPathDirectlyRecoverable(s, p));
      return;
    }
  }
  FAIL() << "billing path not found in eligible set";
}

TEST(AlgorithmDumcTest, MoreColorsThanMcButStillNodeNormal) {
  ErDiagram d = er::Er10Lattice();
  ErGraph g(d);
  mct::MctSchema mc = AlgorithmMc(g);
  mct::MctSchema dumc = AlgorithmDumc(g);
  EXPECT_GE(dumc.num_colors(), mc.num_colors());
  EXPECT_TRUE(dumc.IsNodeNormal());
}

}  // namespace
}  // namespace mctdb::design
