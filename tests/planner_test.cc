#include "query/planner.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

using design::Designer;
using design::Strategy;

struct Fixture {
  workload::Workload w = workload::TpcwWorkload(0.05);
  er::ErGraph graph{w.diagram};
  Designer designer{graph};

  PlanStats Plan(const char* query, Strategy strategy) {
    const AssociationQuery* q = w.Find(query);
    EXPECT_NE(q, nullptr);
    mct::MctSchema schema = designer.Design(strategy);
    auto plan = PlanQuery(*q, schema);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan->Stats();
  }
};

TEST(PlannerTest, EveryFigureQueryPlansOnEverySchema) {
  Fixture f;
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = f.designer.Design(s);
    for (const auto& q : f.w.queries) {
      auto plan = PlanQuery(q, schema);
      EXPECT_TRUE(plan.ok())
          << q.name << " on " << design::ToString(s) << ": "
          << plan.status().ToString();
    }
  }
}

TEST(PlannerTest, ShallowPaysValueJoins) {
  Fixture f;
  // Q1's 6-step chain on SHALLOW needs a value join per relationship hop.
  PlanStats shallow = f.Plan("Q1", Strategy::kShallow);
  EXPECT_GE(shallow.value_joins, 2u);
  // DEEP answers Q1 with structure alone.
  PlanStats deep = f.Plan("Q1", Strategy::kDeep);
  EXPECT_EQ(deep.value_joins, 0u);
  EXPECT_EQ(deep.color_crossings, 0u);
}

TEST(PlannerTest, DirectRecoverabilityMinimizesJoins) {
  Fixture f;
  // DR realizes Q2's billing chain in one color: one a-d structural join,
  // no value joins, no crossings.
  PlanStats dr = f.Plan("Q2", Strategy::kDr);
  EXPECT_EQ(dr.value_joins, 0u);
  EXPECT_EQ(dr.color_crossings, 0u);
  EXPECT_LE(dr.structural_joins, 2u);
  // EN must cross colors (billing-order and the main chain are in
  // different colors) or pay more joins.
  PlanStats en = f.Plan("Q2", Strategy::kEn);
  EXPECT_GT(en.color_crossings + en.value_joins, 0u);
}

TEST(PlannerTest, Fig9OrderingOnChainQueries) {
  // The paper's headline: value joins + crossings are minimized by schemas
  // with direct recoverability: SHALLOW >= EN >= MCMR >= DR, DEEP = 0.
  Fixture f;
  for (const char* q : {"Q1", "Q2", "Q12"}) {
    size_t shallow = f.Plan(q, Strategy::kShallow).value_joins_plus_crossings();
    size_t en = f.Plan(q, Strategy::kEn).value_joins_plus_crossings();
    size_t mcmr = f.Plan(q, Strategy::kMcmr).value_joins_plus_crossings();
    size_t dr = f.Plan(q, Strategy::kDr).value_joins_plus_crossings();
    size_t deep = f.Plan(q, Strategy::kDeep).value_joins_plus_crossings();
    EXPECT_GE(shallow, en) << q;
    EXPECT_GE(en, mcmr) << q;
    EXPECT_GE(mcmr, dr) << q;
    EXPECT_EQ(deep, 0u) << q;
  }
}

TEST(PlannerTest, DeepPaysDuplicateElimination) {
  Fixture f;
  // Q6 (distinct items of a customer) traverses the M:N composite: DEEP
  // must deduplicate, node-normal schemas must not.
  EXPECT_GE(f.Plan("Q6", Strategy::kDeep).dup_elims, 1u);
  EXPECT_EQ(f.Plan("Q6", Strategy::kEn).dup_elims, 0u);
  EXPECT_EQ(f.Plan("Q6", Strategy::kShallow).dup_elims, 0u);
  EXPECT_EQ(f.Plan("Q6", Strategy::kDr).dup_elims, 0u);
}

TEST(PlannerTest, UpdatesChargeDupUpdatesOnRedundantSchemas) {
  Fixture f;
  // U1 rewrites item costs; DEEP/UNDR must also rewrite the copies.
  EXPECT_GE(f.Plan("U1", Strategy::kDeep).dup_updates, 1u);
  EXPECT_EQ(f.Plan("U1", Strategy::kEn).dup_updates, 0u);
  EXPECT_EQ(f.Plan("U1", Strategy::kMcmr).dup_updates, 0u);
}

TEST(PlannerTest, SingleNodeQueriesAreSchemaIndifferent) {
  Fixture f;
  // Q3 (customer point lookup): identical minimal plans everywhere except
  // DEEP-style copies.
  for (Strategy s : {Strategy::kShallow, Strategy::kAf, Strategy::kEn,
                     Strategy::kMcmr, Strategy::kDr}) {
    PlanStats st = f.Plan("Q3", s);
    EXPECT_EQ(st.structural_joins, 0u) << design::ToString(s);
    EXPECT_EQ(st.value_joins, 0u) << design::ToString(s);
    EXPECT_EQ(st.color_crossings, 0u) << design::ToString(s);
  }
}

TEST(PlannerTest, GroupByFreeWhenStructurallyNested) {
  Fixture f;
  // Q11 groups orders; DEEP/DR nest the chain in one forward segment, so
  // grouping needs no value grouping there, while SHALLOW pays it.
  EXPECT_EQ(f.Plan("Q11", Strategy::kDeep).group_bys, 0u);
  EXPECT_GE(f.Plan("Q11", Strategy::kShallow).group_bys, 1u);
}

TEST(PlannerTest, PlanDebugStringMentionsSegments) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto plan = PlanQuery(*f.w.Find("Q1"), schema);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->DebugString();
  EXPECT_NE(s.find("Q1"), std::string::npos);
  EXPECT_NE(s.find("stats:"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::query
