#include "wal/recovery.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/update_exec.h"
#include "wal/durable_store.h"
#include "workload/update_gen.h"
#include "workload/workload.h"

namespace mctdb::wal {
namespace {

using design::Strategy;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Everything the recovery tests share: a small TPC-W instance, one
/// schema, the deterministic op stream, and a per-prefix oracle of read
/// query results (oracle[k] = the answers after the first k ops).
struct RecoveryWorld {
  workload::Workload w = workload::TpcwWorkload(0.02);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  mct::MctSchema schema = designer.Design(Strategy::kMcmr);
  instance::LogicalInstance logical = instance::GenerateInstance(graph, w.gen);
  std::vector<storage::UpdateOp> ops;
  std::vector<std::string> query_names;
  /// oracle[k][q] = logicals of query q after ops[0..k).
  std::vector<std::vector<std::vector<uint32_t>>> oracle;

  RecoveryWorld() {
    std::vector<mct::MctSchema> schemas{schema};
    workload::UpdateGenOptions gen;
    gen.num_ops = 10;
    ops = workload::GenerateUpdateOps(schemas, logical, gen);
    EXPECT_GE(ops.size(), 4u);
    for (const std::string& name : w.figure_queries) {
      const query::AssociationQuery* q = w.Find(name);
      if (q == nullptr || q->is_update()) continue;
      if (!query::PlanQuery(*q, schema).ok()) continue;
      query_names.push_back(name);
      if (query_names.size() == 2) break;
    }
    EXPECT_EQ(query_names.size(), 2u);

    // Build the oracle on an ephemeral store: LSNs on a fresh log are
    // 1..N, so "state after k ops" is simply snapshot k.
    auto d = DurableStore::Ephemeral(
        instance::Materialize(logical, schema, {}));
    BuildOracle(d);
  }

  std::vector<std::vector<uint32_t>> QueryAt(storage::MctStore* store,
                                             Lsn snapshot) const {
    std::vector<std::vector<uint32_t>> out;
    for (const std::string& name : query_names) {
      const query::AssociationQuery* q = w.Find(name);
      auto plan = query::PlanQuery(*q, schema);
      EXPECT_TRUE(plan.ok());
      query::Executor exec(store);
      exec.set_snapshot(snapshot);
      auto r = exec.Execute(*plan);
      EXPECT_TRUE(r.ok()) << name << ": " << r.status().ToString();
      out.push_back(r->logicals);
    }
    return out;
  }

 private:
  void BuildOracle(Result<std::unique_ptr<DurableStore>>& d) {
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    query::UpdateExecutor exec(d->get());
    oracle.push_back(QueryAt((*d)->store(), (*d)->snapshot()));
    for (const auto& op : ops) {
      auto r = exec.Execute(op);
      ASSERT_TRUE(r.ok()) << storage::DebugString(op) << ": "
                          << r.status().ToString();
      oracle.push_back(QueryAt((*d)->store(), (*d)->snapshot()));
    }
    ASSERT_EQ(oracle.size(), ops.size() + 1);
  }
};

RecoveryWorld& World() {
  static RecoveryWorld* world = new RecoveryWorld();
  return *world;
}

/// Builds a durable store at `path` with the full op stream applied, and
/// returns the final WAL bytes (read back from disk after close).
std::string BuildCrashedLog(RecoveryWorld& world, const std::string& path) {
  {
    auto d = DurableStore::Create(
        instance::Materialize(world.logical, world.schema, {}), path);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    query::UpdateExecutor exec(d->get());
    for (const auto& op : world.ops) {
      auto r = exec.Execute(op);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  return ReadFile(DurableStore::WalPath(path));
}

// The PR's durability acceptance criterion: for EVERY byte offset of the
// log, a crash that leaves exactly that prefix on disk recovers to a
// prefix-consistent state — the store answers every probe query exactly
// like the oracle after some op prefix k, with k = the number of complete
// records that survived.
TEST(WalRecoveryTest, CrashAtEveryOffsetRecoversAPrefix) {
  RecoveryWorld& world = World();
  std::string path = TempPath("crash_offsets.mctdb");
  std::string wal = BuildCrashedLog(world, path);
  ASSERT_GT(wal.size(), kWalHeaderSize);

  const size_t n_ops = world.ops.size();
  Lsn prev_k = 0;
  for (size_t offset = 0; offset <= wal.size(); ++offset) {
    WriteFile(DurableStore::WalPath(path), std::string_view(wal).substr(0, offset));
    auto d = DurableStore::Open(world.schema, path);
    ASSERT_TRUE(d.ok()) << "offset " << offset << ": "
                        << d.status().ToString();
    const RecoveryStats& r = (*d)->recovery();
    Lsn k = r.last_lsn;
    ASSERT_LE(k, n_ops) << "offset " << offset;
    EXPECT_EQ(r.replayed_records, k) << "offset " << offset;
    // More surviving bytes never means fewer recovered ops.
    EXPECT_GE(k, prev_k) << "offset " << offset;
    prev_k = k;
    // Prefix consistency against the oracle.
    auto got = world.QueryAt((*d)->store(), (*d)->snapshot());
    EXPECT_EQ(got, world.oracle[k]) << "offset " << offset;
  }
  // The full log recovers the full stream.
  EXPECT_EQ(prev_k, n_ops);
}

TEST(WalRecoveryTest, GarbageTailIsTruncatedAndLogged) {
  RecoveryWorld& world = World();
  std::string path = TempPath("garbage_tail.mctdb");
  std::string wal = BuildCrashedLog(world, path);
  WriteFile(DurableStore::WalPath(path),
            wal + std::string(97, '\xC7'));  // stale bytes past the tail

  auto d = DurableStore::Open(world.schema, path);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const RecoveryStats& r = (*d)->recovery();
  EXPECT_EQ(r.replayed_records, world.ops.size());
  EXPECT_EQ(r.truncated_bytes, 97u);
  auto got = world.QueryAt((*d)->store(), (*d)->snapshot());
  EXPECT_EQ(got, world.oracle[world.ops.size()]);
  // The truncation happened in place: a second open is clean.
  auto d2 = DurableStore::Open(world.schema, path);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ((*d2)->recovery().truncated_bytes, 0u);
}

TEST(WalRecoveryTest, CheckpointTrimsLogAndReopenSkipsImageOps) {
  RecoveryWorld& world = World();
  std::string path = TempPath("checkpointed.mctdb");
  const size_t kMid = world.ops.size() / 2;
  {
    auto d = DurableStore::Create(
        instance::Materialize(world.logical, world.schema, {}), path);
    ASSERT_TRUE(d.ok());
    query::UpdateExecutor exec(d->get());
    for (size_t i = 0; i < kMid; ++i) {
      ASSERT_TRUE(exec.Execute(world.ops[i]).ok());
    }
    auto cp = (*d)->Checkpoint();
    ASSERT_TRUE(cp.ok()) << cp.status().ToString();
    EXPECT_EQ(cp->checkpoint_lsn, static_cast<Lsn>(kMid));
    EXPECT_GT(cp->log_bytes_trimmed, 0u);
    for (size_t i = kMid; i < world.ops.size(); ++i) {
      ASSERT_TRUE(exec.Execute(world.ops[i]).ok());
    }
  }
  auto d = DurableStore::Open(world.schema, path);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const RecoveryStats& r = (*d)->recovery();
  // Only the post-checkpoint suffix needed replay.
  EXPECT_EQ(r.replayed_records, world.ops.size() - kMid);
  EXPECT_EQ(r.last_lsn, world.ops.size());
  auto got = world.QueryAt((*d)->store(), (*d)->snapshot());
  EXPECT_EQ(got, world.oracle[world.ops.size()]);
}

TEST(WalRecoveryTest, CheckpointErrorFaultLeavesStoreConsistent) {
  RecoveryWorld& world = World();
  std::string path = TempPath("cp_err.mctdb");
  {
    auto d = DurableStore::Create(
        instance::Materialize(world.logical, world.schema, {}), path);
    ASSERT_TRUE(d.ok());
    query::UpdateExecutor exec(d->get());
    for (const auto& op : world.ops) ASSERT_TRUE(exec.Execute(op).ok());
    failpoint::FailpointGuard guard("wal.checkpoint", "err");
    EXPECT_FALSE((*d)->Checkpoint().ok());
  }
  // The failed checkpoint mutated nothing: reopen replays the whole log.
  auto d = DurableStore::Open(world.schema, path);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->recovery().replayed_records, world.ops.size());
  auto got = world.QueryAt((*d)->store(), (*d)->snapshot());
  EXPECT_EQ(got, world.oracle[world.ops.size()]);
}

TEST(WalRecoveryTest, CheckpointCrashWindowIsCoveredByIdempotentReplay) {
  RecoveryWorld& world = World();
  std::string path = TempPath("cp_window.mctdb");
  {
    auto d = DurableStore::Create(
        instance::Materialize(world.logical, world.schema, {}), path);
    ASSERT_TRUE(d.ok());
    query::UpdateExecutor exec(d->get());
    for (const auto& op : world.ops) ASSERT_TRUE(exec.Execute(op).ok());
    // Crash between "image renamed into place" and "log trimmed": the
    // post-image probe aborts the checkpoint exactly there.
    failpoint::FailpointGuard guard("wal.checkpoint", "trunc");
    EXPECT_FALSE((*d)->Checkpoint().ok());
  }
  // Reopen sees a complete image AND a full log. Replay walks every
  // record but the already-present ops skip idempotently — the store must
  // land in exactly the full-stream state, not a doubled one.
  auto d = DurableStore::Open(world.schema, path);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const RecoveryStats& r = (*d)->recovery();
  EXPECT_EQ(r.scanned_records, world.ops.size());
  EXPECT_EQ(r.replayed_records + r.skipped_records, world.ops.size());
  auto got = world.QueryAt((*d)->store(), (*d)->snapshot());
  EXPECT_EQ(got, world.oracle[world.ops.size()]);
}

}  // namespace
}  // namespace mctdb::wal
