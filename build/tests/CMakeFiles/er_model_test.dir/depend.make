# Empty dependencies file for er_model_test.
# This may be replaced when dependencies are built.
