# Empty compiler generated dependencies file for mctdb_query.
# This may be replaced when dependencies are built.
