// ServiceMetrics: lock-free counters and a latency histogram for the
// mctsvc query service, exportable as JSON for scrapers and dashboards.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mctsvc {

/// Power-of-two-microsecond latency buckets: bucket i counts requests with
/// latency in [2^(i-1), 2^i) microseconds (bucket 0 is < 1 us, the last
/// bucket is the overflow). Recording is a single relaxed atomic add, so
/// worker threads never serialize on the histogram.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 24;  // up to ~8.4 s, then overflow

  void Record(double seconds);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return double(total_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Upper-bound estimate of the q-quantile (seconds) from the bucket
  /// boundaries; 0 when empty.
  double Quantile(double q) const;
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  std::string ToJson() const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

struct ServiceMetrics {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  /// Admission-queue overflow rejections (Status::ResourceExhausted).
  std::atomic<uint64_t> rejected{0};
  /// Plans rejected by the static verifier at admission
  /// (Status::InvalidArgument; never counted as submitted).
  std::atomic<uint64_t> invalid_plans{0};
  /// Requests cancelled at dequeue because their deadline had passed.
  std::atomic<uint64_t> deadline_exceeded{0};
  /// Requests whose executor returned a non-OK status.
  std::atomic<uint64_t> failed{0};
  /// Requests admitted but not yet finished (queued or running).
  std::atomic<uint64_t> queue_depth{0};
  LatencyHistogram latency;

  /// Counters + latency histogram as one JSON object (no pool stats; the
  /// service adds those, see QueryService::MetricsJson).
  std::string ToJson() const;
};

}  // namespace mctsvc
