// Legacy migration — the paper's closing future-work item, end to end:
//
//   1. a "legacy" flat XML database exists (we fabricate one by exporting a
//      SHALLOW TPC-W instance: entities at top level, id/idref everywhere);
//   2. MineErDiagram recovers the design specification from the document's
//      structure and its id/idref values;
//   3. the Designer turns the recovered specification into a multi-colored
//      DR schema;
//   4. the same logical data is re-materialized under the new schema, and
//      the flagship query (Q1) is planned against both — value joins gone.
//
// Build & run:  ./build/examples/legacy_migration
#include <cstdio>

#include "design/designer.h"
#include "design/xml_mining.h"
#include "instance/materialize.h"
#include "instance/xml_export.h"
#include "query/planner.h"
#include "workload/workload.h"

using namespace mctdb;

int main() {
  // 1. The legacy database.
  workload::Workload w = workload::TpcwWorkload(0.1);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  mct::MctSchema shallow = designer.Design(design::Strategy::kShallow);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  auto legacy_store = instance::Materialize(logical, shallow);
  auto legacy_doc = instance::ExportColorXml(*legacy_store, 0);
  if (!legacy_doc.ok()) return 1;
  std::printf("legacy XML: %zu elements, flat with id/idrefs\n",
              (*legacy_doc)->SubtreeSize() - 1);

  // 2. Mine the design back out of the document.
  design::MiningReport report;
  auto mined = design::MineErDiagram(**legacy_doc, {}, &report);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "mined design: %zu entity tags, %zu relationship tags "
      "(%zu structural edges, %zu idref edges)\n",
      report.entity_tags, report.relationship_tags, report.structural_edges,
      report.idref_edges);

  // 3. Redesign with DUMC.
  er::ErGraph mined_graph(*mined);
  design::Designer redesigner(mined_graph);
  mct::MctSchema dr = redesigner.Design(design::Strategy::kDr);
  std::printf("redesigned:  %s\n",
              redesigner.Report(dr).ToString().c_str());

  // 4. Before/after on Q1 ("orders of customers with addresses in Japan").
  auto make_q1 = [](const er::ErDiagram& d) {
    query::QueryBuilder b("Q1", d);
    int country = b.Root("country");
    b.Where(country, "name", "Japan");
    b.Via(country, {"in", "address", "has", "customer", "make", "order"});
    return b.Build();
  };
  query::AssociationQuery q1_old = make_q1(w.diagram);
  query::AssociationQuery q1_new = make_q1(*mined);
  auto plan_old = query::PlanQuery(q1_old, shallow);
  auto plan_new = query::PlanQuery(q1_new, dr);
  if (!plan_old.ok() || !plan_new.ok()) return 1;
  auto po = plan_old->Stats();
  auto pn = plan_new->Stats();
  std::printf(
      "\nQ1 before (SHALLOW):  %zu structural joins, %zu value joins\n",
      po.structural_joins, po.value_joins);
  std::printf(
      "Q1 after  (mined DR): %zu structural joins, %zu value joins, "
      "%zu crossings\n",
      pn.structural_joins, pn.value_joins, pn.color_crossings);
  std::printf("\nThe migration eliminated every value join.\n");
  return pn.value_joins == 0 ? 0 : 1;
}
