#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace mctsvc {
namespace {

TEST(LatencyHistogramTest, SampleOnBucketBoundaryStaysInThatBucket) {
  // `le` means less-OR-EQUAL: a sample of exactly 1 us belongs to the
  // le=1 bucket, not the next one (the seed put it one bucket too high).
  LatencyHistogram h;
  h.Record(1e-6);  // exactly 1 us == bucket 0's upper bound
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 0u);

  h.Record(2e-6);  // exactly 2 us == bucket 1's upper bound
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);

  h.Record(2.0000001e-6);  // just past the boundary moves up
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogramTest, SubMicrosecondAndZeroLandInBucketZero) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(0.5e-6);
  EXPECT_EQ(h.bucket(0), 2u);
}

TEST(LatencyHistogramTest, OverflowSamplesLandInLastBucket) {
  LatencyHistogram h;
  // The last bucket's lower neighbor tops out at 2^22 us (~4.2 s); both a
  // boundary sample and something absurdly slow must stay in range.
  double last_le_us = LatencyHistogram::BucketUpperUs(
      LatencyHistogram::kBuckets - 2);
  h.Record(last_le_us * 1e-6);  // exactly on the second-to-last le
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 2), 1u);
  h.Record(3600.0);  // one hour
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogramTest, QuantileReturnsBucketUpperBound) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(3e-6);  // bucket le=4us
  // The estimate is the containing bucket's upper bound: conservative,
  // never below the true quantile.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4e-6);
  EXPECT_DOUBLE_EQ(LatencyHistogram().Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, JsonBucketsAreCumulative) {
  LatencyHistogram h;
  h.Record(1e-6);   // le=1
  h.Record(1e-6);   // le=1
  h.Record(4e-6);   // le=4
  std::string json = h.ToJson();
  // Cumulative `le` semantics: the le=4 entry counts all three samples.
  EXPECT_NE(json.find("{\"le\":1,\"count\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":4,\"count\":3}"), std::string::npos) << json;
  EXPECT_EQ(json.find("{\"le\":2,"), std::string::npos)
      << "empty buckets are elided: " << json;
}

TEST(LatencyHistogramTest, PrometheusExpositionIsCumulativeWithInf) {
  LatencyHistogram h;
  h.Record(1e-6);
  h.Record(5000.0);  // overflow bucket
  std::string text;
  h.AppendPrometheus(&text, "test_latency_seconds");
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos) << text;
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos) << text;
  EXPECT_NE(text.find("test_latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_sum"), std::string::npos);
}

TEST(ServiceMetricsTest, ToJsonIncludesAttributionCounters) {
  ServiceMetrics m;
  m.page_hits.store(7);
  m.page_misses.store(3);
  m.slow_queries.store(1);
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"page_hits\":7"), std::string::npos);
  EXPECT_NE(json.find("\"page_misses\":3"), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\":1"), std::string::npos);
}

TEST(ServiceMetricsTest, ToPrometheusEmitsCounterSeries) {
  ServiceMetrics m;
  m.submitted.store(5);
  m.page_misses.store(9);
  std::string text = m.ToPrometheus();
  EXPECT_NE(text.find("mctsvc_requests_submitted_total 5"),
            std::string::npos);
  EXPECT_NE(text.find("mctsvc_page_misses_total 9"), std::string::npos);
  EXPECT_NE(text.find("mctsvc_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("mctsvc_request_latency_seconds_count 0"),
            std::string::npos);
}

}  // namespace
}  // namespace mctsvc
