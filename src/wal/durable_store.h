// DurableStore: an MctStore opened for writing, fronted by the WAL
// (DESIGN.md §13). This is the tentpole seam tying the write path
// together:
//
//   Apply(op):
//     1. lock the write mutex (one applier mutates at a time);
//     2. LogWriter::Append — the redo record exists BEFORE any page or
//        delta is dirtied (write-ahead rule); a failed append is a clean
//        abort;
//     3. storage::ApplyUpdateOp — the short exclusive delta mutation;
//     4. unlock, LogWriter::Commit(lsn) — GROUP fsync shared with
//        concurrent appliers;
//     5. PublishVisibleLsn(lsn) — only now do NEW reader snapshots see the
//        op. Readers that took their snapshot earlier keep a consistent
//        pre-commit view and never block (COW keyed by LSN).
//
//   When a MaintenanceManager is attached (wal/maintenance.h), an insert
//   that exhausts its interval-label gap does not surface
//   ResourceExhausted immediately: Apply STALLS behind an urgent
//   gap-pressure checkpoint (which rebalances labels) and retries, up to
//   the manager's max_stall budget — only then does the caller see
//   ResourceExhausted, with a retry-after hint (DESIGN.md §17).
//
//   Open(path): load the checkpoint image, EnableVersioning, replay the
//   log's valid prefix, truncate the torn tail (wal/recovery.h).
//
//   Checkpoint(mode): fold deltas into a fresh compact image, atomically
//   rename it over the store file, trim the log (wal/checkpoint.h).
//     kImageOnly (the default, and the historical behavior): the LIVE
//       in-memory store keeps serving base+deltas — compaction only
//       changes what the next open loads, so concurrent readers are never
//       invalidated, but saturated label gaps stay saturated until a
//       reopen.
//     kRebaseLive: additionally SWAPS the live store to the compacted
//       image — the interval-label REBALANCE. The compacted store carries
//       fresh stride gaps (StoreBuilder relabels every color), so inserts
//       that were ResourceExhausted succeed afterwards. The previous
//       store is RETIRED, not destroyed: readers that resolved store()
//       before the swap finish their queries against an immutable,
//       still-consistent snapshot; new readers resolve the rebased store
//       at the checkpoint LSN. Callers holding raw MctStore*/pager
//       pointers across checkpoints (the query service's buffer pools)
//       must refresh them — the maintenance callback is the hook.
//
//   Degraded modes: a WAL that can no longer append or fsync makes the
//   store refuse writes with Unavailable while reads keep serving at the
//   last published visible_lsn. Out-of-space degradation (ENOSPC) is
//   READ-ONLY mode: sticky until TryExitReadOnly() — called by the
//   maintenance re-probe timer — finds the disk writable again, flushes
//   the parked WAL batch and republishes. Hard faults require a reopen.
//
// Failpoint "wal.checkpoint": err -> clean failure before anything is
// written; trunc -> the image is committed but the log is NOT trimmed,
// exercising recovery's idempotent-replay window; enospc/eio -> the
// image save fails with the errno-faithful status (no degradation — the
// WAL still has every record, so nothing is lost; the checkpoint is
// simply retried later).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lsn.h"
#include "obs/exec_stats.h"
#include "common/result.h"
#include "storage/store.h"
#include "storage/update_ops.h"
#include "wal/checkpoint.h"
#include "wal/log_writer.h"
#include "wal/recovery.h"

namespace mctdb::wal {

class MaintenanceManager;

struct DurableStoreOptions {
  storage::StoreOptions store;
  /// Durable log size past which lint (WAL004) refuses and callers should
  /// checkpoint.
  uint64_t checkpoint_threshold_bytes = 64ull << 20;
};

/// What Checkpoint does with the live in-memory store (class comment).
enum class CheckpointMode {
  kImageOnly = 0,  ///< compact to disk only; live store untouched
  kRebaseLive,     ///< also swap the live store to the compacted image
};

class DurableStore {
 public:
  using Options = DurableStoreOptions;

  /// Opens the store saved at `path` (its log lives at "<path>.wal"),
  /// running crash recovery. `schema` must outlive the result.
  static Result<std::unique_ptr<DurableStore>> Open(
      const mct::MctSchema& schema, const std::string& path,
      const Options& options = {});

  /// Saves a freshly built store to `path` and opens it with an empty log.
  /// Any stale log at "<path>.wal" is discarded.
  static Result<std::unique_ptr<DurableStore>> Create(
      std::unique_ptr<storage::MctStore> store, const std::string& path,
      const Options& options = {});

  /// A durable store with an in-memory log: the full write path (append,
  /// group commit, snapshots) without a filesystem. Used by the workload
  /// runner's update measurements.
  static Result<std::unique_ptr<DurableStore>> Ephemeral(
      std::unique_ptr<storage::MctStore> store,
      const Options& options = {});

  /// The underlying store. Readers take store()->visible_lsn() as their
  /// snapshot and pass it to the versioned accessors / MergedPostingCursor.
  /// A kRebaseLive checkpoint swaps this pointer; the previous store stays
  /// alive (retired) so already-resolved readers finish safely.
  storage::MctStore* store() const {
    return live_store_.load(std::memory_order_acquire);
  }
  /// Snapshot new readers should use (last durable LSN).
  Lsn snapshot() const { return store()->visible_lsn(); }

  struct ApplyReceipt {
    Lsn lsn = kNoLsn;
    storage::ApplyStats stats;
  };
  /// Durably applies one update op (see class comment). Thread-safe;
  /// concurrent callers share fsyncs. With `stats`, the append/commit
  /// work lands in kWal spans and the delta mutation in a kUpdate span,
  /// so `mctc trace` shows where an update's time went. With a
  /// maintenance manager attached, gap saturation stalls behind a
  /// rebalancing checkpoint instead of failing (bounded by max_stall).
  Result<ApplyReceipt> Apply(const storage::UpdateOp& op,
                             obs::ExecStats* stats = nullptr);

  Result<CheckpointStats> Checkpoint(
      CheckpointMode mode = CheckpointMode::kImageOnly);

  /// True while the WAL is out of disk space: writes refuse with
  /// Unavailable, reads keep serving at the last published visible_lsn.
  bool read_only() const {
    return log_->degrade_kind() == DegradeKind::kSpace;
  }
  /// Attempts to leave read-only mode: re-probes the WAL (truncate the
  /// torn tail, flush the parked batch, fsync) and, on success, publishes
  /// everything that was applied in memory but stuck behind the full
  /// disk. Returns the probe error while the disk is still full;
  /// Unavailable for hard degradation (reopen required). Called by the
  /// maintenance re-probe timer; safe to call manually.
  Status TryExitReadOnly();

  /// The maintenance manager registers itself here (and deregisters on
  /// destruction). It must outlive every concurrent Apply.
  void AttachMaintenance(MaintenanceManager* mm) {
    maintenance_.store(mm, std::memory_order_release);
  }
  MaintenanceManager* maintenance() const {
    return maintenance_.load(std::memory_order_acquire);
  }

  const RecoveryStats& recovery() const { return recovery_; }
  const LogWriter& log() const { return *log_; }
  uint64_t wal_appends() const { return log_->appends(); }
  uint64_t wal_fsyncs() const { return log_->fsyncs(); }
  uint64_t wal_bytes() const { return log_->durable_bytes(); }
  bool degraded() const { return log_->degraded(); }
  const std::string& path() const { return path_; }
  const Options& options() const { return options_; }

  /// Times a writer blocked behind an urgent rebalancing checkpoint.
  uint64_t write_stalls() const {
    return write_stalls_.load(std::memory_order_relaxed);
  }
  /// Inserts that hit interval-label gap saturation (before any retry).
  uint64_t saturation_events() const {
    return saturation_events_.load(std::memory_order_relaxed);
  }
  /// kRebaseLive checkpoints completed (live label rebalances).
  uint64_t rebases() const {
    return rebases_.load(std::memory_order_relaxed);
  }
  /// Low-water mark of ApplyStats::min_free_gap since the last rebase —
  /// the maintenance gap-pressure trigger. UINT32_MAX = no pressure seen.
  uint32_t min_free_gap_low_water() const {
    return min_free_gap_.load(std::memory_order_relaxed);
  }

  /// "<path>.wal" — the log location convention.
  static std::string WalPath(const std::string& store_path) {
    return store_path + ".wal";
  }

 private:
  DurableStore() = default;

  /// One attempt of the Apply protocol (steps 1..5 of the class comment).
  Result<ApplyReceipt> ApplyOnce(const storage::UpdateOp& op,
                                 obs::ExecStats* stats);

  std::string path_;  // empty = ephemeral
  Options options_;
  std::unique_ptr<storage::MctStore> store_;
  std::atomic<storage::MctStore*> live_store_{nullptr};
  /// Stores replaced by kRebaseLive checkpoints, kept alive for readers
  /// that resolved them before the swap. Bounded by the checkpoint count.
  std::vector<std::unique_ptr<storage::MctStore>> retired_;
  std::unique_ptr<LogWriter> log_;
  RecoveryStats recovery_;
  std::atomic<MaintenanceManager*> maintenance_{nullptr};

  std::mutex write_mu_;       // serializes Apply bodies and Checkpoint
  Lsn last_applied_ = kNoLsn;  // guarded by write_mu_

  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> saturation_events_{0};
  std::atomic<uint64_t> rebases_{0};
  std::atomic<uint32_t> min_free_gap_{UINT32_MAX};
  std::atomic<bool> readonly_announced_{false};  // one Enter event per episode
};

}  // namespace mctdb::wal
