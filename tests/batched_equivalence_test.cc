// The batched execution path (page spans + SoA block joins + index-assisted
// scan bounds) against the tuple-at-a-time oracle: every workload query, on
// every designer schema, through both ExecModes, must produce byte-identical
// results. The batched path may only change HOW MUCH I/O happens (never
// more), not WHAT comes out.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/workload.h"

namespace mctdb {
namespace {

using design::Designer;
using design::Strategy;

void RunModeEquivalence(workload::Workload w) {
  er::ErGraph graph(w.diagram);
  Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);

  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    auto store = instance::Materialize(logical, schema);
    for (const auto& q : w.queries) {
      if (q.is_update()) continue;  // updates mutate; modes tested on reads
      auto plan = query::PlanQuery(q, schema);
      ASSERT_TRUE(plan.ok())
          << w.diagram.name() << "/" << q.name << " on " << schema.name()
          << ": " << plan.status().ToString();
      SCOPED_TRACE(w.diagram.name() + "/" + q.name + " on " + schema.name());

      query::Executor tuple_exec(store.get());
      tuple_exec.set_mode(query::ExecMode::kTuple);
      auto tuple = tuple_exec.Execute(*plan);
      ASSERT_TRUE(tuple.ok()) << tuple.status().ToString();

      query::Executor batched_exec(store.get());
      ASSERT_EQ(batched_exec.mode(), query::ExecMode::kBatched)
          << "batched must be the default";
      auto batched = batched_exec.Execute(*plan);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();

      // Byte-identical output: logical ids in order, the duplicate
      // accounting, group-by buckets, and the structural-join pair count
      // (skipped candidates are provably unable to join, so the pair
      // streams are identical, not merely the final sets).
      EXPECT_EQ(batched->logicals, tuple->logicals);
      EXPECT_EQ(batched->raw_count, tuple->raw_count);
      EXPECT_EQ(batched->unique_count, tuple->unique_count);
      EXPECT_EQ(batched->groups, tuple->groups);
      EXPECT_EQ(batched->join_pairs, tuple->join_pairs);
      // The point of the batched path: never MORE I/O than the oracle.
      EXPECT_LE(batched->page_hits + batched->page_misses,
                tuple->page_hits + tuple->page_misses);
      // The tuple oracle never consults the index.
      EXPECT_EQ(tuple->index_seeks, 0u);
    }
  }
}

TEST(BatchedEquivalenceTest, TpcwGridMatchesTupleOracle) {
  RunModeEquivalence(workload::TpcwWorkload(0.05));
}

TEST(BatchedEquivalenceTest, DerbyGridMatchesTupleOracle) {
  workload::Workload w = workload::DerbyWorkload();
  w.gen.base_count = 12;
  RunModeEquivalence(std::move(w));
}

TEST(BatchedEquivalenceTest, XmarkGridsMatchTupleOracle) {
  for (auto maker : {er::Er6Star, er::Er5Airline, er::Er9OneOneRing}) {
    workload::Workload w = workload::XmarkEmulatedWorkload(maker());
    w.gen.base_count = 10;
    RunModeEquivalence(std::move(w));
  }
}

TEST(BatchedEquivalenceTest, BatchedSkipsIoSomewhereOnTheGrid) {
  // The equivalence above would also pass if the bounds never fired. Pin
  // that the index actually works: across the TPC-W grid, at least one
  // query must record an index-assisted seek and a strict I/O reduction.
  workload::Workload w = workload::TpcwWorkload(0.05);
  er::ErGraph graph(w.diagram);
  Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);

  uint64_t total_seeks = 0;
  uint64_t tuple_io = 0;
  uint64_t batched_io = 0;
  for (Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    auto store = instance::Materialize(logical, schema);
    for (const auto& q : w.queries) {
      if (q.is_update()) continue;
      auto plan = query::PlanQuery(q, schema);
      ASSERT_TRUE(plan.ok());
      query::Executor tuple_exec(store.get());
      tuple_exec.set_mode(query::ExecMode::kTuple);
      auto tuple = tuple_exec.Execute(*plan);
      ASSERT_TRUE(tuple.ok());
      query::Executor batched_exec(store.get());
      auto batched = batched_exec.Execute(*plan);
      ASSERT_TRUE(batched.ok());
      total_seeks += batched->index_seeks;
      tuple_io += tuple->page_hits + tuple->page_misses;
      batched_io += batched->page_hits + batched->page_misses;
    }
  }
  EXPECT_GT(total_seeks, 0u) << "no query ever used the posting index";
  EXPECT_LT(batched_io, tuple_io)
      << "the batched path saved no I/O anywhere on the grid";
}

}  // namespace
}  // namespace mctdb
