// Prometheus text-exposition conformance checks for the mctsvc exports:
// every sample is preceded by its family's # HELP and # TYPE lines,
// counters are monotonic across scrapes, histogram `le` buckets are
// cumulative and end with +Inf, and label values are escaped.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "service/metrics.h"

namespace mctsvc {
namespace {

struct Sample {
  std::string name;    // metric name incl. _bucket/_sum/_count suffix
  std::string labels;  // raw label block without braces, may be empty
  double value = 0.0;
};

struct Exposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::map<std::string, bool> help_seen;
  std::vector<Sample> samples;
  std::vector<std::string> errors;
};

/// Minimal exposition-format reader that records ordering violations: a
/// sample whose family has no preceding # TYPE (or # HELP) is an error.
Exposition ParseExposition(const std::string& text) {
  Exposition out;
  std::istringstream in(text);
  std::string line;
  auto family_of = [&](const std::string& name) -> std::string {
    // Histograms own _bucket/_sum/_count samples; summaries own
    // _sum/_count (mctsvc_lock_wait_seconds is one).
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        std::string base = name.substr(0, name.size() - len);
        auto it = out.types.find(base);
        if (it != out.types.end() &&
            (it->second == "histogram" ||
             (it->second == "summary" &&
              std::string(suffix) != "_bucket"))) {
          return base;
        }
      }
    }
    return name;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      std::string rest = line.substr(7);
      out.help_seen[rest.substr(0, rest.find(' '))] = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      out.types[family] = type;
      continue;
    }
    if (line[0] == '#') {
      out.errors.push_back("unexpected comment: " + line);
      continue;
    }
    size_t brace = line.find('{');
    size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      out.errors.push_back("no value: " + line);
      continue;
    }
    Sample s;
    if (brace != std::string::npos && brace < space) {
      size_t close = line.rfind('}', space);
      if (close == std::string::npos) {
        out.errors.push_back("unterminated labels: " + line);
        continue;
      }
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
    } else {
      s.name = line.substr(0, space);
    }
    s.value = std::strtod(line.c_str() + space + 1, nullptr);
    std::string family = family_of(s.name);
    if (out.types.find(family) == out.types.end()) {
      out.errors.push_back("sample before # TYPE: " + line);
    }
    if (!out.help_seen[family]) {
      out.errors.push_back("sample before # HELP: " + line);
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

double SampleValue(const Exposition& e, const std::string& name,
                   const std::string& labels = "") {
  for (const Sample& s : e.samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "sample not found: " << name << "{" << labels << "}";
  return -1;
}

TEST(ExpositionTest, EverySampleHasHelpAndTypeBeforeIt) {
  ServiceMetrics m;
  m.submitted.store(3);
  m.latency.Record(1e-5);
  Exposition e = ParseExposition(m.ToPrometheus());
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  EXPECT_FALSE(e.samples.empty());
}

TEST(ExpositionTest, CounterFamiliesAreTypedCounter) {
  ServiceMetrics m;
  Exposition e = ParseExposition(m.ToPrometheus());
  for (const auto& [family, type] : e.types) {
    if (family.size() > 6 &&
        family.compare(family.size() - 6, 6, "_total") == 0) {
      EXPECT_EQ(type, "counter") << family;
    }
  }
  EXPECT_EQ(e.types.at("mctsvc_queue_depth"), "gauge");
  EXPECT_EQ(e.types.at("mctsvc_request_latency_seconds"), "histogram");
}

TEST(ExpositionTest, CountersAreMonotonicAcrossScrapes) {
  ServiceMetrics m;
  m.submitted.store(5);
  m.completed.store(4);
  m.page_misses.store(7);
  Exposition before = ParseExposition(m.ToPrometheus());
  m.submitted.fetch_add(2);
  m.completed.fetch_add(3);
  m.page_misses.fetch_add(1);
  m.latency.Record(0.5);
  Exposition after = ParseExposition(m.ToPrometheus());
  for (const Sample& s : before.samples) {
    if (s.name.size() > 6 &&
        s.name.compare(s.name.size() - 6, 6, "_total") == 0) {
      EXPECT_GE(SampleValue(after, s.name, s.labels), s.value) << s.name;
    }
  }
}

TEST(ExpositionTest, HistogramBucketsAreCumulativeAndEndWithInf) {
  ServiceMetrics m;
  m.latency.Record(1e-6);
  m.latency.Record(3e-6);
  m.latency.Record(100.0);  // overflow bucket
  Exposition e = ParseExposition(m.ToPrometheus());
  std::vector<std::pair<std::string, double>> buckets;
  for (const Sample& s : e.samples) {
    if (s.name == "mctsvc_request_latency_seconds_bucket") {
      buckets.emplace_back(s.labels, s.value);
    }
  }
  ASSERT_FALSE(buckets.empty());
  double prev = 0;
  for (const auto& [labels, value] : buckets) {
    EXPECT_GE(value, prev) << "non-cumulative bucket " << labels;
    prev = value;
  }
  EXPECT_EQ(buckets.back().first, "le=\"+Inf\"");
  EXPECT_DOUBLE_EQ(buckets.back().second, 3.0);
  EXPECT_DOUBLE_EQ(
      SampleValue(e, "mctsvc_request_latency_seconds_count"), 3.0);
}

TEST(ExpositionTest, ObservabilityHistogramsAreConformant) {
  ServiceMetrics m;
  m.wal_fsync_seconds.Record(2e-3);
  m.queue_wait_seconds.Record(1e-4);
  m.queue_wait_seconds.Record(5.0);  // overflow bucket
  Exposition e = ParseExposition(m.ToPrometheus());
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  for (const char* family :
       {"mctsvc_wal_fsync_seconds", "mctsvc_queue_wait_seconds"}) {
    EXPECT_EQ(e.types.at(family), "histogram") << family;
    EXPECT_TRUE(e.help_seen[family]) << family;
  }
  // Cumulative buckets ending in +Inf for the queue-wait family.
  std::vector<std::pair<std::string, double>> buckets;
  for (const Sample& s : e.samples) {
    if (s.name == "mctsvc_queue_wait_seconds_bucket") {
      buckets.emplace_back(s.labels, s.value);
    }
  }
  ASSERT_FALSE(buckets.empty());
  double prev = 0;
  for (const auto& [labels, value] : buckets) {
    EXPECT_GE(value, prev) << "non-cumulative bucket " << labels;
    prev = value;
  }
  EXPECT_EQ(buckets.back().first, "le=\"+Inf\"");
  EXPECT_DOUBLE_EQ(buckets.back().second, 2.0);
}

TEST(ExpositionTest, LockWaitFamiliesAreConformant) {
  ServiceMetrics m;
  Exposition e = ParseExposition(m.ToPrometheus());
  EXPECT_TRUE(e.errors.empty()) << e.errors.front();
  EXPECT_EQ(e.types.at("mctsvc_lock_wait_seconds"), "summary");
  EXPECT_EQ(e.types.at("mctsvc_lock_acquisitions_total"), "counter");
  EXPECT_TRUE(e.help_seen["mctsvc_lock_wait_seconds"]);
  EXPECT_TRUE(e.help_seen["mctsvc_lock_acquisitions_total"]);
  // One (sum, count) pair and one acquisitions sample per lock rank, each
  // labeled with the rank name.
  size_t sums = 0, counts = 0, acquisitions = 0;
  for (const Sample& s : e.samples) {
    if (s.name == "mctsvc_lock_wait_seconds_sum") {
      ++sums;
      EXPECT_EQ(s.labels.rfind("rank=\"", 0), 0u) << s.labels;
    }
    if (s.name == "mctsvc_lock_wait_seconds_count") ++counts;
    if (s.name == "mctsvc_lock_acquisitions_total") ++acquisitions;
  }
  EXPECT_EQ(sums, mctdb::kNumLockRanks);
  EXPECT_EQ(counts, mctdb::kNumLockRanks);
  EXPECT_EQ(acquisitions, mctdb::kNumLockRanks);
}

TEST(ExpositionTest, PromLabelEscapeHandlesSpecials) {
  EXPECT_EQ(PromLabelEscape("plain"), "plain");
  EXPECT_EQ(PromLabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(PromLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(PromLabelEscape("a\nb"), "a\\nb");
  EXPECT_EQ(PromLabelEscape("\\\"\n"), "\\\\\\\"\\n");
}

}  // namespace
}  // namespace mctsvc
