// The pruning soundness property: a plan the analyzer marks
// statically_empty must return exactly what the full pipeline would have
// returned (the empty set) — verified by executing every pruned plan BOTH
// ways on materialized data, across all seven designer strategies — and
// the pruned run must touch zero pages.
#include <gtest/gtest.h>

#include "design/designer.h"
#include "instance/materialize.h"
#include "obs/trace_export.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

using design::Designer;
using design::Strategy;

/// Shared small TPC-W database materialized under every strategy (same
/// fixture shape as executor_test.cc).
class PruneEquivalenceTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    w_ = new workload::Workload(workload::TpcwWorkload(0.05));
    graph_ = new er::ErGraph(w_->diagram);
    Designer designer(*graph_);
    logical_ = new instance::LogicalInstance(
        instance::GenerateInstance(*graph_, w_->gen));
    for (Strategy s : design::AllStrategies()) {
      schemas_->push_back(designer.Design(s));
    }
    for (mct::MctSchema& schema : *schemas_) {
      stores_->push_back(instance::Materialize(*logical_, schema));
    }
  }
  static void TearDownTestSuite() {
    delete stores_;
    delete schemas_;
    delete logical_;
    delete graph_;
    delete w_;
    stores_ = nullptr;
  }

  static const char* StrategyName(size_t i) {
    return design::ToString(design::AllStrategies()[i]);
  }

  /// Queries that are statically empty on every schema (undeclared
  /// attributes — nothing stored ever satisfies the predicate), but that
  /// the planner still compiles, so the unpruned pipeline can run.
  static std::vector<AssociationQuery> EmptyQueries() {
    std::vector<AssociationQuery> out;
    {
      QueryBuilder b("E1_scan", w_->diagram);
      int r = b.Root("country");
      b.Where(r, "population", "large");
      out.push_back(b.Build());
    }
    {
      // A multi-join shape: unpruned execution would pay real structural
      // joins before the predicate kills everything.
      QueryBuilder b("E2_join", w_->diagram);
      int r = b.Root("country");
      int a = b.Via(r, {"in", "address"});
      int c = b.Via(a, {"has", "customer"});
      b.Where(c, "shoe_size", "9");
      b.Output(c);
      out.push_back(b.Build());
    }
    {
      QueryBuilder b("E3_distinct", w_->diagram);
      int r = b.Root("order");
      b.Where(r, "carrier_pigeon", "yes");
      b.Distinct();
      out.push_back(b.Build());
    }
    return out;
  }

  static workload::Workload* w_;
  static er::ErGraph* graph_;
  static instance::LogicalInstance* logical_;
  static std::vector<mct::MctSchema>* schemas_;
  static std::vector<std::unique_ptr<storage::MctStore>>* stores_;
};

workload::Workload* PruneEquivalenceTest::w_ = nullptr;
er::ErGraph* PruneEquivalenceTest::graph_ = nullptr;
instance::LogicalInstance* PruneEquivalenceTest::logical_ = nullptr;
std::vector<mct::MctSchema>* PruneEquivalenceTest::schemas_ =
    new std::vector<mct::MctSchema>();
std::vector<std::unique_ptr<storage::MctStore>>* PruneEquivalenceTest::stores_ =
    new std::vector<std::unique_ptr<storage::MctStore>>();

TEST_F(PruneEquivalenceTest, GridPlansAreNeverPruned) {
  // The paper's workload queries all produce results: the analyzer must
  // not prune (or simplify away) any of them on any strategy.
  for (size_t i = 0; i < schemas_->size(); ++i) {
    for (const AssociationQuery& q : w_->queries) {
      auto plan = PlanQuery(q, (*schemas_)[i]);
      ASSERT_TRUE(plan.ok())
          << q.name << " on " << StrategyName(i) << ": "
          << plan.status().ToString();
      EXPECT_FALSE(plan->statically_empty)
          << q.name << " on " << StrategyName(i) << ": "
          << plan->prune_reason;
    }
  }
}

TEST_F(PruneEquivalenceTest, PrunedEqualsUnprunedAcrossTheGrid) {
  // The property itself: for every (empty query, strategy), run the plan
  // as planned (pruned) and with the prune flag cleared (full pipeline on
  // real data); the results must be identical — and the pruned run must
  // be zero-I/O.
  for (const AssociationQuery& q : EmptyQueries()) {
    for (size_t i = 0; i < schemas_->size(); ++i) {
      SCOPED_TRACE(q.name + std::string(" on ") + StrategyName(i));
      auto plan = PlanQuery(q, (*schemas_)[i]);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      ASSERT_TRUE(plan->statically_empty) << plan->prune_reason;
      EXPECT_EQ(plan->prune_reason.substr(0, 3), "QRY");

      Executor exec((*stores_)[i].get());
      auto pruned = exec.Execute(*plan);
      ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();

      QueryPlan full = *plan;
      full.statically_empty = false;
      auto unpruned = exec.Execute(full);
      ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();

      EXPECT_EQ(pruned->logicals, unpruned->logicals);
      EXPECT_EQ(pruned->raw_count, unpruned->raw_count);
      EXPECT_EQ(pruned->unique_count, unpruned->unique_count);
      EXPECT_EQ(pruned->groups, unpruned->groups);
      EXPECT_TRUE(pruned->logicals.empty());

      // Zero-I/O: the short-circuit never touches the buffer pool or a
      // join operator.
      EXPECT_EQ(pruned->page_hits + pruned->page_misses, 0u);
      EXPECT_EQ(pruned->join_pairs, 0u);
    }
  }
}

TEST_F(PruneEquivalenceTest, PrunedTraceCarriesTheReason) {
  AssociationQuery q = EmptyQueries()[0];
  auto plan = PlanQuery(q, (*schemas_)[0]);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->statically_empty);
  Executor exec((*stores_)[0].get());
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok());
  // The span tree must name the prune so `mctc trace` shows why the
  // query did no work.
  std::string trace = obs::SpanTreeToText(result->trace);
  EXPECT_NE(trace.find("pruned"), std::string::npos) << trace;
}

}  // namespace
}  // namespace mctdb::query
