#include "xml/xml_io.h"

#include <cctype>

#include "common/string_util.h"

namespace mctdb::xml {

namespace {

void WriteNode(const XmlNode& node, const WriteOptions& options, size_t depth,
               std::string* out) {
  if (options.pretty) out->append(2 * depth, ' ');
  *out += "<" + node.tag();
  for (const auto& [k, v] : node.attrs()) {
    *out += " " + k + "=\"" + EscapeXml(v) + "\"";
  }
  if (node.children().empty() && node.text().empty()) {
    *out += "/>";
    if (options.pretty) *out += "\n";
    return;
  }
  *out += ">";
  if (!node.text().empty()) {
    *out += EscapeXml(node.text());
  }
  if (!node.children().empty()) {
    if (options.pretty) *out += "\n";
    for (const auto& child : node.children()) {
      WriteNode(*child, options, depth + 1, out);
    }
    if (options.pretty) out->append(2 * depth, ' ');
  }
  *out += "</" + node.tag() + ">";
  if (options.pretty) *out += "\n";
}

/// Single-pass recursive-descent parser state.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlNodePtr> Parse() {
    SkipWhitespaceAndMisc();
    MCTDB_ASSIGN_OR_RETURN(XmlNodePtr root, ParseElement());
    SkipWhitespaceAndMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    return root;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StringPrintf("offset %zu: %s", pos_, msg.c_str()));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipWhitespaceAndMisc() {
    while (true) {
      SkipWhitespace();
      if (Consume("<?")) {  // processing instruction / xml header
        while (!Eof() && !Consume("?>")) ++pos_;
      } else if (Consume("<!--")) {
        while (!Eof() && !Consume("-->")) ++pos_;
      } else {
        return;
      }
    }
  }

  std::string ParseName() {
    size_t start = pos_;
    while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_' || Peek() == '-' || Peek() == ':' ||
                      Peek() == '.')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  static std::string Unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      auto rest = s.substr(i);
      if (rest.rfind("&amp;", 0) == 0) {
        out += '&';
        i += 4;
      } else if (rest.rfind("&lt;", 0) == 0) {
        out += '<';
        i += 3;
      } else if (rest.rfind("&gt;", 0) == 0) {
        out += '>';
        i += 3;
      } else if (rest.rfind("&quot;", 0) == 0) {
        out += '"';
        i += 5;
      } else if (rest.rfind("&apos;", 0) == 0) {
        out += '\'';
        i += 5;
      } else {
        out += '&';
      }
    }
    return out;
  }

  Result<XmlNodePtr> ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    std::string tag = ParseName();
    if (tag.empty()) return Error("expected element name");
    auto node = std::make_unique<XmlNode>(tag);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Eof()) return Error("unexpected end inside tag");
      if (Consume("/>")) return node;
      if (Consume(">")) break;
      std::string attr = ParseName();
      if (attr.empty()) return Error("expected attribute name");
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute");
      SkipWhitespace();
      char quote = Eof() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') return Error("expected quote");
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Error("unterminated attribute value");
      node->SetAttr(attr, Unescape(text_.substr(start, pos_ - start)));
      ++pos_;
    }

    // Content: text and child elements until the close tag.
    std::string text;
    while (true) {
      if (Eof()) return Error("unterminated element <" + tag + ">");
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string close = ParseName();
        if (close != tag) {
          return Error("mismatched close tag </" + close + "> for <" + tag +
                       ">");
        }
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' in close tag");
        node->set_text(std::string(Trim(Unescape(text))));
        return node;
      }
      if (text_.substr(pos_, 4) == "<!--") {
        pos_ += 4;
        while (!Eof() && !Consume("-->")) ++pos_;
        continue;
      }
      if (Peek() == '<') {
        MCTDB_ASSIGN_OR_RETURN(XmlNodePtr child, ParseElement());
        // Transfer ownership into the children list.
        node->AddChildNode(std::move(child));
        continue;
      }
      text += Peek();
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string WriteXml(const XmlNode& root, const WriteOptions& options) {
  std::string out;
  if (options.header) out += "<?xml version=\"1.0\"?>\n";
  WriteNode(root, options, 0, &out);
  return out;
}

Result<XmlNodePtr> ParseXml(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace mctdb::xml
