// The ER graph view of a simplified ER diagram (paper §2.1) plus the edge
// orientation and reachability machinery that Algorithm MC (Fig 7) and the
// eligibility analysis (§3.1) are built on.
//
// Nodes are the diagram's entity and relationship types. There is one edge
// per (relationship, endpoint) pair. Orientation (Fig 7 step 1):
//   * participation(endpoint) = MANY  =>  edge directed endpoint -> rel
//     (only that direction is nestable: each rel instance has exactly one
//     endpoint instance, so rel can sit under endpoint, never vice versa
//     without duplication);
//   * participation(endpoint) = ONE   =>  edge undirected (1:1 at instance
//     level; a traversal may orient it either way).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "er/er_model.h"

namespace mctdb::er {

using EdgeId = uint32_t;
inline constexpr EdgeId kInvalidEdge = 0xFFFFFFFFu;

/// One ER-graph edge: relationship `rel` <-> endpoint node `node`.
struct ErEdge {
  EdgeId id = kInvalidEdge;
  NodeId rel = kInvalidNode;   ///< the relationship-type side
  NodeId node = kInvalidNode;  ///< the endpoint (entity or lower-order rel)
  int endpoint_index = 0;      ///< 0 or 1 within the relationship
  Participation participation = Participation::kOne;  ///< of `node` in `rel`
  Totality totality = Totality::kPartial;

  /// Fig 7 step 1: MANY participation fixes the direction node -> rel.
  bool directed() const { return participation == Participation::kMany; }

  NodeId other(NodeId from) const { return from == rel ? node : rel; }
};

/// Statistics used by the Theorem 4.1 feasibility test.
struct ErGraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_many_many = 0;  ///< relationships with MANY on both sides
  size_t num_one_one = 0;
  size_t num_one_many = 0;
  /// Entities that are on the "many" side (participation ONE endpoint of a
  /// 1:N relationship whose other side is MANY) of more than one 1:N
  /// relationship — condition (iii) of Theorem 4.1.
  size_t num_multi_many_side_nodes = 0;
  bool is_forest = false;  ///< underlying undirected graph acyclic
};

class ErGraph {
 public:
  /// Builds the graph; `diagram` must outlive the graph.
  explicit ErGraph(const ErDiagram& diagram);

  const ErDiagram& diagram() const { return *diagram_; }
  size_t num_nodes() const { return diagram_->num_nodes(); }
  size_t num_edges() const { return edges_.size(); }

  const ErEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<ErEdge>& edges() const { return edges_; }
  /// Edge ids incident on `node` (as rel side or endpoint side).
  const std::vector<EdgeId>& incident(NodeId node) const {
    return incident_[node];
  }

  /// May edge `e` be traversed out of `from` (i.e. nested with `from` as
  /// parent)? endpoint -> rel: always; rel -> endpoint: only when the
  /// endpoint's participation is ONE.
  bool Traversable(const ErEdge& e, NodeId from) const;
  bool Traversable(EdgeId e, NodeId from) const {
    return Traversable(edges_[e], from);
  }

  /// Strongly connected components treating undirected edges as
  /// bidirectional and directed edges one-way. Returns one component id in
  /// [0, num_sccs) per node, in reverse topological order of the
  /// condensation (component 0 has no outgoing inter-SCC edges).
  std::vector<int> ComputeSccIds(int* num_sccs = nullptr) const;

  /// Nodes lying in source SCCs of the condensation (no incoming directed
  /// edge from another SCC) — the candidate start nodes of Fig 7 step 2.
  std::vector<NodeId> SourceSccNodes() const;

  /// True iff the underlying undirected multigraph is a forest (condition
  /// (i) of Theorem 4.1). Parallel edges between the same pair count as a
  /// cycle.
  bool IsForest() const;

  /// Reachability closure under Traversable(): out[x][y] == true iff a
  /// traversable (1:1 / 1:N composed) path leads from x to y. This is the
  /// "eligible pair" relation of §3.1.
  std::vector<std::vector<bool>> TraversableClosure() const;

  ErGraphStats Stats() const;

  /// Human-readable dump for debugging and example output.
  std::string DebugString() const;

 private:
  const ErDiagram* diagram_;
  std::vector<ErEdge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace mctdb::er
