// UNDR — un-normalized direct recoverable (paper §6).
//
// A multi-colored schema "in which direct recoverability, without color
// crossings, has been selectively increased at the cost of node
// normalization". We start from DUMC's DR schema and graft *functional
// context duplicates* into each color:
//
// For every relationship occurrence whose second endpoint is not realized at
// it (it is the far, shared side — e.g. `billing` under `order` missing its
// `address`), append a duplicated occurrence of that endpoint and extend it
// with its functional context (steps that are instance-functional: ONE-
// participation entity->rel, and rel->endpoint) — producing the
// address'->in'->country' and item'->write'->author' nests that make
// Q2-/Q12-style queries single-color, at the price Table 1 charges UNDR in
// storage and duplicate updates.
//
// The paper notes un-normalization is inherently subjective ("there were too
// many subjective ways…"); this functional-context rule is our concrete,
// deterministic instantiation — see DESIGN.md.
#pragma once

#include <string>

#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

struct UndrOptions {
  /// Maximum depth of a grafted functional-context chain.
  size_t max_context_depth = 6;
  size_t max_occurrences = 100000;
  /// Selectivity: graft each missing endpoint edge in only the first color
  /// that needs it (the paper's UNDR is *selectively* un-normalized and
  /// stays well below DEEP in storage). Set false to graft everywhere.
  bool graft_once_per_edge = true;
};

mct::MctSchema AlgorithmUndr(const er::ErGraph& graph,
                             std::string schema_name = "UNDR",
                             const UndrOptions& options = {});

}  // namespace mctdb::design
