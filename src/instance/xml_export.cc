#include "instance/xml_export.h"

#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace mctdb::instance {

Result<xml::XmlNodePtr> ExportColorXml(const storage::MctStore& store,
                                       mct::ColorId color,
                                       const ExportOptions& options) {
  if (color >= store.schema().num_colors()) {
    return Status::InvalidArgument("no such color");
  }
  auto root = std::make_unique<xml::XmlNode>(options.root_tag);
  root->SetAttr("color", store.schema().color_name(color));

  std::vector<storage::LabelEntry> entries = store.ColorEntries(color);
  // Pre-order reconstruction: maintain the open-ancestor stack by `end`.
  struct Open {
    uint32_t end;
    xml::XmlNode* node;
  };
  std::vector<Open> stack;
  const er::ErDiagram& diagram = store.schema().diagram();
  for (const storage::LabelEntry& e : entries) {
    while (!stack.empty() && stack.back().end < e.start) stack.pop_back();
    xml::XmlNode* parent = stack.empty() ? root.get() : stack.back().node;
    const storage::ElementMeta& meta = store.element(e.elem);
    xml::XmlNode* node = parent->AddChild(diagram.node(meta.er_node).name);
    if (options.node_ids) {
      node->SetAttr("_nid", std::to_string(e.elem));
    }
    for (const storage::AttrRecord& attr : store.attrs(e.elem)) {
      node->SetAttr(store.attr_name(attr.name_id), store.value(attr.value_id));
    }
    stack.push_back({e.end, node});
  }
  return root;
}

namespace {

void DigestNode(const xml::XmlNode& node, size_t depth, ColorDigest* digest) {
  ++digest->elements;
  if (depth > digest->max_depth) digest->max_depth = depth;
  digest->shape_hash =
      HashCombine(digest->shape_hash, Hash64(node.tag()));
  for (const auto& [name, value] : node.attrs()) {
    if (name == "_nid" || name == "color") continue;
    ++digest->attributes;
    digest->shape_hash = HashCombine(digest->shape_hash,
                                     HashCombine(Hash64(name), Hash64(value)));
  }
  for (const auto& child : node.children()) {
    DigestNode(*child, depth + 1, digest);
  }
}

}  // namespace

ColorDigest DigestXml(const xml::XmlNode& root) {
  ColorDigest digest;
  for (const auto& child : root.children()) {
    DigestNode(*child, 1, &digest);
  }
  return digest;
}

ColorDigest DigestColor(const storage::MctStore& store, mct::ColorId color) {
  // Build the digest directly from the store's document order, mirroring
  // DigestNode's traversal.
  ColorDigest digest;
  std::vector<storage::LabelEntry> entries = store.ColorEntries(color);
  const er::ErDiagram& diagram = store.schema().diagram();
  // Depth from levels; same order as the exported document.
  for (const storage::LabelEntry& e : entries) {
    ++digest.elements;
    size_t depth = size_t(e.level) + 1;
    if (depth > digest.max_depth) digest.max_depth = depth;
    const storage::ElementMeta& meta = store.element(e.elem);
    digest.shape_hash = HashCombine(digest.shape_hash,
                                    Hash64(diagram.node(meta.er_node).name));
    for (const storage::AttrRecord& attr : store.attrs(e.elem)) {
      ++digest.attributes;
      digest.shape_hash = HashCombine(
          digest.shape_hash, HashCombine(Hash64(store.attr_name(attr.name_id)),
                                         Hash64(store.value(attr.value_id))));
    }
  }
  return digest;
}

}  // namespace mctdb::instance
