// Fig 8 reproduction: number of structural joins for the TPC-W queries,
// per schema (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).
#include "bench/bench_util.h"
#include "bench/report.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  // Plan metrics are scale-independent, but the scale argument is still
  // validated so a typo fails loudly instead of being silently ignored.
  BenchArgs args = ParseBenchArgs(argc, argv);
  if (!args.ok) return 1;
  std::printf(
      "=== Fig 8: Number of structural joins for TPC-W queries ===\n\n");
  TpcwSetup setup(0.01, /*materialize=*/false);
  JsonReporter reporter("fig8", 0.01);

  std::printf("%-6s", "");
  for (const auto& schema : setup.schemas) {
    std::printf("%9s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(6 + 9 * setup.schemas.size());
  for (const std::string& name : setup.w.figure_queries) {
    const query::AssociationQuery* q = setup.w.Find(name);
    std::printf("%-6s", name.c_str());
    for (const auto& schema : setup.schemas) {
      auto plan = query::PlanQuery(*q, schema);
      size_t joins = plan.ok() ? plan->Stats().structural_joins : 0;
      std::printf("%9zu", joins);
      reporter.Add(schema.name(), name)
          .Extra("structural_joins", double(joins));
    }
    std::printf("\n");
  }
  if (!args.json_path.empty()) {
    Status status = reporter.WriteTo(args.json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
