// Ablation: holistic TwigStack [7] vs a pipeline of binary stack-tree
// structural joins [1] on the same pattern — the two structural-join
// primitives the paper cites. TwigStack coordinates all streams in one
// pass and never buffers elements that cannot join (optimal for a-d
// twigs); the binary pipeline materializes an intermediate result per
// edge.
#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "bench/bench_util.h"
#include "query/structural_join.h"
#include "query/twig_join.h"

namespace {

using namespace mctdb;
using namespace mctdb::bench;

TpcwSetup* Setup(double scale) {
  static std::map<double, std::unique_ptr<TpcwSetup>>* cache =
      new std::map<double, std::unique_ptr<TpcwSetup>>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    it = cache->emplace(scale, std::make_unique<TpcwSetup>(scale)).first;
  }
  return it->second.get();
}

/// The AF store (single color, deep nesting) and the 4-level chain
/// country // address // customer // order.
storage::MctStore* AfStore(TpcwSetup* setup) {
  auto all = design::AllStrategies();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == design::Strategy::kAf) return setup->stores[i].get();
  }
  return nullptr;
}

std::vector<er::NodeId> ChainTags(const er::ErDiagram& d) {
  return {*d.FindNode("country"), *d.FindNode("address"),
          *d.FindNode("customer"), *d.FindNode("order")};
}

void BM_TwigStack(benchmark::State& state) {
  TpcwSetup* setup = Setup(double(state.range(0)) / 100.0);
  storage::MctStore* store = AfStore(setup);
  auto tags = ChainTags(setup->w.diagram);
  query::TwigPattern twig;
  for (size_t i = 0; i < tags.size(); ++i) {
    twig.nodes.push_back({tags[i], static_cast<int>(i) - 1, {}});
  }
  uint64_t matched = 0;
  for (auto _ : state) {
    auto result = query::TwigStackJoin(*store, 0, twig);
    matched = result.ok() ? result->matched.back().size() : 0;
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched_orders"] = double(matched);
}

void BM_BinaryJoinPipeline(benchmark::State& state) {
  TpcwSetup* setup = Setup(double(state.range(0)) / 100.0);
  storage::MctStore* store = AfStore(setup);
  auto tags = ChainTags(setup->w.diagram);
  uint64_t matched = 0;
  for (auto _ : state) {
    std::vector<storage::LabelEntry> current;
    {
      const storage::PostingMeta* meta = store->Posting(0, tags[0]);
      current = ReadAll(store->buffer_pool(), *meta);
    }
    for (size_t i = 1; i < tags.size(); ++i) {
      const storage::PostingMeta* meta = store->Posting(0, tags[i]);
      auto candidates = ReadAll(store->buffer_pool(), *meta);
      auto joined = query::StackTreeJoin(current, candidates);
      current = std::move(joined.descendants);
    }
    matched = current.size();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched_orders"] = double(matched);
}

}  // namespace

BENCHMARK(BM_TwigStack)->Arg(50)->Arg(100)->Arg(200);
BENCHMARK(BM_BinaryJoinPipeline)->Arg(50)->Arg(100)->Arg(200);

MCTDB_MICRO_BENCH_MAIN();
