#include "er/rich_er.h"

#include "common/string_util.h"

namespace mctdb::er {

namespace {

/// Flattens one rich attribute into atomic attributes (dotted-name join),
/// routing multivalued ones to `multivalued` for satellite extraction.
void Flatten(const RichAttribute& attr, const std::string& prefix,
             std::vector<Attribute>* atomic,
             std::vector<std::pair<std::string, AttrType>>* multivalued,
             SimplifyReport* report) {
  std::string name = prefix.empty() ? attr.name : prefix + "_" + attr.name;
  if (!attr.components.empty()) {
    if (report) ++report->composite_flattened;
    for (const RichAttribute& sub : attr.components) {
      Flatten(sub, name, atomic, multivalued, report);
    }
    return;
  }
  if (attr.multivalued) {
    if (report) ++report->multivalued_extracted;
    multivalued->emplace_back(name, attr.type);
    return;
  }
  atomic->push_back({name, attr.type, attr.is_key});
}

struct FlattenResult {
  std::vector<Attribute> atomic;
  std::vector<std::pair<std::string, AttrType>> multivalued;
};

FlattenResult FlattenAll(const std::vector<RichAttribute>& attrs,
                         SimplifyReport* report) {
  FlattenResult out;
  for (const RichAttribute& a : attrs) {
    Flatten(a, "", &out.atomic, &out.multivalued, report);
  }
  return out;
}

}  // namespace

Result<ErDiagram> Simplify(const RichErDiagram& rich,
                           SimplifyReport* report) {
  ErDiagram out(rich.name);

  // 1. Entities, with composite flattening and multivalued extraction.
  struct Satellite {
    std::string owner;
    std::string attr_name;
    AttrType type;
  };
  std::vector<Satellite> satellites;
  for (const RichEntity& entity : rich.entities) {
    if (out.FindNode(entity.name)) {
      return Status::InvalidArgument("duplicate entity " + entity.name);
    }
    FlattenResult flat = FlattenAll(entity.attributes, report);
    out.AddEntity(entity.name, std::move(flat.atomic));
    for (auto& [attr_name, type] : flat.multivalued) {
      satellites.push_back({entity.name, attr_name, type});
    }
  }
  // 2. Satellite entities for multivalued attributes: E 1:N E_attr, total
  //    on the satellite side (a value exists only with its owner).
  for (const Satellite& sat : satellites) {
    std::string sat_name = sat.owner + "_" + sat.attr_name;
    NodeId sat_id = out.AddEntity(
        sat_name, {{"id", AttrType::kString, true},
                   {"value", sat.type, false}});
    auto rel = out.AddOneToMany("has_" + sat_name, *out.FindNode(sat.owner),
                                sat_id, Totality::kTotal);
    MCTDB_RETURN_IF_ERROR(rel.status());
  }

  // 3. Relationships.
  for (const RichRelationship& rel : rich.relationships) {
    if (rel.endpoints.size() < 2) {
      return Status::InvalidArgument("relationship " + rel.name +
                                     " needs >= 2 endpoints");
    }
    FlattenResult flat = FlattenAll(rel.attributes, report);
    if (!flat.multivalued.empty()) {
      return Status::NotSupported(
          "multivalued attributes on relationships are not reduced; move "
          "them to a participating entity");
    }

    bool recursive = false;
    for (size_t i = 0; i + 1 < rel.endpoints.size() && !recursive; ++i) {
      for (size_t j = i + 1; j < rel.endpoints.size(); ++j) {
        recursive |= rel.endpoints[i].entity == rel.endpoints[j].entity;
      }
    }

    if (rel.endpoints.size() == 2 && !recursive) {
      // Already binary and simple.
      auto a = out.FindNode(rel.endpoints[0].entity);
      auto b = out.FindNode(rel.endpoints[1].entity);
      if (!a || !b) {
        return Status::InvalidArgument("unknown endpoint in " + rel.name);
      }
      auto added = out.AddRelationship(
          rel.name, *a, rel.endpoints[0].participation, *b,
          rel.endpoints[1].participation, rel.endpoints[0].totality,
          rel.endpoints[1].totality, std::move(flat.atomic));
      MCTDB_RETURN_IF_ERROR(added.status());
      continue;
    }

    // n-ary and/or recursive: reify as an entity, then one binary 1:N per
    // endpoint (each reified instance has exactly one partner per slot).
    if (report) {
      if (rel.endpoints.size() > 2) ++report->nary_decomposed;
      if (recursive) ++report->recursive_decomposed;
    }
    std::vector<Attribute> reified_attrs = std::move(flat.atomic);
    reified_attrs.insert(reified_attrs.begin(),
                         {"id", AttrType::kString, true});
    NodeId reified = out.AddEntity(rel.name, std::move(reified_attrs));
    for (size_t i = 0; i < rel.endpoints.size(); ++i) {
      const RichEndpoint& ep = rel.endpoints[i];
      auto target = out.FindNode(ep.entity);
      if (!target) {
        return Status::InvalidArgument("unknown endpoint " + ep.entity +
                                       " in " + rel.name);
      }
      std::string role =
          ep.role.empty() ? "p" + std::to_string(i + 1) : ep.role;
      // The endpoint entity relates 1:N to the reified instances (an
      // entity can appear in many instances of the n-ary relationship;
      // each instance has exactly one entity per slot). The original
      // endpoint participation survives as the many-side totality proxy:
      // a MANY-participation endpoint keeps partial totality, a ONE
      // endpoint with total participation keeps it.
      auto added = out.AddOneToMany(rel.name + "_" + role, *target, reified,
                                    Totality::kTotal);
      MCTDB_RETURN_IF_ERROR(added.status());
    }
  }
  MCTDB_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace mctdb::er
