// Flight recorder: a lock-free, per-thread ring buffer of fixed-size
// binary events — the black box that survives a crash (DESIGN.md §16).
//
// Every instrumented site calls Record(subsystem, site, trace_id, arg):
// one relaxed atomic load when the recorder is disabled, and when enabled
// four relaxed stores plus one release store into the calling thread's
// private ring. There are no locks anywhere on the record path, so it is
// safe from any thread at any time, including inside WAL group commit and
// buffer-pool eviction.
//
// Rings are claimed one per thread (lazily, on first Record) from a fixed
// global registry and are never freed: a thread that exits leaves its
// events behind for the post-mortem, which is the point. The dumper walks
// the registry with acquire loads only — no allocation, no locks, no
// formatting — which makes DumpToFd() async-signal-safe and lets the
// crash handler write the last-N-events-per-thread to disk from inside
// SIGABRT/SIGSEGV before the process dies.
//
// TSAN-cleanliness: every slot word is a std::atomic<uint64_t>. A dumper
// racing a wrapped writer can observe a logically torn event (words from
// two different events in one slot); each slot's packed word carries the
// event's sequence number, so the decoder drops slots whose sequence
// disagrees with their position instead of emitting garbage.
//
// Dump triggers:
//   * on demand             DumpToFile / DumpToConfiguredPath
//   * on fatal signal       InstallCrashHandler (write()-only path)
//   * on Status escalation  first DataLoss/Unavailable after Enable()
//                           (one-shot; see SetDumpPath)
// `mctc blackbox <dump>` decodes a dump to text or JSON; /flightz serves
// a live Snapshot() of the rings.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mctdb::obs::flight {

/// Which layer recorded the event. Fits in 8 bits on the wire.
enum class Subsystem : uint8_t {
  kService = 0,  ///< admission, shedding, breaker, deadlines
  kPlanCache,    ///< lookup outcomes and generation bumps
  kExec,         ///< executor stage spans (begin/end)
  kWal,          ///< append, group-commit fsync
  kCheckpoint,   ///< checkpoint begin/end
  kPool,         ///< buffer-pool eviction / quarantine
  kFailpoint,    ///< armed fault-injection site fired
  kStatus,       ///< Status escalated to DataLoss/Unavailable
};
inline constexpr size_t kNumSubsystems = 8;

/// What happened. The `arg` column's meaning is per-site (catalog in
/// DESIGN.md §16): LSNs for WAL sites, page ids for pool sites, StageKind
/// (low byte) for span sites, generation for plan-cache sites.
enum class Site : uint8_t {
  kAdmit = 0,             ///< arg: in-flight count after admission
  kShed,                  ///< arg: in-flight count at the shed decision
  kReject,                ///< arg: in-flight count at the hard limit
  kBreakerReject,         ///< arg: 0
  kDeadline,              ///< arg: 0 (cancelled at dequeue)
  kSpanBegin,             ///< arg: StageKind
  kSpanEnd,               ///< arg: StageKind | elapsed_us << 8
  kPlanCacheHit,          ///< arg: visible LSN the entry matched
  kPlanCacheMiss,         ///< arg: visible LSN planned against
  kPlanCacheInvalidated,  ///< arg: visible LSN that evicted the entry
  kGenerationBump,        ///< arg: the new generation
  kWalAppend,             ///< arg: assigned LSN
  kWalFsync,              ///< arg: batch-end LSN the fsync made durable
  kCheckpointBegin,       ///< arg: last applied LSN at entry
  kCheckpointEnd,         ///< arg: checkpoint LSN
  kEvict,                 ///< arg: evicted page id
  kQuarantine,            ///< arg: quarantined page id
  kFailpointHit,          ///< arg: first 8 bytes of the site name
  kEscalation,            ///< arg: Status::Code value
  kMaintenanceTrigger,    ///< arg: CheckpointReason value
  kWriteStall,            ///< arg: stall count for the store so far
  kReadOnlyEnter,         ///< arg: errno that degraded the WAL
  kReadOnlyExit,          ///< arg: durable LSN after the re-probe
};
inline constexpr size_t kNumSites = 23;

const char* ToString(Subsystem s);
const char* ToString(Site s);

namespace internal {
extern std::atomic<bool> g_enabled;
void RecordSlow(Subsystem subsystem, Site site, uint64_t trace_id,
                uint64_t arg);
}  // namespace internal

/// True once Enable() ran (and Disable() has not).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns the recorder on with `events_per_thread` ring slots per thread
/// (0 = keep the current/default sizing, 1024 events = 32 KiB). Also
/// installs the failpoint-hit and Status-escalation observers. Idempotent;
/// the sizing only applies to rings claimed after the call.
void Enable(size_t events_per_thread = 0);

/// Stops recording (rings and their contents stay readable). For tests.
void Disable();

/// Records one event into the calling thread's ring. One relaxed load
/// when the recorder is off.
inline void Record(Subsystem subsystem, Site site, uint64_t trace_id,
                   uint64_t arg) {
  if (!internal::g_enabled.load(std::memory_order_relaxed)) return;
  internal::RecordSlow(subsystem, site, trace_id, arg);
}

/// Configures the dump destination used by the crash handler and the
/// Status-escalation one-shot. The path is copied into a fixed buffer
/// (truncated past ~255 bytes) so the signal path never allocates.
void SetDumpPath(const char* path);
const char* DumpPath();  // "" when unset

/// Writes the binary dump to `fd`. Async-signal-safe: atomic loads, stack
/// buffers, and write() only. Returns false on a write error.
bool DumpToFd(int fd);

/// Opens/truncates `path` and writes the binary dump.
Status DumpToFile(const char* path);

/// DumpToFile(DumpPath()); InvalidArgument when no path is configured.
Status DumpToConfiguredPath();

/// Installs the fatal-signal dump handler (SIGABRT, SIGSEGV, SIGBUS,
/// SIGILL, SIGFPE): writes the dump to DumpPath(), then re-raises so the
/// process still dies by the original signal (CI exit-code assertions
/// keep working). No-op handler when DumpPath() is empty.
void InstallCrashHandler();

/// One decoded event. `thread_index` is the ring's registry slot (stable
/// per thread for the process lifetime); `seq` orders events within one
/// thread even when timestamps collide.
struct Event {
  uint64_t nanos = 0;  ///< CLOCK_MONOTONIC at Record time
  uint64_t trace_id = 0;
  uint64_t arg = 0;
  uint64_t seq = 0;
  uint32_t thread_index = 0;
  Subsystem subsystem = Subsystem::kService;
  Site site = Site::kAdmit;
};

/// Decodes a binary dump (as produced by DumpToFd). Torn slots are
/// dropped; a bad magic or truncated header is an error.
Result<std::vector<Event>> Decode(const std::string& bytes);
Result<std::vector<Event>> DecodeFile(const std::string& path);

/// Live snapshot of every ring, for /flightz. Same torn-slot filtering as
/// Decode.
std::vector<Event> Snapshot();

/// Renderers sort by (nanos, thread_index, seq). Text is one event per
/// line; JSON is {"events":[{...},...]}. `trace_filter` != 0 keeps only
/// that trace's events.
std::string RenderText(const std::vector<Event>& events,
                       uint64_t trace_filter = 0);
std::string RenderJson(const std::vector<Event>& events,
                       uint64_t trace_filter = 0);

/// Test hook: drops every ring's contents (the rings themselves survive)
/// and re-arms the escalation one-shot.
void ResetForTest();

}  // namespace mctdb::obs::flight
