// MCMR — minimal color, maximal recoverable (paper §5.2, §6).
//
// Starts from Algorithm MC's output (whose color count is locally minimal),
// then *re-uses* ER edges — giving up edge normal form — to maximize direct
// recoverability within those same colors:
//   1. every eligible association path not yet directly recoverable is
//      packed, longest first, into whichever existing color accepts it;
//   2. each color's forest is then greedily saturated with any remaining
//      traversable edge ("adding as many edges as possible to each colored
//      tree").
// Node normal form and association recoverability are preserved; the color
// count never grows; DR is maximized but not guaranteed complete (the §5.2
// second toy graph is the witness).
#pragma once

#include <string>

#include "er/er_graph.h"
#include "mct/mct_schema.h"

namespace mctdb::design {

mct::MctSchema AlgorithmMcmr(const er::ErGraph& graph,
                             std::string schema_name = "MCMR");

}  // namespace mctdb::design
