// LogReader: scans a WAL file, verifying header and per-record checksums
// and locating the torn tail (the first byte that cannot be part of a
// complete, checksum-valid, LSN-monotonic record). Used by recovery (which
// then truncates the tail and replays the prefix) and by wal_lint (which
// only reports).
#pragma once

#include <string>
#include <vector>

#include "common/lsn.h"
#include "common/result.h"
#include "wal/wal_format.h"

namespace mctdb::wal {

struct LogScan {
  /// False when the header itself was torn or checksum-failed — the log
  /// carries no trustworthy information at all (recovery resets it; the
  /// checkpoint protocol guarantees the store file already holds
  /// everything such a log could have held).
  bool header_valid = false;
  WalHeader header;
  std::vector<WalRecord> records;  ///< the valid prefix, LSN order
  Lsn last_lsn = kNoLsn;           ///< header.checkpoint_lsn when no records
  /// Bytes of the valid prefix (header + complete records). Everything at
  /// and beyond this offset is torn tail.
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  bool torn() const { return valid_bytes < file_bytes; }
};

/// Reads and scans the whole log. NotFound when the file does not exist;
/// InvalidArgument when it is not a WAL file (wrong magic) or records a
/// different schema fingerprint (`expected_fingerprint` != 0). A torn
/// header or tail is NOT an error — that is exactly what the scan reports.
Result<LogScan> ScanLog(const std::string& path,
                        uint64_t expected_fingerprint);

/// Scan of in-memory log bytes (shared by file scan and tests).
LogScan ScanLogBytes(std::string_view bytes);

}  // namespace mctdb::wal
