// Fig 14 reproduction: geometric mean of the number of duplicate
// eliminations / duplicate updates / group-bys over the ER collection, per
// schema.
#include "er/er_catalog.h"

#include "bench/bench_util.h"

using namespace mctdb;
using namespace mctdb::bench;

int main() {
  std::vector<workload::Workload> workloads;
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    if (d.name() == "Derby") {
      workloads.push_back(workload::DerbyWorkload());
    } else if (d.name() == "TPC-W") {
      workloads.push_back(workload::TpcwWorkload(0.01));
    } else {
      workloads.push_back(workload::XmarkEmulatedWorkload(d));
    }
  }
  const std::vector<design::Strategy> strategies = {
      design::Strategy::kDeep, design::Strategy::kAf,
      design::Strategy::kShallow, design::Strategy::kEn,
      design::Strategy::kMcmr, design::Strategy::kDr};
  std::printf(
      "=== Fig 14: Geometric mean of number of duplicate eliminations / "
      "duplicate updates / group-bys, ER collection ===\n\n%-8s",
      "");
  for (design::Strategy s : strategies) {
    std::printf("%9s", design::ToString(s));
  }
  std::printf("\n");
  PrintRule(8 + 9 * strategies.size());
  auto cells = workload::AnalyzeCollection(workloads, strategies);
  for (size_t i = 0; i < cells.size(); i += strategies.size()) {
    std::printf("%-8s", cells[i].diagram.c_str());
    for (size_t j = 0; j < strategies.size(); ++j) {
      std::printf("%9.2f", cells[i + j].gmean_dup_ops);
    }
    std::printf("\n");
  }
  return 0;
}
