#include "obs/exec_stats.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"

namespace mctdb::obs {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// kSpanEnd packs elapsed µs above the stage kind (flight_recorder.h).
uint64_t SpanEndArg(StageKind kind, double elapsed_seconds) {
  const uint64_t us = static_cast<uint64_t>(elapsed_seconds * 1e6);
  return static_cast<uint64_t>(kind) | (us << 8);
}

}  // namespace

const char* ToString(StageKind kind) {
  switch (kind) {
    case StageKind::kQuery:
      return "query";
    case StageKind::kTagScan:
      return "tag_scan";
    case StageKind::kCrossColor:
      return "cross_color";
    case StageKind::kStructuralJoin:
      return "structural_join";
    case StageKind::kValueJoin:
      return "value_join";
    case StageKind::kPredicateFilter:
      return "predicate_filter";
    case StageKind::kBackwardReduction:
      return "backward_reduction";
    case StageKind::kDupElim:
      return "dup_elim";
    case StageKind::kGroupBy:
      return "group_by";
    case StageKind::kUpdate:
      return "update";
    case StageKind::kWal:
      return "wal";
  }
  return "?";
}

uint64_t Span::total_page_hits() const {
  uint64_t total = page_hits;
  for (const Span& c : children) total += c.total_page_hits();
  return total;
}

uint64_t Span::total_page_misses() const {
  uint64_t total = page_misses;
  for (const Span& c : children) total += c.total_page_misses();
  return total;
}

namespace {

void Accumulate(const Span& span, StageTable* table) {
  StageAgg& row = (*table)[static_cast<size_t>(span.kind)];
  double self = span.elapsed_seconds;
  for (const Span& c : span.children) self -= c.elapsed_seconds;
  row.seconds += self > 0 ? self : 0;
  row.calls += 1;
  row.cardinality_out += span.cardinality_out;
  row.join_pairs += span.join_pairs;
  row.page_hits += span.page_hits;
  row.page_misses += span.page_misses;
  for (const Span& c : span.children) Accumulate(c, table);
}

}  // namespace

StageTable AggregateByStage(const Span& root) {
  StageTable table{};
  Accumulate(root, &table);
  return table;
}

ExecStats::ExecStats(std::string query_label)
    : trace_id_(CurrentTraceId()) {
  root_.kind = StageKind::kQuery;
  root_.label = std::move(query_label);
  root_.trace_id = trace_id_;
  root_.start_nanos = NowNanos();
  open_.push_back(&root_);
  start_.push_back(std::chrono::steady_clock::now());
  flight::Record(flight::Subsystem::kExec, flight::Site::kSpanBegin,
                 trace_id_, static_cast<uint64_t>(StageKind::kQuery));
}

void ExecStats::OnPageFetch(bool miss) {
  if (miss) {
    ++page_misses_;
  } else {
    ++page_hits_;
  }
  if (open_.empty()) return;
  Span* innermost = open_.back();
  if (miss) {
    ++innermost->page_misses;
  } else {
    ++innermost->page_hits;
  }
}

Span* ExecStats::BeginSpan(StageKind kind, std::string label) {
  MCTDB_CHECK_MSG(!open_.empty(), "BeginSpan after Finish");
  // Stack discipline: only the innermost open span grows children, so no
  // open span's address can be invalidated by this push_back (a span's
  // own children vector may reallocate, but the span object stays put).
  Span* parent = open_.back();
  parent->children.emplace_back();
  Span* span = &parent->children.back();
  span->kind = kind;
  span->label = std::move(label);
  span->trace_id = trace_id_;
  span->start_nanos = NowNanos();
  open_.push_back(span);
  start_.push_back(std::chrono::steady_clock::now());
  flight::Record(flight::Subsystem::kExec, flight::Site::kSpanBegin,
                 trace_id_, static_cast<uint64_t>(kind));
  return span;
}

void ExecStats::EndSpan() {
  MCTDB_CHECK_MSG(open_.size() > 1, "EndSpan without matching BeginSpan");
  Span* span = open_.back();
  span->elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_.back())
          .count();
  open_.pop_back();
  start_.pop_back();
  flight::Record(flight::Subsystem::kExec, flight::Site::kSpanEnd, trace_id_,
                 SpanEndArg(span->kind, span->elapsed_seconds));
}

void ExecStats::AddJoinPairs(uint64_t pairs) {
  join_pairs_ += pairs;
  if (!open_.empty()) open_.back()->join_pairs += pairs;
}

Span ExecStats::Finish() {
  MCTDB_CHECK_MSG(open_.size() == 1, "Finish with spans still open");
  root_.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_.back())
          .count();
  root_.join_pairs = join_pairs_;
  open_.clear();
  start_.clear();
  flight::Record(flight::Subsystem::kExec, flight::Site::kSpanEnd, trace_id_,
                 SpanEndArg(StageKind::kQuery, root_.elapsed_seconds));
  return std::move(root_);
}

}  // namespace mctdb::obs
