#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace mctdb::failpoint {
namespace {

// Every test starts from (and restores) a clean registry: order does not
// matter, and an ambient MCTDB_FAILPOINTS chaos spec (the CI chaos job
// exports one for the whole suite) cannot leak into assertions about the
// registry itself.
class FailpointTest : public testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSitesReportNone) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(MCTDB_FAILPOINT("nothing.here"), Fault::kNone);
  EXPECT_EQ(HitCount("nothing.here"), 0u);
}

TEST_F(FailpointTest, ArmErrorFiresDeterministically) {
  std::string error;
  ASSERT_TRUE(Arm("t.err", "err", &error)) << error;
  EXPECT_TRUE(AnyArmed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(MCTDB_FAILPOINT("t.err"), Fault::kError);
  }
  EXPECT_EQ(HitCount("t.err"), 10u);
  // Other sites stay quiet.
  EXPECT_EQ(MCTDB_FAILPOINT("t.other"), Fault::kNone);
}

TEST_F(FailpointTest, TruncateActionAndExplicitProbabilityOne) {
  std::string error;
  ASSERT_TRUE(Arm("t.trunc", "trunc(1.0)", &error)) << error;
  EXPECT_EQ(MCTDB_FAILPOINT("t.trunc"), Fault::kTruncate);
}

TEST_F(FailpointTest, EnospcAndEioActionsParse) {
  std::string error;
  ASSERT_TRUE(Arm("t.nospace", "enospc", &error)) << error;
  EXPECT_EQ(MCTDB_FAILPOINT("t.nospace"), Fault::kEnospc);
  ASSERT_TRUE(Arm("t.badmedia", "eio(1.0)", &error)) << error;
  EXPECT_EQ(MCTDB_FAILPOINT("t.badmedia"), Fault::kEio);
  // Probability syntax is validated for the disk faults too.
  EXPECT_FALSE(Arm("t.nospace", "enospc(2.0)", &error));
  EXPECT_FALSE(Arm("t.badmedia", "eio(oops)", &error));
  // The rejected re-arms left the previous good actions in place.
  EXPECT_EQ(MCTDB_FAILPOINT("t.nospace"), Fault::kEnospc);
  EXPECT_EQ(MCTDB_FAILPOINT("t.badmedia"), Fault::kEio);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  std::string error;
  ASSERT_TRUE(Arm("t.never", "err(0.0)", &error)) << error;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(MCTDB_FAILPOINT("t.never"), Fault::kNone);
  }
  EXPECT_EQ(HitCount("t.never"), 0u);
}

TEST_F(FailpointTest, FractionalProbabilityFiresSometimes) {
  std::string error;
  ASSERT_TRUE(Arm("t.half", "err(0.5)", &error)) << error;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    if (MCTDB_FAILPOINT("t.half") == Fault::kError) ++fired;
  }
  // p=0.5 over 2000 trials: [600, 1400] is > 9 sigma on each side.
  EXPECT_GT(fired, 600);
  EXPECT_LT(fired, 1400);
  EXPECT_EQ(HitCount("t.half"), static_cast<uint64_t>(fired));
}

TEST_F(FailpointTest, DelayActionSleepsAndReportsNone) {
  std::string error;
  ASSERT_TRUE(Arm("t.delay", "delay(30)", &error)) << error;
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(MCTDB_FAILPOINT("t.delay"), Fault::kNone);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_EQ(HitCount("t.delay"), 1u);  // delays count as hits
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  std::string error;
  ASSERT_TRUE(Arm("t.dis", "err", &error)) << error;
  EXPECT_EQ(MCTDB_FAILPOINT("t.dis"), Fault::kError);
  Disarm("t.dis");
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(MCTDB_FAILPOINT("t.dis"), Fault::kNone);
}

TEST_F(FailpointTest, ConfigureArmsMultipleSites) {
  std::string error;
  ASSERT_TRUE(Configure("a.one=err;b.two=trunc(1.0);c.three=off", &error))
      << error;
  EXPECT_EQ(MCTDB_FAILPOINT("a.one"), Fault::kError);
  EXPECT_EQ(MCTDB_FAILPOINT("b.two"), Fault::kTruncate);
  EXPECT_EQ(MCTDB_FAILPOINT("c.three"), Fault::kNone);
}

TEST_F(FailpointTest, MalformedSpecLeavesRegistryUntouched) {
  std::string error;
  ASSERT_TRUE(Arm("t.keep", "err", &error)) << error;
  // Second entry is malformed: the whole spec must be rejected without
  // arming the first entry or clobbering existing state.
  EXPECT_FALSE(Configure("t.new=err;t.bad=bogus(", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(MCTDB_FAILPOINT("t.new"), Fault::kNone);
  EXPECT_EQ(MCTDB_FAILPOINT("t.keep"), Fault::kError);
}

TEST_F(FailpointTest, BadProbabilityRejected) {
  std::string error;
  EXPECT_FALSE(Arm("t.p", "err(1.5)", &error));
  EXPECT_FALSE(Arm("t.p", "err(-0.1)", &error));
  EXPECT_FALSE(Arm("t.p", "err(abc)", &error));
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, GuardRestoresPreviousAction) {
  std::string error;
  ASSERT_TRUE(Arm("t.guard", "trunc", &error)) << error;
  {
    FailpointGuard guard("t.guard", "err");
    EXPECT_EQ(MCTDB_FAILPOINT("t.guard"), Fault::kError);
  }
  // The guard restored trunc, not "disarmed" — an env-armed chaos spec
  // must survive a test guard.
  EXPECT_EQ(MCTDB_FAILPOINT("t.guard"), Fault::kTruncate);
  EXPECT_EQ(CurrentAction("t.guard"), "trunc");
}

TEST_F(FailpointTest, GuardOnUnarmedSiteDisarmsOnExit) {
  {
    FailpointGuard guard("t.fresh", "err");
    EXPECT_EQ(MCTDB_FAILPOINT("t.fresh"), Fault::kError);
  }
  EXPECT_FALSE(AnyArmed());
  EXPECT_EQ(MCTDB_FAILPOINT("t.fresh"), Fault::kNone);
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  std::string error;
  ASSERT_TRUE(Arm("t.mt", "err(0.5)", &error)) << error;
  constexpr int kThreads = 8;
  constexpr int kRolls = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int mine = 0;
      for (int i = 0; i < kRolls; ++i) {
        if (MCTDB_FAILPOINT("t.mt") == Fault::kError) ++mine;
      }
      fired.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(HitCount("t.mt"), static_cast<uint64_t>(fired.load()));
  EXPECT_GT(fired.load(), kThreads * kRolls / 4);
  EXPECT_LT(fired.load(), kThreads * kRolls * 3 / 4);
}

}  // namespace
}  // namespace mctdb::failpoint
