file(REMOVE_RECURSE
  "CMakeFiles/design_property_test.dir/design_property_test.cc.o"
  "CMakeFiles/design_property_test.dir/design_property_test.cc.o.d"
  "design_property_test"
  "design_property_test.pdb"
  "design_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
