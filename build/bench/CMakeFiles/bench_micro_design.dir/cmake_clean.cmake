file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_design.dir/bench_micro_design.cc.o"
  "CMakeFiles/bench_micro_design.dir/bench_micro_design.cc.o.d"
  "bench_micro_design"
  "bench_micro_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
