#include "storage/store.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"

namespace mctdb::storage {

const std::string* MctStore::AttrValue(ElemId id, std::string_view attr_name,
                                       Lsn snapshot) const {
  uint32_t value_id = AttrValueId(id, FindAttrName(attr_name), snapshot);
  return value_id == UINT32_MAX ? nullptr : &values_[value_id];
}

uint32_t MctStore::AttrValueId(ElemId id, uint32_t name_id,
                               Lsn snapshot) const {
  if (name_id == UINT32_MAX) return UINT32_MAX;
  if (versioned()) {
    std::shared_lock lk(deltas_->mu);
    auto it = deltas_->attr_revs.find(StoreDeltas::AttrKey(id, name_id));
    if (it != deltas_->attr_revs.end()) {
      // Revisions are appended in LSN order; the last one at or below the
      // snapshot wins. Older snapshots fall through to the base record.
      const AttrRev* best = nullptr;
      for (const AttrRev& r : it->second) {
        if (r.lsn <= snapshot) best = &r;
      }
      if (best != nullptr) return best->value_id;
    }
  }
  for (const AttrRecord& a : attrs_[id]) {
    if (a.name_id == name_id) return a.value_id;
  }
  return UINT32_MAX;
}

bool MctStore::ElementLive(ElemId id, Lsn snapshot) const {
  if (id >= elements_.size()) return false;
  if (!versioned()) return true;
  std::shared_lock lk(deltas_->mu);
  auto created = deltas_->element_created.find(id);
  if (created != deltas_->element_created.end() && created->second > snapshot) {
    return false;
  }
  auto deleted = deltas_->element_deleted.find(id);
  return deleted == deltas_->element_deleted.end() ||
         deleted->second > snapshot;
}

uint32_t MctStore::FindAttrName(std::string_view name) const {
  auto lookup = [&]() {
    auto it = attr_name_index_.find(std::string(name));
    return it == attr_name_index_.end() ? UINT32_MAX : it->second;
  };
  if (!versioned()) return lookup();
  std::shared_lock lk(deltas_->mu);
  return lookup();
}

uint32_t MctStore::FindValue(std::string_view v) const {
  auto lookup = [&]() {
    auto it = value_index_.find(std::string(v));
    return it == value_index_.end() ? UINT32_MAX : it->second;
  };
  if (!versioned()) return lookup();
  std::shared_lock lk(deltas_->mu);
  return lookup();
}

const PostingMeta* MctStore::Posting(mct::ColorId color,
                                     er::NodeId tag) const {
  if (color >= postings_.size() || tag >= postings_[color].size()) {
    return nullptr;
  }
  return postings_[color][tag].get();
}

bool MctStore::Label(mct::ColorId color, ElemId id, LabelEntry* out,
                     Lsn snapshot) const {
  if (color >= labels_.size()) return false;
  auto base = [&]() -> const LabelEntry* {
    auto it = labels_[color].find(id);
    return it == labels_[color].end() ? nullptr : &it->second;
  };
  if (!versioned()) {
    const LabelEntry* e = base();
    if (e == nullptr) return false;
    *out = *e;
    return true;
  }
  std::shared_lock lk(deltas_->mu);
  auto rm = deltas_->label_removed[color].find(id);
  if (rm != deltas_->label_removed[color].end() && rm->second <= snapshot) {
    return false;
  }
  if (const LabelEntry* e = base()) {
    *out = *e;
    return true;
  }
  auto ad = deltas_->label_added[color].find(id);
  if (ad != deltas_->label_added[color].end() &&
      ad->second.lsn <= snapshot) {
    *out = ad->second.entry;
    return true;
  }
  return false;
}

ElemId MctStore::Parent(mct::ColorId color, ElemId id, Lsn snapshot) const {
  if (color >= parents_.size()) return kInvalidElem;
  auto it = parents_[color].find(id);
  if (it != parents_[color].end()) return it->second;
  if (!versioned()) return kInvalidElem;
  std::shared_lock lk(deltas_->mu);
  auto ad = deltas_->label_added[color].find(id);
  if (ad == deltas_->label_added[color].end() || ad->second.lsn > snapshot) {
    return kInvalidElem;
  }
  auto pa = deltas_->parent_added[color].find(id);
  return pa == deltas_->parent_added[color].end() ? kInvalidElem : pa->second;
}

std::vector<LabelEntry> MctStore::ColorEntries(mct::ColorId color,
                                               Lsn snapshot) const {
  std::vector<LabelEntry> out;
  if (color >= labels_.size()) return out;
  out.reserve(labels_[color].size());
  if (!versioned()) {
    for (const auto& [elem, label] : labels_[color]) out.push_back(label);
  } else {
    std::shared_lock lk(deltas_->mu);
    const auto& removed = deltas_->label_removed[color];
    auto is_removed = [&](ElemId elem) {
      auto it = removed.find(elem);
      return it != removed.end() && it->second <= snapshot;
    };
    for (const auto& [elem, label] : labels_[color]) {
      if (!is_removed(elem)) out.push_back(label);
    }
    for (const auto& [elem, versioned_label] : deltas_->label_added[color]) {
      if (versioned_label.lsn <= snapshot && !is_removed(elem)) {
        out.push_back(versioned_label.entry);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              return a.start < b.start;
            });
  return out;
}

std::vector<ElemId> MctStore::ElementsFor(er::NodeId er_node, uint32_t logical,
                                          Lsn snapshot) const {
  if (er_node >= key_index_.size()) return {};
  std::vector<ElemId> out;
  auto it = key_index_[er_node].find(logical);
  if (it != key_index_[er_node].end()) out = it->second;
  if (!versioned()) return out;
  std::shared_lock lk(deltas_->mu);
  auto is_deleted = [&](ElemId elem) {
    auto del = deltas_->element_deleted.find(elem);
    return del != deltas_->element_deleted.end() && del->second <= snapshot;
  };
  out.erase(std::remove_if(out.begin(), out.end(), is_deleted), out.end());
  auto added = deltas_->key_index_added[er_node].find(logical);
  if (added != deltas_->key_index_added[er_node].end()) {
    for (const auto& [lsn, elem] : added->second) {
      if (lsn <= snapshot && !is_deleted(elem)) out.push_back(elem);
    }
  }
  return out;
}

StoreStats MctStore::Stats() const {
  StoreStats st;
  st.num_elements = elements_.size();
  st.num_attributes = num_attribute_nodes_;
  st.num_content_nodes = num_content_nodes_;
  st.num_colors = schema_->num_colors();
  // Bytes: posting pages + element metadata + attribute/content records
  // (charged with their value text per record, as a real store lays them
  // out — dictionary compression is not assumed, so DEEP/UNDR copies pay
  // full freight) + label and parent maps.
  size_t bytes = pager_.bytes();
  bytes += elements_.size() * sizeof(ElementMeta);
  for (const auto& a : attrs_) {
    for (const AttrRecord& rec : a) {
      bytes += sizeof(AttrRecord) + values_[rec.value_id].size();
      if (rec.has_content) bytes += 8 + values_[rec.value_id].size();
    }
  }
  // Per-color parent pointers are part of the node record in a real
  // layout; the label maps themselves are in-memory indexes over the
  // posting pages already counted above.
  for (const auto& m : parents_) bytes += m.size() * sizeof(ElemId);
  st.data_mbytes = double(bytes) / (1024.0 * 1024.0);
  return st;
}

void MctStore::EnableVersioning() {
  if (versioned()) return;
  deltas_ = std::make_unique<StoreDeltas>(labels_.size(), key_index_.size());
  for (size_t c = 0; c < labels_.size(); ++c) {
    uint32_t high = 0;
    for (const auto& [elem, label] : labels_[c]) {
      high = std::max(high, label.end);
    }
    deltas_->label_high_water[c] = high;
  }
}

void MctStore::PublishVisibleLsn(Lsn lsn) {
  Lsn cur = visible_lsn_.load(std::memory_order_relaxed);
  while (cur < lsn && !visible_lsn_.compare_exchange_weak(
                          cur, lsn, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

void MctStore::UpdateAttrValue(ElemId id, uint32_t name_id,
                               std::string_view value) {
  MCTDB_CHECK(id < elements_.size());
  auto it = value_index_.find(std::string(value));
  uint32_t value_id;
  if (it != value_index_.end()) {
    value_id = it->second;
  } else {
    value_id = static_cast<uint32_t>(values_.size());
    values_.emplace_back(value);
    value_index_.emplace(values_.back(), value_id);
  }
  for (AttrRecord& a : attrs_[id]) {
    if (a.name_id == name_id) {
      a.value_id = value_id;
      ++update_page_writes_;  // the element's attribute page is rewritten
      return;
    }
  }
  MCTDB_CHECK_MSG(false, "UpdateAttrValue: attribute not present");
}

// ---------------------------------------------------------------------------

StoreBuilder::StoreBuilder(const mct::MctSchema* schema,
                           const StoreOptions& options)
    : store_(std::unique_ptr<MctStore>(new MctStore())), options_(options) {
  if (options_.label_stride == 0) options_.label_stride = 1;
  store_->schema_ = schema;
  size_t colors = schema->num_colors();
  store_->postings_.resize(colors);
  for (auto& per_color : store_->postings_) {
    per_color.resize(schema->diagram().num_nodes());
  }
  store_->labels_.resize(colors);
  store_->parents_.resize(colors);
  store_->key_index_.resize(schema->diagram().num_nodes());
  per_tag_entries_.resize(schema->diagram().num_nodes());
}

ElemId StoreBuilder::AddElement(er::NodeId er_node, uint32_t logical,
                                bool is_copy) {
  ElemId id = static_cast<ElemId>(store_->elements_.size());
  store_->elements_.push_back({er_node, logical, is_copy});
  store_->attrs_.emplace_back();
  store_->key_index_[er_node][logical].push_back(id);
  return id;
}

uint32_t StoreBuilder::InternAttrName(std::string_view name) {
  auto it = store_->attr_name_index_.find(std::string(name));
  if (it != store_->attr_name_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(store_->attr_names_.size());
  store_->attr_names_.emplace_back(name);
  store_->attr_name_index_.emplace(store_->attr_names_.back(), id);
  return id;
}

uint32_t StoreBuilder::InternValue(std::string_view value) {
  auto it = store_->value_index_.find(std::string(value));
  if (it != store_->value_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(store_->values_.size());
  store_->values_.emplace_back(value);
  store_->value_index_.emplace(store_->values_.back(), id);
  return id;
}

void StoreBuilder::AddAttr(ElemId elem, std::string_view name,
                           std::string_view value, bool with_content) {
  AttrRecord rec;
  rec.name_id = InternAttrName(name);
  rec.value_id = InternValue(value);
  rec.has_content = with_content;
  store_->attrs_[elem].push_back(rec);
  ++store_->num_attribute_nodes_;
  if (with_content) ++store_->num_content_nodes_;
}

void StoreBuilder::BeginColor(mct::ColorId color) {
  MCTDB_CHECK(!in_color_);
  in_color_ = true;
  color_ = color;
  label_counter_ = 0;
  open_stack_.clear();
  entries_.clear();
  entry_tag_.clear();
  for (auto& v : per_tag_entries_) v.clear();
}

void StoreBuilder::Enter(ElemId elem) {
  MCTDB_CHECK(in_color_);
  const ElementMeta& meta = store_->elements_[elem];
  LabelEntry entry;
  // Labels advance by `label_stride` instead of 1, leaving unused integers
  // between consecutive labels: subtree inserts later consume them without
  // relabeling the color (DESIGN.md §13).
  MCTDB_CHECK_MSG(label_counter_ <= UINT32_MAX - options_.label_stride,
                  "interval label space exhausted at build time");
  label_counter_ += options_.label_stride;
  entry.elem = elem;
  entry.start = label_counter_;
  entry.level = static_cast<uint16_t>(open_stack_.size());
  entry.is_copy = meta.is_copy ? 1 : 0;
  entry.logical = meta.logical;
  // Parent pointer.
  ElemId parent = open_stack_.empty() ? kInvalidElem : open_stack_.back().elem;
  if (parent != kInvalidElem) {
    store_->parents_[color_][elem] = parent;
  }
  entries_.push_back(entry);
  entry_tag_.push_back(meta.er_node);
  open_stack_.push_back({elem, entries_.size() - 1});
}

void StoreBuilder::Leave(ElemId elem) {
  MCTDB_CHECK(in_color_ && !open_stack_.empty());
  MCTDB_CHECK(open_stack_.back().elem == elem);
  LabelEntry& entry = entries_[open_stack_.back().entry_index];
  MCTDB_CHECK_MSG(label_counter_ <= UINT32_MAX - options_.label_stride,
                  "interval label space exhausted at build time");
  label_counter_ += options_.label_stride;
  entry.end = label_counter_;
  open_stack_.pop_back();
}

void StoreBuilder::EndColor() {
  MCTDB_CHECK(in_color_ && open_stack_.empty());
  // Scatter entries to per-tag lists (Enter order == document order) and
  // record labels.
  for (size_t i = 0; i < entries_.size(); ++i) {
    per_tag_entries_[entry_tag_[i]].push_back(entries_[i]);
    store_->labels_[color_][entries_[i].elem] = entries_[i];
  }
  for (size_t tag = 0; tag < per_tag_entries_.size(); ++tag) {
    if (per_tag_entries_[tag].empty()) continue;
    PostingWriter writer(&store_->pager_);
    for (const LabelEntry& e : per_tag_entries_[tag]) writer.Append(e);
    store_->postings_[color_][tag] =
        std::make_unique<PostingMeta>(writer.Finish());
  }
  in_color_ = false;
}

std::unique_ptr<MctStore> StoreBuilder::Finish() {
  MCTDB_CHECK(!in_color_);
  store_->pool_ =
      std::make_unique<BufferPool>(&store_->pager_, options_.buffer_pool_pages);
  return std::move(store_);
}

}  // namespace mctdb::storage
