file(REMOVE_RECURSE
  "CMakeFiles/mctdb_query.dir/executor.cc.o"
  "CMakeFiles/mctdb_query.dir/executor.cc.o.d"
  "CMakeFiles/mctdb_query.dir/mcxpath.cc.o"
  "CMakeFiles/mctdb_query.dir/mcxpath.cc.o.d"
  "CMakeFiles/mctdb_query.dir/planner.cc.o"
  "CMakeFiles/mctdb_query.dir/planner.cc.o.d"
  "CMakeFiles/mctdb_query.dir/query_spec.cc.o"
  "CMakeFiles/mctdb_query.dir/query_spec.cc.o.d"
  "CMakeFiles/mctdb_query.dir/structural_join.cc.o"
  "CMakeFiles/mctdb_query.dir/structural_join.cc.o.d"
  "CMakeFiles/mctdb_query.dir/twig_join.cc.o"
  "CMakeFiles/mctdb_query.dir/twig_join.cc.o.d"
  "libmctdb_query.a"
  "libmctdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
