// Arbitrary ("rich") ER diagrams and their reduction to the simplified form
// the design algorithms consume (paper §2.1: "Arbitrary ER diagrams can be
// translated into such simplified ER diagrams by applying simple
// transformations [20]").
//
// Supported rich features and their reductions:
//   * n-ary relationship types (n >= 3)  ->  a (weak) entity type plus one
//     binary 1:N relationship per endpoint ("a higher-order relationship
//     type treats lower-order relationship types as its entities", §4.1);
//   * composite attributes                ->  flattened atomic attributes
//     with dotted names joined by '_';
//   * multivalued attributes              ->  a satellite entity with a
//     synthesized key + value attribute, linked 1:N (total);
//   * recursive (self-loop) relationships ->  a role entity carrying the
//     relationship's identity, with one binary relationship per role
//     (simplified ER forbids relationships between identical types).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "er/er_model.h"

namespace mctdb::er {

/// A (possibly composite / multivalued) rich attribute.
struct RichAttribute {
  std::string name;
  AttrType type = AttrType::kString;
  bool is_key = false;
  bool multivalued = false;
  /// Non-empty => composite; `type`/`multivalued` of the parent ignored.
  std::vector<RichAttribute> components;
};

struct RichEntity {
  std::string name;
  std::vector<RichAttribute> attributes;
};

/// One endpoint of a rich relationship.
struct RichEndpoint {
  std::string entity;
  /// Role label, required when the same entity appears twice (recursive
  /// relationships); otherwise optional.
  std::string role;
  Participation participation = Participation::kOne;
  Totality totality = Totality::kPartial;
};

struct RichRelationship {
  std::string name;
  std::vector<RichEndpoint> endpoints;  ///< 2 or more
  std::vector<RichAttribute> attributes;
};

struct RichErDiagram {
  std::string name;
  std::vector<RichEntity> entities;
  std::vector<RichRelationship> relationships;
};

struct SimplifyReport {
  size_t nary_decomposed = 0;
  size_t recursive_decomposed = 0;
  size_t composite_flattened = 0;
  size_t multivalued_extracted = 0;
};

/// Reduces `rich` to a simplified ER diagram. Fails on dangling endpoint
/// names, < 2 endpoints, or duplicate names.
Result<ErDiagram> Simplify(const RichErDiagram& rich,
                           SimplifyReport* report = nullptr);

}  // namespace mctdb::er
