# Empty dependencies file for xml_mining_test.
# This may be replaced when dependencies are built.
