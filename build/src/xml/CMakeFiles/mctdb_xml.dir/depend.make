# Empty dependencies file for mctdb_xml.
# This may be replaced when dependencies are built.
