#include "design/designer.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

TEST(DesignerTest, StrategyNamesRoundTrip) {
  for (Strategy s : AllStrategies()) {
    auto parsed = ParseStrategy(ToString(s));
    ASSERT_TRUE(parsed.ok()) << ToString(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_TRUE(ParseStrategy("shallow").ok()) << "case-insensitive";
  EXPECT_TRUE(ParseStrategy("mc").ok()) << "MC aliases EN";
  EXPECT_TRUE(ParseStrategy("dumc").ok()) << "DUMC aliases DR";
  EXPECT_FALSE(ParseStrategy("bogus").ok());
}

TEST(DesignerTest, SevenStrategiesInPaperOrder) {
  auto all = AllStrategies();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0], Strategy::kDeep);
  EXPECT_EQ(all[2], Strategy::kShallow);
  EXPECT_EQ(all[6], Strategy::kUndr);
}

// The paper's property matrix (§6 schema descriptions), checked end to end
// through the facade on TPC-W.
TEST(DesignerTest, TpcwPropertyMatrix) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  Designer designer(g);

  struct Expectation {
    Strategy strategy;
    bool nn, en, ar, dr;
  };
  const Expectation expectations[] = {
      // DEEP: single color AR+DR but not NN.
      {Strategy::kDeep, false, true, true, true},
      // AF: single color NN, not AR (TPC-W is Thm-4.1 infeasible).
      {Strategy::kAf, true, true, false, false},
      // SHALLOW: NN but not AR.
      {Strategy::kShallow, true, true, false, false},
      // EN (MC): NN+EN+AR, poor DR.
      {Strategy::kEn, true, true, true, false},
      // MCMR: NN+AR, not EN.
      {Strategy::kMcmr, true, false, true, false},
      // DR (DUMC): NN+AR+DR, not EN.
      {Strategy::kDr, true, false, true, true},
      // UNDR: AR+DR, neither NN nor EN.
      {Strategy::kUndr, false, false, true, true},
  };
  for (const Expectation& e : expectations) {
    mct::MctSchema schema = designer.Design(e.strategy);
    DesignReport r = designer.Report(schema);
    EXPECT_EQ(r.node_normal, e.nn) << ToString(e.strategy);
    EXPECT_EQ(r.edge_normal, e.en) << ToString(e.strategy);
    EXPECT_EQ(r.association_recoverable, e.ar) << ToString(e.strategy);
    if (e.dr) {
      EXPECT_TRUE(r.fully_direct_recoverable) << ToString(e.strategy);
    }
  }
}

TEST(DesignerTest, TpcwColorCountsMatchTable1) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  Designer designer(g);
  auto colors = [&](Strategy s) {
    return designer.Report(designer.Design(s)).num_colors;
  };
  EXPECT_EQ(colors(Strategy::kDeep), 1u);
  EXPECT_EQ(colors(Strategy::kAf), 1u);
  EXPECT_EQ(colors(Strategy::kShallow), 1u);
  EXPECT_EQ(colors(Strategy::kEn), 2u);
  EXPECT_EQ(colors(Strategy::kMcmr), 2u);
  // Paper: 5 colors for both DR and UNDR; greedy packing should land close.
  EXPECT_GE(colors(Strategy::kDr), 4u);
  EXPECT_LE(colors(Strategy::kDr), 7u);
  EXPECT_EQ(colors(Strategy::kUndr), colors(Strategy::kDr));
}

TEST(DesignerTest, DirectFractionOrdering) {
  // MCMR dominates EN on direct recoverability; DR completes it.
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  Designer designer(g);
  double en = designer.Report(designer.Design(Strategy::kEn)).direct_fraction;
  double mcmr =
      designer.Report(designer.Design(Strategy::kMcmr)).direct_fraction;
  double dr = designer.Report(designer.Design(Strategy::kDr)).direct_fraction;
  EXPECT_LE(en, mcmr);
  EXPECT_LE(mcmr, dr);
  EXPECT_EQ(dr, 1.0);
}

TEST(DesignerTest, MaxColorsAcrossCollectionModest) {
  // The paper observed a maximum of 7 colors across its 66 schemas; our
  // greedy DUMC does not minimize colors (the paper's own caveat) and our
  // collection includes deliberately DR-hostile shapes (the ER9 1:1 ring,
  // Derby's triple fan-in), so we bound loosely — every non-DUMC-derived
  // strategy must stay at the paper's levels, DR/UNDR within ~2x.
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    er::ErGraph g(d);
    Designer designer(g);
    for (Strategy s : AllStrategies()) {
      size_t colors = designer.Report(designer.Design(s)).num_colors;
      if (s == Strategy::kDr || s == Strategy::kUndr) {
        EXPECT_LE(colors, 13u) << d.name() << "/" << ToString(s);
      } else {
        EXPECT_LE(colors, 7u) << d.name() << "/" << ToString(s);
      }
    }
  }
}

TEST(DesignerTest, ReportToStringMentionsEverything) {
  er::ErDiagram d = er::Tpcw();
  er::ErGraph g(d);
  Designer designer(g);
  std::string s =
      designer.Report(designer.Design(Strategy::kEn)).ToString();
  EXPECT_NE(s.find("NN=1"), std::string::npos);
  EXPECT_NE(s.find("colors=2"), std::string::npos);
}

}  // namespace
}  // namespace mctdb::design
