// MctStore: the native store for one materialized MCT database — the
// TIMBER-stand-in the experiments run on.
//
// Contents:
//   * an element table (one record per stored element; an element shared by
//     several colors is stored once — MCT's core economy; redundant
//     placements of non-NN schemas are separate "copy" elements);
//   * attribute and content-node records hanging off elements;
//   * per (color, tag) posting lists of (start, end, level) interval labels
//     in document order, paged through Pager/BufferPool — the input to
//     structural joins;
//   * per-color label and parent maps for color crossings and updates;
//   * a value dictionary and a key index (logical id -> elements).
//
// Versioning (DESIGN.md §13): the containers above form the immutable BASE.
// A store opened for writing (wal::DurableStore) calls EnableVersioning(),
// after which every mutation lands in StoreDeltas tagged with its LSN and
// the read accessors take a snapshot LSN — readers at snapshot S see the
// base plus exactly the deltas with lsn <= S. Read-only stores never
// allocate deltas and keep the original lock-free paths.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/lsn.h"
#include "common/stable_vector.h"
#include "mct/mct_schema.h"
#include "storage/delta.h"
#include "storage/pager.h"
#include "storage/posting.h"

namespace mctdb::storage {

struct StoreOptions {
  /// Buffer pool capacity in pages (default 2048 pages = 16 MB).
  size_t buffer_pool_pages = 2048;
  /// Gap between consecutive interval-label values assigned at build time.
  /// Subtree inserts consume integers from the gap inside their parent's
  /// interval, so small inserts need no relabeling; a checkpoint compaction
  /// reassigns labels and restores the headroom. 1 = dense legacy labels.
  uint32_t label_stride = 16;
};

struct ElementMeta {
  er::NodeId er_node = er::kInvalidNode;
  /// Logical instance id, scoped per ER node; copies share it.
  uint32_t logical = 0;
  bool is_copy = false;
};

struct AttrRecord {
  uint32_t name_id = 0;
  uint32_t value_id = 0;
  /// Data attributes carry a separate content (text) node, key and idref
  /// attributes do not — this is what makes Table 1's attribute and
  /// content-node counts differ.
  bool has_content = false;
};

/// Load-time statistics in Table 1's vocabulary.
struct StoreStats {
  size_t num_elements = 0;
  size_t num_attributes = 0;
  size_t num_content_nodes = 0;
  size_t num_colors = 0;
  double data_mbytes = 0.0;
};

class MctStore {
 public:
  const mct::MctSchema& schema() const { return *schema_; }

  // -- element access -------------------------------------------------------
  size_t num_elements() const { return elements_.size(); }
  const ElementMeta& element(ElemId id) const { return elements_[id]; }
  const std::vector<AttrRecord>& attrs(ElemId id) const {
    return attrs_[id];
  }
  /// Attribute value by name at snapshot `snapshot`; nullptr when absent.
  const std::string* AttrValue(ElemId id, std::string_view attr_name,
                               Lsn snapshot = kMaxLsn) const;
  /// Dictionary id of the element's value for attribute `name_id` at
  /// `snapshot`; UINT32_MAX when absent. Values are interned once
  /// store-wide (updates intern through the same dictionary), so id
  /// equality IS value equality — the batched join/filter paths compare
  /// ids and never touch the strings.
  uint32_t AttrValueId(ElemId id, uint32_t name_id,
                       Lsn snapshot = kMaxLsn) const;
  /// True when the element exists at `snapshot` (base elements always do;
  /// inserted elements from their birth LSN, deleted ones up to their
  /// tombstone LSN).
  bool ElementLive(ElemId id, Lsn snapshot = kMaxLsn) const;

  // -- dictionaries ----------------------------------------------------------
  uint32_t FindAttrName(std::string_view name) const;  // UINT32_MAX if absent
  const std::string& attr_name(uint32_t id) const { return attr_names_[id]; }
  const std::string& value(uint32_t id) const { return values_[id]; }
  uint32_t FindValue(std::string_view v) const;  // UINT32_MAX if absent

  // -- postings & labels -----------------------------------------------------
  /// Posting list for (color, tag); nullptr when the tag has no elements in
  /// that color. Base pages only — scan through MergedPostingCursor to see
  /// versioned inserts/deletes.
  const PostingMeta* Posting(mct::ColorId color, er::NodeId tag) const;
  /// The label of element `id` in `color` at `snapshot`; false if the
  /// element is not in that color (or its placement is deleted there).
  bool Label(mct::ColorId color, ElemId id, LabelEntry* out,
             Lsn snapshot = kMaxLsn) const;
  /// Parent element in `color` (kInvalidElem for roots / absent).
  ElemId Parent(mct::ColorId color, ElemId id, Lsn snapshot = kMaxLsn) const;
  /// Every placement in `color` at `snapshot`, in document (start) order —
  /// the color's full pre-order traversal. Used by exporters, validators,
  /// and checkpoint compaction.
  std::vector<LabelEntry> ColorEntries(mct::ColorId color,
                                       Lsn snapshot = kMaxLsn) const;

  /// All stored elements (copies included) for one logical instance alive
  /// at `snapshot`.
  std::vector<ElemId> ElementsFor(er::NodeId er_node, uint32_t logical,
                                  Lsn snapshot = kMaxLsn) const;

  BufferPool* buffer_pool() const { return pool_.get(); }
  Pager* pager() { return &pager_; }
  const Pager* pager() const { return &pager_; }

  StoreStats Stats() const;

  // -- versioning (the durable write path; DESIGN.md §13) --------------------
  /// Allocates the delta side state. Must be called before the store is
  /// shared with concurrent readers (wal::DurableStore does it at open).
  void EnableVersioning();
  bool versioned() const { return deltas_ != nullptr; }
  StoreDeltas* deltas() const { return deltas_.get(); }
  /// The snapshot new readers should take: the LSN of the last DURABLE
  /// update. Applied-but-unfsynced updates stay invisible.
  Lsn visible_lsn() const {
    return visible_lsn_.load(std::memory_order_acquire);
  }
  /// Monotonically advances visible_lsn (no-op for smaller values).
  void PublishVisibleLsn(Lsn lsn);

  // -- update support (used by query::UpdateEngine) --------------------------
  /// Overwrite an attribute value in place. Charges one page write.
  /// Legacy single-threaded path; the versioned path goes through
  /// storage::ApplyUpdateOp instead.
  void UpdateAttrValue(ElemId id, uint32_t name_id, std::string_view value);
  uint64_t update_page_writes() const { return update_page_writes_; }

 private:
  friend class StoreBuilder;
  friend class UpdateApplier;
  friend Status SaveStore(const MctStore&, const std::string&, bool);
  friend Result<std::unique_ptr<MctStore>> LoadStore(const mct::MctSchema&,
                                                     const std::string&,
                                                     const StoreOptions&);
  MctStore() = default;

  const mct::MctSchema* schema_ = nullptr;
  Pager pager_;
  std::unique_ptr<BufferPool> pool_;

  StableVector<ElementMeta> elements_;
  StableVector<std::vector<AttrRecord>> attrs_;

  StableVector<std::string> attr_names_;
  std::unordered_map<std::string, uint32_t> attr_name_index_;
  StableVector<std::string> values_;
  std::unordered_map<std::string, uint32_t> value_index_;

  /// postings_[color][tag] (tag = ER node id); empty metas pruned to null.
  std::vector<std::vector<std::unique_ptr<PostingMeta>>> postings_;
  /// labels_[color]: elem -> label.
  std::vector<std::unordered_map<ElemId, LabelEntry>> labels_;
  /// parents_[color]: elem -> parent elem.
  std::vector<std::unordered_map<ElemId, ElemId>> parents_;
  /// key_index_[er_node]: logical -> elements (copies included).
  std::vector<std::unordered_map<uint32_t, std::vector<ElemId>>> key_index_;

  /// LSN-versioned mutations over the immutable base; null on read-only
  /// stores (all accessors then take their original lock-free path).
  std::unique_ptr<StoreDeltas> deltas_;
  std::atomic<Lsn> visible_lsn_{kNoLsn};

  size_t num_content_nodes_ = 0;
  size_t num_attribute_nodes_ = 0;
  uint64_t update_page_writes_ = 0;
};

/// Builds an MctStore. Usage (driven by instance::Materializer):
///   StoreBuilder b(&schema, options);
///   ElemId e = b.AddElement(type, logical, is_copy);
///   b.AddAttr(e, "id", "c42", /*with_content=*/false);
///   b.BeginColor(0); b.Enter(e); ... b.Leave(e); ... b.EndColor();
///   auto store = b.Finish();
class StoreBuilder {
 public:
  StoreBuilder(const mct::MctSchema* schema, const StoreOptions& options);

  ElemId AddElement(er::NodeId er_node, uint32_t logical, bool is_copy);
  void AddAttr(ElemId elem, std::string_view name, std::string_view value,
               bool with_content);

  /// Colors must be emitted in increasing order, 0 .. num_colors-1, with a
  /// balanced Enter/Leave walk in document order per color.
  void BeginColor(mct::ColorId color);
  void Enter(ElemId elem);
  void Leave(ElemId elem);
  void EndColor();

  std::unique_ptr<MctStore> Finish();

 private:
  uint32_t InternAttrName(std::string_view name);
  uint32_t InternValue(std::string_view value);

  std::unique_ptr<MctStore> store_;
  StoreOptions options_;

  // Per-color build state.
  bool in_color_ = false;
  mct::ColorId color_ = 0;
  uint32_t label_counter_ = 0;
  struct OpenNode {
    ElemId elem;
    size_t entry_index;  // into entries_
  };
  std::vector<OpenNode> open_stack_;
  /// Pending label entries of the current color, grouped per tag, in
  /// document order (Enter order == start order).
  std::vector<std::vector<LabelEntry>> per_tag_entries_;
  std::vector<LabelEntry> entries_;  // all entries, Enter order
  std::vector<size_t> entry_tag_;    // parallel: tag of each entry
};

}  // namespace mctdb::storage
