#include "query/twig_join.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_random.h"
#include "instance/materialize.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

using design::Strategy;

struct TpcwFixture {
  workload::Workload w = workload::TpcwWorkload(0.05);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  std::unique_ptr<mct::MctSchema> schema;
  std::unique_ptr<storage::MctStore> store;

  explicit TpcwFixture(Strategy s = Strategy::kAf) {
    schema = std::make_unique<mct::MctSchema>(designer.Design(s));
    auto logical = instance::GenerateInstance(graph, w.gen);
    store = instance::Materialize(logical, *schema);
  }

  er::NodeId Tag(const char* name) { return *w.diagram.FindNode(name); }
};

TEST(TwigJoinTest, SimpleChainMatchesNaive) {
  TpcwFixture f;
  TwigPattern twig;
  twig.nodes = {{f.Tag("country"), -1, {}},
                {f.Tag("address"), 0, {}},
                {f.Tag("customer"), 1, {}}};
  auto fast = TwigStackJoin(*f.store, 0, twig);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  TwigResult naive = NaiveTwigJoin(*f.store, 0, twig);
  ASSERT_EQ(fast->matched.size(), naive.matched.size());
  for (size_t q = 0; q < naive.matched.size(); ++q) {
    EXPECT_EQ(fast->matched[q], naive.matched[q]) << "node " << q;
  }
  EXPECT_GT(fast->path_solutions, 0u);
}

TEST(TwigJoinTest, BranchingTwigMatchesNaive) {
  // country with BOTH a customer below (via has) and an order billed below:
  // a genuine twig, not a path.
  TpcwFixture f;
  TwigPattern twig;
  twig.nodes = {{f.Tag("address"), -1, {}},
                {f.Tag("customer"), 0, {}},
                {f.Tag("billing"), 0, {}}};
  auto fast = TwigStackJoin(*f.store, 0, twig);
  ASSERT_TRUE(fast.ok());
  TwigResult naive = NaiveTwigJoin(*f.store, 0, twig);
  for (size_t q = 0; q < naive.matched.size(); ++q) {
    EXPECT_EQ(fast->matched[q], naive.matched[q]) << "node " << q;
  }
  // The twig is selective: only addresses with BOTH a customer and a
  // billed order qualify — strictly fewer than either single branch.
  TwigPattern branch1;
  branch1.nodes = {{f.Tag("address"), -1, {}}, {f.Tag("customer"), 0, {}}};
  auto b1 = TwigStackJoin(*f.store, 0, branch1);
  ASSERT_TRUE(b1.ok());
  EXPECT_LE(fast->matched[0].size(), b1->matched[0].size());
}

TEST(TwigJoinTest, PredicatesFilter) {
  TpcwFixture f;
  TwigPattern twig;
  twig.nodes = {{f.Tag("country"), -1, AttrPredicate{"name", "Japan"}},
                {f.Tag("order"), 0, {}}};
  auto fast = TwigStackJoin(*f.store, 0, twig);
  ASSERT_TRUE(fast.ok());
  TwigResult naive = NaiveTwigJoin(*f.store, 0, twig);
  EXPECT_EQ(fast->matched[0], naive.matched[0]);
  EXPECT_EQ(fast->matched[1], naive.matched[1]);
  for (storage::ElemId e : fast->matched[0]) {
    EXPECT_EQ(*f.store->AttrValue(e, "name"), "Japan");
  }
}

TEST(TwigJoinTest, EmptyWhenNoMatch) {
  TpcwFixture f;
  TwigPattern twig;
  twig.nodes = {{f.Tag("country"), -1, AttrPredicate{"name", "Atlantis"}},
                {f.Tag("order"), 0, {}}};
  auto fast = TwigStackJoin(*f.store, 0, twig);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->path_solutions, 0u);
  EXPECT_TRUE(fast->matched[0].empty());
  EXPECT_TRUE(fast->matched[1].empty());
}

TEST(TwigJoinTest, MalformedPatternsRejected) {
  TpcwFixture f;
  TwigPattern empty;
  EXPECT_TRUE(TwigStackJoin(*f.store, 0, empty).status().IsInvalidArgument());
  TwigPattern bad_root;
  bad_root.nodes = {{f.Tag("country"), 3, {}}};
  EXPECT_TRUE(
      TwigStackJoin(*f.store, 0, bad_root).status().IsInvalidArgument());
  TwigPattern forward_ref;
  forward_ref.nodes = {{f.Tag("country"), -1, {}}, {f.Tag("order"), 1, {}}};
  EXPECT_TRUE(
      TwigStackJoin(*f.store, 0, forward_ref).status().IsInvalidArgument());
}

TEST(TwigJoinTest, DeepSchemaWithDuplicatesMatchesNaive) {
  // DEEP's redundant occurrences are the stress case for stack maintenance.
  TpcwFixture f(Strategy::kDeep);
  TwigPattern twig;
  twig.nodes = {{f.Tag("order"), -1, {}},
                {f.Tag("order_line"), 0, {}},
                {f.Tag("item"), 1, {}}};
  auto fast = TwigStackJoin(*f.store, 0, twig);
  ASSERT_TRUE(fast.ok());
  TwigResult naive = NaiveTwigJoin(*f.store, 0, twig);
  for (size_t q = 0; q < naive.matched.size(); ++q) {
    EXPECT_EQ(fast->matched[q], naive.matched[q]) << "node " << q;
  }
}

TEST(TwigJoinTest, RandomSchemasAgreeWithNaive) {
  // Property sweep on random designs: TwigStack == naive on matched sets.
  Rng rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    er::RandomErOptions opts;
    opts.num_entities = 5;
    opts.num_relationships = 5;
    er::ErDiagram d = er::GenerateRandomEr(&rng, opts);
    er::ErGraph g(d);
    design::Designer designer(g);
    mct::MctSchema schema = designer.Design(Strategy::kAf);
    instance::GenOptions gen;
    gen.base_count = 15;
    gen.seed = 99 + trial;
    auto logical = instance::GenerateInstance(g, gen);
    auto store = instance::Materialize(logical, schema);
    // Use the first occurrence chain of depth >= 2 as the twig.
    mct::OccId deep = mct::kInvalidOcc;
    for (const mct::SchemaOcc& o : schema.occurrences()) {
      if (schema.Depth(o.id) >= 2) {
        deep = o.id;
        break;
      }
    }
    if (deep == mct::kInvalidOcc) continue;
    TwigPattern twig;
    std::vector<er::NodeId> chain;
    for (mct::OccId cur = deep; cur != mct::kInvalidOcc;
         cur = schema.occ(cur).parent) {
      chain.push_back(schema.occ(cur).er_node);
    }
    std::reverse(chain.begin(), chain.end());
    for (size_t i = 0; i < chain.size(); ++i) {
      twig.nodes.push_back({chain[i], static_cast<int>(i) - 1, {}});
    }
    auto fast = TwigStackJoin(*store, 0, twig);
    ASSERT_TRUE(fast.ok()) << d.name();
    TwigResult naive = NaiveTwigJoin(*store, 0, twig);
    for (size_t q = 0; q < naive.matched.size(); ++q) {
      EXPECT_EQ(fast->matched[q], naive.matched[q])
          << d.name() << " node " << q;
    }
  }
}

}  // namespace
}  // namespace mctdb::query
