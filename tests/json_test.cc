#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mctdb::json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->boolean());
  EXPECT_FALSE(Parse("false")->boolean());
  EXPECT_DOUBLE_EQ(Parse("-12.5e2")->number(), -1250.0);
  EXPECT_EQ(Parse("\"hi\"")->str(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto v = Parse(R"({"bench":"table1","scale":0.1,
                     "records":[{"schema":"EN","extra":{"n":3}}]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->StringOr("bench", ""), "table1");
  EXPECT_DOUBLE_EQ(v->NumberOr("scale", 0), 0.1);
  const Value* records = v->Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array().size(), 1u);
  const Value& rec = records->array()[0];
  EXPECT_EQ(rec.StringOr("schema", ""), "EN");
  const Value* extra = rec.Find("extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_DOUBLE_EQ(extra->NumberOr("n", 0), 3.0);
}

TEST(JsonTest, MembersPreserveDocumentOrder) {
  auto v = Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_EQ(v->members()[2].first, "m");
}

TEST(JsonTest, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str(), "a\"b\\c\n\tA");
}

TEST(JsonTest, UnicodeEscapeEncodesUtf8) {
  auto v = Parse("\"\\u00e9\\u20ac\"");  // é €
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->str(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1 2").ok()) << "trailing garbage must be rejected";
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonTest, FindOnNonObjectIsNull) {
  auto v = Parse("[1,2]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("x"), nullptr);
  EXPECT_DOUBLE_EQ(v->NumberOr("x", 42.0), 42.0);
}

}  // namespace
}  // namespace mctdb::json
