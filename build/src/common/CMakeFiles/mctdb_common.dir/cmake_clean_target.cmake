file(REMOVE_RECURSE
  "libmctdb_common.a"
)
