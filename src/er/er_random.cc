#include "er/er_random.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mctdb::er {

ErDiagram GenerateRandomEr(Rng* rng, const RandomErOptions& options) {
  ErDiagram d(StringPrintf("random_%llu",
                           static_cast<unsigned long long>(rng->Next())));
  std::vector<NodeId> entities;
  entities.reserve(options.num_entities);
  for (size_t i = 0; i < options.num_entities; ++i) {
    std::vector<Attribute> attrs;
    attrs.push_back({"id", AttrType::kString, /*is_key=*/true});
    attrs.push_back({StringPrintf("v%zu", i), AttrType::kInt, false});
    entities.push_back(d.AddEntity(StringPrintf("e%zu", i), std::move(attrs)));
  }

  // Nodes eligible as relationship endpoints: entities plus already created
  // relationships (when higher-order relationships are enabled).
  std::vector<NodeId> endpoint_pool = entities;

  for (size_t i = 0; i < options.num_relationships; ++i) {
    // To keep the graph connected, the first (num_entities - 1)
    // relationships attach a not-yet-connected entity to a connected one.
    NodeId a, b;
    if (options.ensure_connected && i + 1 < options.num_entities) {
      a = entities[i + 1];
      b = entities[rng->Uniform(i + 1)];
    } else {
      a = rng->Pick(endpoint_pool);
      if (rng->NextDouble() < options.p_higher_order &&
          endpoint_pool.size() > entities.size()) {
        // Bias the other endpoint toward a relationship node.
        b = endpoint_pool[entities.size() +
                          rng->Uniform(endpoint_pool.size() -
                                       entities.size())];
      } else {
        b = rng->Pick(endpoint_pool);
      }
      if (a == b) {
        b = endpoint_pool[(b + 1) % endpoint_pool.size()];
        if (a == b) continue;  // degenerate pool; skip this relationship
      }
    }

    Participation pa, pb;
    double roll = rng->NextDouble();
    if (roll < options.p_many_many) {
      pa = pb = Participation::kMany;
    } else if (roll < options.p_many_many + options.p_one_one) {
      pa = pb = Participation::kOne;
    } else if (rng->OneIn(2)) {
      pa = Participation::kMany;  // one a : many b
      pb = Participation::kOne;
    } else {
      pa = Participation::kOne;
      pb = Participation::kMany;
    }
    Totality ta = Totality::kPartial, tb = Totality::kPartial;
    if (pa == Participation::kMany && pb == Participation::kOne &&
        rng->NextDouble() < options.p_total) {
      tb = Totality::kTotal;
    }
    auto rel = d.AddRelationship(StringPrintf("r%zu", i), a, pa, b, pb, ta, tb);
    MCTDB_CHECK(rel.ok());
    endpoint_pool.push_back(rel.value());
  }
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

}  // namespace mctdb::er
