file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_twig.dir/bench_micro_twig.cc.o"
  "CMakeFiles/bench_micro_twig.dir/bench_micro_twig.cc.o.d"
  "bench_micro_twig"
  "bench_micro_twig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_twig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
