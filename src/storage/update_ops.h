// The paper's update operations U1-U3 as logical redo ops (DESIGN.md §13).
//
// An UpdateOp identifies its targets by (ER node, logical instance id) —
// never by stored ElemId — because checkpoint compaction remaps element
// ids. New instances created by an insert carry caller-assigned logical
// ids inside the op payload, so applying an op is a pure deterministic
// function of (store state, op): the live write path and recovery replay
// run the exact same code and land in the exact same state.
//
//   U1 kInsertSubtree: a subtree of NEW logical instances is attached under
//      one existing parent instance via one ER edge. The applier places the
//      subtree at every structural realization of that edge (every color,
//      every live placement of the parent — the ICIC maintenance of §6.1),
//      at every root occurrence of the subtree type (flat colors), and
//      fills in idref attributes for ref-edge realizations.
//   U2 kDeleteSubtree: every placement of the target instance disappears,
//      together with everything inside its intervals (per color); elements
//      that lose all placements die.
//   U3 kRenameValue: one attribute of the target instance takes a new
//      value on every stored element (copies included — the dup_updates
//      price of non-NN schemas).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/lsn.h"
#include "common/result.h"
#include "er/er_model.h"
#include "mct/mct_schema.h"

namespace mctdb::storage {

class MctStore;

/// A subtree of new instances for U1, in nesting order. Attribute lists
/// must include the type's key attribute; idref attributes are added by
/// the applier per schema and must NOT appear here (ops are
/// schema-independent).
struct SubtreeSpec {
  er::NodeId type = er::kInvalidNode;
  /// New logical id, assigned by the op creator, unused in the store.
  uint32_t logical = 0;
  struct Attr {
    std::string name;
    std::string value;
    bool with_content = false;
  };
  std::vector<Attr> attrs;
  std::vector<SubtreeSpec> children;
};

struct UpdateOp {
  enum class Kind : uint8_t {
    kInsertSubtree = 1,
    kDeleteSubtree = 2,
    kRenameValue = 3,
  };
  Kind kind = Kind::kRenameValue;

  /// U1: the existing parent instance; U2: the doomed instance; U3: the
  /// renamed instance.
  er::NodeId target_type = er::kInvalidNode;
  uint32_t target_logical = 0;

  /// U1 payload.
  SubtreeSpec subtree;

  /// U3 payload.
  std::string attr;
  std::string new_value;
};

/// "U1" / "U2" / "U3" — the paper's names, used in measurement rows.
const char* UpdateKindName(UpdateOp::Kind kind);
std::string DebugString(const UpdateOp& op);

/// WAL payload codec: length-prefixed little-endian binary. Decode returns
/// Corruption on malformed bytes (record checksums catch torn writes
/// before this layer ever sees them, so Corruption here means a version
/// mismatch or a real bug).
void EncodeUpdateOp(const UpdateOp& op, std::string* out);
Result<UpdateOp> DecodeUpdateOp(std::string_view payload);

/// Static admissibility of `op` under `schema` (no instance access): the
/// realized ER edges exist, every occurrence of an inserted type is either
/// a root or nested under the spec parent's type (the supported class —
/// anything else would need placements the applier cannot derive), renames
/// never touch key attributes. The plan-verifier rules
/// (analysis::VerifyUpdateOp) wrap this into a DiagnosticReport.
Status VerifyUpdateOp(const mct::MctSchema& schema, const UpdateOp& op);

struct ApplyStats {
  size_t elements_touched = 0;
  size_t labels_touched = 0;
  size_t colors_touched = 0;
  /// Smallest residual interval-label headroom this op left behind: for
  /// every bounded (parent-anchored) placement, the free label values
  /// remaining in the gap after the group landed, minimized across
  /// placements. UINT32_MAX when the op made no bounded placement. The
  /// maintenance layer watches this as its gap-pressure trigger — a low
  /// value means the next insert under the same parent is close to
  /// ResourceExhausted.
  uint32_t min_free_gap = UINT32_MAX;
};

/// Applies `op` to the versioned store at `lsn`. The caller serializes
/// appliers (DurableStore's write mutex) and has already made the op
/// durable-or-doomed (WAL append happens first). The store must have
/// versioning enabled.
Result<ApplyStats> ApplyUpdateOp(MctStore* store, const UpdateOp& op,
                                 Lsn lsn);

}  // namespace mctdb::storage
