
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/executor.cc" "src/query/CMakeFiles/mctdb_query.dir/executor.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/executor.cc.o.d"
  "/root/repo/src/query/mcxpath.cc" "src/query/CMakeFiles/mctdb_query.dir/mcxpath.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/mcxpath.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/query/CMakeFiles/mctdb_query.dir/planner.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/planner.cc.o.d"
  "/root/repo/src/query/query_spec.cc" "src/query/CMakeFiles/mctdb_query.dir/query_spec.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/query_spec.cc.o.d"
  "/root/repo/src/query/structural_join.cc" "src/query/CMakeFiles/mctdb_query.dir/structural_join.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/structural_join.cc.o.d"
  "/root/repo/src/query/twig_join.cc" "src/query/CMakeFiles/mctdb_query.dir/twig_join.cc.o" "gcc" "src/query/CMakeFiles/mctdb_query.dir/twig_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/mctdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/mctdb_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/mctdb_er.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mctdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
