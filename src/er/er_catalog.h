// The ER diagram collection used by the paper's evaluation (§6):
//   * TPC-W (Fig 1) — the in-depth study and Table 1 / Figs 8-10;
//   * the two toy graphs of §5.2 (MC-not-DR and MCMR-insufficient);
//   * ER1..ER10 — a collection spanning 10-30 nodes with diverse topologies
//     (the authors' exact collection lived on an offline web supplement; see
//     DESIGN.md §5 for the substitution rationale);
//   * Derby — a registrar-style "real-world schema with a query set".
#pragma once

#include <string>
#include <vector>

#include "er/er_model.h"

namespace mctdb::er {

/// The TPC-W benchmark ER diagram of Fig 1. 8 entity types
/// (author, item, order_line, order, customer, address, country,
/// credit_card_transaction) and 9 relationship types (write, occur_in,
/// contain, make, has, in, billing, shipping, associate).
///
/// NOTE on `order_line`: the paper's figure is ambiguous about whether
/// order_line is the M:N relationship between order and item or a weak
/// entity; we model it as a weak entity with two 1:N relationships
/// (contain: order->order_line, occur_in: item->order_line), which yields
/// the same composite M:N between order and item that §4.1 discusses and
/// matches the element chains visible in Figs 2-5.
ErDiagram Tpcw();

/// §5.2 toy 1: r1: A 1:N B, r3: D 1:N B, r2: B 1:N C. Any EN schema (MC
/// output) misses either (A,C) or (D,C) for direct recoverability; MCMR
/// repairs it by re-using the B-r2-C edges in the second color.
ErDiagram ToyMcNotDr();

/// §5.2 toy 2: r1: A 1:N B, r2: A 1:N C, r3: B 1:1 C. MC colors everything
/// in (nearly) one color, but complete DR needs two colors with r3 oriented
/// both ways — unreachable by MCMR-style augmentation, reachable by DUMC.
ErDiagram ToyMcmrInsufficient();

/// The ER collection: ER1..ER10 (10-30 nodes each).
ErDiagram Er1Company();
ErDiagram Er2University();
ErDiagram Er3Library();
ErDiagram Er4Hospital();
ErDiagram Er5Airline();
ErDiagram Er6Star();
ErDiagram Er7Chain();
ErDiagram Er8Bipartite();
ErDiagram Er9OneOneRing();
ErDiagram Er10Lattice();

/// Database-Derby-style registrar schema (the "real-world schema from the
/// Database Derby Contest"), ~24 nodes; ships with a 20-query workload in
/// src/workload/derby.
ErDiagram Derby();

/// The 12-diagram evaluation grid of Figs 12-14: ER1..ER10, Derby, TPC-W —
/// in the order the figures' x-axes use.
std::vector<ErDiagram> EvaluationCollection();

}  // namespace mctdb::er
