// A minimal dependency-free JSON reader for the repo's own machine
// formats: bench baselines (bench/report.h), /healthz and /slowlog
// responses, trace exports. Parses the full JSON grammar (objects,
// arrays, strings with escapes, numbers, bools, null) into an immutable
// value tree; it is a reader for trusted small documents, not a
// streaming parser (documents are a few KB of our own output).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mctdb::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<Value>& array() const { return array_; }
  /// Object members in document order (duplicate keys keep the last).
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  /// Typed convenience lookups with defaults.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key,
                       const std::string& fallback) const;

 private:
  friend class Parser;
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns InvalidArgument with a byte offset on
/// malformed input.
Result<Value> Parse(std::string_view text);

}  // namespace mctdb::json
