#include "er/er_model.h"

#include <gtest/gtest.h>

namespace mctdb::er {
namespace {

TEST(ErModelTest, AddEntityAssignsSequentialIds) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(d.num_nodes(), 2u);
  EXPECT_EQ(d.num_entities(), 2u);
  EXPECT_EQ(d.num_relationships(), 0u);
  EXPECT_EQ(d.node(a).name, "a");
  EXPECT_TRUE(d.node(a).is_entity());
}

TEST(ErModelTest, AddRelationshipStoresEndpoints) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  auto r = d.AddRelationship("r", a, Participation::kMany, b,
                             Participation::kOne, Totality::kPartial,
                             Totality::kTotal);
  ASSERT_TRUE(r.ok());
  const ErNode& rel = d.node(*r);
  EXPECT_TRUE(rel.is_relationship());
  EXPECT_EQ(rel.endpoints[0].target, a);
  EXPECT_EQ(rel.endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(rel.endpoints[1].target, b);
  EXPECT_EQ(rel.endpoints[1].totality, Totality::kTotal);
  EXPECT_EQ(d.num_relationships(), 1u);
}

TEST(ErModelTest, SelfLoopRejected) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  auto r = d.AddRelationship("r", a, Participation::kOne, a,
                             Participation::kOne);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ErModelTest, DanglingEndpointRejected) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  auto r = d.AddRelationship("r", a, Participation::kOne, 99,
                             Participation::kOne);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ErModelTest, DuplicateRelationshipNameRejected) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToMany("r", a, b).ok());
  EXPECT_TRUE(d.AddOneToMany("r", a, b).status().IsAlreadyExists());
}

TEST(ErModelTest, ConvenienceCardinalities) {
  ErDiagram d("t");
  NodeId one = d.AddEntity("one");
  NodeId many = d.AddEntity("many");
  auto r = d.AddOneToMany("r", one, many, Totality::kTotal);
  ASSERT_TRUE(r.ok());
  // One `one` relates to many `many`: the one side participates in MANY
  // relationship instances.
  EXPECT_EQ(d.node(*r).endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(d.node(*r).endpoints[1].participation, Participation::kOne);
  EXPECT_EQ(d.node(*r).endpoints[1].totality, Totality::kTotal);

  auto mn = d.AddManyToMany("mn", one, many);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(d.node(*mn).endpoints[0].participation, Participation::kMany);
  EXPECT_EQ(d.node(*mn).endpoints[1].participation, Participation::kMany);

  auto oo = d.AddOneToOne("oo", one, many);
  ASSERT_TRUE(oo.ok());
  EXPECT_EQ(d.node(*oo).endpoints[0].participation, Participation::kOne);
  EXPECT_EQ(d.node(*oo).endpoints[1].participation, Participation::kOne);
}

TEST(ErModelTest, HigherOrderRelationship) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  NodeId lab = d.AddEntity("lab");
  auto r = d.AddOneToMany("r", a, b);
  ASSERT_TRUE(r.ok());
  auto higher = d.AddOneToMany("verifies", lab, *r);
  ASSERT_TRUE(higher.ok());
  EXPECT_TRUE(d.Validate().ok());
}

TEST(ErModelTest, FindNode) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("alpha");
  EXPECT_EQ(d.FindNode("alpha"), std::optional<NodeId>(a));
  EXPECT_FALSE(d.FindNode("beta").has_value());
}

TEST(ErModelTest, AttributesAndKeys) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a", {{"id", AttrType::kString, true}});
  EXPECT_TRUE(d.AddAttribute(a, {"age", AttrType::kInt, false}).ok());
  EXPECT_TRUE(
      d.AddAttribute(a, {"age", AttrType::kInt, false}).IsAlreadyExists());
  ASSERT_EQ(d.node(a).attributes.size(), 2u);
  EXPECT_TRUE(d.node(a).attributes[0].is_key);
  EXPECT_EQ(d.node(a).attributes[1].type, AttrType::kInt);
}

TEST(ErModelTest, ValidatePassesOnWellFormed) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToMany("r", a, b).ok());
  EXPECT_TRUE(d.Validate().ok());
}

}  // namespace
}  // namespace mctdb::er
