# Empty compiler generated dependencies file for tpcw_designer.
# This may be replaced when dependencies are built.
