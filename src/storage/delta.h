// StoreDeltas: the LSN-versioned side state of a writable MctStore.
//
// The base store (posting pages, label/parent maps, attribute records) is
// immutable between checkpoints. Every update op appends deltas here,
// tagged with the op's LSN; a reader carries a snapshot LSN S and sees
// exactly the deltas with lsn <= S layered over the base — so a query that
// started before an update never observes a partial subtree, and writers
// never invalidate a reader's view (copy-on-write at the granularity of
// posting entries and attribute revisions, keyed by LSN; DESIGN.md §13).
//
// Locking: `mu` guards every container. Writers (one at a time, serialized
// by DurableStore's write mutex) take it exclusively for the short apply
// step only — never across an fsync. Readers take it shared per lookup;
// read-only stores skip the deltas entirely via MctStore's versioned()
// fast path, keeping the read benchmark path untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/lsn.h"
#include "er/er_model.h"
#include "mct/mct_schema.h"
#include "obs/exec_stats.h"
#include "storage/posting.h"

namespace mctdb::storage {

class MctStore;

/// One versioned posting insert: the entry becomes visible at `lsn`.
struct DeltaPostingEntry {
  Lsn lsn = kNoLsn;
  LabelEntry entry;
};

/// One revision of an attribute value ((elem, name) -> value at `lsn`).
struct AttrRev {
  Lsn lsn = kNoLsn;
  uint32_t value_id = 0;
};

class StoreDeltas {
 public:
  mutable std::shared_mutex mu;

  /// posting_adds[color][tag]: inserts in start order (inserts always land
  /// inside a parent gap with fresh ascending labels, so append order is
  /// start order per parent; a per-scan sort makes it globally true).
  /// Indexed sparsely through maps — most (color, tag) pairs never change.
  std::unordered_map<uint64_t, std::vector<DeltaPostingEntry>> posting_adds;
  /// label_removed[color]: elem -> LSN at which the element's placement in
  /// that color disappeared (subtree delete).
  std::vector<std::unordered_map<ElemId, Lsn>> label_removed;
  /// label_added[color]: elem -> versioned label (subtree insert). An
  /// element has at most one label per color, and deleted elements are
  /// never relabeled, so a single revision suffices.
  std::vector<std::unordered_map<ElemId, DeltaPostingEntry>> label_added;
  /// parent_added[color]: elem -> parent, for inserted placements.
  std::vector<std::unordered_map<ElemId, ElemId>> parent_added;

  /// Rename history: (elem, name_id) -> revisions in LSN order.
  std::unordered_map<uint64_t, std::vector<AttrRev>> attr_revs;

  /// key_index_added[er_node]: logical -> (lsn, elem) additions, for
  /// inserted elements. Removals ride on element_deleted.
  std::vector<std::unordered_map<uint32_t, std::vector<std::pair<Lsn, ElemId>>>>
      key_index_added;

  /// Element lifetimes. Base elements have no entry in element_created
  /// (alive since kNoLsn); inserted elements record their birth LSN.
  std::unordered_map<ElemId, Lsn> element_created;
  std::unordered_map<ElemId, Lsn> element_deleted;

  /// Highest start/end label value consumed per color (base build high
  /// water, advanced by inserts). Used to detect gap collisions.
  std::vector<uint32_t> label_high_water;

  explicit StoreDeltas(size_t num_colors, size_t num_er_nodes)
      : label_removed(num_colors),
        label_added(num_colors),
        parent_added(num_colors),
        key_index_added(num_er_nodes),
        label_high_water(num_colors, 0) {}

  static uint64_t PostingKey(mct::ColorId color, er::NodeId tag) {
    return (uint64_t{color} << 32) | tag;
  }
  static uint64_t AttrKey(ElemId elem, uint32_t name_id) {
    return (uint64_t{elem} << 32) | name_id;
  }
};

/// Sequential merge of a base posting list with the snapshot-visible delta
/// inserts of the same (color, tag), minus the placements deleted at or
/// before the snapshot. Drop-in for PostingCursor on the executor's scan
/// path: on an unversioned store it degenerates to the plain base cursor
/// with one extra branch per Next.
class MergedPostingCursor {
 public:
  MergedPostingCursor(PageCache* pool, const MctStore& store,
                      mct::ColorId color, er::NodeId tag, Lsn snapshot,
                      obs::ExecStats* stats = nullptr);

  /// False at end of merged list or on a base page fetch failure (latched
  /// on status(), like PostingCursor).
  bool Next(LabelEntry* out);
  /// Block-at-a-time read. Fast path: while no snapshot-visible insert or
  /// delete remains to merge, base page spans are forwarded zero-copy (on
  /// a read-only store — or an untouched (color, tag) — every span is a
  /// whole pinned page). Otherwise one block's worth of entries is merged
  /// into an internal buffer and returned as a span over it. Spans stay
  /// valid until the next cursor call; entries arrive in global start
  /// order either way. Do not interleave with Next().
  bool NextSpan(const LabelEntry** data, size_t* count);
  /// Installs index-assisted bounds on the base scan (page-granular skip
  /// hints; see ScanBounds). Call before the first read. Delta inserts
  /// are not filtered — bounds are necessary-condition hints, never
  /// exactness guarantees.
  void ApplyBounds(const ScanBounds& bounds);
  const Status& status() const { return status_; }
  /// Base entries + visible inserts (before delete filtering); an upper
  /// bound used for span cardinality.
  size_t upper_bound() const { return base_count_ + extra_.size(); }

 private:
  std::optional<PostingCursor> base_;
  size_t base_count_ = 0;
  /// Snapshot-visible inserts, start order.
  std::vector<LabelEntry> extra_;
  size_t extra_index_ = 0;
  /// Placements deleted at or before the snapshot.
  std::unordered_map<ElemId, Lsn> removed_;
  bool base_pending_ = false;
  LabelEntry base_next_{};
  /// Merge buffer for NextSpan's slow path (deltas present).
  std::vector<LabelEntry> span_buf_;
  Status status_;
};

}  // namespace mctdb::storage
