#include "design/chain_packing.h"

#include "common/logging.h"

namespace mctdb::design {

bool TryRealizeInColor(mct::MctSchema* schema, mct::ColorId color,
                       const AssociationPath& path) {
  // Dry run: find the first index at which the chain must be extended, and
  // verify the present prefix matches and the rest is absent (appendable).
  mct::OccId cursor = schema->FindOcc(color, path.source);
  size_t extend_from = 0;  // first node index that needs a new occurrence
  if (cursor == mct::kInvalidOcc) {
    extend_from = 0;
  } else {
    extend_from = 1;
    for (size_t i = 0; i < path.edges.size(); ++i) {
      mct::OccId next = schema->FindOcc(color, path.nodes[i + 1]);
      if (next == mct::kInvalidOcc) {
        extend_from = i + 1;
        break;
      }
      const mct::SchemaOcc& next_occ = schema->occ(next);
      if (next_occ.parent != cursor || next_occ.via_edge != path.edges[i]) {
        return false;  // present but attached elsewhere: chain can't form
      }
      cursor = next;
      extend_from = i + 2;
    }
  }
  // Everything from `extend_from` on must be absent from the color
  // (otherwise appending would duplicate a node in this color).
  for (size_t i = extend_from; i < path.nodes.size(); ++i) {
    if (schema->FindOcc(color, path.nodes[i]) != mct::kInvalidOcc) {
      return false;
    }
  }
  if (extend_from >= path.nodes.size()) return true;  // already realized

  // Commit.
  if (extend_from == 0) {
    cursor = schema->AddRoot(color, path.nodes[0]);
    extend_from = 1;
  }
  for (size_t i = extend_from; i < path.nodes.size(); ++i) {
    cursor = schema->AddChild(cursor, path.nodes[i], path.edges[i - 1]);
  }
  return true;
}

}  // namespace mctdb::design
