file(REMOVE_RECURSE
  "CMakeFiles/mctdb_design.dir/algorithm_dumc.cc.o"
  "CMakeFiles/mctdb_design.dir/algorithm_dumc.cc.o.d"
  "CMakeFiles/mctdb_design.dir/algorithm_mc.cc.o"
  "CMakeFiles/mctdb_design.dir/algorithm_mc.cc.o.d"
  "CMakeFiles/mctdb_design.dir/algorithm_mcmr.cc.o"
  "CMakeFiles/mctdb_design.dir/algorithm_mcmr.cc.o.d"
  "CMakeFiles/mctdb_design.dir/algorithm_undr.cc.o"
  "CMakeFiles/mctdb_design.dir/algorithm_undr.cc.o.d"
  "CMakeFiles/mctdb_design.dir/associations.cc.o"
  "CMakeFiles/mctdb_design.dir/associations.cc.o.d"
  "CMakeFiles/mctdb_design.dir/chain_packing.cc.o"
  "CMakeFiles/mctdb_design.dir/chain_packing.cc.o.d"
  "CMakeFiles/mctdb_design.dir/constraints.cc.o"
  "CMakeFiles/mctdb_design.dir/constraints.cc.o.d"
  "CMakeFiles/mctdb_design.dir/designer.cc.o"
  "CMakeFiles/mctdb_design.dir/designer.cc.o.d"
  "CMakeFiles/mctdb_design.dir/feasibility.cc.o"
  "CMakeFiles/mctdb_design.dir/feasibility.cc.o.d"
  "CMakeFiles/mctdb_design.dir/recoverability.cc.o"
  "CMakeFiles/mctdb_design.dir/recoverability.cc.o.d"
  "CMakeFiles/mctdb_design.dir/xml_design.cc.o"
  "CMakeFiles/mctdb_design.dir/xml_design.cc.o.d"
  "CMakeFiles/mctdb_design.dir/xml_mining.cc.o"
  "CMakeFiles/mctdb_design.dir/xml_mining.cc.o.d"
  "libmctdb_design.a"
  "libmctdb_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
