// Table 1 reproduction: TPC-W data statistics and query processing time for
// the seven schemas (DEEP, AF, SHALLOW, EN, MCMR, DR, UNDR).
//
// The paper ran the full TPC-W data set on TIMBER/Pentium III; this harness
// regenerates the same table at a configurable scale (arg 1 or MCTDB_SCALE,
// default 1.0 ~ 20k logical nodes). Absolute numbers differ from the paper;
// the validated *shape* (see EXPERIMENTS.md): node-normal schemas tie on
// element/attribute/content counts, storage grows EN/MCMR < DR < UNDR <
// DEEP, SHALLOW suffers on join-heavy reads, DEEP/UNDR win reads but pay
// duplicates and update blowups, MCMR/DR sit in between with MCMR cheapest
// on single-element updates.
//
// The timing grid is MeasureTpcwGrid — the same code `mctc bench` runs for
// the registered "table1" benchmark, so --json output here and the mctc
// report cannot drift apart.
#include "bench/bench_util.h"
#include "bench/report.h"
#include "bench/suite.h"

using namespace mctdb;
using namespace mctdb::bench;

namespace {

double ExtraOr(const QueryRecord& r, const char* name, double fallback) {
  for (const auto& [key, value] : r.extra) {
    if (key == name) return value;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/1.0);
  if (!args.ok) return 1;
  std::printf("=== Table 1: TPC-W Data Statistics and Query Processing "
              "Time (scale %.2f) ===\n\n",
              args.scale);
  TpcwSetup setup(args.scale);

  // --- top: data statistics ------------------------------------------------
  std::printf("%-22s", "");
  for (const auto& schema : setup.schemas) {
    std::printf("%12s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(22 + 12 * setup.schemas.size());
  auto stat_row = [&](const char* label, auto getter) {
    std::printf("%-22s", label);
    for (const auto& store : setup.stores) {
      std::printf("%12s", getter(store->Stats()).c_str());
    }
    std::printf("\n");
  };
  stat_row("Num. Elements", [](const storage::StoreStats& s) {
    return std::to_string(s.num_elements);
  });
  stat_row("Num. Attributes", [](const storage::StoreStats& s) {
    return std::to_string(s.num_attributes);
  });
  stat_row("Num. Content Nodes", [](const storage::StoreStats& s) {
    return std::to_string(s.num_content_nodes);
  });
  stat_row("Data MBytes", [](const storage::StoreStats& s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", s.data_mbytes);
    return std::string(buf);
  });
  stat_row("Num. Colors", [](const storage::StoreStats& s) {
    return std::to_string(s.num_colors);
  });

  // --- bottom: query times (shared measurement path, see bench/suite.h) ----
  std::vector<QueryRecord> records = MeasureTpcwGrid(setup, args.reps);
  size_t num_queries = setup.w.figure_queries.size();

  std::printf("\n%-6s%-14s", "Query", "Num.Results");
  for (const auto& schema : setup.schemas) {
    std::printf("%12s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(20 + 12 * setup.schemas.size());

  for (size_t qi = 0; qi < num_queries; ++qi) {
    const std::string& name = setup.w.figure_queries[qi];
    const query::AssociationQuery* q = setup.w.Find(name);
    std::string results = "?";
    std::vector<std::string> cells;
    for (size_t i = 0; i < setup.schemas.size(); ++i) {
      const QueryRecord& r = records[i * num_queries + qi];
      if (ExtraOr(r, "error", 0) != 0) {
        cells.push_back("err");
        continue;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", r.median_seconds);
      cells.push_back(buf);
      // Result count column: unique results, with the duplicate surplus of
      // redundant schemas in parentheses (the paper's convention).
      size_t unique = size_t(ExtraOr(
          r, q->is_update() ? "logicals_updated" : "unique_results", 0));
      size_t raw = size_t(ExtraOr(
          r, q->is_update() ? "elements_updated" : "raw_results", 0));
      if (results == "?") results = std::to_string(unique);
      if (raw > unique) {
        results += "(" + std::to_string(raw) + "@" +
                   setup.schemas[i].name() + ")";
      }
    }
    std::printf("%-6s%-14s", name.c_str(), results.c_str());
    for (const std::string& cell : cells) std::printf("%12s", cell.c_str());
    std::printf("\n");
  }
  std::printf(
      "\n(times in seconds; parenthesized = stored-element matches incl. "
      "duplicates on that schema)\n");

  if (!args.json_path.empty()) {
    JsonReporter reporter("table1", args.scale, args.reps);
    reporter.report().records = std::move(records);
    Status status = reporter.WriteTo(args.json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
