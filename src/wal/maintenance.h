// MaintenanceManager: the background thread that makes a DurableStore
// self-maintaining (DESIGN.md §17). One manager per store. Each cycle it
// answers three questions, in priority order:
//
//   1. Is the store READ-ONLY (WAL out of disk space)? Then don't
//      checkpoint — run the timed RE-PROBE (DurableStore::TryExitReadOnly)
//      every `reprobe_seconds` until the disk drains.
//   2. Did a writer hit gap saturation (StallForRebalance) or did the
//      gap-pressure low-water mark cross the threshold? Run an URGENT
//      checkpoint in kRebaseLive mode — the compacted image's fresh
//      stride gaps are the interval-label rebalance — then wake every
//      stalled writer.
//   3. Did the WAL grow past the size/record thresholds, or has the
//      elapsed-time interval passed with new appends? Run a routine
//      kRebaseLive checkpoint.
//
// Every cycle mints its own trace id (there is no ambient ScopedTraceId
// on a background thread — the plan-cache generation bump and flight
// events must still correlate, as trace_id.h notes) and records a
// kMaintenanceTrigger flight event tagged with the reason.
//
// The completion callback fires after every attempted checkpoint (success
// or failure) ON THE MAINTENANCE THREAD. The query service installs one
// per durable store to bump the plan-cache generation and refresh its
// buffer-pool view of the rebased store — library users can pass nullptr.
//
// Lifetime: the manager registers itself with the store on Start() and
// deregisters on destruction; it must outlive every concurrent Apply and
// be destroyed before the store.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "wal/checkpoint.h"
#include "wal/durable_store.h"

namespace mctdb::wal {

/// Why a maintenance checkpoint fired. kManual is reserved for the
/// operator-driven path (QueryService::Checkpoint / `mctc update
/// --checkpoint`), which does not go through the manager but shares the
/// metric family.
enum class CheckpointReason : uint8_t {
  kManual = 0,
  kWalSize,
  kWalRecords,
  kElapsed,
  kGapPressure,
};
inline constexpr size_t kNumCheckpointReasons = 5;
const char* ToString(CheckpointReason r);

struct MaintenanceOptions {
  /// Checkpoint when the durable WAL reaches this size. 0 disables.
  uint64_t wal_bytes_threshold = 8ull << 20;
  /// Checkpoint after this many records since the last checkpoint. 0
  /// disables.
  uint64_t wal_records_threshold = 0;
  /// Checkpoint when this much time has passed since the last checkpoint
  /// AND at least one record was appended in between. 0 disables.
  double interval_seconds = 0.0;
  /// Proactive gap-pressure trigger: checkpoint when any insert leaves a
  /// residual interval-label gap at or below this many free values. 0
  /// disables (reactive stalls still fire).
  uint32_t gap_pressure_min_free = 2;
  /// How often the thread wakes to evaluate triggers.
  double poll_seconds = 0.05;
  /// Total time a saturated writer may stall behind rebalancing
  /// checkpoints before ResourceExhausted surfaces to the caller.
  double max_stall_seconds = 2.0;
  /// Re-probe period while the store is read-only (out of disk space).
  double reprobe_seconds = 0.25;
};

class MaintenanceManager {
 public:
  struct Event {
    CheckpointReason reason = CheckpointReason::kManual;
    Status status = Status::OK();
    CheckpointStats stats;  ///< valid when status.ok()
  };
  using Callback = std::function<void(const Event&)>;

  MaintenanceManager(DurableStore* store, const MaintenanceOptions& options,
                     Callback on_checkpoint = nullptr);
  ~MaintenanceManager();

  MaintenanceManager(const MaintenanceManager&) = delete;
  MaintenanceManager& operator=(const MaintenanceManager&) = delete;

  /// Starts the background thread and attaches to the store. Idempotent.
  void Start();
  /// Stops and joins the thread, waking any stalled writers. Idempotent;
  /// also run by the destructor.
  void Stop();

  const MaintenanceOptions& options() const { return options_; }

  /// Writer-side rendezvous: flags an urgent gap-pressure checkpoint and
  /// blocks until one rebalance cycle completes (true) or `deadline`
  /// passes / the manager stops (false). Called by DurableStore::Apply
  /// with no store locks held.
  bool StallForRebalance(std::chrono::steady_clock::time_point deadline);

  uint64_t checkpoints(CheckpointReason r) const {
    return by_reason_[static_cast<size_t>(r)].load(std::memory_order_relaxed);
  }
  uint64_t checkpoints_total() const;
  /// Completed gap-pressure checkpoints == live label rebalances.
  uint64_t gap_rebalances() const {
    return checkpoints(CheckpointReason::kGapPressure);
  }
  uint64_t reprobes() const {
    return reprobes_.load(std::memory_order_relaxed);
  }
  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Message of the most recent failed checkpoint/re-probe ("" = none).
  std::string last_error() const;

 private:
  void Loop();
  /// Runs one checkpoint, updates counters, fires the callback, wakes
  /// stalled writers. Returns the checkpoint status.
  Status RunCheckpoint(CheckpointReason reason);

  DurableStore* store_;
  MaintenanceOptions options_;
  Callback on_checkpoint_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;        // guarded by mu_
  bool urgent_ = false;      // guarded by mu_: a writer is stalled
  uint64_t rebalance_epoch_ = 0;  // guarded by mu_; bumps per checkpoint try
  std::string last_error_;   // guarded by mu_

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> by_reason_[kNumCheckpointReasons] = {};
  std::atomic<uint64_t> reprobes_{0};
  uint64_t appends_at_last_checkpoint_ = 0;  // maintenance thread only
};

}  // namespace mctdb::wal
