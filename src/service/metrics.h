// ServiceMetrics: lock-free counters and a latency histogram for the
// mctsvc query service, exportable as JSON for scrapers and dashboards.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mctsvc {

/// Escapes a Prometheus label VALUE for use inside `{name="..."}`:
/// backslash, double quote, and newline get backslash-escaped per the
/// text exposition format (store names are caller-chosen strings).
std::string PromLabelEscape(std::string_view value);

/// Power-of-two-microsecond latency buckets: bucket i counts requests with
/// latency in (2^(i-1), 2^i] microseconds (bucket 0 is <= 1 us, the last
/// bucket is the overflow). A sample exactly on a bucket's upper bound
/// belongs to THAT bucket, matching the cumulative `le` (less-or-equal)
/// semantics of the JSON and Prometheus exports. Recording is a single
/// relaxed atomic add, so worker threads never serialize on the histogram.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 24;  // up to ~8.4 s, then overflow

  void Record(double seconds);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return double(total_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Conservative q-quantile estimate in seconds: the UPPER BOUND of the
  /// first bucket whose cumulative count reaches rank q (no intra-bucket
  /// interpolation), so the true quantile is <= the returned value and at
  /// most 2x smaller. 0 when empty.
  double Quantile(double q) const;
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Bucket i's `le` upper bound in microseconds (2^i).
  static double BucketUpperUs(size_t i);

  /// Buckets export as CUMULATIVE {"le":X,"count":N} pairs — N counts all
  /// samples <= X us — mirroring the Prometheus histogram convention.
  /// Entries whose own bucket is empty are elided (the cumulative count is
  /// recoverable from the next emitted entry).
  std::string ToJson() const;
  /// Prometheus text exposition: `# HELP` + `# TYPE` headers, then
  /// `<name>_bucket{le="..."}` cumulative series (le in SECONDS, ending
  /// with +Inf), plus `<name>_sum` and `<name>_count`.
  void AppendPrometheus(std::string* out, const std::string& name,
                        const std::string& help =
                            "Request latency histogram") const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

struct ServiceMetrics {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  /// Admission-queue overflow rejections (Status::ResourceExhausted).
  std::atomic<uint64_t> rejected{0};
  /// Plans rejected by the static verifier at admission
  /// (Status::InvalidArgument; never counted as submitted).
  std::atomic<uint64_t> invalid_plans{0};
  /// Requests shed by the load-shedding admission controller
  /// (Status::Unavailable; distinct from hard-limit `rejected`).
  std::atomic<uint64_t> sheds{0};
  /// Requests refused because the store's circuit breaker was open
  /// (Status::Unavailable).
  std::atomic<uint64_t> breaker_rejections{0};
  /// Requests cancelled at dequeue because their deadline had passed.
  std::atomic<uint64_t> deadline_exceeded{0};
  /// Requests whose executor returned a non-OK status.
  std::atomic<uint64_t> failed{0};
  /// Requests admitted but not yet finished (queued or running).
  std::atomic<uint64_t> queue_depth{0};
  /// Per-query-attributed page I/O summed over completed requests (exact:
  /// charged at fetch time by the fetching query's ExecStats, not diffed
  /// from pool-global counters).
  std::atomic<uint64_t> page_hits{0};
  std::atomic<uint64_t> page_misses{0};
  /// Completed requests whose latency reached the slow-query threshold.
  std::atomic<uint64_t> slow_queries{0};
  /// Completed requests whose plan the static analyzer proved empty: the
  /// executor short-circuited them to an empty result with zero page
  /// fetches (analysis::AnalyzeQuery, DESIGN.md §14).
  std::atomic<uint64_t> queries_pruned{0};
  /// Completed requests whose plan carried a simplification finding
  /// (QRY008 redundant predicate / QRY009 redundant distinct).
  std::atomic<uint64_t> plans_simplified{0};
  /// Plan cache (service/plan_cache.h): SubmitQuery admissions served from
  /// a cached plan (verification and planning both skipped).
  std::atomic<uint64_t> plan_cache_hits{0};
  /// SubmitQuery admissions that planned fresh (no entry under the key).
  std::atomic<uint64_t> plan_cache_misses{0};
  /// Cached plans dropped at lookup because visibility moved (an update
  /// committed or a checkpoint bumped the cache generation).
  std::atomic<uint64_t> plan_cache_invalidations{0};
  /// Index-assisted posting seeks attributed to completed requests: scans
  /// that skipped at least one page via the per-page interval summaries.
  std::atomic<uint64_t> index_seeks{0};
  LatencyHistogram latency;
  /// Admission-to-dequeue wait, recorded for every dequeued task (queries
  /// and updates; deadline-cancelled tasks included — their wait is exactly
  /// the number that explains the cancellation).
  LatencyHistogram queue_wait_seconds;

  // Write path (WAL-backed durable stores).
  /// Update ops admitted via SubmitUpdate.
  std::atomic<uint64_t> updates_submitted{0};
  /// Update ops whose apply returned a non-OK status.
  std::atomic<uint64_t> updates_failed{0};
  /// WAL records appended by completed updates.
  std::atomic<uint64_t> wal_appends{0};
  /// WAL redo records replayed by recovery across every durable store
  /// registered with this service (stamped at AddDurableStore).
  std::atomic<uint64_t> recovery_replayed_records{0};
  /// Group-commit fsync latency, recorded by the op that led each sync
  /// (followers piggyback on the leader's fsync and record nothing).
  LatencyHistogram wal_fsync_seconds;

  /// Counters + latency histogram as one JSON object (no pool stats; the
  /// service adds those, see QueryService::MetricsJson).
  std::string ToJson() const;
  /// Counters + latency histogram in Prometheus text exposition format,
  /// `mctsvc_`-prefixed (no pool stats; see QueryService::MetricsText).
  std::string ToPrometheus() const;
};

}  // namespace mctsvc
