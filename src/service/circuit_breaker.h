// CircuitBreaker: per-store failure isolation for the query service.
//
// A breaker watches the stream of request outcomes for one store and trips
// OPEN after `failure_threshold` CONSECUTIVE hard failures (the service
// counts DataLoss and Internal — corrupt pages, injected faults — never
// DeadlineExceeded or admission rejections, which say nothing about the
// store's health). While open, Allow() refuses instantly so callers get a
// fast Unavailable instead of queueing work that will fail, and the broken
// store cannot monopolize worker threads. After `open_seconds` the breaker
// HALF-OPENS: exactly one probe request is let through; its success closes
// the breaker, its failure re-opens it for another full window.
//
// Thread safety: all methods are safe to call concurrently; the internal
// mutex is a leaf (nothing else is acquired under it). Time is injectable
// for tests, so open->half-open transitions need no real sleeping.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <string>

namespace mctsvc {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive hard failures that trip the breaker open.
    int failure_threshold = 5;
    /// How long the breaker stays open before half-opening for a probe.
    double open_seconds = 5.0;
  };

  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// `name` labels log lines and metrics (the store name). A null `clock`
  /// uses steady_clock::now.
  explicit CircuitBreaker(std::string name);
  CircuitBreaker(std::string name, Options options, Clock clock = nullptr);

  /// True if a request may proceed. Open -> false until the window
  /// elapses, then the FIRST caller transitions to half-open and is the
  /// probe; concurrent callers keep getting false until the probe's
  /// outcome is recorded.
  bool Allow();

  /// Outcome of an allowed request. Success closes a half-open breaker
  /// and resets the consecutive-failure count; failure re-opens a
  /// half-open breaker or, at the threshold, trips a closed one.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Seconds until an open breaker half-opens (0 when closed/half-open).
  /// Suitable as a Retry-After hint.
  double RetryAfterSeconds() const;
  /// Consecutive hard failures seen since the last success.
  int consecutive_failures() const;

  static const char* StateName(State s);

 private:
  std::chrono::steady_clock::time_point Now() const;

  const std::string name_;
  const Options options_;
  const Clock clock_;
  mutable std::mutex mu_;  // leaf lock: never held across other locks
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace mctsvc
