#include "er/er_catalog.h"

#include "common/logging.h"

namespace mctdb::er {

namespace {

/// Key "id" plus a couple of payload attributes, shared shape for most
/// entities in the collection.
std::vector<Attribute> BasicAttrs(const char* payload = "name") {
  return {{"id", AttrType::kString, true},
          {payload, AttrType::kString, false}};
}

NodeId Rel(ErDiagram* d, const char* name, NodeId one_side, NodeId many_side,
           Totality many_total = Totality::kPartial) {
  auto r = d->AddOneToMany(name, one_side, many_side, many_total);
  MCTDB_CHECK_MSG(r.ok(), name);
  return r.value();
}

NodeId RelMN(ErDiagram* d, const char* name, NodeId a, NodeId b) {
  auto r = d->AddManyToMany(name, a, b);
  MCTDB_CHECK_MSG(r.ok(), name);
  return r.value();
}

NodeId Rel11(ErDiagram* d, const char* name, NodeId a, NodeId b) {
  auto r = d->AddOneToOne(name, a, b);
  MCTDB_CHECK_MSG(r.ok(), name);
  return r.value();
}

}  // namespace

ErDiagram Tpcw() {
  ErDiagram d("TPC-W");
  NodeId country = d.AddEntity(
      "country", {{"id", AttrType::kString, true},
                  {"name", AttrType::kString, false},
                  {"currency", AttrType::kString, false}});
  NodeId address = d.AddEntity(
      "address", {{"id", AttrType::kString, true},
                  {"street", AttrType::kString, false},
                  {"city", AttrType::kString, false},
                  {"zip", AttrType::kString, false}});
  NodeId customer = d.AddEntity(
      "customer", {{"id", AttrType::kString, true},
                   {"uname", AttrType::kString, false},
                   {"since", AttrType::kString, false},
                   {"discount", AttrType::kInt, false}});
  NodeId order = d.AddEntity(
      "order", {{"id", AttrType::kString, true},
                {"date", AttrType::kString, false},
                {"total", AttrType::kInt, false},
                {"status", AttrType::kString, false}});
  NodeId order_line = d.AddEntity(
      "order_line", {{"id", AttrType::kString, true},
                     {"qty", AttrType::kInt, false},
                     {"discount", AttrType::kInt, false}});
  NodeId item = d.AddEntity(
      "item", {{"id", AttrType::kString, true},
               {"title", AttrType::kString, false},
               {"cost", AttrType::kInt, false},
               {"subject", AttrType::kString, false}});
  NodeId author = d.AddEntity(
      "author", {{"id", AttrType::kString, true},
                 {"lname", AttrType::kString, false},
                 {"fname", AttrType::kString, false}});
  NodeId cct = d.AddEntity(
      "credit_card_transaction", {{"id", AttrType::kString, true},
                                  {"cc_type", AttrType::kString, false},
                                  {"auth_id", AttrType::kString, false},
                                  {"amount", AttrType::kInt, false}});

  // One country, many addresses; every address lies in a country.
  Rel(&d, "in", country, address, Totality::kTotal);
  // One address serves many customers; every customer has an address.
  Rel(&d, "has", address, customer, Totality::kTotal);
  // One customer makes many orders; every order was made by a customer.
  Rel(&d, "make", customer, order, Totality::kTotal);
  // One order contains many order lines; lines exist only inside an order.
  Rel(&d, "contain", order, order_line, Totality::kTotal);
  // One item occurs in many order lines; every line is for an item.
  Rel(&d, "occur_in", item, order_line, Totality::kTotal);
  // One author writes many items; every item has an author.
  Rel(&d, "write", author, item, Totality::kTotal);
  // One address is the billing / shipping address of many orders.
  Rel(&d, "billing", address, order, Totality::kTotal);
  Rel(&d, "shipping", address, order, Totality::kTotal);
  // Each order is associated with exactly one credit-card transaction.
  Rel11(&d, "associate", order, cct);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram ToyMcNotDr() {
  ErDiagram d("toy-mc-not-dr");
  NodeId a = d.AddEntity("A", BasicAttrs());
  NodeId b = d.AddEntity("B", BasicAttrs());
  NodeId c = d.AddEntity("C", BasicAttrs());
  NodeId e = d.AddEntity("D", BasicAttrs());
  Rel(&d, "r1", a, b);  // A 1:N B
  Rel(&d, "r2", b, c);  // B 1:N C
  Rel(&d, "r3", e, b);  // D 1:N B  (B is on the many side twice)
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram ToyMcmrInsufficient() {
  ErDiagram d("toy-mcmr-insufficient");
  NodeId a = d.AddEntity("A", BasicAttrs());
  NodeId b = d.AddEntity("B", BasicAttrs());
  NodeId c = d.AddEntity("C", BasicAttrs());
  Rel(&d, "r1", a, b);    // A 1:N B
  Rel(&d, "r2", a, c);    // A 1:N C
  Rel11(&d, "r3", b, c);  // B 1:1 C
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er1Company() {
  // Classic COMPANY schema (Elmasri-Navathe flavor). 13 nodes.
  ErDiagram d("ER1");
  NodeId dept = d.AddEntity("department", BasicAttrs());
  NodeId emp = d.AddEntity(
      "employee", {{"id", AttrType::kString, true},
                   {"name", AttrType::kString, false},
                   {"salary", AttrType::kInt, false}});
  NodeId project = d.AddEntity("project", BasicAttrs());
  NodeId dependent = d.AddEntity("dependent", BasicAttrs());
  NodeId location = d.AddEntity("location", BasicAttrs());
  Rel(&d, "works_for", dept, emp, Totality::kTotal);
  Rel11(&d, "manages", emp, dept);
  Rel(&d, "controls", dept, project, Totality::kTotal);
  RelMN(&d, "works_on", emp, project);
  Rel(&d, "dependents_of", emp, dependent, Totality::kTotal);
  Rel(&d, "located_at", location, dept);
  RelMN(&d, "project_site", project, location);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er2University() {
  // 13 nodes: department/course/section/instructor/student/textbook.
  ErDiagram d("ER2");
  NodeId dept = d.AddEntity("department", BasicAttrs());
  NodeId course = d.AddEntity("course", BasicAttrs("title"));
  NodeId section = d.AddEntity(
      "section", {{"id", AttrType::kString, true},
                  {"term", AttrType::kString, false},
                  {"capacity", AttrType::kInt, false}});
  NodeId instructor = d.AddEntity("instructor", BasicAttrs());
  NodeId student = d.AddEntity(
      "student", {{"id", AttrType::kString, true},
                  {"name", AttrType::kString, false},
                  {"year", AttrType::kInt, false}});
  NodeId textbook = d.AddEntity("textbook", BasicAttrs("title"));
  Rel(&d, "offers", dept, course, Totality::kTotal);
  Rel(&d, "has_section", course, section, Totality::kTotal);
  Rel(&d, "teaches", instructor, section);
  Rel(&d, "employs", dept, instructor, Totality::kTotal);
  Rel(&d, "major_in", dept, student);
  RelMN(&d, "enrolls", student, section);
  Rel(&d, "uses_text", textbook, section);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er3Library() {
  // 15 nodes with an M:N authorship and a weak loan entity.
  ErDiagram d("ER3");
  NodeId author = d.AddEntity("author", BasicAttrs());
  NodeId book = d.AddEntity("book", BasicAttrs("title"));
  NodeId publisher = d.AddEntity("publisher", BasicAttrs());
  NodeId copy = d.AddEntity("copy", BasicAttrs("barcode"));
  NodeId branch = d.AddEntity("branch", BasicAttrs());
  NodeId member = d.AddEntity("member", BasicAttrs());
  NodeId loan = d.AddEntity(
      "loan", {{"id", AttrType::kString, true},
               {"due", AttrType::kString, false}});
  RelMN(&d, "writes", author, book);
  Rel(&d, "publishes", publisher, book, Totality::kTotal);
  Rel(&d, "copy_of", book, copy, Totality::kTotal);
  Rel(&d, "held_by", branch, copy, Totality::kTotal);
  Rel(&d, "borrows", member, loan, Totality::kTotal);
  Rel(&d, "loan_copy", copy, loan, Totality::kTotal);
  Rel(&d, "registered_at", branch, member);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er4Hospital() {
  // 17 nodes; deep 1:N chains plus one higher-order relationship
  // (a lab test ordered *for a visit's prescription*).
  ErDiagram d("ER4");
  NodeId ward = d.AddEntity("ward", BasicAttrs());
  NodeId doctor = d.AddEntity("doctor", BasicAttrs());
  NodeId patient = d.AddEntity("patient", BasicAttrs());
  NodeId visit = d.AddEntity(
      "visit", {{"id", AttrType::kString, true},
                {"date", AttrType::kString, false}});
  NodeId prescription = d.AddEntity("prescription", BasicAttrs("dose"));
  NodeId drug = d.AddEntity("drug", BasicAttrs());
  NodeId lab = d.AddEntity("lab", BasicAttrs());
  Rel(&d, "assigned_to", ward, patient);
  Rel(&d, "attends", doctor, visit, Totality::kTotal);
  Rel(&d, "makes_visit", patient, visit, Totality::kTotal);
  NodeId prescribes =
      Rel(&d, "prescribes", visit, prescription, Totality::kTotal);
  Rel(&d, "of_drug", drug, prescription, Totality::kTotal);
  Rel(&d, "supervises", ward, doctor);
  // Higher-order: labs verify prescription events (1 lab : many prescribes).
  auto verify = d.AddOneToMany("verifies", lab, prescribes);
  MCTDB_CHECK(verify.ok());
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er5Airline() {
  // 19 nodes; two parallel 1:N relationships between the same pair
  // (departs/arrives), plus M:N crew staffing.
  ErDiagram d("ER5");
  NodeId airport = d.AddEntity("airport", BasicAttrs("code"));
  NodeId flight = d.AddEntity(
      "flight", {{"id", AttrType::kString, true},
                 {"number", AttrType::kString, false},
                 {"minutes", AttrType::kInt, false}});
  NodeId aircraft = d.AddEntity("aircraft", BasicAttrs("model"));
  NodeId booking = d.AddEntity("booking", BasicAttrs("seat"));
  NodeId passenger = d.AddEntity("passenger", BasicAttrs());
  NodeId crew = d.AddEntity("crew", BasicAttrs());
  NodeId airline = d.AddEntity("airline", BasicAttrs());
  Rel(&d, "departs", airport, flight, Totality::kTotal);
  Rel(&d, "arrives", airport, flight, Totality::kTotal);
  Rel(&d, "operates", aircraft, flight, Totality::kTotal);
  Rel(&d, "owns", airline, aircraft, Totality::kTotal);
  Rel(&d, "books", passenger, booking, Totality::kTotal);
  Rel(&d, "for_flight", flight, booking, Totality::kTotal);
  RelMN(&d, "staffed_by", flight, crew);
  Rel(&d, "employs_crew", airline, crew, Totality::kTotal);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er6Star() {
  // 17 nodes: one hub with 1:N spokes to 8 satellites. Single color
  // suffices for every property; a sanity anchor for the figures.
  ErDiagram d("ER6");
  NodeId hub = d.AddEntity("hub", BasicAttrs());
  const char* names[] = {"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"};
  const char* rels[] = {"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"};
  for (int i = 0; i < 8; ++i) {
    NodeId s = d.AddEntity(names[i], BasicAttrs());
    Rel(&d, rels[i], hub, s, Totality::kTotal);
  }
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er7Chain() {
  // 15 nodes: a 1:N chain of 8 entities — deep nesting, DR trivially
  // achievable in one color; the opposite anchor to ER8.
  ErDiagram d("ER7");
  NodeId prev = d.AddEntity("c1", BasicAttrs());
  for (int i = 2; i <= 8; ++i) {
    NodeId cur = d.AddEntity(("c" + std::to_string(i)).c_str(), BasicAttrs());
    Rel(&d, ("l" + std::to_string(i - 1)).c_str(), prev, cur,
        Totality::kTotal);
    prev = cur;
  }
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er8Bipartite() {
  // 11 nodes: M:N-heavy bipartite core — maximum color pressure, the
  // anti-XML case of Theorem 4.1.
  ErDiagram d("ER8");
  NodeId u1 = d.AddEntity("u1", BasicAttrs());
  NodeId u2 = d.AddEntity("u2", BasicAttrs());
  NodeId v1 = d.AddEntity("v1", BasicAttrs());
  NodeId v2 = d.AddEntity("v2", BasicAttrs());
  NodeId w = d.AddEntity("w", BasicAttrs());
  RelMN(&d, "m1", u1, v1);
  RelMN(&d, "m2", u1, v2);
  RelMN(&d, "m3", u2, v1);
  RelMN(&d, "m4", u2, v2);
  Rel(&d, "feeds", v2, w);
  Rel(&d, "drains", v1, w);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er9OneOneRing() {
  // 12 nodes: a cycle of 1:1 relationships (tests undirected-SCC handling
  // and MC's root merging) plus a 1:N tail.
  ErDiagram d("ER9");
  NodeId a = d.AddEntity("a", BasicAttrs());
  NodeId b = d.AddEntity("b", BasicAttrs());
  NodeId c = d.AddEntity("c", BasicAttrs());
  NodeId e = d.AddEntity("e", BasicAttrs());
  Rel11(&d, "ab", a, b);
  Rel11(&d, "bc", b, c);
  Rel11(&d, "ce", c, e);
  Rel11(&d, "ea", e, a);
  NodeId t = d.AddEntity("tail", BasicAttrs());
  Rel(&d, "spawns", a, t);
  NodeId t2 = d.AddEntity("tail2", BasicAttrs());
  Rel(&d, "forks", t, t2);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Er10Lattice() {
  // 16 nodes: diamond A=>{B,C}=>D plus a chain under D. SHALLOW must break
  // the A..tail ancestor-descendant into value joins — the anomaly the
  // paper calls out for ER10 in §6.2.
  ErDiagram d("ER10");
  NodeId a = d.AddEntity("a", BasicAttrs());
  NodeId b = d.AddEntity("b", BasicAttrs());
  NodeId c = d.AddEntity("c", BasicAttrs());
  NodeId dd = d.AddEntity("d", BasicAttrs());
  NodeId e = d.AddEntity("e", BasicAttrs());
  NodeId f = d.AddEntity("f", BasicAttrs());
  Rel(&d, "ab", a, b, Totality::kTotal);
  Rel(&d, "ac", a, c, Totality::kTotal);
  Rel(&d, "bd", b, dd, Totality::kTotal);
  Rel(&d, "cd", c, dd, Totality::kTotal);  // d: many side of two 1:N rels
  Rel(&d, "de", dd, e, Totality::kTotal);
  Rel(&d, "ef", e, f, Totality::kTotal);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

ErDiagram Derby() {
  // Registrar-style schema, 27 nodes — the collection's "real-world schema
  // that comes with a query set" (workload in src/workload/derby.cc).
  ErDiagram d("Derby");
  NodeId college = d.AddEntity("college", BasicAttrs());
  NodeId dept = d.AddEntity("department", BasicAttrs());
  NodeId professor = d.AddEntity(
      "professor", {{"id", AttrType::kString, true},
                    {"name", AttrType::kString, false},
                    {"rank", AttrType::kString, false}});
  NodeId course = d.AddEntity("course", BasicAttrs("title"));
  NodeId section = d.AddEntity(
      "section", {{"id", AttrType::kString, true},
                  {"term", AttrType::kString, false}});
  NodeId student = d.AddEntity(
      "student", {{"id", AttrType::kString, true},
                  {"name", AttrType::kString, false},
                  {"gpa", AttrType::kInt, false}});
  NodeId enrollment = d.AddEntity(
      "enrollment", {{"id", AttrType::kString, true},
                     {"grade", AttrType::kString, false}});
  NodeId building = d.AddEntity("building", BasicAttrs());
  NodeId room = d.AddEntity("room", BasicAttrs("number"));
  NodeId timeslot = d.AddEntity("timeslot", BasicAttrs("when"));
  NodeId advisor_note = d.AddEntity("advisor_note", BasicAttrs("text"));
  Rel(&d, "comprises", college, dept, Totality::kTotal);
  Rel(&d, "dept_faculty", dept, professor, Totality::kTotal);
  Rel(&d, "dept_course", dept, course, Totality::kTotal);
  Rel(&d, "course_section", course, section, Totality::kTotal);
  Rel(&d, "section_prof", professor, section, Totality::kTotal);
  Rel(&d, "stu_enroll", student, enrollment, Totality::kTotal);
  Rel(&d, "sec_enroll", section, enrollment, Totality::kTotal);
  Rel(&d, "in_building", building, room, Totality::kTotal);
  Rel(&d, "meets_in", room, section);
  Rel(&d, "meets_at", timeslot, section);
  Rel(&d, "advises", professor, student);
  Rel(&d, "note_about", student, advisor_note, Totality::kTotal);
  Rel11(&d, "dept_head", professor, dept);
  RelMN(&d, "prereq_site", course, room);  // courses pinned to lab rooms
  Rel(&d, "stu_college", college, student);
  MCTDB_CHECK(d.Validate().ok());
  return d;
}

std::vector<ErDiagram> EvaluationCollection() {
  std::vector<ErDiagram> out;
  out.push_back(Er1Company());
  out.push_back(Er2University());
  out.push_back(Er3Library());
  out.push_back(Er4Hospital());
  out.push_back(Er5Airline());
  out.push_back(Er6Star());
  out.push_back(Er7Chain());
  out.push_back(Er8Bipartite());
  out.push_back(Er9OneOneRing());
  out.push_back(Er10Lattice());
  out.push_back(Derby());
  out.push_back(Tpcw());
  return out;
}

}  // namespace mctdb::er
