#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/status.h"
#include "obs/trace_id.h"

namespace mctdb::obs::flight {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// Registry sizing. 128 rings covers every realistic worker-pool + test
// configuration; a thread arriving after the table is full records nothing
// (and only that thread loses events).
constexpr size_t kMaxRings = 128;
constexpr size_t kDefaultEventsPerThread = 1024;
constexpr size_t kWordsPerEvent = 4;
constexpr char kDumpMagic[8] = {'M', 'C', 'T', 'F', 'R', '1', '\0', '\0'};

// One per-thread ring. `head` counts events ever written (the next seq);
// `slots` holds capacity*4 words. Only the owning thread writes; any thread
// may read (dump/snapshot), which is why every word is atomic.
struct Ring {
  uint32_t thread_index = 0;
  uint32_t capacity = 0;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t>* slots = nullptr;
};

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<uint32_t> g_ring_count{0};
std::atomic<size_t> g_ring_capacity{kDefaultEventsPerThread};

thread_local Ring* t_ring = nullptr;
thread_local bool t_ring_unavailable = false;

// Fixed buffer so the signal path never allocates. Written only from
// SetDumpPath (before any crash can care), read from the handler.
char g_dump_path[256] = {0};

// Separate one-shot latches: an early Unavailable (a routine shed under
// load) must not consume the crash handler's dump. The crash dump
// overwrites the same file with a superset of events.
std::atomic<int> g_escalation_armed{0};
std::atomic<int> g_crash_dumped{0};

uint64_t NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Ring* ClaimRing() {
  uint32_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) return nullptr;
  Ring* r = new Ring;
  r->thread_index = idx;
  r->capacity = static_cast<uint32_t>(
      std::max<size_t>(1, g_ring_capacity.load(std::memory_order_relaxed)));
  r->slots = new std::atomic<uint64_t>[r->capacity * kWordsPerEvent]();
  g_rings[idx].store(r, std::memory_order_release);
  return r;
}

// Validates one slot's packed word against its position and the ring head,
// appending a decoded Event when it is consistent. A dumper racing a
// wrapped writer can capture words from two different events in one slot;
// the embedded seq then disagrees with the slot position (or lies outside
// the live [head-capacity, head) window) and the slot is dropped.
void AppendIfValid(std::vector<Event>* out, const uint64_t w[4],
                   uint64_t slot, uint64_t capacity, uint64_t head,
                   uint32_t thread_index) {
  if (head == 0) return;
  const uint64_t packed = w[3];
  const uint64_t seq = packed >> 16;
  const uint64_t sub = (packed >> 8) & 0xff;
  const uint64_t site = packed & 0xff;
  if (seq % capacity != slot) return;
  if (seq >= head || seq + capacity < head) return;
  if (sub >= kNumSubsystems || site >= kNumSites) return;
  Event e;
  e.nanos = w[0];
  e.trace_id = w[1];
  e.arg = w[2];
  e.seq = seq;
  e.thread_index = thread_index;
  e.subsystem = static_cast<Subsystem>(sub);
  e.site = static_cast<Site>(site);
  out->push_back(e);
}

bool WriteAll(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

void FailpointHitObserver(std::string_view name) {
  uint64_t packed = 0;
  std::memcpy(&packed, name.data(), std::min<size_t>(8, name.size()));
  Record(Subsystem::kFailpoint, Site::kFailpointHit, CurrentTraceId(),
         packed);
}

void StatusEscalationObserver(int code) {
  if (!Enabled()) return;
  Record(Subsystem::kStatus, Site::kEscalation, CurrentTraceId(),
         static_cast<uint64_t>(code));
  if (g_dump_path[0] != '\0' &&
      g_escalation_armed.exchange(0, std::memory_order_acq_rel) == 1) {
    (void)DumpToConfiguredPath();  // best-effort; the events stay in-ring
  }
}

void CrashHandler(int sig) {
  // Async-signal-safe: atomic ops, open/write/close, raise. The exchange
  // keeps a second fatal signal (e.g. SEGV inside the dump) from looping.
  if (g_crash_dumped.exchange(1) == 0 && g_dump_path[0] != '\0') {
    int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      (void)DumpToFd(fd);
      ::close(fd);
    }
  }
  ::raise(sig);  // SA_RESETHAND restored the default action: process dies
}

}  // namespace

namespace internal {

void RecordSlow(Subsystem subsystem, Site site, uint64_t trace_id,
                uint64_t arg) {
  if (t_ring_unavailable) return;
  Ring* r = t_ring;
  if (r == nullptr) {
    r = ClaimRing();
    if (r == nullptr) {
      t_ring_unavailable = true;
      return;
    }
    t_ring = r;
  }
  const uint64_t seq = r->head.load(std::memory_order_relaxed);
  const size_t base = (seq % r->capacity) * kWordsPerEvent;
  r->slots[base + 0].store(NowNanos(), std::memory_order_relaxed);
  r->slots[base + 1].store(trace_id, std::memory_order_relaxed);
  r->slots[base + 2].store(arg, std::memory_order_relaxed);
  const uint64_t packed = (seq << 16) |
                          (static_cast<uint64_t>(subsystem) << 8) |
                          static_cast<uint64_t>(site);
  r->slots[base + 3].store(packed, std::memory_order_release);
  r->head.store(seq + 1, std::memory_order_release);
}

}  // namespace internal

const char* ToString(Subsystem s) {
  switch (s) {
    case Subsystem::kService: return "service";
    case Subsystem::kPlanCache: return "plan_cache";
    case Subsystem::kExec: return "exec";
    case Subsystem::kWal: return "wal";
    case Subsystem::kCheckpoint: return "checkpoint";
    case Subsystem::kPool: return "pool";
    case Subsystem::kFailpoint: return "failpoint";
    case Subsystem::kStatus: return "status";
  }
  return "?";
}

const char* ToString(Site s) {
  switch (s) {
    case Site::kAdmit: return "admit";
    case Site::kShed: return "shed";
    case Site::kReject: return "reject";
    case Site::kBreakerReject: return "breaker_reject";
    case Site::kDeadline: return "deadline";
    case Site::kSpanBegin: return "span_begin";
    case Site::kSpanEnd: return "span_end";
    case Site::kPlanCacheHit: return "plan_cache_hit";
    case Site::kPlanCacheMiss: return "plan_cache_miss";
    case Site::kPlanCacheInvalidated: return "plan_cache_invalidated";
    case Site::kGenerationBump: return "generation_bump";
    case Site::kWalAppend: return "wal_append";
    case Site::kWalFsync: return "wal_fsync";
    case Site::kCheckpointBegin: return "checkpoint_begin";
    case Site::kCheckpointEnd: return "checkpoint_end";
    case Site::kEvict: return "evict";
    case Site::kQuarantine: return "quarantine";
    case Site::kFailpointHit: return "failpoint_hit";
    case Site::kEscalation: return "escalation";
    case Site::kMaintenanceTrigger: return "maintenance_trigger";
    case Site::kWriteStall: return "write_stall";
    case Site::kReadOnlyEnter: return "readonly_enter";
    case Site::kReadOnlyExit: return "readonly_exit";
  }
  return "?";
}

void Enable(size_t events_per_thread) {
  if (events_per_thread > 0) {
    g_ring_capacity.store(events_per_thread, std::memory_order_relaxed);
  }
  failpoint::SetHitObserver(&FailpointHitObserver);
  SetStatusEscalationObserver(&StatusEscalationObserver);
  g_escalation_armed.store(1, std::memory_order_relaxed);
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

void SetDumpPath(const char* path) {
  if (path == nullptr) path = "";
  std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", path);
}

const char* DumpPath() { return g_dump_path; }

bool DumpToFd(int fd) {
  if (!WriteAll(fd, kDumpMagic, sizeof(kDumpMagic))) return false;
  const uint32_t count = std::min<uint32_t>(
      g_ring_count.load(std::memory_order_acquire),
      static_cast<uint32_t>(kMaxRings));
  for (uint32_t i = 0; i < count; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const uint64_t hdr[3] = {r->thread_index, r->capacity,
                             r->head.load(std::memory_order_acquire)};
    if (!WriteAll(fd, hdr, sizeof(hdr))) return false;
    uint64_t chunk[256];
    const size_t total = static_cast<size_t>(r->capacity) * kWordsPerEvent;
    size_t off = 0;
    while (off < total) {
      const size_t n = std::min<size_t>(256, total - off);
      for (size_t j = 0; j < n; ++j) {
        chunk[j] = r->slots[off + j].load(std::memory_order_relaxed);
      }
      if (!WriteAll(fd, chunk, n * sizeof(uint64_t))) return false;
      off += n;
    }
  }
  return true;
}

Status DumpToFile(const char* path) {
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(std::string("flight dump: cannot open ") + path);
  }
  const bool ok = DumpToFd(fd);
  ::close(fd);
  if (!ok) {
    return Status::IoError(std::string("flight dump: short write to ") +
                           path);
  }
  return Status::OK();
}

Status DumpToConfiguredPath() {
  if (g_dump_path[0] == '\0') {
    return Status::InvalidArgument("flight dump: no dump path configured");
  }
  return DumpToFile(g_dump_path);
}

void InstallCrashHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  const int signals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGILL, SIGFPE};
  for (int sig : signals) sigaction(sig, &sa, nullptr);
}

Result<std::vector<Event>> Decode(const std::string& bytes) {
  if (bytes.size() < sizeof(kDumpMagic) ||
      std::memcmp(bytes.data(), kDumpMagic, sizeof(kDumpMagic)) != 0) {
    return Status::InvalidArgument("flight dump: bad magic");
  }
  size_t off = sizeof(kDumpMagic);
  auto read_u64 = [&](uint64_t* v) {
    if (off + 8 > bytes.size()) return false;
    std::memcpy(v, bytes.data() + off, 8);
    off += 8;
    return true;
  };
  std::vector<Event> events;
  while (off < bytes.size()) {
    uint64_t thread_index = 0, capacity = 0, head = 0;
    if (!read_u64(&thread_index) || !read_u64(&capacity) ||
        !read_u64(&head)) {
      return Status::DataLoss("flight dump: truncated ring header");
    }
    if (capacity == 0 || capacity > (1u << 24)) {
      return Status::DataLoss("flight dump: implausible ring capacity");
    }
    const size_t body = static_cast<size_t>(capacity) * kWordsPerEvent * 8;
    if (off + body > bytes.size()) {
      return Status::DataLoss("flight dump: truncated ring body");
    }
    for (uint64_t slot = 0; slot < capacity; ++slot) {
      uint64_t w[4];
      std::memcpy(w, bytes.data() + off + slot * kWordsPerEvent * 8,
                  kWordsPerEvent * 8);
      AppendIfValid(&events, w, slot, capacity, head,
                    static_cast<uint32_t>(thread_index));
    }
    off += body;
  }
  return events;
}

Result<std::vector<Event>> DecodeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("flight dump: cannot read " + path);
  }
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return Decode(bytes);
}

std::vector<Event> Snapshot() {
  std::vector<Event> events;
  const uint32_t count = std::min<uint32_t>(
      g_ring_count.load(std::memory_order_acquire),
      static_cast<uint32_t>(kMaxRings));
  for (uint32_t i = 0; i < count; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const uint64_t head = r->head.load(std::memory_order_acquire);
    for (uint64_t slot = 0; slot < r->capacity; ++slot) {
      const size_t base = slot * kWordsPerEvent;
      uint64_t w[4];
      w[3] = r->slots[base + 3].load(std::memory_order_acquire);
      w[0] = r->slots[base + 0].load(std::memory_order_relaxed);
      w[1] = r->slots[base + 1].load(std::memory_order_relaxed);
      w[2] = r->slots[base + 2].load(std::memory_order_relaxed);
      AppendIfValid(&events, w, slot, r->capacity, head, r->thread_index);
    }
  }
  return events;
}

namespace {

std::vector<Event> Sorted(const std::vector<Event>& events,
                          uint64_t trace_filter) {
  std::vector<Event> out;
  out.reserve(events.size());
  for (const Event& e : events) {
    if (trace_filter != 0 && e.trace_id != trace_filter) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.nanos != b.nanos) return a.nanos < b.nanos;
    if (a.thread_index != b.thread_index) {
      return a.thread_index < b.thread_index;
    }
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace

std::string RenderText(const std::vector<Event>& events,
                       uint64_t trace_filter) {
  std::vector<Event> sorted = Sorted(events, trace_filter);
  uint64_t base = sorted.empty() ? 0 : sorted.front().nanos;
  std::string out;
  char line[256];
  for (const Event& e : sorted) {
    std::snprintf(line, sizeof(line),
                  "+%010.6fs  thr=%02u  trace=%llu  %s.%s  arg=%llu\n",
                  static_cast<double>(e.nanos - base) * 1e-9,
                  e.thread_index,
                  static_cast<unsigned long long>(e.trace_id),
                  ToString(e.subsystem), ToString(e.site),
                  static_cast<unsigned long long>(e.arg));
    out += line;
  }
  return out;
}

std::string RenderJson(const std::vector<Event>& events,
                       uint64_t trace_filter) {
  std::vector<Event> sorted = Sorted(events, trace_filter);
  std::string out = "{\"events\":[";
  char buf[256];
  bool first = true;
  for (const Event& e : sorted) {
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"nanos\":%llu,\"trace_id\":%llu,\"subsystem\":\"%s\","
        "\"site\":\"%s\",\"arg\":%llu,\"thread\":%u,\"seq\":%llu}",
        first ? "" : ",", static_cast<unsigned long long>(e.nanos),
        static_cast<unsigned long long>(e.trace_id), ToString(e.subsystem),
        ToString(e.site), static_cast<unsigned long long>(e.arg),
        e.thread_index, static_cast<unsigned long long>(e.seq));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

void ResetForTest() {
  const uint32_t count = std::min<uint32_t>(
      g_ring_count.load(std::memory_order_acquire),
      static_cast<uint32_t>(kMaxRings));
  for (uint32_t i = 0; i < count; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    for (size_t w = 0; w < static_cast<size_t>(r->capacity) * kWordsPerEvent;
         ++w) {
      r->slots[w].store(0, std::memory_order_relaxed);
    }
    r->head.store(0, std::memory_order_release);
  }
  g_escalation_armed.store(1, std::memory_order_relaxed);
  g_crash_dumped.store(0, std::memory_order_relaxed);
}

}  // namespace mctdb::obs::flight
