#include "design/associations.h"

#include <gtest/gtest.h>

#include "er/er_catalog.h"

namespace mctdb::design {
namespace {

using er::ErDiagram;
using er::ErGraph;
using er::NodeId;

TEST(AssociationsTest, SingleOneToManyYieldsForwardPathsOnly) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToMany("r", a, b).ok());
  ErGraph g(d);
  auto paths = EnumerateEligiblePaths(g);
  // a->r, a->r->b, b->r (endpoint->rel is always traversable), r->b.
  // NOT r->a or b->..->a (many-to-one downward).
  bool a_to_b = false, b_to_a = false;
  for (const auto& p : paths) {
    if (p.source == a && p.target == b) a_to_b = true;
    if (p.source == b && p.target == a) b_to_a = true;
  }
  EXPECT_TRUE(a_to_b);
  EXPECT_FALSE(b_to_a);
}

TEST(AssociationsTest, ManyManyPairIneligible) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddManyToMany("r", a, b).ok());
  ErGraph g(d);
  for (const auto& p : EnumerateEligiblePaths(g)) {
    EXPECT_FALSE(p.source == a && p.target == b);
    EXPECT_FALSE(p.source == b && p.target == a);
  }
  // But a->r and b->r (each 1:N into the relationship) are eligible.
  auto pairs = EligiblePairs(g);
  NodeId r = *d.FindNode("r");
  EXPECT_NE(std::find(pairs.begin(), pairs.end(), std::make_pair(a, r)),
            pairs.end());
}

TEST(AssociationsTest, CompositionThroughChain) {
  // a => b => c: a=>c eligible; c=>a not.
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  NodeId c = d.AddEntity("c");
  ASSERT_TRUE(d.AddOneToMany("r1", a, b).ok());
  ASSERT_TRUE(d.AddOneToMany("r2", b, c).ok());
  ErGraph g(d);
  auto pairs = EligiblePairs(g);
  auto has = [&](NodeId x, NodeId y) {
    return std::find(pairs.begin(), pairs.end(), std::make_pair(x, y)) !=
           pairs.end();
  };
  EXPECT_TRUE(has(a, c));
  EXPECT_FALSE(has(c, a));
  // The composite fan: b-to-a composed with a-to-... stays ineligible.
  EXPECT_FALSE(has(b, a));
}

TEST(AssociationsTest, OneOneGoesBothWays) {
  ErDiagram d("t");
  NodeId a = d.AddEntity("a");
  NodeId b = d.AddEntity("b");
  ASSERT_TRUE(d.AddOneToOne("r", a, b).ok());
  ErGraph g(d);
  auto pairs = EligiblePairs(g);
  auto has = [&](NodeId x, NodeId y) {
    return std::find(pairs.begin(), pairs.end(), std::make_pair(x, y)) !=
           pairs.end();
  };
  EXPECT_TRUE(has(a, b));
  EXPECT_TRUE(has(b, a));
}

TEST(AssociationsTest, PathsAreSimple) {
  er::ErDiagram d = er::Tpcw();
  ErGraph g(d);
  for (const auto& p : EnumerateEligiblePaths(g)) {
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "repeated node in path";
    EXPECT_EQ(p.nodes.size(), p.edges.size() + 1);
    EXPECT_EQ(p.nodes.front(), p.source);
    EXPECT_EQ(p.nodes.back(), p.target);
  }
}

TEST(AssociationsTest, TpcwKnownAssociations) {
  er::ErDiagram d = er::Tpcw();
  ErGraph g(d);
  auto pairs = EligiblePairs(g);
  auto has = [&](const char* x, const char* y) {
    return std::find(pairs.begin(), pairs.end(),
                     std::make_pair(*d.FindNode(x), *d.FindNode(y))) !=
           pairs.end();
  };
  // 1:N compositions downward.
  EXPECT_TRUE(has("country", "order"));
  EXPECT_TRUE(has("country", "order_line"));
  EXPECT_TRUE(has("customer", "order"));
  EXPECT_TRUE(has("address", "order"));  // via billing/shipping
  EXPECT_TRUE(has("item", "order_line"));
  EXPECT_TRUE(has("author", "order_line"));
  EXPECT_TRUE(has("order", "credit_card_transaction"));  // 1:1
  EXPECT_TRUE(has("credit_card_transaction", "order"));  // 1:1 both ways
  // M:N composites are ineligible.
  EXPECT_FALSE(has("order", "item"));
  EXPECT_FALSE(has("item", "order"));
  EXPECT_FALSE(has("order", "customer"));  // many-to-one upward
  EXPECT_FALSE(has("order_line", "country"));
}

TEST(AssociationsTest, LabelUsesIntermediateNodes) {
  er::ErDiagram d = er::Tpcw();
  ErGraph g(d);
  for (const auto& p : EnumerateEligiblePaths(g)) {
    if (d.node(p.source).name == "country" &&
        d.node(p.target).name == "customer" && p.length() == 4) {
      EXPECT_EQ(p.Label(d), "in.address.has");
      return;
    }
  }
  FAIL() << "expected country->customer path of length 4";
}

TEST(AssociationsTest, MaxLengthCapRespected) {
  er::ErDiagram d = er::Er7Chain();
  ErGraph g(d);
  EnumerateOptions opts;
  opts.max_length = 3;
  for (const auto& p : EnumerateEligiblePaths(g, opts)) {
    EXPECT_LE(p.length(), 3u);
  }
}

TEST(AssociationsTest, MaxPathsCapSetsTruncated) {
  er::ErDiagram d = er::Tpcw();
  ErGraph g(d);
  EnumerateOptions opts;
  opts.max_paths = 5;
  bool truncated = false;
  auto paths = EnumerateEligiblePaths(g, opts, &truncated);
  EXPECT_EQ(paths.size(), 5u);
  EXPECT_TRUE(truncated);
}

}  // namespace
}  // namespace mctdb::design
