#include "workload/workload.h"

#include <gtest/gtest.h>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "workload/metrics.h"

namespace mctdb::workload {
namespace {

TEST(TpcwWorkloadTest, SixteenQueriesThreeUpdates) {
  Workload w = TpcwWorkload();
  EXPECT_EQ(w.queries.size(), 16u);  // Q1-Q13, U1-U3
  EXPECT_EQ(w.num_updates(), 3u);
  EXPECT_EQ(w.figure_queries.size(), 12u)
      << "4 schema-indifferent queries excluded";
  EXPECT_NE(w.Find("Q1"), nullptr);
  EXPECT_NE(w.Find("U3"), nullptr);
  EXPECT_EQ(w.Find("Q99"), nullptr);
}

TEST(TpcwWorkloadTest, ScaleMultipliesCounts) {
  Workload w1 = TpcwWorkload(1.0);
  Workload w2 = TpcwWorkload(2.0);
  EXPECT_EQ(w2.gen.explicit_counts.at("customer"),
            2 * w1.gen.explicit_counts.at("customer"));
  EXPECT_EQ(w2.gen.explicit_counts.at("country"),
            w1.gen.explicit_counts.at("country"))
      << "country count is fixed (like TPC-W's)";
}

TEST(XmarkWorkloadTest, TwentyReadsEightUpdatesPerDiagram) {
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    Workload w = XmarkEmulatedWorkload(d);
    size_t reads = 0, updates = 0;
    for (const auto& q : w.queries) {
      (q.is_update() ? updates : reads) += 1;
    }
    EXPECT_LE(reads, 20u) << d.name();
    EXPECT_GE(reads, 12u) << d.name() << ": too few archetypes matched";
    EXPECT_LE(updates, 8u) << d.name();
    EXPECT_GE(updates, 4u) << d.name();
  }
}

TEST(XmarkWorkloadTest, QueriesAreWellFormed) {
  for (const er::ErDiagram& d : er::EvaluationCollection()) {
    Workload w = XmarkEmulatedWorkload(d);
    for (const auto& q : w.queries) {
      EXPECT_FALSE(q.nodes.empty()) << d.name() << "/" << q.name;
      for (size_t i = 1; i < q.nodes.size(); ++i) {
        EXPECT_GE(q.nodes[i].parent, 0);
        EXPECT_GE(q.nodes[i].path_from_parent.size(), 2u);
        EXPECT_EQ(q.nodes[i].path_from_parent.front(),
                  q.nodes[q.nodes[i].parent].er_node);
        EXPECT_EQ(q.nodes[i].path_from_parent.back(), q.nodes[i].er_node);
      }
      EXPECT_GE(q.output, 0);
      EXPECT_LT(q.output, static_cast<int>(q.nodes.size()));
    }
  }
}

TEST(DerbyWorkloadTest, TwentyQueriesEightUpdates) {
  Workload w = DerbyWorkload();
  EXPECT_EQ(w.queries.size(), 20u);
  EXPECT_EQ(w.num_updates(), 8u);
  EXPECT_EQ(w.figure_queries.size(), 20u);
}

TEST(MetricsTest, GeoMean1p) {
  EXPECT_DOUBLE_EQ(GeoMean1p({}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean1p({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean1p({3}), 3.0);
  // gm1p({0, 3}) = sqrt(1*4) - 1 = 1.
  EXPECT_NEAR(GeoMean1p({0, 3}), 1.0, 1e-12);
  EXPECT_GT(GeoMean1p({1, 1, 10}), GeoMean1p({1, 1, 1}));
}

TEST(MetricsTest, PlanMetricsCoverFigureQueries) {
  Workload w = TpcwWorkload(0.05);
  er::ErGraph g(w.diagram);
  design::Designer designer(g);
  mct::MctSchema schema = designer.Design(design::Strategy::kEn);
  auto rows = PlanMetrics(w, schema);
  EXPECT_EQ(rows.size(), w.figure_queries.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.schema, "EN");
  }
}

TEST(MetricsTest, CollectionGridShape) {
  // A 2-diagram, 3-strategy slice of the Figs 12-14 grid.
  std::vector<Workload> workloads;
  workloads.push_back(XmarkEmulatedWorkload(er::Er6Star()));
  workloads.push_back(XmarkEmulatedWorkload(er::Er7Chain()));
  auto cells = AnalyzeCollection(
      workloads, {design::Strategy::kShallow, design::Strategy::kEn,
                  design::Strategy::kDr});
  ASSERT_EQ(cells.size(), 6u);
  // SHALLOW must show the most value joins on both simple diagrams.
  for (size_t i = 0; i < 2; ++i) {
    double shallow = cells[3 * i + 0].gmean_value_joins_crossings;
    double dr = cells[3 * i + 2].gmean_value_joins_crossings;
    EXPECT_GE(shallow, dr) << workloads[i].diagram.name();
  }
}

}  // namespace
}  // namespace mctdb::workload
