// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "design/designer.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mctdb::bench {

/// Strictly parses a positive, finite scale factor. Rejects trailing
/// garbage ("1.5x"), non-numbers ("abc"), and non-positive values —
/// `bench_table1 abc` must fail loudly instead of "running" at scale 0.
inline bool ParseScale(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(v > 0.0) || v > 1e6) return false;  // also rejects NaN/inf
  *out = v;
  return true;
}

/// Shared CLI contract of the bench binaries:
///   bench_<name> [scale] [--json FILE] [--reps N]
/// plus the MCTDB_SCALE env var as a scale fallback. All three are
/// validated strictly; any bad input prints a usage line and leaves
/// ok=false (mains return 1).
struct BenchArgs {
  double scale = 1.0;
  std::string json_path;  // empty = no JSON report requested
  size_t reps = 1;
  bool ok = true;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv,
                                double default_scale = 1.0) {
  BenchArgs args;
  args.scale = default_scale;
  auto usage = [&]() {
    std::fprintf(stderr,
                 "usage: %s [scale] [--json FILE] [--reps N]\n"
                 "  scale: positive number (default %g; MCTDB_SCALE env "
                 "var also honored)\n",
                 argc > 0 ? argv[0] : "bench", default_scale);
    args.ok = false;
    return args;
  };
  if (const char* env = std::getenv("MCTDB_SCALE")) {
    if (!ParseScale(env, &args.scale)) {
      std::fprintf(stderr, "error: bad MCTDB_SCALE '%s'\n", env);
      return usage();
    }
  }
  bool scale_seen = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      if (i + 1 >= argc) return usage();
      args.json_path = argv[++i];
    } else if (!std::strncmp(argv[i], "--json=", 7)) {
      args.json_path = argv[i] + 7;
    } else if (!std::strcmp(argv[i], "--reps")) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      unsigned long reps = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || reps == 0 || reps > 1000) {
        std::fprintf(stderr, "error: bad --reps '%s'\n", argv[i]);
        return usage();
      }
      args.reps = reps;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return usage();
    } else if (!scale_seen) {
      scale_seen = true;
      if (!ParseScale(argv[i], &args.scale)) {
        std::fprintf(stderr, "error: bad scale '%s'\n", argv[i]);
        return usage();
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", argv[i]);
      return usage();
    }
  }
  return args;
}

/// The seven TPC-W schemas with their materialized stores.
struct TpcwSetup {
  workload::Workload w;
  std::unique_ptr<er::ErGraph> graph;
  std::unique_ptr<design::Designer> designer;
  std::unique_ptr<instance::LogicalInstance> logical;
  std::vector<mct::MctSchema> schemas;
  std::vector<std::unique_ptr<storage::MctStore>> stores;

  explicit TpcwSetup(double scale, bool materialize = true)
      : w(workload::TpcwWorkload(scale)) {
    graph = std::make_unique<er::ErGraph>(w.diagram);
    designer = std::make_unique<design::Designer>(*graph);
    for (design::Strategy s : design::AllStrategies()) {
      schemas.push_back(designer->Design(s));
    }
    if (materialize) {
      logical = std::make_unique<instance::LogicalInstance>(
          instance::GenerateInstance(*graph, w.gen));
      for (mct::MctSchema& schema : schemas) {
        stores.push_back(instance::Materialize(*logical, schema));
      }
    }
  }
};

inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mctdb::bench
