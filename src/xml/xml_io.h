// XML serialization and a small parser (elements, attributes, text,
// comments; no DTD/namespaces — enough to round-trip our own output).
#pragma once

#include <string>

#include "common/result.h"
#include "xml/xml_node.h"

namespace mctdb::xml {

struct WriteOptions {
  bool pretty = true;   ///< indent with two spaces per depth
  bool header = true;   ///< emit <?xml version="1.0"?>
};

std::string WriteXml(const XmlNode& root, const WriteOptions& options = {});

/// Parses one document. Returns InvalidArgument with an offset on malformed
/// input.
Result<XmlNodePtr> ParseXml(std::string_view text);

}  // namespace mctdb::xml
