file(REMOVE_RECURSE
  "CMakeFiles/xml_design_test.dir/xml_design_test.cc.o"
  "CMakeFiles/xml_design_test.dir/xml_design_test.cc.o.d"
  "xml_design_test"
  "xml_design_test.pdb"
  "xml_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
