// ShardedBufferPool: the thread-safe page cache behind the mctsvc query
// service. The total page budget is split across N independently locked
// LRU shards; a page's shard is fixed by hashing its PageId, so threads
// touching disjoint pages rarely contend on the same mutex.
//
// Unlike the single-threaded BufferPool, Fetch pins the frame: a pinned
// frame is never evicted (and never moves), so the returned pointer stays
// valid across other threads' fetches until the matching Unpin. If every
// frame of a shard is pinned, the shard temporarily grows past its budget
// rather than failing — correctness over a strict page budget — and trims
// back as pins are released.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "storage/pager.h"

namespace mctdb::storage {

class ShardedBufferPool : public PageCache {
 public:
  /// `num_shards` == 0 picks a heuristic: the smallest power of two >= 2x
  /// the hardware thread count, clamped to [1, 64] and to the capacity so
  /// every shard owns at least one page. A non-zero count is rounded up to
  /// a power of two.
  ShardedBufferPool(const Pager* pager, size_t capacity_pages,
                    size_t num_shards = 0);

  using PageCache::Fetch;
  /// Thread-safe fetch. A miss reserves and pins the frame under the
  /// shard lock, then reads from the pager with the lock RELEASED (an
  /// in-flight `loading` flag makes concurrent fetchers of the same page
  /// wait on the shard's condition variable), so one slow disk read never
  /// serializes hits on other pages of the shard.
  ///
  /// Corruption quarantine: if the pager read fails verification (after
  /// the pager's own internal retries), the pool evicts the poisoned
  /// frame and re-reads once before reporting DataLoss. A frame whose
  /// load failed is never served: the loading thread marks it
  /// `load_failed`, waiters piggybacked on that load drop their pins and
  /// return the load's Status, the last pin out erases the frame, and
  /// fetchers arriving later wait for the erasure and then fault the page
  /// in fresh — so one bad read never wedges a PageId permanently.
  [[nodiscard]] Status Fetch(PageId id, const char** out_frame,
                             bool* out_miss) override;
  void Unpin(PageId id) override;

  uint64_t hits() const override;
  uint64_t misses() const override;
  size_t resident() const;
  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  /// Loads that failed verification and were quarantined (frame evicted).
  uint64_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }

  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t resident = 0;
  };
  std::vector<ShardStats> PerShard() const;
  void ResetStats();

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    uint32_t pins = 0;
    std::list<PageId>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
    /// True while the reserving thread copies the page in from the pager
    /// outside the shard lock. The frame is pinned for the duration, so
    /// it can be neither evicted nor trimmed mid-read.
    bool loading = false;
    /// Set (with `loading` cleared) when the load's pager read failed:
    /// the frame holds garbage and must never be served. Pin holders
    /// drain via ReleaseFailedLocked; the last one erases the frame.
    bool load_failed = false;
    /// The failure observed by the loading thread, handed to every waiter
    /// that piggybacked on the load. Meaningful iff load_failed.
    Status load_status;
  };
  struct Shard {
    // Leaf-rank lock: held only across frame-map operations, never across
    // pager I/O or calls back into service or session code (see
    // ordered_mutex.h).
    mutable mctdb::OrderedMutex mu{mctdb::LockRank::kPoolShard};
    std::condition_variable_any load_cv;  // signaled when a load finishes
    std::unordered_map<PageId, Frame> frames;
    std::list<PageId> lru;  // unpinned resident pages, front = most recent
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    size_t capacity = 1;
  };

  Shard& ShardFor(PageId id);
  const Shard& ShardFor(PageId id) const;
  /// Drops one pin on a load_failed frame; the last pin erases it and
  /// wakes fetchers waiting for the PageId to become loadable again.
  /// Requires the shard lock.
  static void ReleaseFailedLocked(Shard& s, PageId id, Frame& f);

  const Pager* pager_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;  // size is a power of two
  std::atomic<uint64_t> quarantined_{0};
};

}  // namespace mctdb::storage
