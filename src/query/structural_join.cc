#include "query/structural_join.h"

#include <algorithm>

namespace mctdb::query {

StructuralJoinResult StackTreeJoin(
    const std::vector<storage::LabelEntry>& ancestors,
    const std::vector<storage::LabelEntry>& descendants,
    const StructuralJoinOptions& options) {
  StructuralJoinResult out;
  // Stack of open ancestor intervals (nested by construction). For each
  // descendant, the matching ancestors are exactly the stack contents.
  std::vector<storage::LabelEntry> stack;
  std::vector<bool> stack_matched;

  size_t ai = 0;
  auto pop_closed = [&](uint32_t before_start) {
    while (!stack.empty() && stack.back().end < before_start) {
      if (stack_matched.back()) out.ancestors.push_back(stack.back());
      stack.pop_back();
      stack_matched.pop_back();
    }
  };

  for (const storage::LabelEntry& d : descendants) {
    // Open every ancestor starting before this descendant.
    while (ai < ancestors.size() && ancestors[ai].start < d.start) {
      pop_closed(ancestors[ai].start);
      stack.push_back(ancestors[ai]);
      stack_matched.push_back(false);
      ++ai;
    }
    pop_closed(d.start);
    bool matched = false;
    for (size_t s = 0; s < stack.size(); ++s) {
      if (stack[s].end < d.end) continue;  // not containing (sibling zone)
      if (options.parent_child_only && d.level != stack[s].level + 1) {
        continue;
      }
      ++out.pairs;
      matched = true;
      stack_matched[s] = true;
      if (!options.parent_child_only) {
        // All further stack entries also contain d (nested intervals), but
        // for the binding semantics one match suffices; still count pairs.
        for (size_t t = s + 1; t < stack.size(); ++t) {
          if (stack[t].end > d.end) {
            ++out.pairs;
            stack_matched[t] = true;
          }
        }
        break;
      }
    }
    if (matched) out.descendants.push_back(d);
  }
  pop_closed(UINT32_MAX);
  std::sort(out.ancestors.begin(), out.ancestors.end(),
            [](const storage::LabelEntry& a, const storage::LabelEntry& b) {
              return a.start < b.start;
            });
  return out;
}

StructuralJoinResult StackTreeJoinBlocked(
    const std::vector<storage::LabelEntry>& ancestors,
    const std::vector<storage::LabelEntry>& descendants,
    const StructuralJoinOptions& options) {
  StructuralJoinResult out;
  std::vector<storage::LabelEntry> stack;
  std::vector<bool> stack_matched;

  // Both sides decode into SoA blocks; the merge loop below touches only
  // the start/end/level columns, reassembling whole entries only when one
  // is pushed on the stack or emitted.
  storage::LabelBlock anc;
  size_t anc_consumed = 0;  ///< entries already decoded into `anc`
  size_t ai = 0;            ///< cursor within `anc`
  auto refill_anc = [&]() {
    size_t n = ancestors.size() - anc_consumed;
    if (n > storage::LabelBlock::kCapacity) n = storage::LabelBlock::kCapacity;
    anc.Fill(ancestors.data() + anc_consumed, n);
    anc_consumed += n;
    ai = 0;
  };
  refill_anc();

  auto pop_closed = [&](uint32_t before_start) {
    while (!stack.empty() && stack.back().end < before_start) {
      if (stack_matched.back()) out.ancestors.push_back(stack.back());
      stack.pop_back();
      stack_matched.pop_back();
    }
  };

  storage::LabelBlock desc;
  size_t desc_consumed = 0;
  while (desc_consumed < descendants.size()) {
    size_t n = descendants.size() - desc_consumed;
    if (n > storage::LabelBlock::kCapacity) n = storage::LabelBlock::kCapacity;
    desc.Fill(descendants.data() + desc_consumed, n);
    desc_consumed += n;
    for (size_t di = 0; di < desc.size; ++di) {
      const uint32_t d_start = desc.start[di];
      const uint32_t d_end = desc.end[di];
      const uint16_t d_level = desc.level[di];
      // Open every ancestor starting before this descendant.
      for (;;) {
        if (ai == anc.size) {
          if (anc_consumed >= ancestors.size()) break;
          refill_anc();
        }
        if (anc.start[ai] >= d_start) break;
        pop_closed(anc.start[ai]);
        stack.push_back(anc.Get(ai));
        stack_matched.push_back(false);
        ++ai;
      }
      pop_closed(d_start);
      bool matched = false;
      for (size_t s = 0; s < stack.size(); ++s) {
        if (stack[s].end < d_end) continue;  // not containing (sibling zone)
        if (options.parent_child_only && d_level != stack[s].level + 1) {
          continue;
        }
        ++out.pairs;
        matched = true;
        stack_matched[s] = true;
        if (!options.parent_child_only) {
          for (size_t t = s + 1; t < stack.size(); ++t) {
            if (stack[t].end > d_end) {
              ++out.pairs;
              stack_matched[t] = true;
            }
          }
          break;
        }
      }
      if (matched) out.descendants.push_back(desc.Get(di));
    }
  }
  pop_closed(UINT32_MAX);
  std::sort(out.ancestors.begin(), out.ancestors.end(),
            [](const storage::LabelEntry& a, const storage::LabelEntry& b) {
              return a.start < b.start;
            });
  return out;
}

}  // namespace mctdb::query
