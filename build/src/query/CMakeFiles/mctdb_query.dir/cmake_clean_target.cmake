file(REMOVE_RECURSE
  "libmctdb_query.a"
)
