// Metric aggregation for the paper's figures.
//
// Figs 8-10: per-TPC-W-query op counts per schema. Figs 12-14: per-diagram
// geometric means of the same metrics across each diagram's workload, per
// schema. Counts can be zero, so we aggregate with the shifted geometric
// mean gm1p(x) = exp(mean(log(1+x))) - 1 (noted in EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "design/designer.h"
#include "query/plan.h"
#include "workload/workload.h"

namespace mctdb::workload {

/// exp(mean(log(1+x))) - 1; 0 for an empty vector.
double GeoMean1p(const std::vector<size_t>& xs);

struct QueryMetricsRow {
  std::string query;
  std::string schema;
  query::PlanStats stats;
};

/// Plan every figure query of `w` against `schema`.
std::vector<QueryMetricsRow> PlanMetrics(const Workload& w,
                                         const mct::MctSchema& schema);

struct CollectionCell {
  std::string diagram;
  std::string schema;
  double gmean_structural_joins = 0;
  double gmean_value_joins_crossings = 0;
  double gmean_dup_ops = 0;
  size_t num_colors = 0;
};

/// The Figs 12-14 grid: for each workload and each of the given
/// strategies, geometric means over the workload's figure queries.
std::vector<CollectionCell> AnalyzeCollection(
    const std::vector<Workload>& workloads,
    const std::vector<design::Strategy>& strategies);

}  // namespace mctdb::workload
