// Multi-colored XPath (paper §2.2): "each axis step in a path expression
// needs to be augmented with a color, identifying the colored tree in which
// the navigation is desired."
//
// Supported grammar (enough for the paper's examples):
//
//   path   := step+
//   step   := ('/' | '//') [ '(' color ')' ] tag [ '[' pred ']' ]
//   pred   := '@' attr '=' '\'' value '\''
//
// Examples:
//   /country[@name='Japan']//order                   (single-color schema)
//   /(blue)country[@name='Japan']//(blue)order       (Q1 on the EN schema)
//   /(red)address//(red)billing/(blue)order          (color crossing at the
//                                                      shared billing node)
//
// A step with no color inherits the previous step's color (the first step
// defaults to the schema's first color). Evaluation runs directly on an
// MctStore: '/' is a parent-child structural join, '//' ancestor-
// descendant, and a color change re-anchors via shared node identity.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/store.h"

namespace mctdb::query {

struct McXPathStep {
  bool descendant = false;  ///< '//' vs '/'
  std::string color;        ///< empty = inherit
  std::string tag;
  std::string pred_attr;    ///< empty = no predicate
  std::string pred_value;
};

struct McXPath {
  std::vector<McXPathStep> steps;
  std::string ToString() const;
};

/// Parses an expression; InvalidArgument with offset info on bad syntax.
Result<McXPath> ParseMcXPath(std::string_view text);

struct McXPathResult {
  std::vector<storage::ElemId> elements;
  size_t structural_joins = 0;
  size_t color_crossings = 0;
};

/// Evaluates against a store. Tags and colors must exist in the store's
/// schema. Results are the final step's matching elements in document order
/// of the final color.
Result<McXPathResult> EvalMcXPath(const McXPath& path,
                                  const storage::MctStore& store);

}  // namespace mctdb::query
