// Update anomalies made visible (the paper's motivation, §1 and §6.1 U1-U3).
//
// One logical update — "retitle item item_1" — is applied under EN (node
// normal: one stored element), and under DEEP (redundant: the item is
// copied under every order line that references it). The element-write
// counts ARE the update anomaly. ICIC bookkeeping on the multi-color DR
// schema is shown as the (much cheaper) alternative cost.
//
// Build & run:  ./build/examples/update_anomalies
#include <cstdio>

#include "design/designer.h"
#include "er/er_catalog.h"
#include "instance/materialize.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/workload.h"

using namespace mctdb;

int main() {
  workload::Workload w = workload::TpcwWorkload(0.25);
  er::ErGraph graph(w.diagram);
  design::Designer designer(graph);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);

  query::QueryBuilder builder("retitle", w.diagram);
  int item = builder.Root("item");
  builder.Where(item, "id", "item_1");
  builder.Update("title", "Designer Schemas with Colors");
  query::AssociationQuery q = builder.Build();

  std::printf("update: set title of item_1\n\n");
  std::printf("%-8s %10s %14s %12s %6s\n", "schema", "logicals",
              "element-writes", "icic-touches", "icics");

  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    auto store = instance::Materialize(logical, schema);
    auto plan = query::PlanQuery(q, schema);
    if (!plan.ok()) continue;
    query::Executor exec(store.get());
    auto result = exec.Execute(*plan);
    if (!result.ok()) continue;
    std::printf("%-8s %10zu %14zu %12zu %6zu\n", schema.name().c_str(),
                result->logicals_updated, result->elements_updated,
                result->icic_color_touches, schema.ComputeIcics().size());
  }

  std::printf(
      "\nDEEP/UNDR rewrite every redundant copy (the update anomaly);\n"
      "node-normal MCT schemas write once per element, paying only the\n"
      "per-color ICIC touch — 'this cost is lower than that of a value\n"
      "join or un-normalized constraint maintenance' (section 6.1).\n");
  return 0;
}
