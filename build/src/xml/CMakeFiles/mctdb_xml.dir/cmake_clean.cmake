file(REMOVE_RECURSE
  "CMakeFiles/mctdb_xml.dir/xml_io.cc.o"
  "CMakeFiles/mctdb_xml.dir/xml_io.cc.o.d"
  "CMakeFiles/mctdb_xml.dir/xml_node.cc.o"
  "CMakeFiles/mctdb_xml.dir/xml_node.cc.o.d"
  "libmctdb_xml.a"
  "libmctdb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mctdb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
