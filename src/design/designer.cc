#include "design/designer.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"
#include "design/algorithm_dumc.h"
#include "design/algorithm_mc.h"
#include "design/algorithm_mcmr.h"
#include "design/algorithm_undr.h"
#include "design/xml_design.h"

namespace mctdb::design {

const char* ToString(Strategy s) {
  switch (s) {
    case Strategy::kShallow:
      return "SHALLOW";
    case Strategy::kAf:
      return "AF";
    case Strategy::kDeep:
      return "DEEP";
    case Strategy::kEn:
      return "EN";
    case Strategy::kMcmr:
      return "MCMR";
    case Strategy::kDr:
      return "DR";
    case Strategy::kUndr:
      return "UNDR";
  }
  return "?";
}

Result<Strategy> ParseStrategy(std::string_view name) {
  std::string up;
  for (char c : name) up += static_cast<char>(std::toupper(c));
  if (up == "SHALLOW") return Strategy::kShallow;
  if (up == "AF") return Strategy::kAf;
  if (up == "DEEP") return Strategy::kDeep;
  if (up == "EN" || up == "MC") return Strategy::kEn;
  if (up == "MCMR") return Strategy::kMcmr;
  if (up == "DR" || up == "DUMC") return Strategy::kDr;
  if (up == "UNDR") return Strategy::kUndr;
  return Status::InvalidArgument("unknown strategy '" + std::string(name) +
                                 "'");
}

std::vector<Strategy> AllStrategies() {
  return {Strategy::kDeep, Strategy::kAf,   Strategy::kShallow,
          Strategy::kEn,   Strategy::kMcmr, Strategy::kDr,
          Strategy::kUndr};
}

std::string DesignReport::ToString() const {
  return StringPrintf(
      "NN=%d EN=%d AR=%d DR=%d (direct %.0f%%) colors=%zu occs=%zu refs=%zu "
      "icics=%zu",
      node_normal, edge_normal, association_recoverable,
      fully_direct_recoverable, 100.0 * direct_fraction, num_colors,
      num_occurrences, num_ref_edges, num_icics);
}

mct::MctSchema Designer::Design(Strategy strategy) const {
  switch (strategy) {
    case Strategy::kShallow:
      return DesignShallow(graph_);
    case Strategy::kAf:
      return DesignAf(graph_);
    case Strategy::kDeep:
      return DesignDeep(graph_);
    case Strategy::kEn:
      return AlgorithmMc(graph_);
    case Strategy::kMcmr:
      return AlgorithmMcmr(graph_);
    case Strategy::kDr:
      return AlgorithmDumc(graph_);
    case Strategy::kUndr:
      return AlgorithmUndr(graph_);
  }
  MCTDB_CHECK(false);
  return DesignShallow(graph_);  // unreachable
}

const std::vector<AssociationPath>& Designer::eligible_paths() const {
  if (!paths_ready_) {
    paths_ = EnumerateEligiblePaths(graph_);
    paths_ready_ = true;
  }
  return paths_;
}

DesignReport Designer::Report(const mct::MctSchema& schema) const {
  DesignReport r;
  r.node_normal = schema.IsNodeNormal();
  r.edge_normal = schema.IsEdgeNormal();
  RecoverabilityReport rec = AnalyzeRecoverability(schema, eligible_paths());
  r.association_recoverable = rec.association_recoverable;
  r.fully_direct_recoverable = rec.fully_direct();
  r.direct_fraction = rec.direct_fraction();
  mct::SchemaStats st = schema.Stats();
  r.num_colors = st.num_colors;
  r.num_occurrences = st.num_occurrences;
  r.num_ref_edges = st.num_ref_edges;
  r.num_icics = st.num_icics;
  return r;
}

}  // namespace mctdb::design
