file(REMOVE_RECURSE
  "libmctdb_workload.a"
)
