#include "wal/durable_store.h"

#include <cstdio>
#include <optional>

#include "analysis/query_analyze.h"
#include "common/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/trace_id.h"
#include "storage/persist.h"

namespace mctdb::wal {

namespace flight = obs::flight;

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const mct::MctSchema& schema, const std::string& path,
    const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->path_ = path;
  ds->options_ = options;
  MCTDB_ASSIGN_OR_RETURN(
      ds->store_,
      storage::LoadStoreWithRetry(schema, path, options.store));
  ds->store_->EnableVersioning();
  uint64_t fingerprint = storage::SchemaFingerprint(schema);
  MCTDB_ASSIGN_OR_RETURN(
      ds->recovery_,
      RecoverLog(WalPath(path), fingerprint, ds->store_.get()));
  MCTDB_ASSIGN_OR_RETURN(
      ds->log_, LogWriter::Open(WalPath(path), fingerprint,
                                /*checkpoint_lsn=*/kNoLsn,
                                /*durable_lsn=*/ds->recovery_.last_lsn));
  ds->last_applied_ = ds->recovery_.last_lsn;
  return ds;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    std::unique_ptr<storage::MctStore> store, const std::string& path,
    const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->path_ = path;
  ds->options_ = options;
  ds->store_ = std::move(store);
  // Atomic create: build the image beside `path`, durably discard any
  // stale log, and only then rename the image into place. Until the
  // rename no new image is visible, so no crash point can pair a fresh
  // image with an old WAL whose fingerprint matches (same schema) — the
  // next Open would replay that stale history onto the new image.
  std::string tmp = path + ".create.tmp";
  Status saved = storage::SaveStore(*ds->store_, tmp, /*sync=*/true);
  if (!saved.ok()) {
    std::remove(tmp.c_str());
    return saved;
  }
  std::remove(WalPath(path).c_str());
  // Directory sync between the two entry operations: the stale log's
  // removal must reach disk before the rename can.
  Status synced = storage::SyncParentDir(path);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("durable store: create rename failed");
  }
  MCTDB_RETURN_IF_ERROR(storage::SyncParentDir(path));
  ds->store_->EnableVersioning();
  uint64_t fingerprint = storage::SchemaFingerprint(ds->store_->schema());
  MCTDB_ASSIGN_OR_RETURN(
      ds->log_, LogWriter::Open(WalPath(path), fingerprint,
                                /*checkpoint_lsn=*/kNoLsn,
                                /*durable_lsn=*/kNoLsn));
  return ds;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Ephemeral(
    std::unique_ptr<storage::MctStore> store, const Options& options) {
  std::unique_ptr<DurableStore> ds(new DurableStore());
  ds->options_ = options;
  ds->store_ = std::move(store);
  ds->store_->EnableVersioning();
  uint64_t fingerprint = storage::SchemaFingerprint(ds->store_->schema());
  MCTDB_ASSIGN_OR_RETURN(ds->log_,
                         LogWriter::Open("", fingerprint,
                                         /*checkpoint_lsn=*/kNoLsn,
                                         /*durable_lsn=*/kNoLsn));
  return ds;
}

Result<DurableStore::ApplyReceipt> DurableStore::Apply(
    const storage::UpdateOp& op, obs::ExecStats* stats) {
  // Service-submitted ops arrive under the worker's admission-minted
  // trace; direct library/CLI callers get one minted here so WAL events
  // always correlate.
  std::optional<obs::ScopedTraceId> trace_scope;
  if (obs::CurrentTraceId() == 0) {
    trace_scope.emplace(obs::MintTraceId());
  }
  std::unique_lock lk(write_mu_);
  if (log_->degraded()) {
    return Status::Unavailable("durable store: WAL degraded; reopen");
  }
  {
    // Static precheck (QRY012) BEFORE the append: a schema-invalid op must
    // never dirty the log — a refused op leaves wal_appends unchanged and
    // nothing for recovery to skip.
    analysis::DiagnosticReport precheck =
        analysis::VerifyUpdateOpStatic(store_->schema(), op);
    if (precheck.has_errors()) {
      return Status::InvalidArgument(
          "update op rejected by static precheck:\n" + precheck.ToText());
    }
  }
  std::string payload;
  storage::EncodeUpdateOp(op, &payload);
  Lsn lsn = kNoLsn;
  {
    // Write-ahead: the redo record is (at least buffered) before any
    // state is dirtied. A failed append aborts cleanly.
    obs::SpanScope span(stats, obs::StageKind::kWal, "append");
    MCTDB_ASSIGN_OR_RETURN(lsn, log_->Append(RecordType::kUpdateOp, payload));
    span.SetCardinalityOut(payload.size());
  }
  Result<storage::ApplyStats> applied = storage::ApplyStats{};
  {
    obs::SpanScope span(stats, obs::StageKind::kUpdate,
                        storage::UpdateKindName(op.kind));
    applied = storage::ApplyUpdateOp(store_.get(), op, lsn);
    if (applied.ok()) {
      span.SetCardinalityOut(applied.value().labels_touched);
    }
  }
  if (!applied.ok()) {
    // The op failed deterministically before mutating anything; its log
    // record will fail identically on replay (recovery skips it). Later
    // appends/commits continue normally.
    return applied.status();
  }
  last_applied_ = lsn;
  lk.unlock();
  {
    // Group commit outside the write mutex: concurrent appliers park on
    // one fsync. The span's cardinality pair records the batch LSN range
    // this commit rode: in = first LSN the sync covered beyond what was
    // already durable, out = the high LSN — so a trace shows which other
    // requests' records shared the fsync.
    obs::SpanScope span(stats, obs::StageKind::kWal, "group_commit");
    const Lsn durable_before = log_->durable_lsn();
    MCTDB_RETURN_IF_ERROR(log_->Commit(lsn));
    span.SetCardinalityIn(durable_before == kNoLsn ? 1 : durable_before + 1);
    span.SetCardinalityOut(log_->durable_lsn());
  }
  // Readers snapshot AFTER durability — an applied-but-unsynced op is
  // never visible, so a crash cannot retract an observed state.
  store_->PublishVisibleLsn(lsn);
  return ApplyReceipt{lsn, applied.value()};
}

Result<CheckpointStats> DurableStore::Checkpoint() {
  std::optional<obs::ScopedTraceId> trace_scope;
  if (obs::CurrentTraceId() == 0) {
    trace_scope.emplace(obs::MintTraceId());
  }
  std::lock_guard lk(write_mu_);
  flight::Record(flight::Subsystem::kCheckpoint,
                 flight::Site::kCheckpointBegin, obs::CurrentTraceId(),
                 log_->durable_bytes());
  // One evaluation per checkpoint drives BOTH probe points below, so a
  // probabilistic arming rolls the dice once (err and trunc can't both
  // fire in one call) and HitCount counts each checkpoint once. A `panic`
  // action aborts here, at entry.
  const failpoint::Fault ckpt_fault = MCTDB_FAILPOINT("wal.checkpoint");
  if (ckpt_fault == failpoint::Fault::kError) {
    return Status::IoError("wal: injected checkpoint fault");
  }
  if (last_applied_ != kNoLsn) {
    // Flush any straggler batch so the image and the log agree.
    MCTDB_RETURN_IF_ERROR(log_->Commit(last_applied_));
    store_->PublishVisibleLsn(last_applied_);
  }
  CheckpointStats stats;
  stats.checkpoint_lsn = last_applied_;
  uint64_t log_bytes_before = log_->durable_bytes();
  MCTDB_ASSIGN_OR_RETURN(std::unique_ptr<storage::MctStore> compact,
                         CompactStore(*store_, options_.store));
  stats.elements = compact->num_elements();
  if (!path_.empty()) {
    // The image must be DURABLE before the log is trimmed: fsync the tmp
    // file's bytes, rename, fsync the directory so the rename itself is
    // on disk. Otherwise Reset's durable WAL truncation could reach disk
    // ahead of the image's data blocks, and a power loss would leave a
    // torn image with no log left to rebuild it — replay only covers
    // crash-before-trim, never unsynced-image-after-trim.
    std::string tmp = path_ + ".ckpt.tmp";
    Status saved = storage::SaveStore(*compact, tmp, /*sync=*/true);
    if (!saved.ok()) {
      std::remove(tmp.c_str());
      return saved;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IoError("wal: checkpoint rename failed");
    }
    MCTDB_RETURN_IF_ERROR(storage::SyncParentDir(path_));
  }
  if (ckpt_fault == failpoint::Fault::kTruncate) {
    // Crash window probe: image committed, log not trimmed. Recovery will
    // skip the now-redundant records idempotently.
    return Status::IoError("wal: injected post-image checkpoint fault");
  }
  MCTDB_RETURN_IF_ERROR(log_->Reset(stats.checkpoint_lsn));
  stats.log_bytes_trimmed = log_bytes_before - log_->durable_bytes();
  flight::Record(flight::Subsystem::kCheckpoint,
                 flight::Site::kCheckpointEnd, obs::CurrentTraceId(),
                 stats.checkpoint_lsn == kNoLsn ? 0 : stats.checkpoint_lsn);
  return stats;
}

}  // namespace mctdb::wal
