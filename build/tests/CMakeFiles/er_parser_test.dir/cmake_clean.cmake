file(REMOVE_RECURSE
  "CMakeFiles/er_parser_test.dir/er_parser_test.cc.o"
  "CMakeFiles/er_parser_test.dir/er_parser_test.cc.o.d"
  "er_parser_test"
  "er_parser_test.pdb"
  "er_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
