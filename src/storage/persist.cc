#include "storage/persist.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace mctdb::storage {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'T', 'D', 'B', '1', '\n', '\0'};

/// Minimal buffered binary writer over stdio.
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Bytes(const void* data, size_t n) {
    if (std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (n > (1u << 28)) {  // corrupt length guard
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    Bytes(s.data(), n);
    return s;
  }
  void Bytes(void* out, size_t n) {
    if (std::fread(out, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace

uint64_t SchemaFingerprint(const mct::MctSchema& schema) {
  uint64_t h = Hash64(schema.name());
  h = HashCombine(h, schema.num_colors());
  for (const mct::SchemaOcc& o : schema.occurrences()) {
    h = HashCombine(h, Hash64(uint64_t(o.er_node)));
    h = HashCombine(h, Hash64(uint64_t(o.color)));
    h = HashCombine(h, Hash64(uint64_t(o.parent)));
    h = HashCombine(h, Hash64(uint64_t(o.via_edge)));
  }
  for (const mct::RefEdge& r : schema.ref_edges()) {
    h = HashCombine(h, Hash64(r.attr_name));
    h = HashCombine(h, Hash64(uint64_t(r.from)));
  }
  return h;
}

Status SaveStore(const MctStore& store, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Writer w(f);
  w.Bytes(kMagic, sizeof(kMagic));
  w.U64(SchemaFingerprint(*store.schema_));

  // Pages.
  w.U32(static_cast<uint32_t>(store.pager_.num_pages()));
  for (PageId p = 0; p < store.pager_.num_pages(); ++p) {
    w.Bytes(store.pager_.RawPage(p), kPageSize);
  }
  // Elements.
  w.U32(static_cast<uint32_t>(store.elements_.size()));
  for (const ElementMeta& m : store.elements_) {
    w.U32(m.er_node);
    w.U32(m.logical);
    w.U32(m.is_copy ? 1 : 0);
  }
  // Attrs.
  for (const auto& list : store.attrs_) {
    w.U32(static_cast<uint32_t>(list.size()));
    for (const AttrRecord& a : list) {
      w.U32(a.name_id);
      w.U32(a.value_id);
      w.U32(a.has_content ? 1 : 0);
    }
  }
  // Dictionaries.
  w.U32(static_cast<uint32_t>(store.attr_names_.size()));
  for (const std::string& s : store.attr_names_) w.Str(s);
  w.U32(static_cast<uint32_t>(store.values_.size()));
  for (const std::string& s : store.values_) w.Str(s);
  // Labels and parents per color.
  w.U32(static_cast<uint32_t>(store.labels_.size()));
  for (size_t c = 0; c < store.labels_.size(); ++c) {
    w.U32(static_cast<uint32_t>(store.labels_[c].size()));
    for (const auto& [elem, label] : store.labels_[c]) {
      w.Bytes(&label, sizeof(label));
    }
    w.U32(static_cast<uint32_t>(store.parents_[c].size()));
    for (const auto& [elem, parent] : store.parents_[c]) {
      w.U32(elem);
      w.U32(parent);
    }
  }
  // Postings.
  for (size_t c = 0; c < store.postings_.size(); ++c) {
    for (size_t tag = 0; tag < store.postings_[c].size(); ++tag) {
      const auto& meta = store.postings_[c][tag];
      if (meta == nullptr) {
        w.U32(0xFFFFFFFFu);
        continue;
      }
      w.U32(static_cast<uint32_t>(meta->count));
      w.U32(static_cast<uint32_t>(meta->pages.size()));
      for (PageId p : meta->pages) w.U32(p);
    }
  }
  // Counters.
  w.U64(store.num_attribute_nodes_);
  w.U64(store.num_content_nodes_);

  bool ok = w.ok();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::unique_ptr<MctStore>> LoadStore(const mct::MctSchema& schema,
                                            const std::string& path,
                                            const StoreOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  Reader r(f);
  auto fail = [&](const std::string& msg) -> Status {
    std::fclose(f);
    return Status::Corruption(path + ": " + msg);
  };

  char magic[8];
  r.Bytes(magic, sizeof(magic));
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic");
  }
  if (r.U64() != SchemaFingerprint(schema)) {
    return fail("schema fingerprint mismatch");
  }

  std::unique_ptr<MctStore> store(new MctStore());
  store->schema_ = &schema;

  uint32_t num_pages = r.U32();
  char page[kPageSize];
  for (uint32_t p = 0; p < num_pages; ++p) {
    r.Bytes(page, kPageSize);
    if (!r.ok()) return fail("truncated pages");
    PageId id = store->pager_.Allocate();
    store->pager_.Write(id, page);
  }
  uint32_t num_elements = r.U32();
  store->elements_.reserve(num_elements);
  store->key_index_.resize(schema.diagram().num_nodes());
  for (uint32_t i = 0; i < num_elements; ++i) {
    ElementMeta m;
    m.er_node = r.U32();
    m.logical = r.U32();
    m.is_copy = r.U32() != 0;
    if (!r.ok() || m.er_node >= schema.diagram().num_nodes()) {
      return fail("bad element record");
    }
    store->key_index_[m.er_node][m.logical].push_back(i);
    store->elements_.push_back(m);
  }
  store->attrs_.resize(num_elements);
  for (uint32_t i = 0; i < num_elements; ++i) {
    uint32_t n = r.U32();
    if (!r.ok() || n > (1u << 20)) return fail("bad attr list");
    store->attrs_[i].resize(n);
    for (uint32_t a = 0; a < n; ++a) {
      store->attrs_[i][a].name_id = r.U32();
      store->attrs_[i][a].value_id = r.U32();
      store->attrs_[i][a].has_content = r.U32() != 0;
    }
  }
  uint32_t num_names = r.U32();
  for (uint32_t i = 0; i < num_names; ++i) {
    store->attr_names_.push_back(r.Str());
    store->attr_name_index_.emplace(store->attr_names_.back(), i);
  }
  uint32_t num_values = r.U32();
  for (uint32_t i = 0; i < num_values; ++i) {
    store->values_.push_back(r.Str());
    store->value_index_.emplace(store->values_.back(), i);
  }
  if (!r.ok()) return fail("truncated dictionaries");

  uint32_t num_colors = r.U32();
  if (num_colors != schema.num_colors()) return fail("color count mismatch");
  store->labels_.resize(num_colors);
  store->parents_.resize(num_colors);
  for (uint32_t c = 0; c < num_colors; ++c) {
    uint32_t n = r.U32();
    for (uint32_t i = 0; i < n; ++i) {
      LabelEntry label;
      r.Bytes(&label, sizeof(label));
      if (!r.ok() || label.elem >= num_elements) return fail("bad label");
      store->labels_[c][label.elem] = label;
    }
    uint32_t np = r.U32();
    for (uint32_t i = 0; i < np; ++i) {
      uint32_t elem = r.U32();
      uint32_t parent = r.U32();
      if (!r.ok() || elem >= num_elements) return fail("bad parent");
      store->parents_[c][elem] = parent;
    }
  }
  store->postings_.resize(num_colors);
  for (uint32_t c = 0; c < num_colors; ++c) {
    store->postings_[c].resize(schema.diagram().num_nodes());
    for (size_t tag = 0; tag < store->postings_[c].size(); ++tag) {
      uint32_t count = r.U32();
      if (count == 0xFFFFFFFFu) continue;
      auto meta = std::make_unique<PostingMeta>();
      meta->count = count;
      uint32_t pages = r.U32();
      if (!r.ok() || pages > num_pages) return fail("bad posting meta");
      for (uint32_t p = 0; p < pages; ++p) {
        uint32_t id = r.U32();
        if (id >= num_pages) return fail("posting page out of range");
        meta->pages.push_back(id);
      }
      store->postings_[c][tag] = std::move(meta);
    }
  }
  store->num_attribute_nodes_ = r.U64();
  store->num_content_nodes_ = r.U64();
  if (!r.ok()) return fail("truncated trailer");
  std::fclose(f);

  store->pool_ = std::make_unique<BufferPool>(&store->pager_,
                                              options.buffer_pool_pages);
  return store;
}

}  // namespace mctdb::storage
