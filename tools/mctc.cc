// mctc — the mctdb command-line designer.
//
//   mctc validate <file.er>                   parse + Theorem 4.1 verdict
//   mctc report   <file.er>                   property matrix, 7 strategies
//   mctc design   <file.er> [-s STRATEGY] [--dtd|--dot|--tree]
//   mctc paths    <file.er> [--max N]         eligible associations
//   mctc mine     <file.xml> [--redesign]     ER from XML id/idrefs
//   mctc workload <file.er> [--threads N] [--base N] [--reps N] [--stages]
//                                             run the emulated workload grid
//   mctc trace    <file.er> [--query NAME] [-s STRATEGY] [--json] [--base N]
//                                             execute the workload queries and
//                                             print each one's stage-span
//                                             trace (exact per-query I/O)
//   mctc lint     <file.er> [--json] [--schema-only]
//                                             static analysis: schema lint +
//                                             plan verification, 7 strategies
//   mctc demo                                 built-in TPC-W walkthrough
//
// Files with the .er extension use the DSL of er/er_parser.h (see
// examples/designs/). Exit status: 0 ok, 1 usage, 2 input error (for lint:
// 2 also when any error-severity diagnostic was reported).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/plan_verify.h"
#include "analysis/schema_lint.h"
#include "design/designer.h"
#include "design/feasibility.h"
#include "design/xml_mining.h"
#include "er/er_catalog.h"
#include "er/er_parser.h"
#include "instance/materialize.h"
#include "mct/schema_export.h"
#include "obs/trace_export.h"
#include "query/executor.h"
#include "query/planner.h"
#include "workload/runner.h"
#include "xml/xml_io.h"

using namespace mctdb;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mctc <command> [args]\n"
      "  validate <file.er>\n"
      "  report   <file.er>\n"
      "  design   <file.er> [-s SHALLOW|AF|DEEP|EN|MCMR|DR|UNDR]"
      " [--dtd|--dot|--tree]\n"
      "  paths    <file.er> [--max N]\n"
      "  mine     <file.xml> [--redesign]\n"
      "  workload <file.er> [--threads N] [--base N] [--reps N] [--stages]\n"
      "  trace    <file.er> [--query NAME] [-s STRATEGY] [--json]"
      " [--base N]\n"
      "  lint     <file.er> [--json] [--schema-only]\n"
      "  demo\n");
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<er::ErDiagram> LoadEr(const char* path) {
  MCTDB_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return er::ParseErDiagram(text);
}

int CmdValidate(const char* path) {
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  er::ErGraphStats stats = graph.Stats();
  std::printf("diagram '%s': %zu entities, %zu relationships "
              "(%zu 1:N, %zu M:N, %zu 1:1), forest=%s\n",
              diagram->name().c_str(), diagram->num_entities(),
              diagram->num_relationships(), stats.num_one_many,
              stats.num_many_many, stats.num_one_one,
              stats.is_forest ? "yes" : "no");
  auto feasibility = design::CheckSingleColorNnAr(graph);
  std::printf("single-color XML with NN+AR (Theorem 4.1): %s\n",
              feasibility.explanation.c_str());
  return 0;
}

int CmdReport(const char* path) {
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  std::printf("%-8s %s\n", "schema", "properties");
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    std::printf("%-8s %s\n", schema.name().c_str(),
                designer.Report(schema).ToString().c_str());
  }
  return 0;
}

int CmdDesign(int argc, char** argv) {
  const char* path = nullptr;
  const char* strategy_name = "MCMR";
  enum { kTree, kDtd, kDot } format = kTree;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--dtd")) {
      format = kDtd;
    } else if (!std::strcmp(argv[i], "--dot")) {
      format = kDot;
    } else if (!std::strcmp(argv[i], "--tree")) {
      format = kTree;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  auto strategy = design::ParseStrategy(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n", strategy.status().ToString().c_str());
    return 1;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  mct::MctSchema schema = designer.Design(*strategy);
  switch (format) {
    case kTree:
      std::printf("%s", schema.DebugString().c_str());
      std::printf("properties: %s\n",
                  designer.Report(schema).ToString().c_str());
      break;
    case kDtd:
      std::printf("%s", mct::ExportDtd(schema).c_str());
      break;
    case kDot:
      std::printf("%s", mct::ExportDot(schema).c_str());
      break;
  }
  return 0;
}

int CmdPaths(int argc, char** argv) {
  const char* path = nullptr;
  size_t max_shown = 50;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max") && i + 1 < argc) {
      max_shown = std::strtoul(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  auto paths = design::EnumerateEligiblePaths(graph);
  std::printf("%zu eligible associations\n", paths.size());
  for (size_t i = 0; i < paths.size() && i < max_shown; ++i) {
    const auto& p = paths[i];
    std::printf("  %s => %s  via %s\n",
                diagram->node(p.source).name.c_str(),
                diagram->node(p.target).name.c_str(),
                p.Label(*diagram).c_str());
  }
  if (paths.size() > max_shown) {
    std::printf("  ... (%zu more; --max to widen)\n",
                paths.size() - max_shown);
  }
  return 0;
}

int CmdMine(int argc, char** argv) {
  const char* path = nullptr;
  bool redesign = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--redesign")) {
      redesign = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 2;
  }
  auto doc = xml::ParseXml(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "xml error: %s\n", doc.status().ToString().c_str());
    return 2;
  }
  design::MiningReport report;
  auto mined = design::MineErDiagram(**doc, {}, &report);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining error: %s\n",
                 mined.status().ToString().c_str());
    return 2;
  }
  std::printf("# mined from %s: %zu entity tags, %zu relationship tags "
              "(%zu structural, %zu idref edges)\n",
              path, report.entity_tags, report.relationship_tags,
              report.structural_edges, report.idref_edges);
  std::printf("%s", er::FormatErDiagram(*mined).c_str());
  if (redesign) {
    er::ErGraph graph(*mined);
    design::Designer designer(graph);
    mct::MctSchema dr = designer.Design(design::Strategy::kDr);
    std::printf("\n# redesigned (DUMC):\n%s", dr.DebugString().c_str());
  }
  return 0;
}

int CmdWorkload(int argc, char** argv) {
  const char* path = nullptr;
  size_t threads = 1;
  size_t base_count = 0;
  size_t reps = 1;
  bool stages = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--stages")) {
      stages = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr || threads == 0 || reps == 0) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);
  if (base_count > 0) w.gen.base_count = base_count;
  workload::RunnerOptions options;
  options.num_threads = threads;
  options.repetitions = reps;
  auto summary = workload::RunWorkload(w, options);
  if (!summary.ok()) {
    std::fprintf(stderr, "error: %s\n", summary.status().ToString().c_str());
    return 2;
  }
  std::printf("# %s: %zu queries, %zu threads, %zu reps "
              "(setup %.3fs, grid %.3fs)\n",
              diagram->name().c_str(), w.figure_queries.size(), threads,
              reps, summary->setup_seconds, summary->grid_seconds);
  std::printf("%-8s %-6s %10s %10s %10s %12s %10s %10s\n", "schema",
              "query", "seconds", "unique", "raw", "page_misses",
              "page_hits", "pairs");
  for (const workload::Measurement& m : summary->measurements) {
    std::printf("%-8s %-6s %10.6f %10zu %10zu %12llu %10llu %10llu\n",
                m.schema.c_str(), m.query.c_str(), m.seconds,
                m.unique_results, m.raw_results,
                static_cast<unsigned long long>(m.page_misses),
                static_cast<unsigned long long>(m.page_hits),
                static_cast<unsigned long long>(m.join_pairs));
    if (!stages) continue;
    // Per-stage breakdown of the last repetition: self time per stage
    // kind (rows sum to the query's elapsed time), plus the stage's own
    // output cardinality, join pairs, and attributed page I/O.
    for (size_t k = 0; k < obs::kNumStageKinds; ++k) {
      const obs::StageAgg& row = m.stages[k];
      if (row.calls == 0) continue;
      std::printf("    %-18s %9.3fms calls=%llu out=%llu pairs=%llu "
                  "pages %lluh/%llum\n",
                  obs::ToString(static_cast<obs::StageKind>(k)),
                  row.seconds * 1e3,
                  static_cast<unsigned long long>(row.calls),
                  static_cast<unsigned long long>(row.cardinality_out),
                  static_cast<unsigned long long>(row.join_pairs),
                  static_cast<unsigned long long>(row.page_hits),
                  static_cast<unsigned long long>(row.page_misses));
    }
  }
  for (const std::string& p : summary->problems) {
    std::fprintf(stderr, "problem: %s\n", p.c_str());
  }
  return summary->problems.empty() ? 0 : 2;
}

int CmdTrace(int argc, char** argv) {
  const char* path = nullptr;
  const char* strategy_name = "MCMR";
  const char* query_name = nullptr;
  bool json = false;
  size_t base_count = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      strategy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--query") && i + 1 < argc) {
      query_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--base") && i + 1 < argc) {
      base_count = std::strtoul(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  auto strategy = design::ParseStrategy(strategy_name);
  if (!strategy.ok()) {
    std::fprintf(stderr, "error: %s\n", strategy.status().ToString().c_str());
    return 1;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);
  if (base_count > 0) w.gen.base_count = base_count;

  std::vector<std::string> names;
  for (const std::string& name : w.figure_queries) {
    if (query_name == nullptr || name == query_name) names.push_back(name);
  }
  if (names.empty()) {
    std::fprintf(stderr, "error: no workload query named '%s'\n",
                 query_name == nullptr ? "" : query_name);
    return 2;
  }

  mct::MctSchema schema = designer.Design(*strategy);
  instance::LogicalInstance logical =
      instance::GenerateInstance(graph, w.gen);
  std::unique_ptr<storage::MctStore> store =
      instance::Materialize(logical, schema, {});

  if (json) std::printf("{\"schema\":\"%s\",\"queries\":[", schema.name().c_str());
  bool first = true;
  for (const std::string& name : names) {
    const query::AssociationQuery* q = w.Find(name);
    if (q == nullptr) {
      std::fprintf(stderr, "error: unknown figure query %s\n", name.c_str());
      return 2;
    }
    auto plan = query::PlanQuery(*q, schema);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s on %s: %s\n", name.c_str(),
                   schema.name().c_str(), plan.status().ToString().c_str());
      return 2;
    }
    query::Executor exec(store.get());
    auto result = exec.Execute(*plan);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s on %s: %s\n", name.c_str(),
                   schema.name().c_str(),
                   result.status().ToString().c_str());
      return 2;
    }
    if (json) {
      if (!first) std::printf(",");
      std::printf("%s", obs::SpanToJson(result->trace).c_str());
    } else {
      std::printf("%s", obs::SpanTreeToText(result->trace).c_str());
    }
    first = false;
  }
  if (json) std::printf("]}\n");
  return 0;
}

int CmdLint(int argc, char** argv) {
  const char* path = nullptr;
  bool json = false;
  bool schema_only = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--schema-only")) {
      schema_only = true;
    } else if (path == nullptr) {
      path = argv[i];
    }
  }
  if (path == nullptr) return Usage();
  auto diagram = LoadEr(path);
  if (!diagram.ok()) {
    std::fprintf(stderr, "error: %s\n", diagram.status().ToString().c_str());
    return 2;
  }
  er::ErGraph graph(*diagram);
  design::Designer designer(graph);
  workload::Workload w = workload::XmarkEmulatedWorkload(*diagram);

  analysis::DiagnosticReport combined;
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);

    // Schema lint, cross-checking the normal-form flags the designer
    // claims for this strategy against re-derived ones.
    design::DesignReport dr = designer.Report(schema);
    analysis::NormalFormClaims claims;
    claims.node_normal = dr.node_normal;
    claims.edge_normal = dr.edge_normal;
    claims.association_recoverable = dr.association_recoverable;
    claims.fully_direct_recoverable = dr.fully_direct_recoverable;
    analysis::SchemaLintOptions lint_options;
    lint_options.claims = &claims;
    combined.MergeFrom(analysis::LintSchema(schema, lint_options),
                       schema.name());

    // Plan verification over the emulated workload.
    if (schema_only) continue;
    for (const query::AssociationQuery& q : w.queries) {
      std::string loc = schema.name() + "/" + q.name;
      auto plan = query::PlanQuery(q, schema);
      if (!plan.ok()) {
        combined.Error("PLN000", loc,
                       "planner rejected query: " +
                           plan.status().ToString());
        continue;
      }
      combined.MergeFrom(analysis::VerifyPlan(*plan), loc);
    }
  }

  if (json) {
    std::printf("%s\n", combined.ToJson().c_str());
  } else {
    std::printf("%s", combined.ToText().c_str());
  }
  return combined.has_errors() ? 2 : 0;
}

int CmdDemo() {
  er::ErDiagram diagram = er::Tpcw();
  std::printf("%s\n", er::FormatErDiagram(diagram).c_str());
  er::ErGraph graph(diagram);
  design::Designer designer(graph);
  for (design::Strategy s : design::AllStrategies()) {
    mct::MctSchema schema = designer.Design(s);
    std::printf("%-8s %s\n", schema.name().c_str(),
                designer.Report(schema).ToString().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (!std::strcmp(cmd, "validate") && argc >= 3) return CmdValidate(argv[2]);
  if (!std::strcmp(cmd, "report") && argc >= 3) return CmdReport(argv[2]);
  if (!std::strcmp(cmd, "design")) return CmdDesign(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "paths")) return CmdPaths(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "mine")) return CmdMine(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "workload")) return CmdWorkload(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "trace")) return CmdTrace(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "lint")) return CmdLint(argc - 2, argv + 2);
  if (!std::strcmp(cmd, "demo")) return CmdDemo();
  return Usage();
}
