# Empty dependencies file for schema_export_test.
# This may be replaced when dependencies are built.
