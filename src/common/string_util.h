// Small string helpers shared by the ER DSL parser, XML writer and benches.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace mctdb {

/// Split `s` on `sep`, optionally dropping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool keep_empty = false);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escape &, <, >, ", ' for XML attribute/text contexts.
std::string EscapeXml(std::string_view s);

/// Lowercase ASCII copy.
std::string ToLower(std::string_view s);

/// Parse a non-negative integer; returns false on any non-digit input.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace mctdb
