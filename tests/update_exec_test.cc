#include "query/update_exec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/plan_verify.h"
#include "design/designer.h"
#include "instance/materialize.h"
#include "obs/exec_stats.h"
#include "query/executor.h"
#include "query/planner.h"
#include "storage/update_ops.h"
#include "wal/durable_store.h"
#include "workload/update_gen.h"
#include "workload/workload.h"

namespace mctdb::query {
namespace {

using design::Strategy;

struct Fixture {
  workload::Workload w = workload::TpcwWorkload(0.02);
  er::ErGraph graph{w.diagram};
  design::Designer designer{graph};
  instance::LogicalInstance logical = instance::GenerateInstance(graph, w.gen);

  std::unique_ptr<wal::DurableStore> MakeDurable(const mct::MctSchema& s) {
    auto d = wal::DurableStore::Ephemeral(instance::Materialize(logical, s));
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return std::move(*d);
  }
};

TEST(UpdateExecTest, StreamAppliesAndAdvancesSnapshots) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kMcmr);
  auto durable = f.MakeDurable(schema);
  std::vector<mct::MctSchema> schemas{schema};
  workload::UpdateGenOptions gen;
  gen.num_ops = 12;
  auto ops = workload::GenerateUpdateOps(schemas, f.logical, gen);
  ASSERT_FALSE(ops.empty());

  UpdateExecutor exec(durable.get());
  Lsn last = kNoLsn;
  for (const auto& op : ops) {
    auto r = exec.Execute(op);
    ASSERT_TRUE(r.ok()) << storage::DebugString(op) << ": "
                        << r.status().ToString();
    EXPECT_GT(r->lsn, last);  // LSNs strictly increase per op
    last = r->lsn;
    EXPECT_GE(r->wal_appends, 1u);  // redo logged before dirtying
    // The op is durable (and thus visible) by the time Execute returns.
    EXPECT_GE(durable->snapshot(), r->lsn);
  }
  EXPECT_EQ(durable->wal_appends(), ops.size());
}

TEST(UpdateExecTest, InsertIsQueryVisibleAndDeleteRemovesIt) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto durable = f.MakeDurable(schema);
  std::vector<mct::MctSchema> schemas{schema};
  workload::UpdateGenOptions gen;
  gen.num_ops = 8;
  auto ops = workload::GenerateUpdateOps(schemas, f.logical, gen);

  const storage::UpdateOp* insert = nullptr;
  const storage::UpdateOp* del = nullptr;
  for (const auto& op : ops) {
    if (op.kind == storage::UpdateOp::Kind::kInsertSubtree &&
        insert == nullptr) {
      insert = &op;
    }
    if (op.kind == storage::UpdateOp::Kind::kDeleteSubtree) del = &op;
  }
  ASSERT_NE(insert, nullptr);
  ASSERT_NE(del, nullptr);
  // The generator deletes only stream-inserted children.
  ASSERT_EQ(del->target_logical, insert->subtree.children[0].logical);

  UpdateExecutor exec(durable.get());
  auto ins = exec.Execute(*insert);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_GT(ins->stats.elements_touched, 0u);

  // The inserted instances are visible to the applier's own index:
  // re-inserting the same logical ids collides.
  auto again = exec.Execute(*insert);
  EXPECT_TRUE(again.status().IsAlreadyExists())
      << again.status().ToString();

  // The delete finds the inserted child... once.
  auto gone = exec.Execute(*del);
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_GT(gone->stats.elements_touched, 0u);
  auto gone_again = exec.Execute(*del);
  EXPECT_TRUE(gone_again.status().IsNotFound())
      << gone_again.status().ToString();
}

TEST(UpdateExecTest, TraceCarriesWalStages) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kMcmr);
  auto durable = f.MakeDurable(schema);
  std::vector<mct::MctSchema> schemas{schema};
  auto ops = workload::GenerateUpdateOps(schemas, f.logical, {});
  ASSERT_FALSE(ops.empty());

  UpdateExecutor exec(durable.get());
  auto r = exec.Execute(ops[0]);
  ASSERT_TRUE(r.ok());
  bool saw_append = false, saw_commit = false, saw_update = false;
  for (const obs::Span& child : r->trace.children) {
    if (child.kind == obs::StageKind::kWal && child.label == "append") {
      saw_append = true;
    }
    if (child.kind == obs::StageKind::kWal &&
        child.label == "group_commit") {
      saw_commit = true;
    }
    if (child.kind == obs::StageKind::kUpdate) saw_update = true;
  }
  EXPECT_TRUE(saw_append);
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_update);
}

TEST(UpdateExecTest, VerifierRejectsKeyRenameWithPln011) {
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kMcmr);

  // Find an entity with a key attribute and try to rename it.
  storage::UpdateOp op;
  op.kind = storage::UpdateOp::Kind::kRenameValue;
  for (const er::ErNode& node : f.w.diagram.nodes()) {
    for (const er::Attribute& a : node.attributes) {
      if (a.is_key) {
        op.target_type = node.id;
        op.attr = a.name;
        break;
      }
    }
    if (op.target_type != er::kInvalidNode) break;
  }
  ASSERT_NE(op.target_type, er::kInvalidNode);
  op.new_value = "clobbered";

  analysis::DiagnosticReport report = analysis::VerifyUpdate(schema, op);
  ASSERT_TRUE(report.has_errors());
  EXPECT_EQ(report.diagnostics()[0].code, "PLN011");

  // The executor refuses before touching the WAL or the store.
  auto durable = f.MakeDurable(schema);
  UpdateExecutor exec(durable.get());
  auto r = exec.Execute(op);
  ASSERT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("PLN011"), std::string::npos);
  EXPECT_EQ(durable->wal_appends(), 0u);
}

TEST(UpdateExecTest, UnsupportedPlacementReportsPln012) {
  Fixture f;
  // DEEP nests aggressively, so some relationship orientation is bound to
  // put the inserted type under a non-target parent (the unsupported
  // class). Search for it and check the diagnostic mapping.
  mct::MctSchema schema = f.designer.Design(Strategy::kDeep);
  const storage::UpdateOp* found = nullptr;
  storage::UpdateOp candidate;
  for (const er::ErNode& rel : f.w.diagram.nodes()) {
    if (!rel.is_relationship()) continue;
    for (int side = 0; side < 2; ++side) {
      storage::UpdateOp op;
      op.kind = storage::UpdateOp::Kind::kInsertSubtree;
      op.target_type = rel.endpoints[side].target;
      op.target_logical = 0;
      op.subtree.type = rel.id;
      op.subtree.logical = 9000000;
      for (const er::Attribute& a :
           f.w.diagram.node(rel.id).attributes) {
        op.subtree.attrs.push_back({a.name, "v", !a.is_key});
      }
      Status s = storage::VerifyUpdateOp(schema, op);
      if (s.IsNotSupported()) {
        candidate = op;
        found = &candidate;
        break;
      }
    }
    if (found != nullptr) break;
  }
  ASSERT_NE(found, nullptr)
      << "expected some orientation to be unsupported under DEEP";
  analysis::DiagnosticReport report = analysis::VerifyUpdate(schema, *found);
  ASSERT_TRUE(report.has_errors());
  EXPECT_EQ(report.diagnostics()[0].code, "PLN012");
}

TEST(UpdateExecTest, SchemaInvalidOpRefusedBeforeWalAppend) {
  // The QRY012 static precheck sits in DurableStore::Apply ahead of the
  // WAL append: a schema-invalid op must come back InvalidArgument with
  // wal_appends unchanged — the log never holds a record recovery would
  // have to re-refuse.
  Fixture f;
  mct::MctSchema schema = f.designer.Design(Strategy::kEn);
  auto durable = f.MakeDurable(schema);
  ASSERT_EQ(durable->wal_appends(), 0u);

  er::NodeId country = *f.w.diagram.FindNode("country");
  const er::Attribute* key = nullptr;
  const er::Attribute* nonkey = nullptr;
  for (const er::Attribute& a : f.w.diagram.node(country).attributes) {
    (a.is_key ? key : nonkey) = &a;
  }
  ASSERT_NE(key, nullptr);
  ASSERT_NE(nonkey, nullptr);

  std::vector<storage::UpdateOp> bad;
  {
    storage::UpdateOp op;  // U3 on the key attribute
    op.kind = storage::UpdateOp::Kind::kRenameValue;
    op.target_type = country;
    op.target_logical = 0;
    op.attr = key->name;
    op.new_value = "clobbered";
    bad.push_back(op);
    op.attr = "no_such_attribute";  // U3 on an undeclared attribute
    bad.push_back(op);
    op.target_type = 9999;  // unknown target type
    bad.push_back(op);
  }
  for (const storage::UpdateOp& op : bad) {
    auto refused = durable->Apply(op);
    ASSERT_FALSE(refused.ok()) << storage::DebugString(op);
    EXPECT_TRUE(refused.status().IsInvalidArgument())
        << refused.status().ToString();
    EXPECT_NE(refused.status().message().find("QRY012"), std::string::npos)
        << refused.status().ToString();
  }
  EXPECT_EQ(durable->wal_appends(), 0u) << "refused ops dirtied the log";

  // The gate lets a valid op through: rename a non-key attribute of an
  // existing instance.
  storage::UpdateOp ok;
  ok.kind = storage::UpdateOp::Kind::kRenameValue;
  ok.target_type = country;
  ok.target_logical = 0;
  ok.attr = nonkey->name;
  ok.new_value = "renamed";
  auto applied = durable->Apply(ok);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(durable->wal_appends(), 1u);
}

TEST(UpdateExecTest, SameStreamKeepsSchemasEquivalent) {
  Fixture f;
  mct::MctSchema en = f.designer.Design(Strategy::kEn);
  mct::MctSchema mcmr = f.designer.Design(Strategy::kMcmr);
  std::vector<mct::MctSchema> schemas{en, mcmr};
  workload::UpdateGenOptions gen;
  gen.num_ops = 10;
  auto ops = workload::GenerateUpdateOps(schemas, f.logical, gen);
  ASSERT_FALSE(ops.empty());

  auto d1 = f.MakeDurable(en);
  auto d2 = f.MakeDurable(mcmr);
  UpdateExecutor e1(d1.get()), e2(d2.get());
  for (const auto& op : ops) {
    ASSERT_TRUE(e1.Execute(op).ok()) << storage::DebugString(op);
    ASSERT_TRUE(e2.Execute(op).ok()) << storage::DebugString(op);
  }
  // Both schemas saw the same logical mutations: every read query agrees.
  for (const std::string& name : f.w.figure_queries) {
    const query::AssociationQuery* q = f.w.Find(name);
    if (q == nullptr || q->is_update()) continue;
    auto p1 = PlanQuery(*q, en);
    auto p2 = PlanQuery(*q, mcmr);
    if (!p1.ok() || !p2.ok()) continue;
    Executor x1(d1->store()), x2(d2->store());
    x1.set_snapshot(d1->snapshot());
    x2.set_snapshot(d2->snapshot());
    auto r1 = x1.Execute(*p1);
    auto r2 = x2.Execute(*p2);
    ASSERT_TRUE(r1.ok() && r2.ok()) << name;
    EXPECT_EQ(r1->logicals, r2->logicals) << name;
  }
}

}  // namespace
}  // namespace mctdb::query
