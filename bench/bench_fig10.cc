// Fig 10 reproduction: number of duplicate eliminations / duplicate updates
// / group-bys for the TPC-W queries, per schema — the price of redundancy
// (DEEP, UNDR) and of flat schemas that group by value (SHALLOW).
#include "bench/bench_util.h"

using namespace mctdb;
using namespace mctdb::bench;

int main(int argc, char** argv) {
  (void)ScaleFromArgs(argc, argv);
  std::printf(
      "=== Fig 10: Number of duplicate eliminations / duplicate updates / "
      "group-bys for TPC-W queries ===\n\n");
  TpcwSetup setup(0.01, /*materialize=*/false);

  std::printf("%-6s", "");
  for (const auto& schema : setup.schemas) {
    std::printf("%9s", schema.name().c_str());
  }
  std::printf("\n");
  PrintRule(6 + 9 * setup.schemas.size());
  for (const std::string& name : setup.w.figure_queries) {
    const query::AssociationQuery* q = setup.w.Find(name);
    std::printf("%-6s", name.c_str());
    for (const auto& schema : setup.schemas) {
      auto plan = query::PlanQuery(*q, schema);
      std::printf("%9zu", plan.ok() ? plan->Stats().dup_ops() : 0);
    }
    std::printf("\n");
  }
  return 0;
}
