// Ablation: structural joins vs value joins on the same association, at
// growing data sizes. This is the premise the whole design methodology
// stands on ([1,7], §3.1): "structural joins ... have been shown to be much
// more efficient than value-based joins". We build the same TPC-W instance
// under EN (structural, customer->make->order in one color) and SHALLOW
// (make carries an order idref) and time the recovery of the association.
#include <benchmark/benchmark.h>

#include "bench/micro_util.h"

#include "bench/bench_util.h"

namespace {

using namespace mctdb;
using namespace mctdb::bench;

/// One setup per scale, shared across iterations.
TpcwSetup* Setup(double scale) {
  static std::map<double, std::unique_ptr<TpcwSetup>>* cache =
      new std::map<double, std::unique_ptr<TpcwSetup>>();
  auto it = cache->find(scale);
  if (it == cache->end()) {
    it = cache->emplace(scale, std::make_unique<TpcwSetup>(scale)).first;
  }
  return it->second.get();
}

query::AssociationQuery ChainQuery(const er::ErDiagram& d) {
  query::QueryBuilder b("chain", d);
  int c = b.Root("customer");
  b.Via(c, {"make", "order"});
  return b.Build();
}

void RunOn(benchmark::State& state, design::Strategy strategy) {
  double scale = double(state.range(0)) / 100.0;
  TpcwSetup* setup = Setup(scale);
  size_t index = 0;
  auto all = design::AllStrategies();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i] == strategy) index = i;
  }
  query::AssociationQuery q = ChainQuery(setup->w.diagram);
  auto plan = query::PlanQuery(q, setup->schemas[index]);
  if (!plan.ok()) {
    state.SkipWithError("plan failed");
    return;
  }
  size_t results = 0;
  for (auto _ : state) {
    query::Executor exec(setup->stores[index].get());
    auto result = exec.Execute(*plan);
    results = result->unique_count;
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = double(results);
  state.counters["value_joins"] = double(plan->Stats().value_joins);
  state.counters["structural_joins"] =
      double(plan->Stats().structural_joins);
}

void BM_StructuralJoin_EN(benchmark::State& state) {
  RunOn(state, design::Strategy::kEn);
}
void BM_ValueJoin_SHALLOW(benchmark::State& state) {
  RunOn(state, design::Strategy::kShallow);
}

}  // namespace

// range(0) is scale*100: 25 => 0.25, 100 => 1.0, 400 => 4.0.
BENCHMARK(BM_StructuralJoin_EN)->Arg(25)->Arg(100)->Arg(400);
BENCHMARK(BM_ValueJoin_SHALLOW)->Arg(25)->Arg(100)->Arg(400);

MCTDB_MICRO_BENCH_MAIN();
