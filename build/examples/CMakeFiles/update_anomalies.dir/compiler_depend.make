# Empty compiler generated dependencies file for update_anomalies.
# This may be replaced when dependencies are built.
