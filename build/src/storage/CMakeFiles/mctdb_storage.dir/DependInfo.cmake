
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/pager.cc" "src/storage/CMakeFiles/mctdb_storage.dir/pager.cc.o" "gcc" "src/storage/CMakeFiles/mctdb_storage.dir/pager.cc.o.d"
  "/root/repo/src/storage/persist.cc" "src/storage/CMakeFiles/mctdb_storage.dir/persist.cc.o" "gcc" "src/storage/CMakeFiles/mctdb_storage.dir/persist.cc.o.d"
  "/root/repo/src/storage/posting.cc" "src/storage/CMakeFiles/mctdb_storage.dir/posting.cc.o" "gcc" "src/storage/CMakeFiles/mctdb_storage.dir/posting.cc.o.d"
  "/root/repo/src/storage/store.cc" "src/storage/CMakeFiles/mctdb_storage.dir/store.cc.o" "gcc" "src/storage/CMakeFiles/mctdb_storage.dir/store.cc.o.d"
  "/root/repo/src/storage/validate.cc" "src/storage/CMakeFiles/mctdb_storage.dir/validate.cc.o" "gcc" "src/storage/CMakeFiles/mctdb_storage.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mct/CMakeFiles/mctdb_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/er/CMakeFiles/mctdb_er.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mctdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
