#include "common/arena.h"

#include <cstring>

namespace mctdb {

char* Arena::Allocate(size_t bytes) {
  return AllocateAligned(bytes, alignof(max_align_t));
}

char* Arena::AllocateAligned(size_t bytes, size_t alignment) {
  if (bytes == 0) bytes = 1;
  uintptr_t cur = reinterpret_cast<uintptr_t>(cursor_);
  size_t pad = (alignment - (cur & (alignment - 1))) & (alignment - 1);
  if (pad + bytes > remaining_) {
    // Oversized requests get a dedicated block so a huge string does not
    // waste an entire fresh block's tail.
    if (bytes > block_bytes_ / 4) {
      char* block = AllocateNewBlock(bytes + alignment);
      uintptr_t p = reinterpret_cast<uintptr_t>(block);
      size_t pad2 = (alignment - (p & (alignment - 1))) & (alignment - 1);
      bytes_allocated_ += bytes;
      return block + pad2;
    }
    cursor_ = AllocateNewBlock(block_bytes_);
    remaining_ = block_bytes_;
    cur = reinterpret_cast<uintptr_t>(cursor_);
    pad = (alignment - (cur & (alignment - 1))) & (alignment - 1);
  }
  char* out = cursor_ + pad;
  cursor_ = out + bytes;
  remaining_ -= pad + bytes;
  bytes_allocated_ += bytes;
  return out;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return {};
  char* mem = AllocateAligned(s.size(), 1);
  std::memcpy(mem, s.data(), s.size());
  return std::string_view(mem, s.size());
}

char* Arena::AllocateNewBlock(size_t bytes) {
  blocks_.push_back(std::make_unique<char[]>(bytes));
  bytes_reserved_ += bytes;
  return blocks_.back().get();
}

}  // namespace mctdb
