#include "service/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/string_util.h"

namespace mctsvc {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer or gives up on error/timeout.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpEndpoint::HttpEndpoint(Options options, Handler handler)
    : options_(options), handler_(std::move(handler)) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

mctdb::Status HttpEndpoint::Start() {
  if (running()) return mctdb::Status::OK();
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return mctdb::Status::IoError("http: socket() failed");
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return mctdb::Status::IoError(mctdb::StringPrintf(
        "http: cannot bind 127.0.0.1:%u: %s", unsigned(options_.port),
        std::strerror(errno)));
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return mctdb::Status::IoError("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ListenLoop(); });
  MCTDB_LOG(kInfo, "http", "endpoint listening",
            {{"port", uint64_t(bound_port_)}});
  return mctdb::Status::OK();
}

void HttpEndpoint::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  MCTDB_LOG(kInfo, "http", "endpoint stopped",
            {{"port", uint64_t(bound_port_)},
             {"requests", requests_.load(std::memory_order_relaxed)}});
}

void HttpEndpoint::ListenLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, options_.poll_interval_ms);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetIoTimeout(fd, options_.io_timeout_ms);
    HandleConnection(fd);
    close(fd);
  }
}

void HttpEndpoint::HandleConnection(int fd) {
  // Read until the end of the request head (4 KB cap — the body, if any,
  // is read separately against max_body_bytes).
  std::string request;
  char buf[1024];
  size_t head_end = std::string::npos;
  size_t body_start = 0;
  while (request.size() < 4096) {
    if (size_t pos = request.find("\r\n\r\n"); pos != std::string::npos) {
      head_end = pos;
      body_start = pos + 4;
      break;
    }
    if (size_t pos = request.find("\n\n"); pos != std::string::npos) {
      head_end = pos;
      body_start = pos + 2;
      break;
    }
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  size_t line_end = request.find('\n');
  std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? std::string() : request_line.substr(0, sp1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (method != "GET" && method != "POST") {
    response.status = 405;
    response.body = "only GET and POST are supported\n";
  } else {
    HttpRequest req;
    req.method = method;
    req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (size_t q = req.path.find('?'); q != std::string::npos) {
      req.query = req.path.substr(q + 1);
      req.path.resize(q);
    }
    // Content-Length is the only header this surface reads; HTTP header
    // names are case-insensitive.
    size_t content_length = 0;
    std::string head_lower =
        head_end == std::string::npos ? request : request.substr(0, head_end);
    for (char& c : head_lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (size_t h = head_lower.find("content-length:");
        h != std::string::npos) {
      content_length = static_cast<size_t>(
          std::strtoull(head_lower.c_str() + h + 15, nullptr, 10));
    }
    if (content_length > options_.max_body_bytes) {
      response.status = 413;
      response.body = mctdb::StringPrintf(
          "body exceeds %zu bytes\n", options_.max_body_bytes);
    } else {
      if (head_end != std::string::npos && content_length > 0) {
        req.body = request.substr(body_start);
        while (req.body.size() < content_length) {
          ssize_t n = recv(fd, buf, sizeof(buf), 0);
          if (n <= 0) break;
          req.body.append(buf, static_cast<size_t>(n));
        }
        req.body.resize(std::min(req.body.size(), content_length));
      }
      response = handler_(req);
    }
  }

  std::string head = mctdb::StringPrintf(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, response.body.data(), response.body.size());
  }
}

}  // namespace mctsvc
