// The MCT schema of paper §2.3: a tuple (N, k, E_1..E_k, ICICs) — labeled
// nodes, k colors, one ordered forest of edges per color, and inter-color
// integrity constraints.
//
// Representation: *occurrence-based*. Each color holds a forest of schema
// occurrences, every occurrence tagged with the ER-graph node it
// instantiates and the ER edge its parent link realizes. This single
// representation covers:
//   * normalized MCT schemas (MC/MCMR/DUMC): <=1 occurrence per ER node per
//     color — node normal form;
//   * unfolded redundant schemas (DEEP, UNDR): several occurrences of one ER
//     node inside a color;
//   * id/idref designs (SHALLOW, AF): occurrences plus *ref edges* carrying
//     the value-based associations.
// A 1-color MctSchema is exactly an XML schema, so the single-color
// translations of §4 share this type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/er_graph.h"

namespace mctdb::mct {

using ColorId = uint16_t;
using OccId = uint32_t;
inline constexpr OccId kInvalidOcc = 0xFFFFFFFFu;

/// Max-occurrence class of an occurrence under its parent, as it would print
/// in a DTD / XML Schema: exactly one, optional, one-or-more, zero-or-more.
enum class Occurs : uint8_t { kOne, kOpt, kPlus, kStar };
const char* ToString(Occurs o);

/// One appearance of an ER node inside one color's forest.
struct SchemaOcc {
  OccId id = kInvalidOcc;
  er::NodeId er_node = er::kInvalidNode;
  ColorId color = 0;
  OccId parent = kInvalidOcc;            ///< kInvalidOcc for tree roots
  er::EdgeId via_edge = er::kInvalidEdge;  ///< ER edge the parent link realizes
  std::vector<OccId> children;

  bool is_root() const { return parent == kInvalidOcc; }
};

/// Value-based (id/idref) association: occurrence `from` carries an idref
/// attribute naming instances of ER node `target`, standing in for ER edge
/// `er_edge` (which is then *not* structurally recoverable).
struct RefEdge {
  OccId from = kInvalidOcc;
  er::EdgeId er_edge = er::kInvalidEdge;
  er::NodeId target = er::kInvalidNode;
  std::string attr_name;  ///< e.g. "item_idref"
};

/// Inter-color integrity constraint (§2.3): the same ER edge is realized
/// structurally in >= 2 colors; a valid instance must reflect the
/// association in all of them or none.
struct Icic {
  er::EdgeId er_edge = er::kInvalidEdge;
  /// The child occurrences realizing the edge, one or more per color.
  std::vector<OccId> realizations;
  /// Distinct colors involved (>= 2 by construction).
  std::vector<ColorId> colors;
};

/// Aggregate shape statistics, used by benches and the designer reports.
struct SchemaStats {
  size_t num_colors = 0;
  size_t num_occurrences = 0;
  size_t num_ref_edges = 0;
  size_t num_icics = 0;
  size_t max_depth = 0;
  size_t num_duplicated_er_nodes = 0;  ///< ER nodes with >1 occ in some color
};

class MctSchema {
 public:
  /// `graph` must outlive the schema.
  MctSchema(std::string name, const er::ErGraph* graph)
      : name_(std::move(name)), graph_(graph) {}

  const std::string& name() const { return name_; }
  const er::ErGraph& graph() const { return *graph_; }
  const er::ErDiagram& diagram() const { return graph_->diagram(); }

  // -- construction ---------------------------------------------------------

  /// Adds a color; names cycle through the paper's palette (blue, red,
  /// purple, orange, green) then "color6"...
  ColorId AddColor();
  /// Adds a root occurrence of `er_node` to `color`'s forest.
  OccId AddRoot(ColorId color, er::NodeId er_node);
  /// Adds a child occurrence realizing ER edge `via_edge` (which must be
  /// incident on both parent's and child's ER nodes).
  OccId AddChild(OccId parent, er::NodeId er_node, er::EdgeId via_edge);
  /// Re-roots occurrence `root` (must be a root) under `new_parent` via
  /// `via_edge` — used by Algorithm MC's tree merging (Fig 7 step 4).
  void AttachRoot(OccId root, OccId new_parent, er::EdgeId via_edge);
  /// Records a value-based idref association.
  void AddRefEdge(OccId from, er::EdgeId er_edge, er::NodeId target);

  // -- accessors ------------------------------------------------------------

  size_t num_colors() const { return color_roots_.size(); }
  const std::string& color_name(ColorId c) const { return color_names_[c]; }
  const std::vector<OccId>& roots(ColorId c) const { return color_roots_[c]; }
  const SchemaOcc& occ(OccId id) const { return occs_[id]; }
  size_t num_occurrences() const { return occs_.size(); }
  const std::vector<SchemaOcc>& occurrences() const { return occs_; }
  const std::vector<RefEdge>& ref_edges() const { return ref_edges_; }

  /// All occurrences of `er_node` (across colors).
  std::vector<OccId> OccurrencesOf(er::NodeId er_node) const;
  /// First occurrence of `er_node` in `color`, or kInvalidOcc.
  OccId FindOcc(ColorId color, er::NodeId er_node) const;
  /// The *primary* occurrence of `er_node` in `color`: the one with the
  /// largest subtree (ties: lowest id), or kInvalidOcc. In node-normal
  /// colors this is the unique occurrence. The materializer guarantees
  /// every logical instance is placed at its primary occurrence, so
  /// chain matching anchored at primary (or root) occurrences sees every
  /// association pair — redundant graft/copy occurrences cover only the
  /// instances their context reaches.
  OccId PrimaryOcc(ColorId color, er::NodeId er_node) const;
  /// Number of occurrences in the subtree rooted at `id` (inclusive).
  size_t SubtreeSize(OccId id) const;
  /// An occurrence is *clean* when every link on its root path nests from
  /// the one side to the many side (all-traversable): its placements never
  /// duplicate an instance. The materializer completes every logical
  /// instance at every clean occurrence, so chain matching anchored at
  /// clean (or root) occurrences sees every association pair; unclean
  /// occurrences are denormalized context grafts with partial coverage.
  bool IsCleanOcc(OccId id) const;
  /// True iff `anc` is a proper ancestor of `desc` (same color implied by
  /// the forest structure).
  bool IsAncestor(OccId anc, OccId desc) const;
  /// Max-occurrence class of `child` under its parent, derived from the
  /// realized ER edge's cardinality/totality (§4.2 constraint mapping).
  Occurs ChildOccurs(OccId child) const;
  /// Depth of occurrence (roots are 0).
  size_t Depth(OccId id) const;

  // -- the paper's normal forms (§3.2) -------------------------------------

  /// Node normal form: no ER node occurs more than once in any single color.
  bool IsNodeNormal(std::string* violation = nullptr) const;
  /// Edge normal form: no ER edge is structurally realized in more than one
  /// color. (A single-color schema is trivially EN — Fig 4 discussion.)
  bool IsEdgeNormal(std::string* violation = nullptr) const;
  /// Every ER node has at least one occurrence somewhere.
  bool CoversAllNodes(std::string* missing = nullptr) const;

  /// The induced ICIC set: one per ER edge realized in >= 2 colors. An edge
  /// normal schema has an empty ICIC set.
  std::vector<Icic> ComputeIcics() const;

  SchemaStats Stats() const;

  /// Structural invariants: parent/child ids consistent, via_edge incident
  /// on both ER endpoints and traversable parent->child, colors consistent,
  /// forests acyclic.
  Status Validate() const;

  /// Per-color indented tree dump with *,+,? markers and @idref attributes.
  std::string DebugString() const;

 private:
  std::string name_;
  const er::ErGraph* graph_;
  std::vector<SchemaOcc> occs_;
  std::vector<std::string> color_names_;
  std::vector<std::vector<OccId>> color_roots_;
  std::vector<RefEdge> ref_edges_;
};

}  // namespace mctdb::mct
