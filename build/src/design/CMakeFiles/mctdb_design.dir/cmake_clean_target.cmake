file(REMOVE_RECURSE
  "libmctdb_design.a"
)
