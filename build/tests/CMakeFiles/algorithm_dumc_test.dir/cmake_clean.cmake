file(REMOVE_RECURSE
  "CMakeFiles/algorithm_dumc_test.dir/algorithm_dumc_test.cc.o"
  "CMakeFiles/algorithm_dumc_test.dir/algorithm_dumc_test.cc.o.d"
  "algorithm_dumc_test"
  "algorithm_dumc_test.pdb"
  "algorithm_dumc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_dumc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
