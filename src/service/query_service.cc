#include "service/query_service.h"

#include <utility>

#include "analysis/plan_verify.h"
#include "analysis/query_analyze.h"
#include "common/failpoint.h"
#include "query/planner.h"
#include "storage/persist.h"
#include "common/log.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "obs/trace_id.h"

namespace mctsvc {

using mctdb::Result;
using mctdb::Status;
using mctdb::query::ExecResult;
using mctdb::query::QueryPlan;
namespace flight = mctdb::obs::flight;

QueryService::QueryService(const ServiceOptions& options)
    : options_(options), start_time_(std::chrono::steady_clock::now()) {
  mctdb::ThreadPool::Options popts;
  popts.num_threads = options_.num_threads == 0 ? 1 : options_.num_threads;
  popts.start_paused = options_.start_paused;
  pool_ = std::make_unique<mctdb::ThreadPool>(popts);
  if (options_.http_port >= 0) {
    HttpEndpoint::Options hopts;
    hopts.port = static_cast<uint16_t>(options_.http_port);
    http_ = std::make_unique<HttpEndpoint>(
        hopts, [this](const HttpRequest& request) {
          HttpResponse response;
          // Extension routes first (exact path, any method): this is how
          // POST /update reaches the admission pipeline in `mctc serve`.
          HttpEndpoint::Handler route;
          {
            std::lock_guard<mctdb::OrderedMutex> lock(mu_);
            auto it = http_routes_.find(request.path);
            if (it != http_routes_.end()) route = it->second;
          }
          if (route) return route(request);
          if (request.method != "GET") {
            response.status = 405;
            response.body =
                "POST is only accepted on registered control routes\n";
            return response;
          }
          const std::string& path = request.path;
          if (path == "/metrics") {
            response.content_type = "text/plain; version=0.0.4";
            response.body = MetricsText();
          } else if (path == "/metrics.json") {
            response.content_type = "application/json";
            response.body = MetricsJson() + "\n";
          } else if (path == "/healthz") {
            response.content_type = "application/json";
            response.body = HealthJson() + "\n";
            // 503 while degraded: load balancers and probes steer away
            // without parsing the body.
            if (Degraded()) response.status = 503;
          } else if (path == "/slowlog") {
            response.content_type = "application/json";
            response.body = SlowQueriesJson() + "\n";
          } else if (path == "/tracez") {
            response.content_type = "application/json";
            response.body = TracesJson() + "\n";
          } else if (path == "/statusz") {
            response.content_type = "application/json";
            response.body = StatuszJson() + "\n";
          } else if (path == "/flightz") {
            response.content_type = "application/json";
            response.body = FlightzJson() + "\n";
          } else {
            response.status = 404;
            response.body =
                "not found; routes: /metrics /metrics.json /healthz "
                "/slowlog /tracez /statusz /flightz\n";
          }
          return response;
        });
    mctdb::Status started = http_->Start();
    if (!started.ok()) {
      // Keep serving queries without the endpoint: observability must
      // never take the data path down.
      MCTDB_LOG(kError, "mctsvc", "http endpoint failed to start",
                {{"error", started.ToString()},
                 {"port", int64_t(options_.http_port)}});
      http_.reset();
    }
  }
}

QueryService::~QueryService() {
  http_.reset();  // joins the listener before any state it scrapes dies
  Resume();
  Drain();
  // Stop maintenance threads before anything they touch (plan caches,
  // views, metrics) starts dying. Collected under the lock but stopped
  // outside it: a callback in flight needs mu_, and Stop() joins.
  std::vector<mctdb::wal::MaintenanceManager*> managers;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    for (auto& [name, entry] : stores_) {
      if (entry.maintenance != nullptr) {
        managers.push_back(entry.maintenance.get());
      }
    }
  }
  for (mctdb::wal::MaintenanceManager* m : managers) m->Stop();
  pool_.reset();  // joins workers before the store registry goes away
}

Status QueryService::AddStore(const std::string& name,
                              mctdb::storage::MctStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("AddStore: null store");
  }
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto [it, inserted] = stores_.emplace(name, StoreEntry{});
  if (!inserted) {
    return Status::AlreadyExists("store '" + name + "' already registered");
  }
  auto view = std::make_shared<StoreView>();
  view->store = store;
  view->pool = std::make_shared<mctdb::storage::ShardedBufferPool>(
      store->pager(), options_.pool_pages, options_.pool_shards);
  it->second.view = std::move(view);
  it->second.plan_cache =
      std::make_unique<PlanCache>(options_.plan_cache_capacity);
  it->second.fingerprint =
      mctdb::storage::SchemaFingerprint(store->schema());
  if (options_.breaker_failure_threshold > 0) {
    CircuitBreaker::Options bopts;
    bopts.failure_threshold = options_.breaker_failure_threshold;
    bopts.open_seconds = options_.breaker_open_seconds;
    it->second.breaker = std::make_unique<CircuitBreaker>(name, bopts);
  }
  MCTDB_LOG(kInfo, "mctsvc", "store registered",
            {{"store", name},
             {"pool_pages", uint64_t(options_.pool_pages)},
             {"shards", uint64_t(it->second.view->pool->num_shards())}});
  return Status::OK();
}

Status QueryService::AddDurableStore(const std::string& name,
                                     mctdb::wal::DurableStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("AddDurableStore: null store");
  }
  MCTDB_RETURN_IF_ERROR(AddStore(name, store->store()));
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    StoreEntry& entry = stores_[name];
    entry.durable = store;
    if (options_.maintenance_enabled) {
      entry.maintenance = std::make_unique<mctdb::wal::MaintenanceManager>(
          store, options_.maintenance,
          [this, name](const mctdb::wal::MaintenanceManager::Event& event) {
            OnMaintenanceCheckpoint(name, event);
          });
      entry.maintenance->Start();
    }
  }
  metrics_.recovery_replayed_records.fetch_add(
      store->recovery().replayed_records, std::memory_order_relaxed);
  if (store->recovery().replayed_records > 0 ||
      store->recovery().truncated_bytes > 0) {
    MCTDB_LOG(kInfo, "mctsvc", "durable store recovered",
              {{"store", name},
               {"replayed", store->recovery().replayed_records},
               {"truncated_bytes", store->recovery().truncated_bytes}});
  }
  return Status::OK();
}

Result<std::shared_ptr<QueryService::Session>> QueryService::OpenSession(
    const std::string& store) {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = stores_.find(store);
  if (it == stores_.end()) {
    return Status::NotFound("store '" + store + "' is not registered");
  }
  return std::shared_ptr<Session>(
      new Session(this, store, it->second.durable, it->second.breaker.get(),
                  it->second.plan_cache.get(), it->second.fingerprint));
}

std::shared_ptr<const QueryService::StoreView> QueryService::CurrentView(
    const std::string& store) const {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = stores_.find(store);
  return it == stores_.end() ? nullptr : it->second.view;
}

void QueryService::OnMaintenanceCheckpoint(
    const std::string& store,
    const mctdb::wal::MaintenanceManager::Event& event) {
  PlanCache* cache = nullptr;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    auto it = stores_.find(store);
    if (it == stores_.end()) return;
    StoreEntry& entry = it->second;
    cache = entry.plan_cache.get();
    if (event.status.ok() && event.stats.rebased &&
        entry.durable != nullptr &&
        entry.durable->store() != entry.view->store) {
      // The live store was swapped under us: publish a fresh (store,
      // pool) pair. In-flight requests keep the old view alive through
      // their shared_ptr and finish against the retired store.
      auto fresh = std::make_shared<StoreView>();
      fresh->store = entry.durable->store();
      fresh->pool = std::make_shared<mctdb::storage::ShardedBufferPool>(
          fresh->store->pager(), options_.pool_pages, options_.pool_shards);
      entry.view = std::move(fresh);
    }
  }
  // Bump even on failure — same reasoning as Checkpoint(): a half-finished
  // checkpoint may have moved state, and a spurious re-plan is cheap next
  // to a plan compiled against intervals that no longer exist. The trace
  // id is the maintenance cycle's (minted by the manager's loop), so the
  // bump correlates with the trigger and the WAL events of the checkpoint.
  cache->BumpGeneration();
  flight::Record(flight::Subsystem::kPlanCache,
                 flight::Site::kGenerationBump,
                 mctdb::obs::CurrentTraceId(), cache->generation());
  if (event.status.ok()) {
    MCTDB_LOG(kInfo, "mctsvc", "maintenance checkpoint",
              {{"store", store},
               {"reason", mctdb::wal::ToString(event.reason)},
               {"checkpoint_lsn", uint64_t(event.stats.checkpoint_lsn)},
               {"rebased", uint64_t(event.stats.rebased)}});
  } else {
    MCTDB_LOG(kWarn, "mctsvc", "maintenance checkpoint failed",
              {{"store", store},
               {"reason", mctdb::wal::ToString(event.reason)},
               {"error", event.status.ToString()}});
  }
}

Result<ExecResult> QueryService::Execute(const std::string& store,
                                         const QueryPlan& plan,
                                         double timeout_seconds) {
  if (plan.query != nullptr && plan.query->is_update()) {
    return Status::InvalidArgument(
        "update plans require an explicit session (one per store) so the "
        "caller owns the write-serialization domain");
  }
  MCTDB_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         OpenSession(store));
  // One-shots are the "new session" shed class: under overload they go
  // first, preserving capacity for established sessions.
  MCTDB_ASSIGN_OR_RETURN(
      QueryFuture future,
      session->Submit(plan, timeout_seconds, Priority::kLow));
  return future.get();
}

Result<ExecResult> QueryService::ExecuteQuery(
    const std::string& store, const mctdb::query::AssociationQuery& query,
    double timeout_seconds) {
  if (query.is_update()) {
    return Status::InvalidArgument(
        "update queries require an explicit session (one per store) so the "
        "caller owns the write-serialization domain");
  }
  MCTDB_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                         OpenSession(store));
  MCTDB_ASSIGN_OR_RETURN(
      QueryFuture future,
      session->SubmitQuery(query, timeout_seconds, Priority::kLow));
  return future.get();
}

Result<mctdb::wal::CheckpointStats> QueryService::Checkpoint(
    const std::string& store) {
  mctdb::wal::DurableStore* durable = nullptr;
  PlanCache* cache = nullptr;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    auto it = stores_.find(store);
    if (it == stores_.end()) {
      return Status::NotFound("store '" + store + "' is not registered");
    }
    if (it->second.durable == nullptr) {
      return Status::InvalidArgument(
          "store '" + store + "' is read-only; nothing to checkpoint");
    }
    durable = it->second.durable;
    cache = it->second.plan_cache.get();
    ++it->second.manual_checkpoints;
  }
  // The checkpoint runs under its own trace id so its WAL and checkpoint
  // events — and this generation bump — correlate as one timeline.
  const uint64_t trace_id = mctdb::obs::MintTraceId();
  mctdb::obs::ScopedTraceId trace_scope(trace_id);
  Result<mctdb::wal::CheckpointStats> stats = durable->Checkpoint();
  // Bump even on failure: a half-finished checkpoint may still have moved
  // in-memory state, and a spurious re-plan is cheap next to a plan
  // compiled against intervals that no longer exist.
  cache->BumpGeneration();
  flight::Record(flight::Subsystem::kPlanCache,
                 flight::Site::kGenerationBump, trace_id,
                 cache->generation());
  if (stats.ok()) {
    MCTDB_LOG(kInfo, "mctsvc", "store checkpointed",
              {{"store", store},
               {"checkpoint_lsn", uint64_t(stats->checkpoint_lsn)},
               {"log_bytes_trimmed", stats->log_bytes_trimmed}});
  }
  return stats;
}

PlanCache* QueryService::plan_cache(const std::string& store) const {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = stores_.find(store);
  return it == stores_.end() ? nullptr : it->second.plan_cache.get();
}

void QueryService::Resume() { pool_->Resume(); }

void QueryService::Drain() {
  std::unique_lock<mctdb::OrderedMutex> lock(drain_mu_);
  drained_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void QueryService::FinishOne() {
  uint64_t left = pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  metrics_.queue_depth.store(left, std::memory_order_relaxed);
  if (left == 0) {
    std::lock_guard<mctdb::OrderedMutex> lock(drain_mu_);
    drained_cv_.notify_all();
  }
}

void QueryService::RunNext(const std::shared_ptr<Session>& session) {
  Session::Task task;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(session->mu_);
    MCTDB_CHECK(!session->tasks_.empty());
    task = std::move(session->tasks_.front());
    session->tasks_.pop_front();
  }
  const double queue_wait =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    task.enqueue_time)
          .count();
  metrics_.queue_wait_seconds.Record(queue_wait);
  // Everything this task does downstream — spans, WAL appends, fsyncs,
  // flight events — inherits its admission-minted trace id.
  mctdb::obs::ScopedTraceId trace_scope(task.trace_id);

  if (task.has_deadline &&
      std::chrono::steady_clock::now() > task.deadline) {
    // A deadline lapse says nothing about the store's health: it is not a
    // shed and must never feed the circuit breaker.
    metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService, flight::Site::kDeadline,
                   task.trace_id,
                   static_cast<uint64_t>(queue_wait * 1e6));
    Status lapsed =
        Status::DeadlineExceeded("request deadline passed while queued");
    if (task.op != nullptr) {
      task.update_promise.set_value(lapsed);
    } else {
      task.promise.set_value(lapsed);
    }
  } else if (task.op != nullptr) {
    BeginInFlight(task.trace_id, session->store_name_, task.query_label);
    mctdb::query::UpdateExecutor exec(session->durable_);
    Result<mctdb::query::UpdateExecResult> result = exec.Execute(*task.op);
    EndInFlight(task.trace_id);
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) {
      metrics_.latency.Record(result->elapsed_seconds);
      metrics_.wal_appends.fetch_add(result->wal_appends,
                                     std::memory_order_relaxed);
      if (result->wal_fsyncs > 0) {
        // This op led its batch's fsync; its group_commit span timed the
        // sync (followers piggyback and record nothing).
        for (const mctdb::obs::Span& child : result->trace.children) {
          if (child.kind == mctdb::obs::StageKind::kWal &&
              child.label == "group_commit") {
            metrics_.wal_fsync_seconds.Record(child.elapsed_seconds);
          }
        }
      }
      if (session->breaker_ != nullptr) session->breaker_->RecordSuccess();
    } else {
      metrics_.failed.fetch_add(1, std::memory_order_relaxed);
      metrics_.updates_failed.fetch_add(1, std::memory_order_relaxed);
      if (session->breaker_ != nullptr) {
        if (result.status().IsUnavailable() &&
            session->durable_ != nullptr && session->durable_->read_only()) {
          // Out-of-space read-only mode is graceful degradation, not a
          // store fault: reads still serve and writes resume once the
          // disk drains. An open breaker here would refuse the reads too.
          session->breaker_->RecordSuccess();
        } else if (result.status().IsDataLoss() ||
                   result.status().IsInternal() ||
                   result.status().IsUnavailable()) {
          // A degraded WAL is a hard store fault: trip the breaker so the
          // write path stops hammering a log that needs a reopen.
          session->breaker_->RecordFailure();
        } else {
          session->breaker_->RecordSuccess();
        }
      }
    }
    task.update_promise.set_value(std::move(result));
  } else {
    BeginInFlight(task.trace_id, session->store_name_, task.query_label);
    Result<ExecResult> result = [&]() -> Result<ExecResult> {
      switch (MCTDB_FAILPOINT("service.exec")) {
        case mctdb::failpoint::Fault::kError:
          return Status::Internal("injected service.exec fault");
        case mctdb::failpoint::Fault::kTruncate:
          return Status::DataLoss("injected service.exec data loss");
        case mctdb::failpoint::Fault::kEnospc:
        case mctdb::failpoint::Fault::kEio:
          // Disk faults inside execution surface as I/O errors; the
          // breaker treats them like any executor failure.
          return Status::IoError("injected service.exec disk fault");
        case mctdb::failpoint::Fault::kNone:
          break;
      }
      // Resolve the CURRENT (store, pool) pair; holding the shared view
      // keeps the pool alive even if a maintenance rebase publishes a new
      // one mid-query, and the matching store stays alive in the durable
      // store's retired list.
      std::shared_ptr<const StoreView> view =
          CurrentView(session->store_name_);
      mctdb::query::Executor exec(view->store, view->pool.get());
      // Pin the query to the committed state as of now: updates that land
      // mid-query stay invisible, so the result is a consistent snapshot
      // (and on read-only stores this is a no-op).
      exec.set_snapshot(view->store->visible_lsn());
      return exec.Execute(*task.plan);
    }();
    EndInFlight(task.trace_id);
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) {
      metrics_.latency.Record(result->elapsed_seconds);
      if (task.plan->statically_empty) {
        metrics_.queries_pruned.fetch_add(1, std::memory_order_relaxed);
      }
      for (const std::string& code : task.plan->analysis_codes) {
        if (code == "QRY008" || code == "QRY009") {
          metrics_.plans_simplified.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      RecordCompletion(*session, *result);
      if (session->breaker_ != nullptr) session->breaker_->RecordSuccess();
    } else {
      metrics_.failed.fetch_add(1, std::memory_order_relaxed);
      // Only hard failures count against the breaker: corrupt pages and
      // internal faults. A caller mistake (InvalidArgument etc.) still
      // proves the store path works, so it records as success — which
      // also keeps a half-open probe from wedging on a soft error.
      if (session->breaker_ != nullptr) {
        if (result.status().IsDataLoss() || result.status().IsInternal()) {
          session->breaker_->RecordFailure();
        } else {
          session->breaker_->RecordSuccess();
        }
      }
    }
    task.promise.set_value(std::move(result));
  }

  bool more;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(session->mu_);
    more = !session->tasks_.empty();
    if (!more) session->scheduled_ = false;
  }
  if (more) {
    std::shared_ptr<Session> next = session;
    bool ok = pool_->Submit(
        [this, next = std::move(next)] { RunNext(next); });
    MCTDB_CHECK_MSG(ok, "worker pool rejected a strand continuation");
  }
  FinishOne();
}

void QueryService::RecordCompletion(const Session& session,
                                    const ExecResult& result) {
  metrics_.page_hits.fetch_add(result.page_hits,
                               std::memory_order_relaxed);
  metrics_.page_misses.fetch_add(result.page_misses,
                                 std::memory_order_relaxed);
  metrics_.index_seeks.fetch_add(result.index_seeks,
                                 std::memory_order_relaxed);
  if (options_.trace_log_capacity > 0) {
    // Render outside the ring lock; the span tree is request-private.
    std::string rendered = mctdb::obs::SpanToJson(result.trace);
    std::lock_guard<mctdb::OrderedMutex> lock(slow_mu_);
    trace_log_.push_back(std::move(rendered));
    while (trace_log_.size() > options_.trace_log_capacity) {
      trace_log_.pop_front();
    }
  }
  if (options_.slow_query_seconds <= 0 ||
      result.elapsed_seconds < options_.slow_query_seconds ||
      options_.slow_query_log_capacity == 0) {
    return;
  }
  metrics_.slow_queries.fetch_add(1, std::memory_order_relaxed);
  MCTDB_LOG(kWarn, "mctsvc", "slow query",
            {{"store", session.store_name_},
             {"query", result.trace.label},
             {"seconds", result.elapsed_seconds},
             {"page_hits", result.page_hits},
             {"page_misses", result.page_misses},
             {"join_pairs", result.join_pairs}});
  SlowQueryRecord record;
  record.store = session.store_name_;
  record.query = result.trace.label;
  record.trace_id = result.trace.trace_id;
  record.seconds = result.elapsed_seconds;
  record.page_hits = result.page_hits;
  record.page_misses = result.page_misses;
  record.join_pairs = result.join_pairs;
  record.stages = mctdb::obs::AggregateByStage(result.trace);
  std::lock_guard<mctdb::OrderedMutex> lock(slow_mu_);
  slow_log_.push_back(std::move(record));
  while (slow_log_.size() > options_.slow_query_log_capacity) {
    slow_log_.pop_front();
  }
}

void QueryService::RecordRejection(const std::string& store,
                                   const char* outcome, uint64_t trace_id,
                                   const std::string& query_label) {
  // Shed and rejected requests never reach RecordCompletion, so this is
  // their only way into the slow-query log. Saturation is exactly when the
  // log matters most; a log that goes quiet under overload would hide the
  // requests the operator is debugging. Threshold does not apply — the
  // request consumed ~zero execution time by design.
  if (options_.slow_query_log_capacity == 0 ||
      options_.slow_query_seconds <= 0) {
    return;
  }
  SlowQueryRecord record;
  record.store = store;
  record.query = query_label;
  record.trace_id = trace_id;
  record.outcome = outcome;
  std::lock_guard<mctdb::OrderedMutex> lock(slow_mu_);
  slow_log_.push_back(std::move(record));
  while (slow_log_.size() > options_.slow_query_log_capacity) {
    slow_log_.pop_front();
  }
}

void QueryService::BeginInFlight(uint64_t trace_id,
                                 const std::string& store,
                                 std::string query_label) {
  std::lock_guard<mctdb::OrderedMutex> lock(inflight_mu_);
  inflight_[trace_id] = InFlightEntry{store, std::move(query_label),
                                      std::chrono::steady_clock::now()};
}

void QueryService::EndInFlight(uint64_t trace_id) {
  std::lock_guard<mctdb::OrderedMutex> lock(inflight_mu_);
  inflight_.erase(trace_id);
}

std::vector<QueryService::SlowQueryRecord> QueryService::SlowQueries()
    const {
  std::lock_guard<mctdb::OrderedMutex> lock(slow_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::string QueryService::SlowQueriesJson() const {
  std::string out = "{\"slow_queries\":[";
  bool first = true;
  for (const SlowQueryRecord& r : SlowQueries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"store\":\"" + mctdb::obs::JsonEscape(r.store) + "\"";
    out += ",\"query\":\"" + mctdb::obs::JsonEscape(r.query) + "\"";
    out += ",\"outcome\":\"" + mctdb::obs::JsonEscape(r.outcome) + "\"";
    char buf[160];
    std::snprintf(buf, sizeof(buf), ",\"trace_id\":%llu",
                  static_cast<unsigned long long>(r.trace_id));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"seconds\":%.6f,\"page_hits\":%llu,"
                  "\"page_misses\":%llu,\"join_pairs\":%llu,\"stages\":[",
                  r.seconds, static_cast<unsigned long long>(r.page_hits),
                  static_cast<unsigned long long>(r.page_misses),
                  static_cast<unsigned long long>(r.join_pairs));
    out += buf;
    bool first_stage = true;
    for (size_t k = 0; k < mctdb::obs::kNumStageKinds; ++k) {
      const mctdb::obs::StageAgg& row = r.stages[k];
      if (row.calls == 0) continue;
      if (!first_stage) out += ',';
      first_stage = false;
      std::snprintf(
          buf, sizeof(buf),
          "{\"stage\":\"%s\",\"seconds\":%.6f,\"calls\":%llu}",
          mctdb::obs::ToString(static_cast<mctdb::obs::StageKind>(k)),
          row.seconds, static_cast<unsigned long long>(row.calls));
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<std::string> QueryService::RecentTraces() const {
  std::lock_guard<mctdb::OrderedMutex> lock(slow_mu_);
  return {trace_log_.begin(), trace_log_.end()};
}

std::string QueryService::TracesJson() const {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const std::string& trace : RecentTraces()) {
    if (!first) out += ',';
    first = false;
    out += trace;
  }
  out += "]}";
  return out;
}

bool QueryService::Degraded() const {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  for (const auto& [name, entry] : stores_) {
    if (entry.breaker != nullptr &&
        entry.breaker->state() != CircuitBreaker::State::kClosed) {
      return true;
    }
    // A read-only store (WAL out of disk space) still serves reads, but
    // the service as a whole is degraded: probes should steer writes away.
    if (entry.durable != nullptr && entry.durable->read_only()) {
      return true;
    }
  }
  return false;
}

CircuitBreaker* QueryService::breaker(const std::string& store) const {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  auto it = stores_.find(store);
  return it == stores_.end() ? nullptr : it->second.breaker.get();
}

std::string QueryService::HealthJson() const {
  double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  size_t num_stores;
  bool degraded = false;
  std::string breakers = "[";
  std::string readonly = "[";
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    num_stores = stores_.size();
    bool first = true;
    bool first_ro = true;
    for (const auto& [name, entry] : stores_) {
      if (entry.durable != nullptr && entry.durable->read_only()) {
        // Writes are paused (out of disk space) while reads keep serving
        // at the pinned visible LSN; the maintenance re-probe lifts this
        // once the disk drains.
        degraded = true;
        if (!first_ro) readonly += ',';
        first_ro = false;
        readonly += '"' + mctdb::obs::JsonEscape(name) + '"';
      }
      if (entry.breaker == nullptr) continue;
      CircuitBreaker::State s = entry.breaker->state();
      if (s != CircuitBreaker::State::kClosed) degraded = true;
      if (!first) breakers += ',';
      first = false;
      breakers += "{\"store\":\"" + mctdb::obs::JsonEscape(name) +
                  "\",\"state\":\"" + CircuitBreaker::StateName(s) + "\"";
      if (s == CircuitBreaker::State::kOpen) {
        breakers += mctdb::StringPrintf(
            ",\"retry_after_seconds\":%.1f",
            entry.breaker->RetryAfterSeconds());
      }
      breakers += '}';
    }
  }
  breakers += ']';
  readonly += ']';
  return mctdb::StringPrintf(
      "{\"status\":\"%s\",\"uptime_seconds\":%.3f,\"stores\":%zu,"
      "\"workers\":%zu,\"queue_depth\":%llu,\"breakers\":%s,"
      "\"readonly_stores\":%s}",
      degraded ? "degraded" : "ok", uptime, num_stores,
      options_.num_threads == 0 ? size_t{1} : options_.num_threads,
      static_cast<unsigned long long>(
          metrics_.queue_depth.load(std::memory_order_relaxed)),
      breakers.c_str(), readonly.c_str());
}

uint16_t QueryService::HttpPort() const {
  return (http_ != nullptr && http_->running()) ? http_->port() : 0;
}

void QueryService::AddHttpRoute(const std::string& path,
                                HttpEndpoint::Handler handler) {
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  http_routes_[path] = std::move(handler);
}

std::string QueryService::StatuszJson() const {
  const auto now = std::chrono::steady_clock::now();
  double uptime =
      std::chrono::duration<double>(now - start_time_).count();
  std::string out = mctdb::StringPrintf(
      "{\"uptime_seconds\":%.3f,\"workers\":%zu,\"queue_depth\":%llu",
      uptime, options_.num_threads == 0 ? size_t{1} : options_.num_threads,
      static_cast<unsigned long long>(
          metrics_.queue_depth.load(std::memory_order_relaxed)));
  // Currently-executing requests, one row per busy worker.
  out += ",\"running\":[";
  {
    std::lock_guard<mctdb::OrderedMutex> lock(inflight_mu_);
    bool first = true;
    for (const auto& [id, entry] : inflight_) {
      if (!first) out += ',';
      first = false;
      out += mctdb::StringPrintf(
          "{\"trace_id\":%llu,\"store\":\"%s\",\"query\":\"%s\","
          "\"elapsed_seconds\":%.6f}",
          static_cast<unsigned long long>(id),
          mctdb::obs::JsonEscape(entry.store).c_str(),
          mctdb::obs::JsonEscape(entry.query).c_str(),
          std::chrono::duration<double>(now - entry.start).count());
    }
  }
  out += "],\"queue_wait\":" + metrics_.queue_wait_seconds.ToJson();
  // Lock contention per rank — the live view behind
  // mctsvc_lock_wait_seconds.
  out += ",\"lock_wait\":{";
  bool first_rank = true;
  for (mctdb::LockRank rank : mctdb::kAllLockRanks) {
    const mctdb::LockWaitCounters& c = mctdb::LockWaitFor(rank);
    if (!first_rank) out += ',';
    first_rank = false;
    out += mctdb::StringPrintf(
        "\"%s\":{\"acquisitions\":%llu,\"contended\":%llu,"
        "\"wait_seconds\":%.6f}",
        mctdb::ToString(rank),
        static_cast<unsigned long long>(
            c.acquisitions.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            c.contended.load(std::memory_order_relaxed)),
        double(c.wait_nanos.load(std::memory_order_relaxed)) * 1e-9);
  }
  out += "},\"stores\":[";
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    bool first = true;
    for (const auto& [name, entry] : stores_) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + mctdb::obs::JsonEscape(name) + "\"";
      if (entry.breaker != nullptr) {
        out += std::string(",\"breaker\":\"") +
               CircuitBreaker::StateName(entry.breaker->state()) + "\"";
      }
      out += mctdb::StringPrintf(
          ",\"plan_cache\":{\"size\":%zu,\"generation\":%llu}",
          entry.plan_cache->size(),
          static_cast<unsigned long long>(entry.plan_cache->generation()));
      out += mctdb::StringPrintf(
          ",\"pool\":{\"capacity_pages\":%zu,\"resident\":%zu}",
          entry.view->pool->capacity(), entry.view->pool->resident());
      if (entry.durable != nullptr) {
        // The in-flight WAL batch: records appended but not yet made
        // durable by a group-commit leader.
        out += mctdb::StringPrintf(
            ",\"wal\":{\"pending_records\":%llu,\"pending_bytes\":%llu,"
            "\"durable_lsn\":%llu,\"degraded\":%s,\"read_only\":%s}",
            static_cast<unsigned long long>(
                entry.durable->log().pending_records()),
            static_cast<unsigned long long>(
                entry.durable->log().pending_bytes()),
            static_cast<unsigned long long>(entry.durable->log().durable_lsn()),
            entry.durable->degraded() ? "true" : "false",
            entry.durable->read_only() ? "true" : "false");
        // Self-maintenance state: why checkpoints fired, how often writers
        // stalled for a rebalance, and the gap-pressure low-water mark.
        const uint32_t low_water = entry.durable->min_free_gap_low_water();
        out += mctdb::StringPrintf(
            ",\"maintenance\":{\"manual_checkpoints\":%llu,"
            "\"write_stalls\":%llu,\"saturation_events\":%llu,"
            "\"rebases\":%llu,\"min_free_gap_low_water\":%llu",
            static_cast<unsigned long long>(entry.manual_checkpoints),
            static_cast<unsigned long long>(entry.durable->write_stalls()),
            static_cast<unsigned long long>(
                entry.durable->saturation_events()),
            static_cast<unsigned long long>(entry.durable->rebases()),
            static_cast<unsigned long long>(low_water));
        if (entry.maintenance != nullptr) {
          const mctdb::wal::MaintenanceManager& mm = *entry.maintenance;
          out += mctdb::StringPrintf(
              ",\"running\":%s,\"reprobes\":%llu,\"by_reason\":{",
              mm.running() ? "true" : "false",
              static_cast<unsigned long long>(mm.reprobes()));
          for (size_t r = 0; r < mctdb::wal::kNumCheckpointReasons; ++r) {
            const auto reason = static_cast<mctdb::wal::CheckpointReason>(r);
            if (reason == mctdb::wal::CheckpointReason::kManual) continue;
            out += mctdb::StringPrintf(
                "%s\"%s\":%llu", r > 1 ? "," : "",
                mctdb::wal::ToString(reason),
                static_cast<unsigned long long>(mm.checkpoints(reason)));
          }
          out += '}';
          const std::string err = mm.last_error();
          if (!err.empty()) {
            out += ",\"last_error\":\"" + mctdb::obs::JsonEscape(err) + "\"";
          }
        }
        out += '}';
      }
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string QueryService::FlightzJson() const {
  // A live, lossy snapshot of the flight-recorder rings; {"events":[]}
  // when the recorder is disabled.
  return flight::RenderJson(flight::Snapshot());
}

Result<QueryFuture> QueryService::Session::Submit(const QueryPlan& plan,
                                                  double timeout_seconds,
                                                  Priority priority) {
  return SubmitPlanned(plan, nullptr, timeout_seconds, priority,
                       /*pre_verified=*/false, mctdb::obs::MintTraceId());
}

Result<QueryFuture> QueryService::Session::SubmitQuery(
    const mctdb::query::AssociationQuery& query, double timeout_seconds,
    Priority priority) {
  QueryService* svc = service_;
  // Minted before the cache lookup so the hit/miss/invalidation events —
  // the first thing that happens to this request — already carry the id
  // `mctc trace --id` will filter on.
  const uint64_t trace_id = mctdb::obs::MintTraceId();
  // Resolve the current view: after a maintenance rebase the visible LSN
  // must come from the LIVE store, not a retired one whose LSN froze.
  std::shared_ptr<const StoreView> view = svc->CurrentView(store_name_);
  const mctdb::mct::MctSchema& schema = view->store->schema();
  const std::string key = PlanCache::Key(
      fingerprint_, schema.name(), mctdb::query::CanonicalQueryText(query));
  // The freshness pivot: a cached plan only hits while the store's visible
  // LSN still equals the LSN it was built at (and the generation matches).
  // RunNext pins the executor to visible_lsn() again at dequeue; since
  // LSNs only advance, a hit guarantees the plan is no newer than the
  // snapshot the query will run under.
  const mctdb::Lsn visible = view->store->visible_lsn();
  LookupOutcome outcome = LookupOutcome::kMiss;
  std::shared_ptr<const CachedPlan> cached =
      plan_cache_->Lookup(key, visible, &outcome);
  if (outcome == LookupOutcome::kHit) {
    svc->metrics_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kPlanCache,
                   flight::Site::kPlanCacheHit, trace_id, visible);
    // Verified when built; admission skips straight to the gates below.
    // The plan reference must be taken BEFORE the call: argument
    // evaluation order is unspecified, and `std::move(cached)` may
    // construct the holder parameter (nulling `cached`) before
    // `cached->plan` is read.
    const QueryPlan& hit_plan = cached->plan;
    return SubmitPlanned(hit_plan, std::move(cached), timeout_seconds,
                         priority, /*pre_verified=*/true, trace_id);
  }
  if (outcome == LookupOutcome::kInvalidated) {
    svc->metrics_.plan_cache_invalidations.fetch_add(
        1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kPlanCache,
                   flight::Site::kPlanCacheInvalidated, trace_id, visible);
  } else {
    svc->metrics_.plan_cache_misses.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kPlanCache,
                   flight::Site::kPlanCacheMiss, trace_id, visible);
  }
  // Plan fresh against current state. The entry owns the query copy and
  // the plan compiled FROM that copy, so the pointer chain inside
  // QueryPlan stays valid for exactly as long as the entry lives.
  auto entry = std::make_shared<CachedPlan>();
  entry->query = query;
  MCTDB_ASSIGN_OR_RETURN(
      entry->plan, mctdb::query::PlanQuery(entry->query, schema));
  entry->built_lsn = visible;
  entry->generation = plan_cache_->generation();
  std::shared_ptr<const CachedPlan> frozen = std::move(entry);
  Result<QueryFuture> admitted = SubmitPlanned(
      frozen->plan, frozen, timeout_seconds, priority,
      /*pre_verified=*/false, trace_id);
  if (admitted.ok()) {
    // Only admitted (hence verified) plans enter the cache; a rejected
    // plan would otherwise hit later and skip the very gate it failed.
    plan_cache_->Insert(key, std::move(frozen));
  }
  return admitted;
}

Result<QueryFuture> QueryService::Session::SubmitPlanned(
    const QueryPlan& plan, std::shared_ptr<const CachedPlan> holder,
    double timeout_seconds, Priority priority, bool pre_verified,
    uint64_t trace_id) {
  QueryService* svc = service_;
  const std::string query_label =
      plan.query != nullptr ? plan.query->name : std::string("<plan>");
  // Admission gate: statically verify the plan before it consumes an
  // admission slot or a worker, so a malformed plan can never crash (or
  // wedge) a worker thread.
  if (svc->options_.verify_plans && !pre_verified) {
    mctdb::analysis::DiagnosticReport report =
        mctdb::analysis::VerifyPlan(plan);
    if (report.has_errors()) {
      svc->metrics_.invalid_plans.fetch_add(1, std::memory_order_relaxed);
      return Status::InvalidArgument("plan verification failed:\n" +
                                     report.ToText());
    }
    // Second gate, query-level: a plan whose query the static analyzer
    // rejects outright (unknown types, malformed references, unrecoverable
    // associations — QRY001/002/006) never reaches a worker. Emptiness
    // findings pass through: a statically-empty query is valid and runs as
    // a zero-I/O short-circuit.
    if (plan.query != nullptr && plan.schema != nullptr) {
      mctdb::analysis::QueryAnalysis verdict =
          mctdb::analysis::AnalyzeQuery(*plan.query, *plan.schema);
      if (verdict.fatal()) {
        svc->metrics_.invalid_plans.fetch_add(1, std::memory_order_relaxed);
        return Status::InvalidArgument(
            "query rejected by static analysis:\n" +
            verdict.report.ToText());
      }
    }
  }
  // An open breaker refuses before the request consumes an admission
  // slot: the store is known-broken, queueing the work only delays the
  // same failure and starves healthy stores of workers.
  if (breaker_ != nullptr && !breaker_->Allow()) {
    svc->metrics_.breaker_rejections.fetch_add(1,
                                               std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService,
                   flight::Site::kBreakerReject, trace_id, 0);
    svc->RecordRejection(store_name_, "breaker", trace_id, query_label);
    return Status::Unavailable(mctdb::StringPrintf(
        "store '%s' circuit breaker is %s; retry after %.1fs",
        store_name_.c_str(),
        CircuitBreaker::StateName(breaker_->state()),
        breaker_->RetryAfterSeconds()));
  }
  uint64_t in_flight =
      svc->pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (in_flight > svc->options_.max_queued) {
    svc->FinishOne();
    svc->metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService, flight::Site::kReject,
                   trace_id, in_flight);
    svc->RecordRejection(store_name_, "rejected", trace_id, query_label);
    // Debug level: overload rejections are high-frequency by nature and
    // already counted in mctsvc_requests_rejected_total.
    MCTDB_LOG(kDebug, "mctsvc", "admission rejected",
              {{"store", store_name_},
               {"in_flight", in_flight},
               {"max_queued", uint64_t(svc->options_.max_queued)}});
    return Status::ResourceExhausted(mctdb::StringPrintf(
        "admission queue full (max_queued=%zu)", svc->options_.max_queued));
  }
  // Load shedding: past the watermark for this request's priority, shed
  // it now — cheaper for everyone than queueing work that will crowd out
  // higher-priority requests. The hint assumes the backlog drains at the
  // observed mean latency across the worker pool.
  double watermark_fraction =
      priority == Priority::kLow      ? svc->options_.shed_low_fraction
      : priority == Priority::kNormal ? svc->options_.shed_normal_fraction
                                      : 1.0;
  if (priority != Priority::kHigh &&
      double(in_flight) >
          watermark_fraction * double(svc->options_.max_queued)) {
    svc->FinishOne();
    svc->metrics_.sheds.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService, flight::Site::kShed,
                   trace_id, in_flight);
    svc->RecordRejection(store_name_, "shed", trace_id, query_label);
    uint64_t done = svc->metrics_.latency.count();
    double mean = done > 0
                      ? svc->metrics_.latency.total_seconds() / double(done)
                      : 0.001;
    size_t workers = svc->options_.num_threads == 0
                         ? size_t{1}
                         : svc->options_.num_threads;
    double hint = mean * double(in_flight) / double(workers);
    if (hint < 0.01) hint = 0.01;
    if (hint > 5.0) hint = 5.0;
    MCTDB_LOG(kDebug, "mctsvc", "request shed",
              {{"store", store_name_},
               {"in_flight", in_flight},
               {"priority", int64_t(priority)},
               {"retry_after_seconds", hint}});
    return Status::Unavailable(mctdb::StringPrintf(
        "overloaded (%llu in flight, shedding at %.0f%% of %zu); "
        "retry after %.2fs",
        static_cast<unsigned long long>(in_flight),
        watermark_fraction * 100.0, svc->options_.max_queued, hint));
  }
  svc->metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  svc->metrics_.queue_depth.store(in_flight, std::memory_order_relaxed);
  flight::Record(flight::Subsystem::kService, flight::Site::kAdmit,
                 trace_id, in_flight);

  double timeout = timeout_seconds > 0 ? timeout_seconds
                                       : svc->options_.default_timeout_seconds;
  Task task;
  task.plan = &plan;
  task.holder = std::move(holder);
  task.trace_id = trace_id;
  task.enqueue_time = std::chrono::steady_clock::now();
  task.query_label = query_label;
  if (timeout > 0) {
    task.has_deadline = true;
    task.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(timeout));
  }
  QueryFuture future = task.promise.get_future();

  bool need_schedule;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    tasks_.push_back(std::move(task));
    need_schedule = !scheduled_;
    if (need_schedule) scheduled_ = true;
  }
  if (need_schedule) {
    bool ok = svc->pool_->Submit(
        [svc, self = shared_from_this()] { svc->RunNext(self); });
    MCTDB_CHECK_MSG(ok, "submit on a shut-down service");
  }
  return future;
}

Result<UpdateFuture> QueryService::Session::SubmitUpdate(
    const mctdb::storage::UpdateOp& op, double timeout_seconds) {
  QueryService* svc = service_;
  const uint64_t trace_id = mctdb::obs::MintTraceId();
  const std::string query_label = mctdb::storage::UpdateKindName(op.kind);
  if (durable_ == nullptr) {
    return Status::InvalidArgument(
        "store '" + store_name_ +
        "' is not WAL-backed; register it with AddDurableStore to accept "
        "updates");
  }
  if (svc->options_.verify_plans) {
    mctdb::analysis::DiagnosticReport report = mctdb::analysis::VerifyUpdate(
        durable_->store()->schema(), op);
    if (report.has_errors()) {
      svc->metrics_.invalid_plans.fetch_add(1, std::memory_order_relaxed);
      return Status::InvalidArgument("update verification failed:\n" +
                                     report.ToText());
    }
  }
  if (breaker_ != nullptr && !breaker_->Allow()) {
    svc->metrics_.breaker_rejections.fetch_add(1,
                                               std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService,
                   flight::Site::kBreakerReject, trace_id, 0);
    svc->RecordRejection(store_name_, "breaker", trace_id, query_label);
    return Status::Unavailable(mctdb::StringPrintf(
        "store '%s' circuit breaker is %s; retry after %.1fs",
        store_name_.c_str(),
        CircuitBreaker::StateName(breaker_->state()),
        breaker_->RetryAfterSeconds()));
  }
  // Updates are Priority::kHigh by design: they are never load-shed, only
  // refused at the hard admission limit.
  uint64_t in_flight =
      svc->pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (in_flight > svc->options_.max_queued) {
    svc->FinishOne();
    svc->metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    flight::Record(flight::Subsystem::kService, flight::Site::kReject,
                   trace_id, in_flight);
    svc->RecordRejection(store_name_, "rejected", trace_id, query_label);
    return Status::ResourceExhausted(mctdb::StringPrintf(
        "admission queue full (max_queued=%zu)", svc->options_.max_queued));
  }
  svc->metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  svc->metrics_.updates_submitted.fetch_add(1, std::memory_order_relaxed);
  svc->metrics_.queue_depth.store(in_flight, std::memory_order_relaxed);
  flight::Record(flight::Subsystem::kService, flight::Site::kAdmit,
                 trace_id, in_flight);

  double timeout = timeout_seconds > 0 ? timeout_seconds
                                       : svc->options_.default_timeout_seconds;
  Task task;
  task.op = &op;
  task.trace_id = trace_id;
  task.enqueue_time = std::chrono::steady_clock::now();
  task.query_label = query_label;
  if (timeout > 0) {
    task.has_deadline = true;
    task.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(timeout));
  }
  UpdateFuture future = task.update_promise.get_future();

  bool need_schedule;
  {
    std::lock_guard<mctdb::OrderedMutex> lock(mu_);
    tasks_.push_back(std::move(task));
    need_schedule = !scheduled_;
    if (need_schedule) scheduled_ = true;
  }
  if (need_schedule) {
    bool ok = svc->pool_->Submit(
        [svc, self = shared_from_this()] { svc->RunNext(self); });
    MCTDB_CHECK_MSG(ok, "submit on a shut-down service");
  }
  return future;
}

std::string QueryService::MetricsJson() const {
  std::string out = "{\"service\":" + metrics_.ToJson();
  out += ",\"stores\":[";
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  bool first_store = true;
  for (const auto& [name, entry] : stores_) {
    if (!first_store) out += ',';
    first_store = false;
    out += "{\"name\":\"" + mctdb::obs::JsonEscape(name) + "\"";
    if (entry.breaker != nullptr) {
      out += std::string(",\"breaker\":\"") +
             CircuitBreaker::StateName(entry.breaker->state()) + "\"";
    }
    char buf[192];
    const mctdb::storage::Pager* pager = entry.view->store->pager();
    std::snprintf(
        buf, sizeof(buf),
        ",\"checksum_failures\":%llu,\"retries\":%llu,"
        "\"quarantined\":%llu",
        static_cast<unsigned long long>(pager->checksum_failures()),
        static_cast<unsigned long long>(pager->retries()),
        static_cast<unsigned long long>(entry.view->pool->quarantined()));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"pool\":{\"capacity_pages\":%zu,\"resident\":%zu,"
                  "\"hits\":%llu,\"misses\":%llu,\"shards\":[",
                  entry.view->pool->capacity(), entry.view->pool->resident(),
                  static_cast<unsigned long long>(entry.view->pool->hits()),
                  static_cast<unsigned long long>(entry.view->pool->misses()));
    out += buf;
    bool first_shard = true;
    for (const auto& shard : entry.view->pool->PerShard()) {
      if (!first_shard) out += ',';
      first_shard = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"hits\":%llu,\"misses\":%llu,\"resident\":%zu}",
                    static_cast<unsigned long long>(shard.hits),
                    static_cast<unsigned long long>(shard.misses),
                    shard.resident);
      out += buf;
    }
    out += "]}}";
  }
  out += "]}";
  return out;
}

std::string QueryService::MetricsText() const {
  std::string out = metrics_.ToPrometheus();
  std::lock_guard<mctdb::OrderedMutex> lock(mu_);
  if (stores_.empty()) return out;
  // The exposition format wants one HELP+TYPE header per metric family,
  // before any of its labeled samples — so emit per family, not per
  // store. Store names are caller-chosen and must be label-escaped.
  char buf[192];
  out +=
      "# HELP mctsvc_pool_hits_total Sharded buffer pool hits per store\n"
      "# TYPE mctsvc_pool_hits_total counter\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_pool_hits_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(entry.view->pool->hits()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_pool_misses_total Sharded buffer pool misses per "
      "store\n"
      "# TYPE mctsvc_pool_misses_total counter\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_pool_misses_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(entry.view->pool->misses()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_pool_resident_pages Pages resident in the sharded "
      "pool per store\n"
      "# TYPE mctsvc_pool_resident_pages gauge\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_pool_resident_pages{store=\"%s\"} %zu\n",
                  PromLabelEscape(name).c_str(), entry.view->pool->resident());
    out += buf;
  }
  out +=
      "# HELP mctsvc_pool_checksum_failures_total Page checksum "
      "verification failures per store\n"
      "# TYPE mctsvc_pool_checksum_failures_total counter\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(
        buf, sizeof(buf),
        "mctsvc_pool_checksum_failures_total{store=\"%s\"} %llu\n",
        PromLabelEscape(name).c_str(),
        static_cast<unsigned long long>(
            entry.view->store->pager()->checksum_failures()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_pool_retries_total Page-read retry attempts per "
      "store\n"
      "# TYPE mctsvc_pool_retries_total counter\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_pool_retries_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(
                      entry.view->store->pager()->retries()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_pool_quarantined_total Pool frames quarantined "
      "after failed loads per store\n"
      "# TYPE mctsvc_pool_quarantined_total counter\n";
  for (const auto& [name, entry] : stores_) {
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_pool_quarantined_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(
                      entry.view->pool->quarantined()));
    out += buf;
  }
  // Breaker state as an enum gauge: 0 closed, 1 half-open, 2 open.
  out +=
      "# HELP mctsvc_breaker_state Circuit breaker state per store "
      "(0=closed, 1=half-open, 2=open)\n"
      "# TYPE mctsvc_breaker_state gauge\n";
  for (const auto& [name, entry] : stores_) {
    if (entry.breaker == nullptr) continue;
    CircuitBreaker::State s = entry.breaker->state();
    int value = s == CircuitBreaker::State::kClosed     ? 0
                : s == CircuitBreaker::State::kHalfOpen ? 1
                                                        : 2;
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_breaker_state{store=\"%s\"} %d\n",
                  PromLabelEscape(name).c_str(), value);
    out += buf;
  }
  // Self-maintenance families (DESIGN.md §17). Reason "manual" counts
  // QueryService::Checkpoint calls; the other reasons come from each
  // store's background MaintenanceManager.
  out +=
      "# HELP mctsvc_checkpoints_triggered_total Checkpoints by trigger "
      "reason per store\n"
      "# TYPE mctsvc_checkpoints_triggered_total counter\n";
  for (const auto& [name, entry] : stores_) {
    if (entry.durable == nullptr) continue;
    std::snprintf(
        buf, sizeof(buf),
        "mctsvc_checkpoints_triggered_total{store=\"%s\",reason=\"manual\"}"
        " %llu\n",
        PromLabelEscape(name).c_str(),
        static_cast<unsigned long long>(entry.manual_checkpoints));
    out += buf;
    if (entry.maintenance == nullptr) continue;
    for (size_t r = 0; r < mctdb::wal::kNumCheckpointReasons; ++r) {
      const auto reason = static_cast<mctdb::wal::CheckpointReason>(r);
      if (reason == mctdb::wal::CheckpointReason::kManual) continue;
      std::snprintf(
          buf, sizeof(buf),
          "mctsvc_checkpoints_triggered_total{store=\"%s\",reason=\"%s\"}"
          " %llu\n",
          PromLabelEscape(name).c_str(), mctdb::wal::ToString(reason),
          static_cast<unsigned long long>(
              entry.maintenance->checkpoints(reason)));
      out += buf;
    }
  }
  out +=
      "# HELP mctsvc_write_stalls_total Writers paused behind an urgent "
      "rebalancing checkpoint per store\n"
      "# TYPE mctsvc_write_stalls_total counter\n";
  for (const auto& [name, entry] : stores_) {
    if (entry.durable == nullptr) continue;
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_write_stalls_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(
                      entry.durable->write_stalls()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_gap_rebalances_total Live store rebases (interval-"
      "label rebalances) per store\n"
      "# TYPE mctsvc_gap_rebalances_total counter\n";
  for (const auto& [name, entry] : stores_) {
    if (entry.durable == nullptr) continue;
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_gap_rebalances_total{store=\"%s\"} %llu\n",
                  PromLabelEscape(name).c_str(),
                  static_cast<unsigned long long>(entry.durable->rebases()));
    out += buf;
  }
  out +=
      "# HELP mctsvc_store_readonly Store is read-only: WAL out of disk "
      "space, writes paused, reads still serving (0/1)\n"
      "# TYPE mctsvc_store_readonly gauge\n";
  for (const auto& [name, entry] : stores_) {
    if (entry.durable == nullptr) continue;
    std::snprintf(buf, sizeof(buf),
                  "mctsvc_store_readonly{store=\"%s\"} %d\n",
                  PromLabelEscape(name).c_str(),
                  entry.durable->read_only() ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace mctsvc
