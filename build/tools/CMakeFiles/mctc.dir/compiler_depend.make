# Empty compiler generated dependencies file for mctc.
# This may be replaced when dependencies are built.
